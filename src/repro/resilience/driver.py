"""Automatic checkpoint-restart driver for simulated SPMD jobs.

:func:`run_resilient_spmd` composes three existing pieces into a fault-
tolerant execution loop:

* :func:`repro.simmpi.run_spmd` executes the job, with an optional
  :class:`~repro.resilience.faults.FaultPlan` injecting failures;
* one :class:`~repro.checkpoint.manager.CheckpointManager` per rank
  (installed as a thread-local loop observer) writes coordinated rounds of
  :class:`~repro.checkpoint.store.FileStore` checkpoints every
  ``frequency`` loops;
* after a detected failure the world is torn down, job state rebuilt, and
  every rank fast-forwards through a
  :class:`~repro.checkpoint.manager.RecoveryReplayer` to the latest round
  flushed by *all* ranks, then resumes normal execution.

Ranks checkpoint without synchronising: determinism makes the rounds
coordinated (every rank's round k enters at the same loop index), but a
crash can interrupt some ranks before they flush round k — recovery
therefore uses the newest round completed by every rank, verified to agree
on the entry index.  Restarts are bounded by ``max_restarts``; resilience
counters (faults injected, drops, retries, restarts, time in recovery)
accumulate across attempts and land in the returned result's
:class:`~repro.common.counters.PerfCounters`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.checkpoint.manager import CheckpointManager, RecoveryReplayer
from repro.checkpoint.store import FileStore, latest_common_round, round_glob, round_path
from repro.common.counters import PerfCounters
from repro.common.errors import ResilienceError
from repro.resilience.detection import RetryPolicy
from repro.resilience.faults import FaultPlan
from repro.simmpi.comm import DeadlockError
from repro.simmpi.executor import World, run_spmd
from repro.telemetry import tracer as _trace


class SpmdJob:
    """A restartable SPMD job: state factory plus per-rank body.

    ``setup`` must be deterministic — after a crash the driver rebuilds the
    job from scratch and replays it, so a fresh state that differs from the
    crashed one would diverge from the fault-free run.
    """

    def setup(self) -> Any:
        """Build fresh job state (app, partitioned mesh, ...); one call per attempt."""
        raise NotImplementedError

    def rank_main(self, comm, state) -> Any:
        """The SPMD body executed on every rank; returns the rank's result."""
        raise NotImplementedError

    def datasets(self, rank: int, state) -> dict[str, Any]:
        """Live per-rank dataset refs (name -> Dat) for checkpoint recovery."""
        raise NotImplementedError

    def globals_(self, rank: int, state) -> dict[str, Any]:
        """Live per-rank global refs (name -> Global) for recovery; optional."""
        return {}


@dataclass
class ResilientResult:
    """Outcome of a resilient run."""

    results: list  #: per-rank return values of the successful attempt
    restarts: int  #: failures recovered from
    attempts: int  #: total attempts (restarts + 1)
    recovered_rounds: list[int]  #: checkpoint round used by each restart (-1 = from scratch)
    counters: PerfCounters  #: aggregate over all attempts, incl. resilience counters


# the round-file layout now lives in repro.checkpoint.store (shared with
# repro.serve); these aliases keep the driver's historical private surface
_round_path = round_path
_latest_common_round = latest_common_round


def run_resilient_spmd(
    nranks: int,
    job: SpmdJob,
    *,
    ckpt_dir: str | Path,
    frequency: int | None = None,
    plan: FaultPlan | None = None,
    retry: RetryPolicy | None = RetryPolicy(),
    max_restarts: int = 3,
    job_id: str | None = None,
) -> ResilientResult:
    """Run ``job`` over ``nranks`` simulated ranks, surviving injected failures.

    ``frequency`` is the checkpoint cadence in loops (None disables
    checkpointing, so every restart replays from scratch).  ``plan`` injects
    faults; ``retry`` masks transient message drops at the send site.
    ``job_id`` namespaces the on-disk rounds so several jobs can share one
    checkpoint directory (stale files from *other* namespaces are left
    alone).  Raises :class:`ResilienceError` once ``max_restarts`` is
    exceeded, and re-raises immediately on non-simulated (organic) errors.
    """
    ckpt_dir = Path(ckpt_dir)
    ckpt_dir.mkdir(parents=True, exist_ok=True)
    for stale in round_glob(ckpt_dir, job_id=job_id):
        stale.unlink()

    aggregate = PerfCounters()
    restarts = 0
    recovered_rounds: list[int] = []
    next_round: dict[int, int] = {}

    while True:
        attempt_start = time.perf_counter()
        state = job.setup()
        recovery = latest_common_round(ckpt_dir, nranks, job_id=job_id) if restarts else None
        # a crash can leave ranks with different flushed-round counts; restart
        # the numbering past every existing file so rank rounds stay aligned
        # (round k always means the same entry loop on every rank)
        existing = [int(p.stem.split("-n")[1]) for p in round_glob(ckpt_dir, job_id=job_id)]
        base = max(existing) + 1 if existing else 0
        next_round.update({r: base for r in range(nranks)})
        world = World(nranks, fault_plan=plan, retry=retry)
        if plan is not None:
            plan.begin_attempt()

        def rank_body(comm, _state=state, _recovery=recovery):
            rank = comm.rank
            replayer = None
            manager = None
            if _recovery is not None:
                store = FileStore.load(round_path(ckpt_dir, rank, _recovery[0], job_id=job_id))
                replayer = RecoveryReplayer(
                    store, job.datasets(rank, _state), job.globals_(rank, _state)
                )
                replayer.install(local=True)
            if frequency is not None:

                def flush_round(mgr, _rank=rank):
                    round_no = next_round[_rank]
                    mgr.store.path = round_path(ckpt_dir, _rank, round_no, job_id=job_id)
                    mgr.store.flush()
                    next_round[_rank] = round_no + 1
                    mgr.restart(FileStore(round_path(ckpt_dir, _rank, round_no + 1, job_id=job_id)))

                manager = CheckpointManager(
                    FileStore(round_path(ckpt_dir, rank, next_round[rank], job_id=job_id)),
                    frequency=frequency,
                    on_complete=flush_round,
                    job_id=job_id,
                )
                if replayer is not None:
                    # carry the recovered global series into the new round so
                    # a later recovery can replay globals from loop 0
                    for name, series in replayer.store.globals.items():
                        for idx, val in series:
                            manager.store.record_global(name, idx, val)
                manager.install(local=True)
            try:
                return job.rank_main(comm, _state)
            finally:
                if manager is not None:
                    manager.remove()
                if replayer is not None:
                    replayer.remove()

        try:
            results = run_spmd(nranks, rank_body, world=world)
        except (RuntimeError, ResilienceError, DeadlockError) as err:
            aggregate.merge(world.total_counters())
            cause = err.__cause__ if isinstance(err, RuntimeError) else err
            if not isinstance(cause, (ResilienceError, DeadlockError)):
                raise  # an organic bug, not a simulated failure
            restarts += 1
            aggregate.record_restart(time.perf_counter() - attempt_start)
            if restarts > max_restarts:
                raise ResilienceError(
                    f"giving up after {max_restarts} restart(s); last failure: {cause}"
                ) from err
            available = latest_common_round(ckpt_dir, nranks, job_id=job_id)
            recovered_rounds.append(available[0] if available is not None else -1)
            trc = _trace.ACTIVE
            if trc is not None:
                trc.instant(
                    "restart", "resilience",
                    attempt=restarts + 1,
                    recovered_round=recovered_rounds[-1],
                    cause=type(cause).__name__,
                )
            continue

        aggregate.merge(world.total_counters())
        return ResilientResult(
            results=results,
            restarts=restarts,
            attempts=restarts + 1,
            recovered_rounds=recovered_rounds,
            counters=aggregate,
        )
