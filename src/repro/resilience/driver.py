"""Automatic checkpoint-restart driver for simulated SPMD jobs.

:func:`run_resilient_spmd` composes three existing pieces into a fault-
tolerant execution loop:

* :func:`repro.simmpi.run_spmd` executes the job, with an optional
  :class:`~repro.resilience.faults.FaultPlan` injecting failures;
* one :class:`~repro.checkpoint.manager.CheckpointManager` per rank
  (installed as a thread-local loop observer) writes coordinated rounds of
  :class:`~repro.checkpoint.store.FileStore` checkpoints every
  ``frequency`` loops;
* after a detected failure the world is torn down, job state rebuilt, and
  every rank fast-forwards through a
  :class:`~repro.checkpoint.manager.RecoveryReplayer` to the latest round
  flushed by *all* ranks, then resumes normal execution.

Ranks checkpoint without synchronising: determinism makes the rounds
coordinated (every rank's round k enters at the same loop index), but a
crash can interrupt some ranks before they flush round k — recovery
therefore uses the newest round completed by every rank, verified to agree
on the entry index.  Restarts are bounded by ``max_restarts``; resilience
counters (faults injected, drops, retries, restarts, time in recovery)
accumulate across attempts and land in the returned result's
:class:`~repro.common.counters.PerfCounters`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.checkpoint.manager import CheckpointManager, RecoveryReplayer
from repro.checkpoint.store import FileStore
from repro.common.counters import PerfCounters
from repro.common.errors import ResilienceError
from repro.resilience.detection import RetryPolicy
from repro.resilience.faults import FaultPlan
from repro.simmpi.comm import DeadlockError
from repro.simmpi.executor import World, run_spmd
from repro.telemetry import tracer as _trace


class SpmdJob:
    """A restartable SPMD job: state factory plus per-rank body.

    ``setup`` must be deterministic — after a crash the driver rebuilds the
    job from scratch and replays it, so a fresh state that differs from the
    crashed one would diverge from the fault-free run.
    """

    def setup(self) -> Any:
        """Build fresh job state (app, partitioned mesh, ...); one call per attempt."""
        raise NotImplementedError

    def rank_main(self, comm, state) -> Any:
        """The SPMD body executed on every rank; returns the rank's result."""
        raise NotImplementedError

    def datasets(self, rank: int, state) -> dict[str, Any]:
        """Live per-rank dataset refs (name -> Dat) for checkpoint recovery."""
        raise NotImplementedError

    def globals_(self, rank: int, state) -> dict[str, Any]:
        """Live per-rank global refs (name -> Global) for recovery; optional."""
        return {}


@dataclass
class ResilientResult:
    """Outcome of a resilient run."""

    results: list  #: per-rank return values of the successful attempt
    restarts: int  #: failures recovered from
    attempts: int  #: total attempts (restarts + 1)
    recovered_rounds: list[int]  #: checkpoint round used by each restart (-1 = from scratch)
    counters: PerfCounters  #: aggregate over all attempts, incl. resilience counters


def _round_path(ckpt_dir: Path, rank: int, round_no: int) -> Path:
    return ckpt_dir / f"ckpt-r{rank:03d}-n{round_no:04d}.npz"


def _latest_common_round(ckpt_dir: Path, nranks: int) -> tuple[int, int] | None:
    """Newest round flushed by every rank, as (round_no, entry_index).

    Rounds whose per-rank entry indices disagree (a crash interleaved two
    rounds) are skipped in favour of an older consistent one.
    """
    rounds: set[int] = set()
    for p in ckpt_dir.glob("ckpt-r*-n*.npz"):
        rounds.add(int(p.stem.split("-n")[1]))
    for round_no in sorted(rounds, reverse=True):
        paths = [_round_path(ckpt_dir, r, round_no) for r in range(nranks)]
        if not all(p.exists() for p in paths):
            continue
        entries = []
        try:
            for p in paths:
                entries.append(FileStore.load(p).entry_index)
        except Exception:
            continue  # torn file: fall back to an older round
        if len(set(entries)) == 1:
            return round_no, entries[0]
    return None


def run_resilient_spmd(
    nranks: int,
    job: SpmdJob,
    *,
    ckpt_dir: str | Path,
    frequency: int | None = None,
    plan: FaultPlan | None = None,
    retry: RetryPolicy | None = RetryPolicy(),
    max_restarts: int = 3,
) -> ResilientResult:
    """Run ``job`` over ``nranks`` simulated ranks, surviving injected failures.

    ``frequency`` is the checkpoint cadence in loops (None disables
    checkpointing, so every restart replays from scratch).  ``plan`` injects
    faults; ``retry`` masks transient message drops at the send site.
    Raises :class:`ResilienceError` once ``max_restarts`` is exceeded, and
    re-raises immediately on non-simulated (organic) errors.
    """
    ckpt_dir = Path(ckpt_dir)
    ckpt_dir.mkdir(parents=True, exist_ok=True)
    for stale in ckpt_dir.glob("ckpt-r*-n*.npz"):
        stale.unlink()

    aggregate = PerfCounters()
    restarts = 0
    recovered_rounds: list[int] = []
    next_round: dict[int, int] = {}

    while True:
        attempt_start = time.perf_counter()
        state = job.setup()
        recovery = _latest_common_round(ckpt_dir, nranks) if restarts else None
        # a crash can leave ranks with different flushed-round counts; restart
        # the numbering past every existing file so rank rounds stay aligned
        # (round k always means the same entry loop on every rank)
        existing = [int(p.stem.split("-n")[1]) for p in ckpt_dir.glob("ckpt-r*-n*.npz")]
        base = max(existing) + 1 if existing else 0
        next_round.update({r: base for r in range(nranks)})
        world = World(nranks, fault_plan=plan, retry=retry)
        if plan is not None:
            plan.begin_attempt()

        def rank_body(comm, _state=state, _recovery=recovery):
            rank = comm.rank
            replayer = None
            manager = None
            if _recovery is not None:
                store = FileStore.load(_round_path(ckpt_dir, rank, _recovery[0]))
                replayer = RecoveryReplayer(
                    store, job.datasets(rank, _state), job.globals_(rank, _state)
                )
                replayer.install(local=True)
            if frequency is not None:

                def flush_round(mgr, _rank=rank):
                    round_no = next_round[_rank]
                    mgr.store.path = _round_path(ckpt_dir, _rank, round_no)
                    mgr.store.flush()
                    next_round[_rank] = round_no + 1
                    mgr.restart(FileStore(_round_path(ckpt_dir, _rank, round_no + 1)))

                manager = CheckpointManager(
                    FileStore(_round_path(ckpt_dir, rank, next_round[rank])),
                    frequency=frequency,
                    on_complete=flush_round,
                )
                if replayer is not None:
                    # carry the recovered global series into the new round so
                    # a later recovery can replay globals from loop 0
                    for name, series in replayer.store.globals.items():
                        for idx, val in series:
                            manager.store.record_global(name, idx, val)
                manager.install(local=True)
            try:
                return job.rank_main(comm, _state)
            finally:
                if manager is not None:
                    manager.remove()
                if replayer is not None:
                    replayer.remove()

        try:
            results = run_spmd(nranks, rank_body, world=world)
        except (RuntimeError, ResilienceError, DeadlockError) as err:
            aggregate.merge(world.total_counters())
            cause = err.__cause__ if isinstance(err, RuntimeError) else err
            if not isinstance(cause, (ResilienceError, DeadlockError)):
                raise  # an organic bug, not a simulated failure
            restarts += 1
            aggregate.record_restart(time.perf_counter() - attempt_start)
            if restarts > max_restarts:
                raise ResilienceError(
                    f"giving up after {max_restarts} restart(s); last failure: {cause}"
                ) from err
            available = _latest_common_round(ckpt_dir, nranks)
            recovered_rounds.append(available[0] if available is not None else -1)
            trc = _trace.ACTIVE
            if trc is not None:
                trc.instant(
                    "restart", "resilience",
                    attempt=restarts + 1,
                    recovered_round=recovered_rounds[-1],
                    cause=type(cause).__name__,
                )
            continue

        aggregate.merge(world.total_counters())
        return ResilientResult(
            results=results,
            restarts=restarts,
            attempts=restarts + 1,
            recovered_rounds=recovered_rounds,
            counters=aggregate,
        )
