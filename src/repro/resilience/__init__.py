"""Resilience subsystem: fault injection, detection, and checkpoint-restart.

Three layers over the simulated MPI runtime:

* :mod:`repro.resilience.faults` — deterministic :class:`FaultPlan`
  (kill / drop / delay / duplicate / slow) installed on a
  :class:`repro.simmpi.World`;
* :mod:`repro.resilience.detection` — :class:`RetryPolicy` backoff for
  transient faults; hard failures surface as
  :class:`~repro.common.errors.RankFailedError` in peers;
* :mod:`repro.resilience.driver` — :func:`run_resilient_spmd`, the
  automatic checkpoint-restart loop over :func:`repro.simmpi.run_spmd`
  and the checkpoint subsystem.
"""

from repro.common.errors import (
    MessageLostError,
    RankFailedError,
    RankKilledError,
    ResilienceError,
)
from repro.resilience.detection import RetryPolicy
from repro.resilience.driver import ResilientResult, SpmdJob, run_resilient_spmd
from repro.resilience.faults import FaultPlan

__all__ = [
    "FaultPlan",
    "MessageLostError",
    "RankFailedError",
    "RankKilledError",
    "ResilienceError",
    "ResilientResult",
    "RetryPolicy",
    "SpmdJob",
    "run_resilient_spmd",
]
