"""Deterministic fault injection for simulated MPI runs.

A :class:`FaultPlan` is a declarative schedule of failures installed on a
:class:`repro.simmpi.World`:

* **kill** — rank R dies at its Nth loop execution or Nth send (raises
  :class:`RankKilledError` inside the victim, which the executor turns
  into a world-wide failure mark),
* **drop / delay / duplicate** — the Nth message matching (src, dst, tag)
  is lost, late, or delivered twice,
* **slow** — a straggler rank sleeps before every Kth loop.

Determinism: each rank executes its program order on a single thread, so
per-rank loop/send ordinals are reproducible; faults are matched on those
ordinals, never on wall-clock time.  Replaying the same plan (fresh
instance or after :meth:`FaultPlan.reset`) injects the same faults at the
same points.  Within one resilient run, a fault fires at most ``times``
times *in total across restarts* — :meth:`begin_attempt` resets the
per-attempt ordinals but not the consumed budget, so a kill does not
re-fire after recovery and the job can make progress.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.common.counters import PerfCounters
from repro.common.errors import RankKilledError
from repro.simmpi.comm import ANY
from repro.telemetry import tracer as _trace


def _trace_fault(kind: str, rank: int, **attrs) -> None:
    """Record a fault firing as a telemetry instant (one branch when off)."""
    trc = _trace.ACTIVE
    if trc is not None:
        trc.instant("fault_injected", "resilience", kind=kind, rank=rank, **attrs)


@dataclass
class _Kill:
    rank: int
    at_loop: int | None = None
    at_send: int | None = None
    fired: bool = False


@dataclass
class _MessageFault:
    kind: str  # "drop" | "delay" | "duplicate"
    src: int
    dst: int
    tag: int = ANY
    times: int = 1
    after: int = 0
    seconds: float = 0.0
    #: matching messages seen this attempt (reset by begin_attempt)
    seen: int = 0
    #: total firings so far (persists across attempts)
    consumed: int = 0

    def matches(self, src: int, dst: int, tag: int) -> bool:
        return (
            self.src == src
            and self.dst == dst
            and (self.tag == ANY or self.tag == tag)
        )


@dataclass
class _Slow:
    rank: int
    seconds: float
    every: int = 1
    recorded_this_attempt: bool = False


@dataclass
class FaultPlan:
    """A deterministic schedule of injected failures for one world."""

    kills: list[_Kill] = field(default_factory=list)
    message_faults: list[_MessageFault] = field(default_factory=list)
    slowdowns: list[_Slow] = field(default_factory=list)
    #: human-readable log of every fault firing, in order
    fired_log: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._lock = threading.Lock()
        self._loop_count: dict[int, int] = {}
        self._send_count: dict[int, int] = {}

    # -- declaration -----------------------------------------------------------

    def kill(self, rank: int, *, at_loop: int | None = None, at_send: int | None = None) -> "FaultPlan":
        """Kill ``rank`` just before its Nth loop execution or Nth send (1-based)."""
        if (at_loop is None) == (at_send is None):
            raise ValueError("specify exactly one of at_loop / at_send")
        self.kills.append(_Kill(rank, at_loop=at_loop, at_send=at_send))
        return self

    def drop(self, src: int, dst: int, *, tag: int = ANY, times: int = 1, after: int = 0) -> "FaultPlan":
        """Lose messages ``after+1 .. after+times`` matching (src, dst, tag)."""
        self.message_faults.append(_MessageFault("drop", src, dst, tag, times, after))
        return self

    def delay(self, src: int, dst: int, *, seconds: float, tag: int = ANY, times: int = 1, after: int = 0) -> "FaultPlan":
        """Deliver matching messages late by ``seconds``."""
        self.message_faults.append(_MessageFault("delay", src, dst, tag, times, after, seconds))
        return self

    def duplicate(self, src: int, dst: int, *, tag: int = ANY, times: int = 1, after: int = 0) -> "FaultPlan":
        """Deliver matching messages twice."""
        self.message_faults.append(_MessageFault("duplicate", src, dst, tag, times, after))
        return self

    def slow(self, rank: int, *, seconds: float, every: int = 1) -> "FaultPlan":
        """Make ``rank`` a straggler: sleep before every ``every``-th loop."""
        self.slowdowns.append(_Slow(rank, seconds, every))
        return self

    # -- lifecycle -------------------------------------------------------------

    def begin_attempt(self) -> None:
        """Reset per-attempt ordinals (not the consumed fault budget)."""
        with self._lock:
            self._loop_count.clear()
            self._send_count.clear()
            for s in self.slowdowns:
                s.recorded_this_attempt = False
            for f in self.message_faults:
                f.seen = 0

    def reset(self) -> None:
        """Restore the pristine plan, for a deterministic replay."""
        self.begin_attempt()
        with self._lock:
            for k in self.kills:
                k.fired = False
            for f in self.message_faults:
                f.consumed = 0
            self.fired_log.clear()

    # -- hooks consulted by the simulator ---------------------------------------

    def on_loop(self, rank: int, counters: PerfCounters | None = None) -> None:
        """Called before every loop a rank executes; may sleep or kill it."""
        with self._lock:
            n = self._loop_count.get(rank, 0) + 1
            self._loop_count[rank] = n
            sleep_for = 0.0
            for s in self.slowdowns:
                if s.rank == rank and n % s.every == 0:
                    sleep_for += s.seconds
                    if not s.recorded_this_attempt:
                        s.recorded_this_attempt = True
                        self.fired_log.append(f"slow rank {rank} by {s.seconds}s/{s.every} loops")
                        if counters is not None:
                            counters.record_fault("slow")
                        _trace_fault("slow", rank, seconds=s.seconds, every=s.every)
            kill = self._match_kill(rank, n, None)
        if sleep_for:
            time.sleep(sleep_for)
        if kill is not None:
            if counters is not None:
                counters.record_fault("kill")
            _trace_fault("kill", rank, at="loop", n=n)
            raise RankKilledError(f"rank {rank} killed at loop {n} (injected)")

    def on_send(self, rank: int, dest: int, tag: int, counters: PerfCounters | None = None):
        """Called before every send; returns the firing message fault or None.

        Kill-at-send faults raise :class:`RankKilledError` here.
        """
        with self._lock:
            n = self._send_count.get(rank, 0) + 1
            self._send_count[rank] = n
            kill = self._match_kill(rank, None, n)
            if kill is None:
                fault = self._match_message(rank, dest, tag)
            else:
                fault = None
        if kill is not None:
            if counters is not None:
                counters.record_fault("kill")
            _trace_fault("kill", rank, at="send", n=n)
            raise RankKilledError(f"rank {rank} killed at send {n} (injected)")
        if fault is not None:
            if counters is not None:
                counters.record_fault(fault.kind)
            _trace_fault(fault.kind, rank, dest=dest, tag=tag)
        return fault

    # -- matching (lock held) -----------------------------------------------------

    def _match_kill(self, rank: int, loop_n: int | None, send_n: int | None) -> _Kill | None:
        for k in self.kills:
            if k.fired or k.rank != rank:
                continue
            if loop_n is not None and k.at_loop is not None and loop_n >= k.at_loop:
                k.fired = True
            elif send_n is not None and k.at_send is not None and send_n >= k.at_send:
                k.fired = True
            else:
                continue
            self.fired_log.append(
                f"kill rank {rank} at "
                + (f"loop {loop_n}" if loop_n is not None else f"send {send_n}")
            )
            return k
        return None

    def _match_message(self, src: int, dst: int, tag: int) -> _MessageFault | None:
        for f in self.message_faults:
            if not f.matches(src, dst, tag):
                continue
            f.seen += 1
            if f.consumed < f.times and f.seen > f.after:
                f.consumed += 1
                self.fired_log.append(
                    f"{f.kind} message {src}->{dst} tag={tag} "
                    f"(match {f.seen}, firing {f.consumed}/{f.times})"
                )
                return f
        return None

    def describe(self) -> str:
        """One line per declared fault, for run logs."""
        lines = []
        for k in self.kills:
            where = f"loop {k.at_loop}" if k.at_loop is not None else f"send {k.at_send}"
            lines.append(f"kill rank {k.rank} at its {where}")
        for f in self.message_faults:
            tag = "ANY" if f.tag == ANY else f.tag
            lines.append(f"{f.kind} {f.times}x message {f.src}->{f.dst} tag={tag} after {f.after}")
        for s in self.slowdowns:
            lines.append(f"slow rank {s.rank} by {s.seconds}s every {s.every} loops")
        return "\n".join(lines) if lines else "(no faults)"
