"""Ready-made resilient jobs for the proxy applications.

:class:`AirfoilJob` wraps the distributed Airfoil solver (the paper's
Figure-8 loop chain) as a :class:`~repro.resilience.driver.SpmdJob`: fresh
state per attempt, per-rank dataset/global refs for recovery, and a final
gather so every rank returns the full solution for verification.
"""

from __future__ import annotations

import numpy as np

from repro.resilience.driver import SpmdJob


class AirfoilJob(SpmdJob):
    """Distributed Airfoil as a restartable SPMD job.

    Deterministic by construction: the mesh, the initial perturbation (from
    ``seed``) and the block partition are rebuilt identically on every
    attempt, so a recovered run is bitwise-comparable to a fault-free one.
    """

    def __init__(
        self,
        nranks: int,
        iterations: int,
        *,
        nx: int = 20,
        ny: int = 14,
        jitter: float = 0.1,
        seed: int = 5,
        method: str = "block",
    ):
        self.nranks = nranks
        self.iterations = iterations
        self.nx = nx
        self.ny = ny
        self.jitter = jitter
        self.seed = seed
        self.method = method

    def setup(self):
        from repro.apps.airfoil import AirfoilApp

        app = AirfoilApp(nx=self.nx, ny=self.ny, jitter=self.jitter)
        rng = np.random.default_rng(self.seed)
        app.mesh.q.data[:, 0] *= 1.0 + 0.05 * rng.random(app.mesh.cells.size)
        pm = app.build_partitioned(self.nranks, self.method)
        return app, pm

    def rank_main(self, comm, state):
        app, pm = state
        rms = app.run_distributed(comm, pm, self.iterations)
        q = pm.local(comm.rank).gather_dat(comm, app.mesh.q)
        return rms, q

    def datasets(self, rank, state):
        _, pm = state
        return {d.name: d for d in pm.local(rank).dats.values()}

    def globals_(self, rank, state):
        _, pm = state
        return {g.name: g for g in pm.local(rank).globals.values()}

    def reference(self):
        """The fault-free single-process answer: (rms, q) for verification."""
        app, _ = self.setup()
        rms = app.run(self.iterations)
        return rms, app.mesh.q.data.copy()
