"""Failure detection knobs: retry policies for transient faults.

Hard failures (a dead rank) are detected structurally: the victim marks
itself in the world state and peers raise
:class:`repro.common.errors.RankFailedError` from their next communication
with it (see :mod:`repro.simmpi.comm`).  Transient faults — dropped
messages — are instead *masked* at the send site by retrying under an
exponential-backoff policy; only when the budget is exhausted does the
fault surface as :class:`repro.common.errors.MessageLostError`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff for transient communication faults.

    Attempt ``i`` (0-based) sleeps ``min(base_delay * multiplier**i,
    max_delay)`` before re-sending.  Deliberately jitter-free: simulated
    runs must replay deterministically.
    """

    max_retries: int = 3
    base_delay: float = 0.001
    multiplier: float = 2.0
    max_delay: float = 0.1

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.base_delay < 0 or self.max_delay < 0 or self.multiplier < 1.0:
            raise ValueError("delays must be >= 0 and multiplier >= 1")

    def delay(self, attempt: int) -> float:
        """Backoff before the (attempt+1)-th resend."""
        return min(self.base_delay * self.multiplier**attempt, self.max_delay)

    def delays(self) -> list[float]:
        """The full backoff schedule, one entry per allowed retry."""
        return [self.delay(i) for i in range(self.max_retries)]
