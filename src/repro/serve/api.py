"""The async service facade: submit/status/result/cancel plus a dashboard.

:class:`ServeService` wires the serving stack together — admission queue,
warm-session cache, scheduler — behind the five calls a client needs::

    service = ServeService(workers=4)
    async with service:
        job_id = await service.submit(JobSpec(tenant="acme", iterations=20))
        ...                       # live: service.status(job_id), dashboard()
        result = await service.result(job_id)

Job IDs are deterministic (``id_seed`` + accepted-submission order), and a
*rejected* submission consumes no sequence number — backpressured clients
that retry later get the same IDs a never-backpressured run would mint.

The dashboard is fed by :mod:`repro.telemetry`: every serve event carries
``job=``/``tenant=`` attrs, so :meth:`ServeService.dashboard` can slice the
one shared trace into per-job and per-tenant
:class:`~repro.telemetry.export.MetricsSnapshot` views without the
scheduler maintaining a second bookkeeping path.
"""

from __future__ import annotations

import asyncio
import threading
from pathlib import Path
from typing import Any

from repro.common.errors import ServeError
from repro.op2.execplan import plan_cache_stats, set_plan_cache_capacity
from repro.resilience.detection import RetryPolicy
from repro.serve.jobs import Job, JobSpec, deterministic_job_id
from repro.serve.queue import FairShareQueue
from repro.serve.scheduler import Scheduler
from repro.serve.session import SessionCache
from repro.telemetry import tracer as _trace
from repro.telemetry.export import MetricsSnapshot

__all__ = ["ServeService"]


class ServeService:
    """Simulation-as-a-service: async submissions over a warm worker pool."""

    def __init__(
        self,
        *,
        workers: int = 4,
        max_depth: int = 64,
        tenant_quota: int = 16,
        ckpt_dir: str | Path = ".repro-serve",
        id_seed: int = 0,
        preemption: bool = True,
        retry: RetryPolicy | None = None,
        plan_cache_capacity: int | None = None,
        executor: str = "thread",
    ):
        if plan_cache_capacity is not None:
            # per-service override of the process-wide plan LRU (satellite 1);
            # the env default is REPRO_EXECPLAN_CACHE_SIZE, see common.config
            set_plan_cache_capacity(plan_cache_capacity)
        self.queue = FairShareQueue(max_depth=max_depth, tenant_quota=tenant_quota)
        self.sessions = SessionCache()
        self.scheduler = Scheduler(
            self.queue,
            self.sessions,
            workers=workers,
            ckpt_dir=ckpt_dir,
            preemption=preemption,
            retry=retry,
            executor=executor,
        )
        self.id_seed = id_seed
        self._jobs: dict[str, Job] = {}
        self._seq = 0  # accepted submissions only — rejections don't burn IDs
        self._seq_lock = threading.Lock()

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        _trace.enable()
        await self.scheduler.start()

    async def stop(self) -> None:
        """Stop accepting dispatches and drain in-flight jobs."""
        await self.scheduler.stop()

    async def __aenter__(self) -> "ServeService":
        await self.start()
        return self

    async def __aexit__(self, *exc: Any) -> None:
        await self.stop()

    # -- the client surface ----------------------------------------------------

    async def submit(self, spec: JobSpec) -> str:
        """Admit one job; returns its ID or raises a typed rejection.

        Raises :class:`~repro.common.errors.QueueFullRejected` /
        :class:`~repro.common.errors.TenantQuotaRejected` under
        backpressure — the job is *not* accepted and no sequence number is
        consumed, so admission failures never perturb later job IDs.
        """
        with self._seq_lock:
            job_id = deterministic_job_id(self.id_seed, spec.tenant, self._seq, spec)
            job = Job(spec, job_id, self._seq)
            self.queue.push(job)  # raises on backpressure, before any commit
            self._seq += 1
            self._jobs[job_id] = job
        trc = _trace.ACTIVE
        if trc is not None:
            trc.instant(
                "job_submitted", "serve",
                job=job_id, tenant=spec.tenant, priority=spec.priority,
            )
        self.scheduler.poke()
        return job_id

    def status(self, job_id: str) -> dict[str, Any]:
        """JSON-safe snapshot of one job's lifecycle."""
        return self._job(job_id).to_dict()

    async def result(self, job_id: str, timeout: float | None = None) -> Any:
        """Await the job's terminal state; returns the per-rank results.

        Raises the job's error for failed jobs, :class:`ServeError` for a
        cancelled job or on timeout.
        """
        job = self._job(job_id)
        done = await asyncio.to_thread(job.wait, timeout)
        if not done:
            raise ServeError(f"job {job_id} still {job.state} after {timeout}s")
        if job.state == "completed":
            return job.result
        if job.state == "cancelled":
            raise ServeError(f"job {job_id} was cancelled")
        assert job.error is not None
        raise job.error

    def cancel(self, job_id: str) -> bool:
        """Cancel a job: pending jobs drop out; running preemptible jobs stop
        at their next checkpoint round. Returns False once it's too late."""
        job = self._job(job_id)
        if job.done:
            return False
        if self.queue.cancel(job_id) is not None:
            return True
        job.cancel_requested = True
        if job.state == "preempting":
            return True  # already unwinding; the cancel flag redirects it
        return self.scheduler.request_preempt(job)

    def preempt(self, job_id: str) -> bool:
        """Explicitly ask a running job to yield (it re-queues and resumes)."""
        return self.scheduler.request_preempt(self._job(job_id))

    def jobs(self) -> list[dict[str, Any]]:
        """All accepted jobs, submission order."""
        return [j.to_dict() for j in self._jobs.values()]

    # -- dashboard -------------------------------------------------------------

    def dashboard(self) -> dict[str, Any]:
        """Live service view: per-job and per-tenant metrics from telemetry.

        Slices the shared trace by the ``job=``/``tenant=`` attrs that every
        serve-category event carries, then aggregates each slice into a
        :class:`MetricsSnapshot` (span quantiles + instant counts).
        """
        trc = _trace.ACTIVE
        events = trc.events() if trc is not None else []
        serve_events = [e for e in events if e.cat == "serve"]
        per_job: dict[str, list] = {}
        per_tenant: dict[str, list] = {}
        for ev in serve_events:
            job = ev.attrs.get("job")
            tenant = ev.attrs.get("tenant")
            if job is not None:
                per_job.setdefault(job, []).append(ev)
            if tenant is not None:
                per_tenant.setdefault(tenant, []).append(ev)
        jobs_view = {}
        for job_id, evs in sorted(per_job.items()):
            snap = MetricsSnapshot.from_events(evs)
            rec = self._jobs.get(job_id)
            jobs_view[job_id] = {
                "state": rec.state if rec is not None else "?",
                "metrics": snap.to_dict(),
            }
        tenants_view = {}
        for tenant, evs in sorted(per_tenant.items()):
            snap = MetricsSnapshot.from_events(evs)
            tenants_view[tenant] = {
                "pending": self.queue.pending_by_tenant().get(tenant, 0),
                "metrics": snap.to_dict(),
            }
        return {
            "queue_depth": len(self.queue),
            "running": [j.job_id for j in self.scheduler.running_jobs],
            "jobs": jobs_view,
            "tenants": tenants_view,
        }

    def stats(self) -> dict[str, Any]:
        """Aggregate service counters (scheduler, queue, sessions, plan cache)."""
        hits = sum(j.counters.plan_hits for j in self._jobs.values())
        misses = sum(j.counters.plan_misses for j in self._jobs.values())
        total = hits + misses
        return {
            "jobs_accepted": len(self._jobs),
            "scheduler": dict(self.scheduler.stats),
            "rejections": dict(self.queue.rejections),
            "sessions": self.sessions.stats(),
            "plan_cache": plan_cache_stats(),
            "cross_job_plan_hit_rate": hits / total if total else 0.0,
        }

    # -- internals -------------------------------------------------------------

    def _job(self, job_id: str) -> Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise ServeError(f"unknown job {job_id!r}") from None
