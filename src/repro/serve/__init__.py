"""repro.serve — simulation-as-a-service on the simulated runtime.

Long-running solver services (the industrial OP2 deployments the paper
describes) don't run one simulation per process: they keep the runtime warm
and stream configurations through it.  This package models that mode of
operation end to end on the proxy runtime:

* :mod:`repro.serve.jobs` — job specs, deterministic IDs, the lifecycle
  state machine;
* :mod:`repro.serve.queue` — priority + tenant-fair admission with typed
  backpressure;
* :mod:`repro.serve.session` — warm per-configuration sessions, the
  mechanism behind cross-job execplan cache sharing;
* :mod:`repro.serve.scheduler` — bounded worker pool, checkpoint-based
  preemption with bitwise-identical resume, fault retry;
* :mod:`repro.serve.api` — the async submit/status/result/cancel facade
  plus a telemetry-fed dashboard;
* :mod:`repro.serve.loadgen` — the multi-tenant load scenario used by
  ``python -m repro.serve demo`` and the throughput benchmark.
"""

from repro.common.errors import (
    AdmissionRejected,
    QueueFullRejected,
    ServeError,
    TenantQuotaRejected,
)
from repro.serve.api import ServeService
from repro.serve.jobs import (
    CANCELLED,
    COMPLETED,
    FAILED,
    PREEMPTED,
    PREEMPTING,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    Job,
    JobSpec,
    deterministic_job_id,
)
from repro.serve.queue import FairShareQueue
from repro.serve.scheduler import JobPreempted, Scheduler
from repro.serve.session import (
    AppAdapter,
    SessionCache,
    SimulationSession,
    app_adapter,
    register_app,
)

__all__ = [
    "ServeService",
    "JobSpec",
    "Job",
    "deterministic_job_id",
    "FairShareQueue",
    "Scheduler",
    "JobPreempted",
    "SessionCache",
    "SimulationSession",
    "AppAdapter",
    "app_adapter",
    "register_app",
    "ServeError",
    "AdmissionRejected",
    "QueueFullRejected",
    "TenantQuotaRejected",
    "QUEUED",
    "RUNNING",
    "PREEMPTING",
    "PREEMPTED",
    "COMPLETED",
    "FAILED",
    "CANCELLED",
    "TERMINAL_STATES",
]
