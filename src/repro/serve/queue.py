"""Priority queue with per-tenant fair-share admission and backpressure.

Admission control is the service's first line of defence: a global depth
limit bounds total queued work (whole-service backpressure) and a per-tenant
quota stops one tenant from monopolising the queue.  Both reject with
*typed* errors (:class:`~repro.common.errors.QueueFullRejected`,
:class:`~repro.common.errors.TenantQuotaRejected`) carrying the limit and
observed depth, so clients implement retry/backoff without parsing strings.

Scheduling order is deterministic: highest priority first, then the tenant
with the fewest in-flight jobs (fair share — in-flight counts jobs popped
but not yet finished), then submission order.  ``pop`` takes an optional
eligibility predicate so the scheduler can skip jobs whose warm session is
momentarily busy instead of head-of-line blocking a worker on it.
"""

from __future__ import annotations

import threading
from typing import Callable

from repro.common.errors import QueueFullRejected, ServeError, TenantQuotaRejected
from repro.serve.jobs import CANCELLED, Job
from repro.telemetry import tracer as _trace

__all__ = ["FairShareQueue"]


class FairShareQueue:
    """Bounded, tenant-fair, priority-ordered pending-job queue."""

    def __init__(self, *, max_depth: int = 64, tenant_quota: int = 16):
        if max_depth < 1 or tenant_quota < 1:
            raise ServeError("queue limits must be >= 1")
        self.max_depth = max_depth
        self.tenant_quota = tenant_quota
        self._pending: list[Job] = []
        self._inflight: dict[str, int] = {}
        self._lock = threading.Lock()
        self.rejections = {"queue_full": 0, "tenant_quota": 0}

    # -- admission -------------------------------------------------------------

    def push(self, job: Job) -> None:
        """Admit a new submission, or reject with a typed backpressure error."""
        with self._lock:
            depth = len(self._pending)
            if depth >= self.max_depth:
                self.rejections["queue_full"] += 1
                self._note_reject("queue_full", job)
                raise QueueFullRejected(
                    f"queue depth {depth} at limit {self.max_depth}",
                    tenant=job.spec.tenant, limit=self.max_depth, depth=depth,
                )
            tenant_depth = sum(
                1 for j in self._pending if j.spec.tenant == job.spec.tenant
            )
            if tenant_depth >= self.tenant_quota:
                self.rejections["tenant_quota"] += 1
                self._note_reject("tenant_quota", job)
                raise TenantQuotaRejected(
                    f"tenant {job.spec.tenant!r} has {tenant_depth} pending jobs "
                    f"(quota {self.tenant_quota})",
                    tenant=job.spec.tenant, limit=self.tenant_quota,
                    depth=tenant_depth,
                )
            self._pending.append(job)

    def requeue(self, job: Job) -> None:
        """Re-enqueue a preempted job; resumption bypasses admission control.

        A preempted job already holds admitted work (and on-disk checkpoint
        rounds) — bouncing it on backpressure would turn preemption into job
        loss, so resume slots are exempt from the depth limits.
        """
        with self._lock:
            self._pending.append(job)

    # -- scheduling ------------------------------------------------------------

    def pop(self, eligible: Callable[[Job], bool] | None = None) -> Job | None:
        """Deterministically pick the next job to run, or None.

        Order: priority desc, tenant in-flight count asc (fair share),
        submission sequence asc.  ``eligible`` filters candidates (e.g. jobs
        whose warm session is busy); when every pending job is ineligible the
        queue returns None rather than blocking.
        """
        with self._lock:
            candidates = [
                j for j in self._pending if eligible is None or eligible(j)
            ]
            if not candidates:
                return None
            job = min(
                candidates,
                key=lambda j: (
                    -j.spec.priority,
                    self._inflight.get(j.spec.tenant, 0),
                    j.seq,
                ),
            )
            self._pending.remove(job)
            self._inflight[job.spec.tenant] = (
                self._inflight.get(job.spec.tenant, 0) + 1
            )
            return job

    def release(self, tenant: str) -> None:
        """A popped job stopped consuming a worker (finished or preempted)."""
        with self._lock:
            count = self._inflight.get(tenant, 0)
            if count > 0:
                self._inflight[tenant] = count - 1

    def cancel(self, job_id: str) -> Job | None:
        """Remove (and mark cancelled) a still-pending job."""
        with self._lock:
            for job in self._pending:
                if job.job_id == job_id:
                    self._pending.remove(job)
                    job.transition(CANCELLED)
                    return job
        return None

    # -- introspection ---------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._pending)

    def max_pending_priority(self) -> int | None:
        with self._lock:
            if not self._pending:
                return None
            return max(j.spec.priority for j in self._pending)

    def pending_by_tenant(self) -> dict[str, int]:
        with self._lock:
            out: dict[str, int] = {}
            for j in self._pending:
                out[j.spec.tenant] = out.get(j.spec.tenant, 0) + 1
            return out

    def _note_reject(self, reason: str, job: Job) -> None:
        trc = _trace.ACTIVE
        if trc is not None:
            trc.instant(
                "job_rejected", "serve", reason=reason,
                tenant=job.spec.tenant, job=job.job_id,
            )
