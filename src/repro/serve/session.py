"""Warm simulation sessions: the state behind cross-job plan-cache sharing.

The execplan registries key compiled loops on *object identity tokens*
(kernel, set, dat, map), so two jobs that each build their own mesh never
share plans even when the meshes are identical.  The serving layer therefore
keeps one warm :class:`SimulationSession` per distinct
:meth:`~repro.serve.jobs.JobSpec.session_key` — the constructed app, its
(optionally partitioned) mesh, and a bitwise snapshot of the initial data.
Every job against that key runs on the *same* sets/dats/maps after an
in-place reset to the snapshot, which means:

* the second and every later job replays the first job's compiled plans —
  the cross-job warm cache hit the OP2 industrial-CFD experience motivates
  (same kernels, re-run across configurations);
* resets restore data **in place** (``dat.data[...] = saved``), never
  rebinding arrays, so the execplan guards (array identity / shape / dtype)
  keep holding and nothing is invalidated between jobs;
* determinism is preserved: reset-then-run is bitwise identical to
  build-then-run, so preemption recovery and verification oracles work
  unchanged on warm sessions.

Sessions are exclusive: the scheduler serialises jobs that share a session
(an asyncio lock) while jobs on different sessions run concurrently on the
worker pool.
"""

from __future__ import annotations

import asyncio
from typing import Any

import numpy as np

from repro.common.errors import ServeError
from repro.serve.jobs import JobSpec

__all__ = [
    "AppAdapter",
    "AirfoilAdapter",
    "SimulationSession",
    "SessionCache",
    "register_app",
    "app_adapter",
]


class AppAdapter:
    """How the service builds, runs, snapshots and recovers one application."""

    name = "?"

    def build(self, spec: JobSpec) -> Any:
        """Construct deterministic app state for ``spec`` (mesh, partition...)."""
        raise NotImplementedError

    def run(self, comm, state, spec: JobSpec) -> Any:
        """Execute one rank's body; ``comm`` is the rank's SimComm."""
        raise NotImplementedError

    def datasets(self, rank: int, state) -> dict[str, Any]:
        """Per-rank dataset refs (name -> Dat) for checkpoint recovery."""
        raise NotImplementedError

    def globals_(self, rank: int, state) -> dict[str, Any]:
        """Per-rank global refs (name -> Global) for recovery."""
        return {}

    # -- warm-session snapshot/restore ----------------------------------------

    def snapshot(self, state, nranks: int) -> list[dict]:
        """Copy every rank's dataset/global values (and halo flags)."""
        snap = []
        for rank in range(nranks):
            dats = self.datasets(rank, state)
            globs = self.globals_(rank, state)
            snap.append({
                "dats": {
                    name: (d.data.copy(), d.halo_dirty) for name, d in dats.items()
                },
                "globals": {
                    name: np.array(g.data, copy=True) for name, g in globs.items()
                },
            })
        return snap

    def restore(self, state, nranks: int, snap: list[dict]) -> None:
        """Reset the live state to the snapshot, strictly in place."""
        for rank in range(nranks):
            dats = self.datasets(rank, state)
            for name, (values, halo_dirty) in snap[rank]["dats"].items():
                dat = dats[name]
                dat.data[...] = values
                dat.halo_dirty = halo_dirty
            globs = self.globals_(rank, state)
            for name, values in snap[rank]["globals"].items():
                globs[name].data[...] = values


class AirfoilAdapter(AppAdapter):
    """The Airfoil proxy app as a servable application.

    ``params``: ``nx``/``ny`` (mesh), ``jitter`` (mesh perturbation),
    ``seed`` (initial-condition perturbation; part of the session key so
    identical submissions share state), ``method`` (partitioner),
    ``backend``.
    """

    name = "airfoil"

    def build(self, spec: JobSpec):
        from repro.apps.airfoil.app import AirfoilApp

        p = spec.params
        app = AirfoilApp(
            nx=int(p.get("nx", 20)),
            ny=int(p.get("ny", 14)),
            jitter=float(p.get("jitter", 0.1)),
            backend=str(p.get("backend", "vec")),
        )
        seed = p.get("seed")
        if seed is not None:
            rng = np.random.default_rng(int(seed))
            app.mesh.q.data[:, 0] *= 1.0 + 0.05 * rng.random(app.mesh.cells.size)
        pm = None
        if spec.nranks > 1:
            pm = app.build_partitioned(spec.nranks, str(p.get("method", "block")))
        return {"app": app, "pm": pm}

    def run(self, comm, state, spec: JobSpec):
        app, pm = state["app"], state["pm"]
        if pm is None:
            rms = app.run(spec.iterations)
            return rms, app.mesh.q.data.copy()
        rms = app.run_distributed(comm, pm, spec.iterations)
        q = pm.local(comm.rank).gather_dat(comm, app.mesh.q)
        return rms, q

    def datasets(self, rank: int, state):
        app, pm = state["app"], state["pm"]
        if pm is None:
            return {d.name: d for d in app.mesh.all_dats}
        return {d.name: d for d in pm.local(rank).dats.values()}

    def globals_(self, rank: int, state):
        app, pm = state["app"], state["pm"]
        if pm is None:
            return {app.rms.name: app.rms}
        return {g.name: g for g in pm.local(rank).globals.values()}


_ADAPTERS: dict[str, AppAdapter] = {"airfoil": AirfoilAdapter()}


def register_app(adapter: AppAdapter) -> None:
    """Make a new application servable (``JobSpec.app = adapter.name``)."""
    _ADAPTERS[adapter.name] = adapter


def app_adapter(name: str) -> AppAdapter:
    try:
        return _ADAPTERS[name]
    except KeyError:
        raise ServeError(
            f"unknown app {name!r}; servable apps: {sorted(_ADAPTERS)}"
        ) from None


class SimulationSession:
    """One warm (app state, initial snapshot) pair shared by matching jobs."""

    def __init__(self, key: str, adapter: AppAdapter, state: Any, nranks: int):
        self.key = key
        self.adapter = adapter
        self.state = state
        self.nranks = nranks
        self.initial = adapter.snapshot(state, nranks)
        #: scheduler-side exclusivity: one job at a time per session
        self.lock = asyncio.Lock()
        self.jobs_served = 0

    def reset(self) -> None:
        """Restore the initial data in place (called from the worker thread)."""
        self.adapter.restore(self.state, self.nranks, self.initial)


class SessionCache:
    """session_key -> warm :class:`SimulationSession`, built on first use."""

    def __init__(self) -> None:
        self._sessions: dict[str, SimulationSession] = {}
        self._build_locks: dict[str, asyncio.Lock] = {}

    def peek(self, key: str) -> SimulationSession | None:
        return self._sessions.get(key)

    def busy(self, key: str) -> bool:
        """True when the key's session exists and a job currently holds it."""
        sess = self._sessions.get(key)
        return sess is not None and sess.lock.locked()

    async def get(self, spec: JobSpec) -> SimulationSession:
        """Fetch the warm session for ``spec``, building it off-loop if cold."""
        key = spec.session_key()
        sess = self._sessions.get(key)
        if sess is not None:
            return sess
        lock = self._build_locks.setdefault(key, asyncio.Lock())
        async with lock:
            sess = self._sessions.get(key)
            if sess is None:
                adapter = app_adapter(spec.app)
                state = await asyncio.to_thread(adapter.build, spec)
                sess = SimulationSession(key, adapter, state, spec.nranks)
                self._sessions[key] = sess
        return sess

    def stats(self) -> dict[str, Any]:
        return {
            "sessions": len(self._sessions),
            "jobs_served": {
                key: s.jobs_served for key, s in sorted(self._sessions.items())
            },
        }
