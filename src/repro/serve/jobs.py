"""Job model for the serving layer: specs, state machine, deterministic IDs.

A :class:`JobSpec` describes *what* to simulate (app, mesh/deck parameters,
rank count, length) and *how* the service may treat it (tenant, priority,
preemptibility, checkpoint cadence, fault-retry budget).  A :class:`Job` is
one accepted submission: the spec plus the live state machine the scheduler
drives::

    queued -> running -> completed
                |  \\-> failed
                |-> preempting -> preempted -> queued   (checkpoint resume)
    queued/preempted -> cancelled

Transitions are enforced — an illegal move raises
:class:`~repro.common.errors.ServeError` — so scheduler bugs surface as
typed errors instead of silently corrupted bookkeeping.

Job IDs are deterministic and seedable: given the service's ``id_seed`` and
the order of *accepted* submissions, every run mints the same IDs.  That
makes multi-job traces, checkpoint namespaces (the ID is the
:func:`repro.checkpoint.store.round_path` namespace) and test assertions
reproducible.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from repro.common.counters import PerfCounters
from repro.common.errors import ServeError

__all__ = ["JobSpec", "Job", "deterministic_job_id", "QUEUED", "RUNNING",
           "PREEMPTING", "PREEMPTED", "COMPLETED", "FAILED", "CANCELLED",
           "TERMINAL_STATES"]

QUEUED = "queued"
RUNNING = "running"
PREEMPTING = "preempting"
PREEMPTED = "preempted"
COMPLETED = "completed"
FAILED = "failed"
CANCELLED = "cancelled"

TERMINAL_STATES = frozenset({COMPLETED, FAILED, CANCELLED})

_ALLOWED: dict[str, frozenset] = {
    QUEUED: frozenset({RUNNING, CANCELLED}),
    RUNNING: frozenset({COMPLETED, FAILED, PREEMPTING}),
    # a preempt request can land just as the job finishes (or faults out):
    # preempting may therefore resolve to any outcome, not just preempted
    PREEMPTING: frozenset({PREEMPTED, COMPLETED, FAILED, CANCELLED}),
    PREEMPTED: frozenset({QUEUED, CANCELLED}),
    COMPLETED: frozenset(),
    FAILED: frozenset(),
    CANCELLED: frozenset(),
}


@dataclass
class JobSpec:
    """One simulation submission: application + deck/mesh parameters."""

    app: str = "airfoil"
    tenant: str = "default"
    #: larger wins; a queued job with higher priority than a running
    #: preemptible one triggers preemption when no worker is free
    priority: int = 0
    nranks: int = 1
    iterations: int = 10
    #: app-specific mesh/deck parameters (nx, ny, jitter, seed, method...)
    params: dict[str, Any] = field(default_factory=dict)
    #: preemptible jobs checkpoint every ``checkpoint_frequency`` loops and
    #: can be paused/resumed bitwise-identically; non-preemptible jobs never
    #: install a checkpoint manager and always run to completion
    preemptible: bool = True
    checkpoint_frequency: int = 10
    #: simulated-fault retries before the job is failed
    max_retries: int = 2
    #: optional :class:`~repro.resilience.faults.FaultPlan` injected into the
    #: job's simulated world (tests / chaos drills; not part of the wire spec)
    fault_plan: Any = None

    def __post_init__(self) -> None:
        if self.nranks < 1:
            raise ServeError("nranks must be >= 1")
        if self.iterations < 1:
            raise ServeError("iterations must be >= 1")
        if self.preemptible and self.checkpoint_frequency < 1:
            raise ServeError("preemptible jobs need checkpoint_frequency >= 1")
        if self.max_retries < 0:
            raise ServeError("max_retries must be >= 0")

    def session_key(self) -> str:
        """Stable key of the warm state this job can share (see serve.session).

        Everything that shapes the mesh/partition is in the key; run length,
        tenant and priority are not — jobs of any length share one warm
        session, which is what makes the cross-job plan cache hit.
        """
        items = ",".join(f"{k}={self.params[k]!r}" for k in sorted(self.params))
        return f"{self.app}/r{self.nranks}/{items}"


def deterministic_job_id(seed: int, tenant: str, seq: int, spec: JobSpec) -> str:
    """Mint the job ID: stable given (service seed, accepted-submission order)."""
    digest = hashlib.sha256(
        f"{seed}:{tenant}:{seq}:{spec.session_key()}:{spec.iterations}".encode()
    ).hexdigest()[:8]
    return f"{tenant}-{seq:05d}-{digest}"


class Job:
    """One accepted submission and its full service-side lifecycle."""

    def __init__(self, spec: JobSpec, job_id: str, seq: int):
        self.spec = spec
        self.job_id = job_id
        self.seq = seq
        self.state = QUEUED
        #: asks the running attempt to stop at its next flushed checkpoint
        #: round; read from the worker thread, set from the scheduler
        self.preempt_requested = threading.Event()
        self.cancel_requested = False
        self.attempts = 0
        self.preemptions = 0
        self.resumes = 0
        self.retries = 0
        self.rounds_flushed = 0
        self.last_resume_round: int | None = None
        self.result: Any = None
        self.error: BaseException | None = None
        self.counters = PerfCounters()
        self.submitted_at = time.perf_counter()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self._flush_lock = threading.Lock()
        self._done = threading.Event()

    # -- state machine ---------------------------------------------------------

    def transition(self, new_state: str) -> None:
        if new_state not in _ALLOWED:
            raise ServeError(f"unknown job state {new_state!r}")
        if new_state not in _ALLOWED[self.state]:
            raise ServeError(
                f"job {self.job_id}: illegal transition {self.state} -> {new_state}"
            )
        self.state = new_state
        if new_state in TERMINAL_STATES:
            self.finished_at = time.perf_counter()
            self._done.set()

    @property
    def done(self) -> bool:
        return self.state in TERMINAL_STATES

    def wait(self, timeout: float | None = None) -> bool:
        """Block (a thread, not the event loop) until the job is terminal."""
        return self._done.wait(timeout)

    # -- metrics ---------------------------------------------------------------

    def note_round_flushed(self) -> None:
        """Called from worker threads each time a checkpoint round hits disk."""
        with self._flush_lock:
            self.rounds_flushed += 1

    @property
    def latency(self) -> float | None:
        """Submit-to-terminal wall seconds (None while still in flight)."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe view for the status API / dashboard / CLI."""
        return {
            "job_id": self.job_id,
            "tenant": self.spec.tenant,
            "app": self.spec.app,
            "state": self.state,
            "priority": self.spec.priority,
            "nranks": self.spec.nranks,
            "iterations": self.spec.iterations,
            "attempts": self.attempts,
            "preemptions": self.preemptions,
            "resumes": self.resumes,
            "retries": self.retries,
            "rounds_flushed": self.rounds_flushed,
            "last_resume_round": self.last_resume_round,
            "latency_seconds": self.latency,
            "plan_hits": self.counters.plan_hits,
            "plan_misses": self.counters.plan_misses,
            "error": repr(self.error) if self.error is not None else None,
        }

    def __repr__(self) -> str:
        return f"Job({self.job_id!r}, state={self.state!r}, tenant={self.spec.tenant!r})"
