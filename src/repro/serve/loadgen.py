"""Multi-tenant load generator for the serving layer (CLI demo + bench).

:func:`run_load` drives one :class:`~repro.serve.api.ServeService` through a
repeatable serving scenario:

* ``tenants`` tenants each submit ``jobs_per_tenant`` jobs over a small set
  of mesh decks, so several warm sessions keep the whole worker pool busy
  while same-deck jobs replay each other's compiled plans;
* clients handle typed backpressure (:class:`~repro.common.errors.`
  ``AdmissionRejected``) with retry/backoff — under-provisioned queue
  limits slow submission down but never lose a job;
* one deliberately long job is preempted mid-run once it is observed
  running, then resumes from its checkpoint round and completes — the
  deterministic preempt→resume the acceptance gate requires;
* a late wave of high-priority jobs exercises the scheduler's
  priority-preemption policy opportunistically.

The returned report is plain JSON-safe data: throughput, latency
quantiles, preemption/resume/retry counts, backpressure retries, plan-hit
rate and warm-job counts — the bench script writes it out verbatim.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any

from repro.common.errors import AdmissionRejected
from repro.serve.api import ServeService
from repro.serve.jobs import JobSpec

__all__ = ["run_load", "default_decks"]


def default_decks() -> list[dict[str, Any]]:
    """Four small distinct meshes: four warm sessions to fill a 4-worker pool."""
    return [
        {"nx": 14, "ny": 10},
        {"nx": 16, "ny": 11},
        {"nx": 18, "ny": 12},
        {"nx": 15, "ny": 13},
    ]


def _quantile(sorted_vals: list[float], q: float) -> float:
    if not sorted_vals:
        return 0.0
    idx = min(len(sorted_vals) - 1, max(0, round(q * (len(sorted_vals) - 1))))
    return sorted_vals[idx]


async def run_load(
    service: ServeService,
    *,
    tenants: int = 3,
    jobs_per_tenant: int = 8,
    iterations: int = 12,
    checkpoint_frequency: int = 10,
    long_iterations: int = 150,
    decks: list[dict[str, Any]] | None = None,
    high_priority_wave: bool = True,
    preempt_timeout: float = 30.0,
) -> dict[str, Any]:
    """Run the scenario against a started ``service``; returns the report."""
    decks = decks if decks is not None else default_decks()
    tenant_names = [f"tenant{chr(ord('a') + i)}" for i in range(tenants)]
    admission_retries = 0
    t0 = time.perf_counter()

    async def submit_with_retry(spec: JobSpec) -> str:
        nonlocal admission_retries
        while True:
            try:
                return await service.submit(spec)
            except AdmissionRejected:
                # typed backpressure: back off and retry — never drop the job
                admission_retries += 1
                await asyncio.sleep(0.01)

    job_ids: list[str] = []

    # the preemption target: long enough to be observed running and asked to
    # yield, on its own deck so it doesn't serialise the short jobs
    long_spec = JobSpec(
        tenant=tenant_names[0],
        iterations=long_iterations,
        params={"nx": 21, "ny": 14},
        checkpoint_frequency=checkpoint_frequency,
    )
    long_id = await submit_with_retry(long_spec)
    job_ids.append(long_id)

    # main wave: every tenant, decks round-robin, base priority
    for t_idx, tenant in enumerate(tenant_names):
        count = jobs_per_tenant - 1 if t_idx == 0 else jobs_per_tenant
        if high_priority_wave:
            count -= 1
        for k in range(count):
            deck = decks[(t_idx + k) % len(decks)]
            job_ids.append(
                await submit_with_retry(
                    JobSpec(
                        tenant=tenant,
                        iterations=iterations,
                        params=dict(deck),
                        checkpoint_frequency=checkpoint_frequency,
                    )
                )
            )

    # deterministic preempt -> resume: wait for the long job to run, yield it
    preempted = False
    deadline = time.perf_counter() + preempt_timeout
    while time.perf_counter() < deadline:
        state = service.status(long_id)["state"]
        if state == "running" and service.preempt(long_id):
            preempted = True
            break
        if state in ("completed", "failed", "cancelled"):
            break
        await asyncio.sleep(0.002)

    # late high-priority wave: arrives while the pool is saturated, so the
    # scheduler may preempt a lower-priority victim to make room
    if high_priority_wave:
        for t_idx, tenant in enumerate(tenant_names):
            deck = decks[t_idx % len(decks)]
            job_ids.append(
                await submit_with_retry(
                    JobSpec(
                        tenant=tenant,
                        priority=5,
                        iterations=iterations,
                        params=dict(deck),
                        checkpoint_frequency=checkpoint_frequency,
                    )
                )
            )

    for jid in job_ids:
        await service.result(jid, timeout=300.0)
    wall = time.perf_counter() - t0

    jobs = [service.status(jid) for jid in job_ids]
    lost = [j["job_id"] for j in jobs if j["state"] != "completed"]
    latencies = sorted(
        j["latency_seconds"] for j in jobs if j["latency_seconds"] is not None
    )
    stats = service.stats()
    long_job = service.status(long_id)
    per_tenant: dict[str, dict[str, Any]] = {}
    for j in jobs:
        rec = per_tenant.setdefault(
            j["tenant"], {"jobs": 0, "preemptions": 0, "plan_misses": 0}
        )
        rec["jobs"] += 1
        rec["preemptions"] += j["preemptions"]
        rec["plan_misses"] += j["plan_misses"]

    return {
        "tenants": tenants,
        "jobs_submitted": len(job_ids),
        "jobs_completed": sum(1 for j in jobs if j["state"] == "completed"),
        "lost_jobs": lost,
        "workers": service.scheduler.workers,
        "wall_seconds": wall,
        "throughput_jobs_per_s": len(job_ids) / wall if wall > 0 else 0.0,
        "latency_seconds": {
            "p50": _quantile(latencies, 0.50),
            "p95": _quantile(latencies, 0.95),
            "p99": _quantile(latencies, 0.99),
            "max": latencies[-1] if latencies else 0.0,
        },
        "preempt_requested": preempted,
        "long_job": {
            "job_id": long_id,
            "state": long_job["state"],
            "preemptions": long_job["preemptions"],
            "resumes": long_job["resumes"],
            "last_resume_round": long_job["last_resume_round"],
        },
        "scheduler": stats["scheduler"],
        "admission_retries": admission_retries,
        "rejections": stats["rejections"],
        "plan_cache": {
            **stats["plan_cache"],
            "cross_job_hit_rate": stats["cross_job_plan_hit_rate"],
            "fully_warm_jobs": sum(1 for j in jobs if j["plan_misses"] == 0),
        },
        "sessions": stats["sessions"],
        "per_tenant": per_tenant,
    }
