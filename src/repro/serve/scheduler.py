"""Scheduler: bounded worker pool, checkpoint preemption, fault retry.

The scheduler is an asyncio dispatcher over blocking simulation attempts:
each attempt runs in a worker thread (``asyncio.to_thread``) while the event
loop keeps admitting, dispatching, preempting and reporting.

**Preemption protocol.**  A preemptible job runs with one
:class:`~repro.checkpoint.manager.CheckpointManager` per rank flushing
job-namespaced :class:`~repro.checkpoint.store.FileStore` rounds every
``checkpoint_frequency`` loops.  A preempt request sets a flag the job's
ranks poll at exactly one place: *right after a round is flushed*.  The
first rank to observe it raises :class:`JobPreempted`; in a multi-rank
world the simulated-MPI executor marks that rank failed so peers unwind
promptly (the same prompt-failure path resilience uses), and the attempt
returns with every flushed round intact.  Resume re-runs the job with a
:class:`~repro.checkpoint.manager.RecoveryReplayer` fast-forwarding to the
newest round completed by *all* ranks — so a preempted-and-resumed job is
bitwise identical to an uninterrupted one (PR-1's recovery guarantee, here
in service of fair scheduling rather than fault tolerance).

**Priority preemption policy.**  When no worker is free and a queued job
outranks a running preemptible job, the lowest-priority running victim is
asked to yield.  Its re-queued continuation bypasses admission control (the
work is already admitted and on disk).

**Fault retry.**  Attempts that die of *simulated* faults (injected kills,
lost messages, deadlock timeouts) are retried with
:class:`~repro.resilience.detection.RetryPolicy` backoff up to the spec's
``max_retries`` — and since retries run under the same checkpoint
machinery, a retry also resumes from the latest complete round instead of
losing the job's progress.  Organic errors propagate and fail the job.
"""

from __future__ import annotations

import asyncio
import time
from pathlib import Path
from typing import Any

from repro.checkpoint.manager import CheckpointManager, RecoveryReplayer
from repro.checkpoint.store import (
    FileStore,
    latest_common_round,
    round_glob,
    round_path,
)
from repro.common.errors import ResilienceError, ServeError
from repro.common.profiling import counters_scope
from repro.ops import lazy as _ops_lazy
from repro.resilience.detection import RetryPolicy
from repro.serve.jobs import (
    CANCELLED,
    COMPLETED,
    FAILED,
    PREEMPTED,
    PREEMPTING,
    QUEUED,
    RUNNING,
    Job,
)
from repro.serve.queue import FairShareQueue
from repro.serve.session import SessionCache, SimulationSession
from repro.simmpi.comm import DeadlockError
from repro.simmpi.executor import World, run_spmd
from repro.telemetry import tracer as _trace

__all__ = ["JobPreempted", "Scheduler", "run_attempt"]


class JobPreempted(ServeError):
    """Raised inside a rank to unwind a job after its checkpoint flushed."""


def _instant(name: str, **attrs: Any) -> None:
    trc = _trace.ACTIVE
    if trc is not None:
        trc.instant(name, "serve", **attrs)


def run_attempt(
    job: Job, session: SimulationSession, ckpt_dir: Path, executor: str = "thread"
) -> tuple[str, Any]:
    """One blocking attempt at ``job`` on its warm session (worker thread).

    Returns ``("done", per-rank results)``, ``("preempted", None)`` or
    ``("fault", cause)``; organic errors propagate.  The session must be
    held exclusively by the caller.

    ``executor="mp"`` (experimental) runs eligible attempts on real worker
    processes via :func:`repro.mp.run_spmd_mp`.  Eligible means no
    checkpoint cadence and no fault plan: the preempt flag and injected
    faults live in the parent process and would be invisible to forked
    workers, so preemptible and fault-injected jobs keep the thread
    executor regardless.  A worker that dies organically surfaces as a
    fault outcome and is retried like any other.
    """
    spec = job.spec
    adapter, state = session.adapter, session.state
    nranks = spec.nranks
    jid = job.job_id
    frequency = spec.checkpoint_frequency if spec.preemptible else None

    # resume from the newest round every rank completed, if any attempt of
    # this job flushed one; a fresh job (or one preempted before its first
    # flush) starts from scratch — bitwise the same, just slower
    resume = None
    if job.preemptions or job.retries:
        resume = latest_common_round(ckpt_dir, nranks, job_id=jid)
    existing = [int(p.stem.split("-n")[1]) for p in round_glob(ckpt_dir, job_id=jid)]
    base = max(existing) + 1 if existing else 0
    next_round = {r: base for r in range(nranks)}

    session.reset()
    job.attempts += 1
    if resume is not None:
        job.resumes += 1
        job.last_resume_round = resume[0]
    session.jobs_served += 1

    if spec.fault_plan is not None:
        spec.fault_plan.begin_attempt()
    use_mp = executor == "mp" and frequency is None and spec.fault_plan is None
    if use_mp:
        from repro.mp import MpWorld, run_spmd_mp

        world: Any = MpWorld(nranks)
        run = lambda body: run_spmd_mp(nranks, body, world=world)  # noqa: E731
    else:
        world = World(nranks, fault_plan=spec.fault_plan)
        run = lambda body: run_spmd(nranks, body, world=world)  # noqa: E731

    def rank_body(comm):
        rank = comm.rank
        replayer = None
        manager = None
        if resume is not None:
            store = FileStore.load(round_path(ckpt_dir, rank, resume[0], job_id=jid))
            replayer = RecoveryReplayer(
                store, adapter.datasets(rank, state), adapter.globals_(rank, state)
            )
            replayer.install(local=True)
        if frequency is not None:

            def flush_round(mgr, _rank=rank):
                round_no = next_round[_rank]
                mgr.store.path = round_path(ckpt_dir, _rank, round_no, job_id=jid)
                mgr.store.flush()
                next_round[_rank] = round_no + 1
                job.note_round_flushed()
                mgr.restart(
                    FileStore(round_path(ckpt_dir, _rank, round_no + 1, job_id=jid))
                )
                # the one preemption point: a complete round is on disk, so
                # yielding here can never lose progress
                if job.preempt_requested.is_set():
                    raise JobPreempted(
                        f"job {jid} rank {_rank} yielded after round {round_no}"
                    )

            manager = CheckpointManager(
                FileStore(round_path(ckpt_dir, rank, base, job_id=jid)),
                frequency=frequency,
                on_complete=flush_round,
                job_id=jid,
            )
            if replayer is not None:
                # carry the recovered global series forward so a later
                # resume can replay globals from loop 0
                for name, series in replayer.store.globals.items():
                    for idx, val in series:
                        manager.store.record_global(name, idx, val)
            manager.install(local=True)
        try:
            result = adapter.run(comm, state, spec)
            # the job result is an observation point: any OPS loops still
            # queued by the lazy runtime on this rank thread must land
            # before the result is returned (and before this pool thread
            # is reused for another job)
            _ops_lazy.flush_point("serve_job_result")
            return result
        finally:
            if manager is not None:
                manager.remove()
            if replayer is not None:
                replayer.remove()

    trc = _trace.ACTIVE
    span = None
    if trc is not None:
        span = trc.begin(
            "serve_job", "serve",
            job=jid, tenant=spec.tenant, app=spec.app, nranks=nranks,
            attempt=job.attempts, resumed_round=resume[0] if resume else None,
        )
    try:
        with counters_scope(job.counters):
            try:
                results = run(rank_body)
            finally:
                if nranks > 1 or use_mp:
                    job.counters.merge(world.total_counters())
        return ("done", results)
    except JobPreempted:
        # single-rank jobs raise straight through run_spmd's inline path
        return ("preempted", None)
    except (RuntimeError, DeadlockError, ResilienceError) as err:
        cause = err.__cause__ if isinstance(err, RuntimeError) else err
        if isinstance(cause, JobPreempted):
            return ("preempted", None)
        if isinstance(cause, (ResilienceError, DeadlockError)):
            return ("fault", cause)
        raise
    finally:
        if span is not None:
            trc.end(span)


class Scheduler:
    """Asyncio dispatcher: queue -> bounded workers, with preemption."""

    def __init__(
        self,
        queue: FairShareQueue,
        sessions: SessionCache,
        *,
        workers: int = 4,
        ckpt_dir: str | Path,
        preemption: bool = True,
        retry: RetryPolicy | None = None,
        executor: str = "thread",
    ):
        if workers < 1:
            raise ServeError("worker pool size must be >= 1")
        if executor not in ("thread", "mp"):
            raise ServeError(f"unknown executor {executor!r} (thread or mp)")
        self.queue = queue
        self.sessions = sessions
        self.workers = workers
        self.executor = executor
        self.ckpt_dir = Path(ckpt_dir)
        self.ckpt_dir.mkdir(parents=True, exist_ok=True)
        self.preemption = preemption
        self.retry = retry if retry is not None else RetryPolicy(base_delay=0.01)
        self._free = workers
        self._running: dict[str, Job] = {}
        self._wake = asyncio.Event()
        self._stopping = False
        self._dispatcher: asyncio.Task | None = None
        self._job_tasks: set[asyncio.Task] = set()
        self.stats = {
            "completed": 0, "failed": 0, "cancelled": 0,
            "preemptions": 0, "resumes": 0, "retries": 0,
        }

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        if self._dispatcher is None:
            self._stopping = False
            self._dispatcher = asyncio.create_task(self._dispatch_loop())

    async def stop(self) -> None:
        """Stop dispatching and wait for in-flight jobs to finish."""
        self._stopping = True
        self._wake.set()
        if self._dispatcher is not None:
            await self._dispatcher
            self._dispatcher = None
        if self._job_tasks:
            await asyncio.gather(*self._job_tasks)

    def poke(self) -> None:
        """Wake the dispatcher (new submission, external preempt, ...)."""
        self._wake.set()

    @property
    def running_jobs(self) -> list[Job]:
        return list(self._running.values())

    # -- dispatch --------------------------------------------------------------

    def _eligible(self, job: Job) -> bool:
        # skip jobs whose warm session is held by a running job; they would
        # only pin a worker while waiting on the session lock
        return not self.sessions.busy(job.spec.session_key())

    async def _dispatch_loop(self) -> None:
        while not self._stopping:
            dispatched = False
            if self._free > 0:
                job = self.queue.pop(eligible=self._eligible)
                if job is not None:
                    self._free -= 1
                    task = asyncio.create_task(self._run_job(job))
                    self._job_tasks.add(task)
                    task.add_done_callback(self._job_tasks.discard)
                    dispatched = True
            if not dispatched:
                if self.preemption and self._free == 0:
                    self._maybe_preempt()
                try:
                    await asyncio.wait_for(self._wake.wait(), timeout=0.05)
                except (asyncio.TimeoutError, TimeoutError):
                    pass
                self._wake.clear()

    def _maybe_preempt(self) -> None:
        """Yield the weakest running job to a strictly stronger queued one."""
        top = self.queue.max_pending_priority()
        if top is None:
            return
        victims = [
            j for j in self._running.values()
            if j.spec.preemptible
            and j.state == RUNNING
            and j.spec.priority < top
            and not j.preempt_requested.is_set()
        ]
        if not victims:
            return
        victim = min(victims, key=lambda j: (j.spec.priority, j.seq))
        self.request_preempt(victim)

    def request_preempt(self, job: Job) -> bool:
        """Ask a running job to yield at its next flushed checkpoint round."""
        if job.state != RUNNING or not job.spec.preemptible:
            return False
        job.transition(PREEMPTING)
        job.preempt_requested.set()
        _instant(
            "job_preempt_request", job=job.job_id, tenant=job.spec.tenant,
        )
        return True

    # -- one job, all attempts -------------------------------------------------

    async def _run_job(self, job: Job) -> None:
        try:
            session = await self.sessions.get(job.spec)
            async with session.lock:
                await self._attempt_until_settled(job, session)
        except Exception as err:  # organic failure: surface on the job
            job.error = err
            if job.state in (RUNNING, PREEMPTING):
                job.transition(FAILED)
            self.stats["failed"] += 1
            _instant("job_failed", job=job.job_id, error=type(err).__name__)
        finally:
            self._running.pop(job.job_id, None)
            self.queue.release(job.spec.tenant)
            self._free += 1
            self._wake.set()

    async def _attempt_until_settled(self, job: Job, session) -> None:
        """Run attempts (with fault retries) until the job settles or yields."""
        job.transition(RUNNING)
        if job.started_at is None:
            job.started_at = time.perf_counter()
        self._running[job.job_id] = job
        _instant(
            "job_started", job=job.job_id, tenant=job.spec.tenant,
            attempt=job.attempts + 1,
        )
        while True:
            resumes_before = job.resumes
            outcome, payload = await asyncio.to_thread(
                run_attempt, job, session, self.ckpt_dir, self.executor
            )
            self.stats["resumes"] += job.resumes - resumes_before
            if outcome == "done":
                job.result = payload
                job.transition(COMPLETED)  # from RUNNING or PREEMPTING
                self.stats["completed"] += 1
                self._cleanup_rounds(job)
                _instant(
                    "job_completed", job=job.job_id, tenant=job.spec.tenant,
                    attempts=job.attempts, preemptions=job.preemptions,
                )
                return
            if outcome == "preempted":
                job.preemptions += 1
                job.preempt_requested.clear()
                self.stats["preemptions"] += 1
                job.transition(PREEMPTED)
                _instant(
                    "job_preempted", job=job.job_id, tenant=job.spec.tenant,
                    rounds_flushed=job.rounds_flushed,
                )
                if job.cancel_requested:
                    job.transition(CANCELLED)
                    self.stats["cancelled"] += 1
                    self._cleanup_rounds(job)
                else:
                    job.transition(QUEUED)
                    self.queue.requeue(job)
                return
            # simulated fault: retry with backoff, resuming from checkpoints
            cause = payload
            job.retries += 1
            self.stats["retries"] += 1
            _instant(
                "job_retry", job=job.job_id, tenant=job.spec.tenant,
                retry=job.retries, cause=type(cause).__name__,
            )
            if job.retries > job.spec.max_retries:
                job.error = cause
                job.transition(FAILED)
                self.stats["failed"] += 1
                _instant("job_failed", job=job.job_id, error=type(cause).__name__)
                return
            delays = self.retry.delays()
            if delays:
                await asyncio.sleep(delays[min(job.retries - 1, len(delays) - 1)])

    def _cleanup_rounds(self, job: Job) -> None:
        """Drop a settled job's checkpoint rounds (its namespace only)."""
        for p in round_glob(self.ckpt_dir, job_id=job.job_id):
            try:
                p.unlink()
            except OSError:
                pass
