"""CLI for the serving layer: ``python -m repro.serve demo``.

Runs the multi-tenant load scenario from :mod:`repro.serve.loadgen` against
an in-process service and prints a human summary; ``--json`` and
``--trace`` write the machine-readable report and the Chrome trace of the
run (the same artifacts the CI serve-smoke job uploads).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import tempfile
from pathlib import Path

from repro.serve.api import ServeService
from repro.serve.loadgen import run_load
from repro.telemetry import tracer as _trace
from repro.telemetry.export import write_chrome_trace


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="simulation-as-a-service demo on the simulated runtime",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    demo = sub.add_parser("demo", help="run the multi-tenant serving demo")
    demo.add_argument("--tenants", type=int, default=3)
    demo.add_argument("--jobs", type=int, default=8, help="jobs per tenant")
    demo.add_argument("--workers", type=int, default=4)
    demo.add_argument("--iterations", type=int, default=12)
    demo.add_argument(
        "--tenant-quota", type=int, default=5,
        help="pending-job quota per tenant (small by default so the demo "
             "exercises typed backpressure and client retry)",
    )
    demo.add_argument("--max-depth", type=int, default=48)
    demo.add_argument("--id-seed", type=int, default=0)
    demo.add_argument("--json", type=Path, default=None,
                      help="write the full load report as JSON")
    demo.add_argument("--trace", type=Path, default=None,
                      help="write a chrome://tracing view of the run")
    return parser


async def _demo(args: argparse.Namespace) -> int:
    with tempfile.TemporaryDirectory(prefix="repro-serve-") as ckpt_dir:
        service = ServeService(
            workers=args.workers,
            max_depth=args.max_depth,
            tenant_quota=args.tenant_quota,
            ckpt_dir=ckpt_dir,
            id_seed=args.id_seed,
        )
        async with service:
            report = await run_load(
                service,
                tenants=args.tenants,
                jobs_per_tenant=args.jobs,
                iterations=args.iterations,
            )
        trc = _trace.ACTIVE

    lat = report["latency_seconds"]
    plan = report["plan_cache"]
    print(
        f"serve demo: {report['jobs_completed']}/{report['jobs_submitted']} jobs "
        f"completed on {report['workers']} workers "
        f"({report['tenants']} tenants, {report['wall_seconds']:.2f}s, "
        f"{report['throughput_jobs_per_s']:.1f} jobs/s)"
    )
    print(
        f"  latency  p50={lat['p50'] * 1e3:.0f}ms p95={lat['p95'] * 1e3:.0f}ms "
        f"p99={lat['p99'] * 1e3:.0f}ms"
    )
    print(
        f"  preempt  {report['scheduler']['preemptions']} preemption(s), "
        f"{report['scheduler']['resumes']} resume(s); long job "
        f"{report['long_job']['state']} after "
        f"{report['long_job']['preemptions']} preemption(s) "
        f"(resumed from round {report['long_job']['last_resume_round']})"
    )
    print(
        f"  backpressure  {report['admission_retries']} client retries, "
        f"rejections={report['rejections']}"
    )
    print(
        f"  plan cache  hit rate {plan['cross_job_hit_rate']:.1%}, "
        f"{plan['fully_warm_jobs']} fully-warm job(s), "
        f"{report['sessions']['sessions']} warm session(s)"
    )
    if report["lost_jobs"]:
        print(f"  LOST JOBS: {report['lost_jobs']}", file=sys.stderr)

    if args.json is not None:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"  report -> {args.json}")
    if args.trace is not None and trc is not None:
        args.trace.parent.mkdir(parents=True, exist_ok=True)
        write_chrome_trace(args.trace, trc.events())
        print(f"  trace  -> {args.trace}")
    return 1 if report["lost_jobs"] else 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "demo":
        return asyncio.run(_demo(args))
    return 2


if __name__ == "__main__":
    sys.exit(main())
