"""repro — reproduction of the CLUSTER 2015 OP2/OPS active-libraries paper.

The package provides:

* :mod:`repro.op2` — an OP2-style unstructured-mesh active library
  (sets, maps, dats, ``op_par_loop`` with access descriptors, two-level
  colouring, partitioning, renumbering, halo exchanges).
* :mod:`repro.ops` — an OPS-style multi-block structured-mesh library
  (blocks, dats, stencils, ``ops_par_loop``, inter-block halos, runtime
  stencil checking).
* :mod:`repro.translator` — a Python source-to-source translator that
  generates human-readable backend implementations from the high-level API,
  including CUDA-C text with AoS/SoA/staging memory strategies (paper Fig 7).
* :mod:`repro.checkpoint` — the access-execute driven checkpointing planner
  and speculative periodic-sequence detector (paper Fig 8).
* :mod:`repro.simmpi` — a deterministic in-process MPI simulator used as the
  distributed-memory substrate.
* :mod:`repro.machine` / :mod:`repro.perfmodel` — machine catalog and
  roofline/scaling models used to regenerate the paper's evaluation figures.
* :mod:`repro.apps` — the proxy applications: Airfoil (OP2), CloverLeaf 2D
  (OPS) and a synthetic Hydra-like industrial proxy (OP2), each with a
  hand-coded reference implementation for original-vs-generated comparisons.
"""

from repro.version import __version__

__all__ = ["__version__"]
