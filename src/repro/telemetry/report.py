"""Trace analysis: per-rank/per-kernel breakdown, critical path, halo wait.

Consumes either exporter format (Chrome trace JSON or JSONL — detected by
content) and renders the text report behind
``python -m repro.telemetry report <trace>``:

* a per-rank timeline summary (par_loop compute, halo-exchange time, the
  mpi-recv/barrier *wait* portion inside and outside halo exchanges,
  checkpoint time),
* a per-kernel table across ranks (calls, total, mean, p95, and which rank
  spent longest in the kernel),
* critical-path attribution: the busiest rank sets the run's pace; the
  report names it and says how much of its time was halo wait — the first
  question a stalled distributed run raises.
"""

from __future__ import annotations

import bisect
import json
from pathlib import Path
from typing import Sequence

from repro.common.errors import TelemetryError
from repro.telemetry.export import _quantile

__all__ = ["load_trace", "load_traces", "merged_chrome_trace", "render_report"]

#: span names counted as communication *wait* (blocked, not computing)
_WAIT_SPANS = ("mpi_recv", "mpi_barrier")


def _from_chrome(obj: dict) -> list[dict]:
    events = []
    for ev in obj.get("traceEvents", []):
        ph = ev.get("ph")
        if ph == "X":
            events.append(
                {
                    "kind": "span",
                    "name": ev["name"],
                    "cat": ev.get("cat", ""),
                    "ts": ev["ts"] / 1e6,
                    "dur": ev.get("dur", 0.0) / 1e6,
                    "rank": ev.get("pid", 0),
                    "tid": ev.get("tid", 0),
                    "args": ev.get("args", {}),
                }
            )
        elif ph == "i":
            events.append(
                {
                    "kind": "instant",
                    "name": ev["name"],
                    "cat": ev.get("cat", ""),
                    "ts": ev["ts"] / 1e6,
                    "dur": 0.0,
                    "rank": ev.get("pid", 0),
                    "tid": ev.get("tid", 0),
                    "args": ev.get("args", {}),
                }
            )
    return events


def _from_jsonl(lines: list[str]) -> list[dict]:
    events = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        rec = json.loads(line)
        kind = rec.get("type")
        if kind not in ("span", "instant"):
            continue  # metrics trailer etc.
        events.append(
            {
                "kind": kind,
                "name": rec["name"],
                "cat": rec.get("cat", ""),
                "ts": rec["ts"],
                "dur": rec.get("dur", 0.0),
                "rank": rec.get("rank", 0),
                "tid": rec.get("tid", 0),
                "pid": rec.get("pid"),
                "args": rec.get("args", {}),
            }
        )
    return events


def load_trace(path: str | Path) -> list[dict]:
    """Load a trace file in either exporter format into normalised records.

    Records are dicts with ``kind`` ("span"/"instant"), ``name``, ``cat``,
    ``ts``/``dur`` in seconds, ``rank``, ``tid`` and ``args``.
    """
    text = Path(path).read_text()
    stripped = text.lstrip()
    if not stripped:
        raise TelemetryError(f"{path}: empty trace file")
    try:
        if stripped.startswith("{") and "traceEvents" in text:
            return _from_chrome(json.loads(text))
        return _from_jsonl(text.splitlines())
    except (json.JSONDecodeError, KeyError, TypeError) as err:
        raise TelemetryError(f"{path}: not a recognisable trace file: {err}") from err


def load_traces(paths: "Sequence[str | Path]") -> list[dict]:
    """Load and concatenate several trace files into one record list.

    The multi-process executor writes one JSONL file per worker
    (``trace-rank<NNN>.jsonl``, records stamped with the worker's OS pid);
    this merges them so the report covers the whole world.  Records keep
    their per-file rank/pid tags, so per-rank breakdowns stay correct.
    """
    if not paths:
        raise TelemetryError("no trace files given")
    merged: list[dict] = []
    for path in paths:
        merged.extend(load_trace(path))
    return merged


def merged_chrome_trace(records: list[dict]) -> dict:
    """A Chrome trace over merged multi-process records.

    Unlike :func:`repro.telemetry.export.chrome_trace` (pid = simulated
    rank), the merged view uses **pid = the real worker OS process** and
    **tid = the rank it hosted**, so a multi-process run renders as the
    processes that actually existed.  Records without a pid stamp (the
    in-process executor) fall back to pid = rank.

    Timestamps are each process's tracer epoch; within one worker they are
    coherent, across workers they are approximately aligned (all tracers
    start at fork time).
    """
    trace_events: list[dict] = []
    procs: dict[int, set[int]] = {}
    for rec in records:
        pid = rec.get("pid")
        if pid is None:
            pid = rec["rank"]
        tid = rec["rank"]
        procs.setdefault(pid, set()).add(tid)
        base = {
            "name": rec["name"],
            "cat": rec.get("cat", ""),
            "ts": round(rec["ts"] * 1e6, 3),
            "pid": pid,
            "tid": tid,
            "args": rec.get("args", {}),
        }
        if rec["kind"] == "span":
            base["ph"] = "X"
            base["dur"] = round(rec.get("dur", 0.0) * 1e6, 3)
        else:
            base["ph"] = "i"
            base["s"] = "t"
        trace_events.append(base)
    for pid, ranks in sorted(procs.items()):
        label = ", ".join(f"rank {r}" for r in sorted(ranks))
        trace_events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "args": {"name": f"worker {pid} ({label})"},
            }
        )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def _contained_wait(waits: list[dict], containers: list[dict]) -> float:
    """Seconds of wait spans lying inside any container span (same rank sweep)."""
    if not waits or not containers:
        return 0.0
    spans = sorted(containers, key=lambda e: e["ts"])
    starts = [s["ts"] for s in spans]
    total = 0.0
    for w in waits:
        i = bisect.bisect_right(starts, w["ts"]) - 1
        if i >= 0:
            c = spans[i]
            if w["ts"] + w["dur"] <= c["ts"] + c["dur"] + 1e-12:
                total += w["dur"]
    return total


def _fmt_s(seconds: float) -> str:
    return f"{seconds:10.4f}"


def render_report(events: list[dict], *, top: int | None = None) -> str:
    """Render the per-rank / per-kernel breakdown of a loaded trace."""
    if not events:
        return "trace contains no events"

    ranks = sorted({e["rank"] for e in events})
    spans = [e for e in events if e["kind"] == "span"]
    instants = [e for e in events if e["kind"] == "instant"]
    t_lo = min(e["ts"] for e in events)
    t_hi = max(e["ts"] + e["dur"] for e in events)

    lines: list[str] = []
    lines.append(
        f"trace: {len(ranks)} rank(s), {len(spans)} spans, "
        f"{len(instants)} instants, wall {t_hi - t_lo:.4f} s"
    )

    # -- per-rank timeline summary ------------------------------------------
    header = (
        f"{'rank':>4}{'wall[s]':>11}{'par_loop[s]':>13}{'halo[s]':>11}"
        f"{'halo-wait[s]':>14}{'mpi-wait[s]':>13}{'ckpt[s]':>11}{'events':>8}"
    )
    lines.append("")
    lines.append("per-rank timeline")
    lines.append(header)
    lines.append("-" * len(header))

    busy: dict[int, float] = {}
    halo_wait_of: dict[int, float] = {}
    for rank in ranks:
        revs = [e for e in events if e["rank"] == rank]
        rspans = [e for e in revs if e["kind"] == "span"]
        wall = max(e["ts"] + e["dur"] for e in revs) - min(e["ts"] for e in revs)
        par = sum(e["dur"] for e in rspans if e["name"] == "par_loop")
        halos = [e for e in rspans if e["cat"] == "halo"]
        halo = sum(e["dur"] for e in halos)
        waits = [e for e in rspans if e["name"] in _WAIT_SPANS]
        halo_wait = _contained_wait(waits, halos)
        other_wait = sum(e["dur"] for e in waits) - halo_wait
        ckpt = sum(e["dur"] for e in rspans if e["cat"] == "checkpoint")
        busy[rank] = par + halo
        halo_wait_of[rank] = halo_wait
        lines.append(
            f"{rank:>4}{_fmt_s(wall)[-10:]:>11}{_fmt_s(par)[-12:]:>13}"
            f"{_fmt_s(halo)[-10:]:>11}{_fmt_s(halo_wait)[-13:]:>14}"
            f"{_fmt_s(other_wait)[-12:]:>13}{_fmt_s(ckpt)[-10:]:>11}{len(revs):>8}"
        )

    # -- per-kernel breakdown ------------------------------------------------
    kernels: dict[str, dict] = {}
    for e in spans:
        if e["name"] != "par_loop":
            continue
        key = str(e["args"].get("kernel") or e["args"].get("loop") or "?")
        k = kernels.setdefault(key, {"durs": [], "by_rank": {}})
        k["durs"].append(e["dur"])
        k["by_rank"][e["rank"]] = k["by_rank"].get(e["rank"], 0.0) + e["dur"]

    if kernels:
        ordered = sorted(
            kernels.items(), key=lambda kv: (-sum(kv[1]["durs"]), kv[0])
        )
        if top is not None:
            ordered = ordered[:top]
        lines.append("")
        lines.append("per-kernel breakdown (par_loop spans, all ranks)")
        khead = (
            f"{'kernel':<24}{'calls':>7}{'total[s]':>11}{'mean[ms]':>10}"
            f"{'p95[ms]':>9}{'slowest-rank':>14}"
        )
        lines.append(khead)
        lines.append("-" * len(khead))
        for name, k in ordered:
            durs = sorted(k["durs"])
            total = sum(durs)
            mean_ms = 1e3 * total / len(durs)
            p95_ms = 1e3 * _quantile(durs, 0.95)
            slowest = max(k["by_rank"].items(), key=lambda rv: (rv[1], -rv[0]))[0]
            lines.append(
                f"{name:<24}{len(durs):>7}{total:>11.4f}{mean_ms:>10.3f}"
                f"{p95_ms:>9.3f}{slowest:>14}"
            )

    # -- instant-event tallies ----------------------------------------------
    if instants:
        tally: dict[str, int] = {}
        for e in instants:
            tally[e["name"]] = tally.get(e["name"], 0) + 1
        parts = ", ".join(f"{name} x{n}" for name, n in sorted(tally.items()))
        lines.append("")
        lines.append(f"instant events: {parts}")

    # -- critical path --------------------------------------------------------
    crit = max(busy.items(), key=lambda rv: (rv[1], -rv[0]))[0]
    b = busy[crit]
    hw = halo_wait_of[crit]
    share = 100.0 * hw / b if b > 0 else 0.0
    lines.append("")
    lines.append(
        f"critical path: rank {crit} — {b:.4f} s busy "
        f"(slowest rank sets the pace); halo-wait {hw:.4f} s "
        f"({share:.1f}% of its busy time)"
    )
    return "\n".join(lines)
