"""Structured tracing, metrics export and timeline profiling.

Quickstart::

    from repro import telemetry

    with telemetry.tracing() as trc:
        app.run()
    telemetry.write_chrome_trace("trace.json", trc.events())

then load ``trace.json`` in ``chrome://tracing`` / Perfetto, or run
``python -m repro.telemetry report trace.json`` for a text breakdown.
"""

from repro.telemetry.export import (
    MetricsSnapshot,
    SpanStats,
    chrome_trace,
    counters_dict,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.telemetry.report import load_trace, render_report
from repro.telemetry.tracer import (
    DEFAULT_RING_SIZE,
    InstantEvent,
    SpanEvent,
    Tracer,
    active,
    disable,
    enable,
    tracing,
)

__all__ = [
    "Tracer",
    "SpanEvent",
    "InstantEvent",
    "DEFAULT_RING_SIZE",
    "active",
    "enable",
    "disable",
    "tracing",
    "chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "validate_chrome_trace",
    "counters_dict",
    "SpanStats",
    "MetricsSnapshot",
    "load_trace",
    "render_report",
    "summary",
]


def summary() -> str | None:
    """One-paragraph digest of the active tracer, or None when tracing is off.

    ``timing_report`` appends this so a traced run's text report says what
    was recorded and how to inspect it.
    """
    trc = active()
    if trc is None:
        return None
    events = trc.events()
    spans = sum(1 for ev in events if isinstance(ev, SpanEvent))
    instants = len(events) - spans
    ranks = sorted({ev.rank for ev in events})
    parts = [
        f"telemetry: {spans} spans, {instants} instants across "
        f"{len(ranks) or 1} rank(s)"
    ]
    snap = MetricsSnapshot.from_events(events)
    for name in ("par_loop", "halo_exchange", "mpi_recv", "mpi_barrier"):
        st = snap.spans.get(name)
        if st is not None:
            q = st.quantiles()
            parts.append(
                f"  {name:<14} x{st.count:<6} total {st.total_seconds:.4f} s  "
                f"p50 {q['p50'] * 1e3:.3f} ms  p95 {q['p95'] * 1e3:.3f} ms  "
                f"p99 {q['p99'] * 1e3:.3f} ms"
            )
    if trc.dropped_possible():
        parts.append("  (ring buffer reached capacity: oldest events dropped)")
    return "\n".join(parts)
