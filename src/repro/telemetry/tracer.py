"""Structured tracer: nestable spans and typed instant events, per thread.

The access-execute description of every parallel loop gives the runtime
enough semantic context to emit *meaningful* trace events — a span knows
its kernel, iteration set and descriptors, a halo exchange knows its bytes
moved — rather than the opaque timers of a generic profiler.  This module
is the recording half of :mod:`repro.telemetry`; exporters and the report
CLI live next door.

Design constraints (DESIGN.md "Telemetry"):

* **one branch when off** — instrumentation sites read the module global
  :data:`ACTIVE` and skip everything on ``None``; no event objects, no
  attribute formatting, no locks,
* **bounded per-thread ring buffers** — each thread (each simulated MPI
  rank runs on its own thread) records into its own ``deque(maxlen=...)``,
  so tracing never contends across ranks and memory stays bounded: when a
  ring fills, the *oldest* events fall off,
* **monotonic timestamps** — all times come from ``time.perf_counter``
  relative to the tracer's epoch, so spans order correctly even if the
  wall clock steps,
* **strict nesting** — :meth:`Tracer.end` must close the innermost open
  span of the calling thread; anything else raises
  :class:`~repro.common.errors.TelemetryError`.  This keeps every thread's
  span set a proper forest, which the exporters and the timeline report
  rely on.
"""

from __future__ import annotations

import contextlib
import itertools
import threading
from collections import deque
from time import perf_counter as _perf_counter
from typing import Any, Iterator

from repro.common.errors import TelemetryError

__all__ = [
    "SpanEvent",
    "InstantEvent",
    "Tracer",
    "ACTIVE",
    "active",
    "enable",
    "disable",
    "tracing",
    "DEFAULT_RING_SIZE",
]

#: default per-thread ring capacity (events); a 4-rank Airfoil run with
#: checkpointing emits a few thousand events per rank, well under this
DEFAULT_RING_SIZE = 65536


class SpanEvent:
    """One nested span: ``[t0, t1]`` seconds since the tracer epoch.

    ``t1`` is ``None`` while the span is still open; open spans live on the
    owning thread's stack, not in the ring.
    """

    __slots__ = ("name", "cat", "t0", "t1", "rank", "tid", "depth", "attrs")

    def __init__(self, name: str, cat: str, t0: float, rank: int, tid: int,
                 depth: int, attrs: dict[str, Any]):
        self.name = name
        self.cat = cat
        self.t0 = t0
        self.t1: float | None = None
        self.rank = rank
        self.tid = tid
        self.depth = depth
        self.attrs = attrs

    @property
    def ts(self) -> float:
        return self.t0

    @property
    def duration(self) -> float:
        """Span length in seconds (0.0 while still open)."""
        return 0.0 if self.t1 is None else self.t1 - self.t0

    def __repr__(self) -> str:
        return (
            f"SpanEvent({self.name!r}, cat={self.cat!r}, rank={self.rank}, "
            f"t0={self.t0:.6f}, dur={self.duration:.6f}, attrs={self.attrs!r})"
        )


class InstantEvent:
    """A point-in-time typed event (plan miss, fault injection, ...)."""

    __slots__ = ("name", "cat", "ts", "rank", "tid", "attrs")

    def __init__(self, name: str, cat: str, ts: float, rank: int, tid: int,
                 attrs: dict[str, Any]):
        self.name = name
        self.cat = cat
        self.ts = ts
        self.rank = rank
        self.tid = tid
        self.attrs = attrs

    def __repr__(self) -> str:
        return (
            f"InstantEvent({self.name!r}, cat={self.cat!r}, rank={self.rank}, "
            f"ts={self.ts:.6f}, attrs={self.attrs!r})"
        )


class _ThreadState:
    __slots__ = ("rank", "tid", "ring", "stack")

    def __init__(self, tid: int, ring_size: int):
        self.rank = 0
        self.tid = tid
        self.ring: deque = deque(maxlen=ring_size)
        self.stack: list[SpanEvent] = []


class Tracer:
    """Records spans and instants into per-thread bounded ring buffers."""

    def __init__(self, ring_size: int = DEFAULT_RING_SIZE):
        if ring_size < 1:
            raise TelemetryError("ring_size must be >= 1")
        self.ring_size = ring_size
        self._epoch = _perf_counter()
        self._tls = threading.local()
        self._lock = threading.Lock()
        self._states: list[_ThreadState] = []
        self._tid_counter = itertools.count()

    # -- per-thread state -------------------------------------------------------

    def _state(self) -> _ThreadState:
        st = getattr(self._tls, "state", None)
        if st is None:
            with self._lock:
                st = _ThreadState(next(self._tid_counter), self.ring_size)
                self._states.append(st)
            self._tls.state = st
        return st

    def set_rank(self, rank: int) -> None:
        """Tag this thread's events with a simulated MPI rank (default 0)."""
        self._state().rank = int(rank)

    def current_rank(self) -> int:
        return self._state().rank

    # -- recording --------------------------------------------------------------

    def begin(self, name: str, cat: str = "span", **attrs: Any) -> SpanEvent:
        """Open a span; returns the handle :meth:`end` must receive back."""
        st = self._state()
        sp = SpanEvent(
            name, cat, _perf_counter() - self._epoch, st.rank, st.tid,
            len(st.stack), attrs,
        )
        st.stack.append(sp)
        return sp

    def end(self, span: SpanEvent) -> SpanEvent:
        """Close ``span``.  It must be the calling thread's innermost open span."""
        st = self._state()
        if not st.stack:
            raise TelemetryError(
                f"end({span.name!r}): no span is open on this thread"
            )
        if st.stack[-1] is not span:
            raise TelemetryError(
                f"end({span.name!r}): innermost open span is "
                f"{st.stack[-1].name!r} — spans must close innermost-first"
            )
        st.stack.pop()
        span.t1 = _perf_counter() - self._epoch
        st.ring.append(span)
        return span

    @contextlib.contextmanager
    def span(self, name: str, cat: str = "span", **attrs: Any) -> Iterator[SpanEvent]:
        """``with tracer.span("par_loop", kernel=...):`` — begin/end pair."""
        sp = self.begin(name, cat, **attrs)
        try:
            yield sp
        finally:
            self.end(sp)

    def instant(self, name: str, cat: str = "event", **attrs: Any) -> InstantEvent:
        """Record a point event (plan miss, fault firing, checkpoint, ...)."""
        st = self._state()
        ev = InstantEvent(
            name, cat, _perf_counter() - self._epoch, st.rank, st.tid, attrs
        )
        st.ring.append(ev)
        return ev

    # -- inspection -------------------------------------------------------------

    def open_spans(self) -> list[SpanEvent]:
        """This thread's currently open spans, outermost first."""
        return list(self._state().stack)

    def events(self) -> list:
        """All completed events across every thread, ordered by timestamp."""
        with self._lock:
            states = list(self._states)
        out: list = []
        for st in states:
            out.extend(st.ring)
        out.sort(key=lambda ev: ev.ts)
        return out

    def dropped_possible(self) -> bool:
        """True if any thread's ring ever reached capacity (oldest events lost)."""
        with self._lock:
            return any(len(st.ring) == st.ring.maxlen for st in self._states)

    def clear(self) -> None:
        """Drop all recorded events (open spans stay open)."""
        with self._lock:
            for st in self._states:
                st.ring.clear()


# -- process-wide activation ---------------------------------------------------
#
# Instrumentation sites read this module global directly:
#
#     trc = tracer.ACTIVE
#     if trc is not None:
#         ...
#
# so a disabled tracer costs one attribute load and one branch per event.

ACTIVE: Tracer | None = None


def active() -> Tracer | None:
    """The tracer currently receiving events, or None when tracing is off."""
    return ACTIVE


def enable(tracer: Tracer | None = None, *, ring_size: int = DEFAULT_RING_SIZE) -> Tracer:
    """Turn tracing on (idempotent: an already-active tracer is kept)."""
    global ACTIVE
    if tracer is not None:
        ACTIVE = tracer
    elif ACTIVE is None:
        ACTIVE = Tracer(ring_size=ring_size)
    return ACTIVE


def disable() -> Tracer | None:
    """Turn tracing off; returns the tracer so its events can be exported."""
    global ACTIVE
    trc, ACTIVE = ACTIVE, None
    return trc


@contextlib.contextmanager
def tracing(*, ring_size: int = DEFAULT_RING_SIZE) -> Iterator[Tracer]:
    """Trace the enclosed code: ``with tracing() as trc: ... trc.events()``."""
    prev = ACTIVE
    trc = enable(Tracer(ring_size=ring_size))
    try:
        yield trc
    finally:
        globals()["ACTIVE"] = prev
