"""Trace exporters and the merged metrics snapshot.

Three output forms, all fed from :meth:`Tracer.events`:

* **Chrome trace JSON** (:func:`chrome_trace`) — the ``chrome://tracing`` /
  Perfetto "JSON Array with metadata" format.  Every simulated MPI rank
  becomes one ``pid``, so a distributed Airfoil run renders as a real
  multi-rank timeline with nested par_loop / halo-exchange / mpi spans.
* **JSONL** (:func:`write_jsonl`) — one event per line, trivially
  greppable/streamable, with an optional trailing ``metrics`` record.
* **Metrics snapshot** (:class:`MetricsSnapshot`) — counters plus span
  duration histograms (count/total/p50/p95/p99 per span name).  Snapshots
  merge across ranks the same way :meth:`PerfCounters.merge` folds
  per-rank counter sets into one aggregate.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

from repro.common.counters import PerfCounters
from repro.common.errors import TelemetryError
from repro.telemetry.tracer import InstantEvent, SpanEvent

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "validate_chrome_trace",
    "SpanStats",
    "MetricsSnapshot",
    "counters_dict",
]


def counters_dict(counters: PerfCounters) -> dict[str, Any]:
    """Flatten the scalar PerfCounters fields (no per-loop records)."""
    return {
        "messages_sent": counters.messages_sent,
        "bytes_sent": counters.bytes_sent,
        "reductions": counters.reductions,
        "halo_exchanges": counters.halo_exchanges,
        "faults_injected": counters.faults_injected,
        "messages_dropped": counters.messages_dropped,
        "messages_retried": counters.messages_retried,
        "restarts": counters.restarts,
        "recovery_seconds": counters.recovery_seconds,
        "loops_sanitized": counters.loops_sanitized,
        "shadow_runs": counters.shadow_runs,
        "plan_hits": counters.plan_hits,
        "plan_misses": counters.plan_misses,
        "plan_invalidations": counters.plan_invalidations,
        "plan_evictions": counters.plan_evictions,
    }


# -- Chrome trace --------------------------------------------------------------


def _json_safe(value: Any) -> Any:
    """Coerce attr values to something json.dumps accepts deterministically."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def chrome_trace(
    events: Sequence,
    *,
    counters: PerfCounters | None = None,
) -> dict:
    """Build a ``chrome://tracing`` JSON object from recorded events.

    Spans become complete (``"ph": "X"``) events, instants become
    ``"ph": "i"`` with thread scope; one metadata record names each rank's
    process.  Timestamps are microseconds since the tracer epoch.  When
    ``counters`` is given its scalar fields land in ``otherData`` so one
    trace file also carries the run's aggregate statistics.
    """
    trace_events: list[dict] = []
    ranks: set[int] = set()
    for ev in events:
        ranks.add(ev.rank)
        args = {k: _json_safe(v) for k, v in ev.attrs.items()}
        if isinstance(ev, SpanEvent):
            if ev.t1 is None:
                continue  # still open: not renderable as a complete event
            trace_events.append(
                {
                    "name": ev.name,
                    "cat": ev.cat,
                    "ph": "X",
                    "ts": round(ev.t0 * 1e6, 3),
                    "dur": round(ev.duration * 1e6, 3),
                    "pid": ev.rank,
                    "tid": ev.tid,
                    "args": args,
                }
            )
        else:
            trace_events.append(
                {
                    "name": ev.name,
                    "cat": ev.cat,
                    "ph": "i",
                    "s": "t",
                    "ts": round(ev.ts * 1e6, 3),
                    "pid": ev.rank,
                    "tid": ev.tid,
                    "args": args,
                }
            )
    for rank in sorted(ranks):
        trace_events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": rank,
                "args": {"name": f"rank {rank}"},
            }
        )
    out: dict = {"traceEvents": trace_events, "displayTimeUnit": "ms"}
    if counters is not None:
        out["otherData"] = {"counters": counters_dict(counters)}
    return out


def write_chrome_trace(
    path: str | Path,
    events: Sequence,
    *,
    counters: PerfCounters | None = None,
) -> Path:
    """Serialise :func:`chrome_trace` to ``path``; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(events, counters=counters)) + "\n")
    return path


_PHASES = {"X", "i", "M"}


def validate_chrome_trace(obj: Any) -> None:
    """Check the shape of a Chrome trace object; raise :class:`TelemetryError`.

    Validates the subset of the format this package emits: a traceEvents
    list whose entries have the mandatory fields with the right types, and
    non-negative microsecond timestamps/durations.
    """
    if not isinstance(obj, dict) or "traceEvents" not in obj:
        raise TelemetryError("trace must be an object with a 'traceEvents' list")
    evs = obj["traceEvents"]
    if not isinstance(evs, list):
        raise TelemetryError("'traceEvents' must be a list")
    for i, ev in enumerate(evs):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            raise TelemetryError(f"{where}: not an object")
        if not isinstance(ev.get("name"), str):
            raise TelemetryError(f"{where}: missing/invalid 'name'")
        ph = ev.get("ph")
        if ph not in _PHASES:
            raise TelemetryError(f"{where}: 'ph' must be one of {sorted(_PHASES)}, got {ph!r}")
        if not isinstance(ev.get("pid"), int):
            raise TelemetryError(f"{where}: missing/invalid 'pid'")
        if "args" in ev and not isinstance(ev["args"], dict):
            raise TelemetryError(f"{where}: 'args' must be an object")
        if ph == "M":
            continue
        if not isinstance(ev.get("tid"), int):
            raise TelemetryError(f"{where}: missing/invalid 'tid'")
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            raise TelemetryError(f"{where}: 'ts' must be a non-negative number")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise TelemetryError(f"{where}: 'dur' must be a non-negative number")
        if ph == "i" and ev.get("s") not in ("t", "p", "g"):
            raise TelemetryError(f"{where}: instant scope 's' must be t/p/g")


# -- JSONL ---------------------------------------------------------------------


def write_jsonl(
    path: str | Path,
    events: Sequence,
    *,
    metrics: "MetricsSnapshot | None" = None,
    pid: int | None = None,
) -> Path:
    """Write one JSON record per event (plus an optional metrics trailer).

    ``pid`` stamps every record with the producing OS process — set by
    multi-process workers exporting their own rings, and used by the report
    CLI's multi-file merge to lay real processes out as Chrome-trace pids.
    """
    path = Path(path)
    with open(path, "w") as fh:
        for ev in events:
            if isinstance(ev, SpanEvent):
                if ev.t1 is None:
                    continue
                rec = {
                    "type": "span",
                    "name": ev.name,
                    "cat": ev.cat,
                    "ts": ev.t0,
                    "dur": ev.duration,
                    "rank": ev.rank,
                    "tid": ev.tid,
                    "depth": ev.depth,
                    "args": {k: _json_safe(v) for k, v in ev.attrs.items()},
                }
            else:
                rec = {
                    "type": "instant",
                    "name": ev.name,
                    "cat": ev.cat,
                    "ts": ev.ts,
                    "rank": ev.rank,
                    "tid": ev.tid,
                    "args": {k: _json_safe(v) for k, v in ev.attrs.items()},
                }
            if pid is not None:
                rec["pid"] = pid
            fh.write(json.dumps(rec) + "\n")
        if metrics is not None:
            fh.write(json.dumps({"type": "metrics", **metrics.to_dict()}) + "\n")
    return path


# -- metrics snapshot ----------------------------------------------------------

#: per-key cap on retained durations; beyond it the histogram keeps summary
#: statistics exact (count/total) and quantiles approximate over the head
_RESERVOIR = 4096


def _quantile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank quantile of an ascending list (0 for empty)."""
    if not sorted_values:
        return 0.0
    k = max(0, min(len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1)))))
    return sorted_values[k]


@dataclass
class SpanStats:
    """Duration histogram for one span name."""

    count: int = 0
    total_seconds: float = 0.0
    max_seconds: float = 0.0
    durations: list[float] = field(default_factory=list)

    def add(self, seconds: float) -> None:
        self.count += 1
        self.total_seconds += seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds
        if len(self.durations) < _RESERVOIR:
            self.durations.append(seconds)

    def merge(self, other: "SpanStats") -> None:
        self.count += other.count
        self.total_seconds += other.total_seconds
        self.max_seconds = max(self.max_seconds, other.max_seconds)
        room = _RESERVOIR - len(self.durations)
        if room > 0:
            self.durations.extend(other.durations[:room])

    def quantiles(self) -> dict[str, float]:
        ordered = sorted(self.durations)
        return {
            "p50": _quantile(ordered, 0.50),
            "p95": _quantile(ordered, 0.95),
            "p99": _quantile(ordered, 0.99),
        }

    def to_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "total_seconds": self.total_seconds,
            "max_seconds": self.max_seconds,
            **self.quantiles(),
        }


@dataclass
class MetricsSnapshot:
    """Counters + span histograms; merges across ranks like PerfCounters."""

    spans: dict[str, SpanStats] = field(default_factory=dict)
    instants: dict[str, int] = field(default_factory=dict)
    counters: dict[str, Any] = field(default_factory=dict)
    ranks: set[int] = field(default_factory=set)

    @classmethod
    def from_events(
        cls,
        events: Sequence,
        *,
        rank: int | None = None,
        counters: PerfCounters | None = None,
    ) -> "MetricsSnapshot":
        """Aggregate ``events`` (optionally one rank's slice) into a snapshot."""
        snap = cls()
        for ev in events:
            if rank is not None and ev.rank != rank:
                continue
            snap.ranks.add(ev.rank)
            if isinstance(ev, SpanEvent):
                if ev.t1 is None:
                    continue
                st = snap.spans.get(ev.name)
                if st is None:
                    st = snap.spans[ev.name] = SpanStats()
                st.add(ev.duration)
            elif isinstance(ev, InstantEvent):
                snap.instants[ev.name] = snap.instants.get(ev.name, 0) + 1
        if counters is not None:
            snap.counters = counters_dict(counters)
        return snap

    def merge(self, other: "MetricsSnapshot") -> None:
        """Fold another snapshot (e.g. another rank's) into this one."""
        for name, st in other.spans.items():
            mine = self.spans.get(name)
            if mine is None:
                self.spans[name] = SpanStats(
                    st.count, st.total_seconds, st.max_seconds, list(st.durations)
                )
            else:
                mine.merge(st)
        for name, n in other.instants.items():
            self.instants[name] = self.instants.get(name, 0) + n
        for key, val in other.counters.items():
            cur = self.counters.get(key, 0)
            self.counters[key] = cur + val if isinstance(val, (int, float)) else val
        self.ranks |= other.ranks

    def to_dict(self) -> dict[str, Any]:
        return {
            "ranks": sorted(self.ranks),
            "spans": {k: v.to_dict() for k, v in sorted(self.spans.items())},
            "instants": dict(sorted(self.instants.items())),
            "counters": dict(sorted(self.counters.items())),
        }
