"""CLI: ``python -m repro.telemetry report <trace>... [--top N] [--rank R]``.

``report`` accepts one or more trace files (Chrome JSON or JSONL), each
argument optionally a glob — the multi-process executor leaves one
``trace-rank<NNN>.jsonl`` per worker, so ``report 'traces/trace-rank*.jsonl'``
merges a whole world into one breakdown.  ``--merge-out`` additionally
writes the merged Chrome trace (pid = real worker process, tid = rank).
"""

from __future__ import annotations

import argparse
import glob as _glob
import json
import sys

from repro.common.errors import TelemetryError
from repro.telemetry.report import load_traces, merged_chrome_trace, render_report


def _expand(patterns: list[str]) -> list[str]:
    """Expand glob patterns; a non-glob argument passes through verbatim."""
    paths: list[str] = []
    for pat in patterns:
        matches = sorted(_glob.glob(pat))
        if matches:
            paths.extend(matches)
        else:
            paths.append(pat)  # literal path: missing files error in load
    return paths


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="Analyse traces recorded by repro.telemetry.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    rep = sub.add_parser(
        "report", help="per-rank / per-kernel breakdown of one or more trace files"
    )
    rep.add_argument(
        "trace", nargs="+",
        help="Chrome trace JSON or JSONL event log(s); globs are expanded",
    )
    rep.add_argument(
        "--top", type=int, default=None, metavar="N",
        help="show only the N most expensive kernels",
    )
    rep.add_argument(
        "--rank", type=int, default=None, metavar="R",
        help="restrict the report to one simulated rank",
    )
    rep.add_argument(
        "--merge-out", default=None, metavar="FILE",
        help="write the merged Chrome trace (pid = worker process, tid = rank)",
    )
    ns = parser.parse_args(argv)

    try:
        events = load_traces(_expand(ns.trace))
    except (TelemetryError, OSError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    if ns.merge_out is not None:
        with open(ns.merge_out, "w") as fh:
            json.dump(merged_chrome_trace(events), fh)
            fh.write("\n")
    if ns.rank is not None:
        events = [e for e in events if e["rank"] == ns.rank]
    print(render_report(events, top=ns.top))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
