"""CLI: ``python -m repro.telemetry report <trace> [--top N] [--rank R]``."""

from __future__ import annotations

import argparse
import sys

from repro.common.errors import TelemetryError
from repro.telemetry.report import load_trace, render_report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="Analyse traces recorded by repro.telemetry.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    rep = sub.add_parser(
        "report", help="per-rank / per-kernel breakdown of a trace file"
    )
    rep.add_argument("trace", help="Chrome trace JSON or JSONL event log")
    rep.add_argument(
        "--top", type=int, default=None, metavar="N",
        help="show only the N most expensive kernels",
    )
    rep.add_argument(
        "--rank", type=int, default=None, metavar="R",
        help="restrict the report to one simulated rank",
    )
    ns = parser.parse_args(argv)

    try:
        events = load_trace(ns.trace)
    except (TelemetryError, OSError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    if ns.rank is not None:
        events = [e for e in events if e["rank"] == ns.rank]
    print(render_report(events, top=ns.top))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
