"""Cross-backend differential harness with first-diverging-loop localisation.

Every backend claims to implement the same loop semantics; the harness
makes that claim testable.  :func:`diff_backends` runs one application
callable once per backend while recording a :class:`LoopTrace` — after
each loop executes, copies of every written argument are captured (the
loop-observer hook fires *before* each loop, so the state seen at loop
``k+1`` is exactly the post-state of loop ``k``).  Final states are then
compared against the reference backend, bitwise by default or within a
:class:`Tolerance` (ULP bound and/or rtol/atol) where reduction order
legitimately moves, and any disagreement is localised to the **first loop
whose outputs differ** via :func:`first_divergence`.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

import numpy as np

from repro.common.errors import ReproError
from repro.common.profiling import LoopEvent, add_loop_observer, remove_loop_observer


class BackendDivergence(ReproError):
    """Two backends produced different results; carries the localisation."""

    def __init__(self, message: str, divergence: "Divergence | None" = None):
        super().__init__(message)
        self.divergence = divergence


def max_ulp_diff(a, b) -> float:
    """Largest elementwise ULP distance between two float arrays.

    Returns ``inf`` on shape mismatch or NaN-pattern mismatch; matching
    NaNs count as zero distance.  Works by mapping IEEE-754 bit patterns to
    a monotonically ordered integer line, so the distance is exact for
    nearby values and a safe over-approximation for far-apart ones.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        return float("inf")
    if a.size == 0:
        return 0.0
    nan_a, nan_b = np.isnan(a), np.isnan(b)
    if (nan_a != nan_b).any():
        return float("inf")
    mask = ~nan_a
    if not mask.any():
        return 0.0
    ai = np.ascontiguousarray(a[mask]).view(np.int64)
    bi = np.ascontiguousarray(b[mask]).view(np.int64)
    min64 = np.int64(-(2**63))
    oa = np.where(ai < 0, min64 - ai, ai)
    ob = np.where(bi < 0, min64 - bi, bi)
    # int64 subtraction is exact but can wrap for opposite-extreme values;
    # the float approximation never wraps but drops low bits — trust the
    # exact path whenever the approximate magnitude says it cannot wrap
    approx = np.abs(oa.astype(np.float64) - ob.astype(np.float64))
    exact = np.abs((oa - ob).astype(np.float64))
    return float(np.max(np.where(approx < 2.0**52, exact, approx)))


@dataclass
class Tolerance:
    """Agreement criterion: bitwise by default, widened where asked.

    Arrays agree if they are bitwise equal, OR within ``ulp`` units in the
    last place, OR within ``np.allclose(rtol, atol)``.  The defaults (all
    zero) demand bitwise agreement.
    """

    ulp: int = 0
    rtol: float = 0.0
    atol: float = 0.0

    def arrays_agree(self, a, b) -> bool:
        a = np.asarray(a)
        b = np.asarray(b)
        if a.shape != b.shape:
            return False
        if np.array_equal(a, b, equal_nan=True):
            return True
        if self.ulp and max_ulp_diff(a, b) <= self.ulp:
            return True
        if (self.rtol or self.atol) and np.allclose(
            a, b, rtol=self.rtol, atol=self.atol, equal_nan=True
        ):
            return True
        return False


def _arg_value(ev) -> np.ndarray | None:
    """Copy the current value behind an ArgEvent (Dat/Global/Reduction)."""
    ref = ev.data_ref
    if ref is None:
        return None
    data = getattr(ref, "data", None)
    if data is not None:
        return np.array(data, copy=True)
    value = getattr(ref, "value", None)
    if value is not None:
        return np.asarray([value], dtype=np.float64)
    return None


@dataclass
class LoopDigest:
    """Post-execution snapshot of one loop's written arguments."""

    index: int
    name: str
    api: str
    written: dict[str, np.ndarray] = field(default_factory=dict)


class LoopTrace:
    """Observer recording, per executed loop, copies of its written args."""

    def __init__(self) -> None:
        self.records: list[LoopDigest] = []
        self._pending: LoopEvent | None = None

    # the observer fires *before* each loop body: the state visible now is
    # the post-state of the previously announced loop
    def _observe(self, event: LoopEvent) -> None:
        self._flush()
        self._pending = event

    def _flush(self) -> None:
        ev = self._pending
        self._pending = None
        if ev is None:
            return
        written: dict[str, np.ndarray] = {}
        for a in ev.args:
            if a.access.writes:
                value = _arg_value(a)
                if value is not None:
                    written[a.name] = value
        self.records.append(LoopDigest(len(self.records), ev.name, ev.api, written))

    @property
    def loop_names(self) -> list[str]:
        return [r.name for r in self.records]


@contextlib.contextmanager
def trace_scope() -> Iterator[LoopTrace]:
    """Record every loop executed inside the scope (single-threaded runs)."""
    trace = LoopTrace()
    add_loop_observer(trace._observe)
    try:
        yield trace
    finally:
        remove_loop_observer(trace._observe)
        trace._flush()


@dataclass
class Divergence:
    """The first point at which two traced runs disagree."""

    index: int
    loop: str
    arg: str
    max_ulp: float
    max_abs: float
    structural: bool = False  # loop sequences themselves differ

    def describe(self) -> str:
        if self.structural:
            return f"loop sequences diverge at #{self.index}: {self.loop!r} vs {self.arg!r}"
        return (
            f"first divergence at loop #{self.index} ({self.loop!r}), arg "
            f"{self.arg!r}: max {self.max_ulp:.3g} ULP / {self.max_abs:.3g} abs"
        )


def first_divergence(
    ref: LoopTrace, other: LoopTrace, tol: Tolerance | None = None
) -> Divergence | None:
    """Localise the earliest loop whose outputs differ beyond ``tol``."""
    tol = tol or Tolerance()
    for ra, rb in zip(ref.records, other.records):
        if ra.name != rb.name:
            return Divergence(ra.index, ra.name, rb.name, 0.0, 0.0, structural=True)
        for name, a in ra.written.items():
            b = rb.written.get(name)
            if b is None:
                return Divergence(ra.index, ra.name, name, float("inf"), float("inf"))
            if not tol.arrays_agree(a, b):
                diff = (
                    float(np.max(np.abs(a - b))) if a.shape == b.shape else float("inf")
                )
                return Divergence(ra.index, ra.name, name, max_ulp_diff(a, b), diff)
    if len(ref.records) != len(other.records):
        i = min(len(ref.records), len(other.records))
        return Divergence(i, "<end of trace>", "<end of trace>", 0.0, 0.0, structural=True)
    return None


@dataclass
class BackendComparison:
    """One backend's agreement verdict against the reference."""

    backend: str
    agrees: bool
    mismatched: list[str] = field(default_factory=list)  # final-state arrays
    divergence: Divergence | None = None  # loop-level localisation


@dataclass
class DiffReport:
    """Outcome of :func:`diff_backends` across all compared backends."""

    reference: str
    results: dict[str, dict[str, np.ndarray]]
    traces: dict[str, LoopTrace]
    comparisons: dict[str, BackendComparison]

    @property
    def agree(self) -> bool:
        return all(c.agrees for c in self.comparisons.values())

    def assert_agree(self) -> None:
        for c in self.comparisons.values():
            if c.agrees:
                continue
            where = c.divergence.describe() if c.divergence else "no loop-level localisation"
            raise BackendDivergence(
                f"backend {c.backend!r} disagrees with {self.reference!r} on "
                f"{c.mismatched or 'the loop trace'}; {where}",
                c.divergence,
            )


def diff_backends(
    run: Callable[[str], dict[str, np.ndarray]],
    backends: Sequence[str],
    *,
    reference: str = "seq",
    tol: Tolerance | None = None,
    trace: bool = True,
) -> DiffReport:
    """Run ``run(backend)`` for every backend and diff against the reference.

    ``run`` must build a **fresh** application for the given backend name,
    execute it, and return its final state as ``{name: array}``.  Each run
    is traced; disagreement (beyond ``tol``) in the final state or the
    per-loop trace is localised to the first diverging loop.  Pass
    ``trace=False`` for runs whose loops execute on multiple threads
    (simulated MPI ranks): the process-wide observer would interleave rank
    loop chains, so only final states are compared.
    """
    tol = tol or Tolerance()
    order = [reference] + [b for b in backends if b != reference]
    results: dict[str, dict[str, np.ndarray]] = {}
    traces: dict[str, LoopTrace] = {}
    for backend in order:
        if trace:
            with trace_scope() as t:
                results[backend] = {
                    k: np.array(v, copy=True) for k, v in run(backend).items()
                }
        else:
            t = LoopTrace()
            results[backend] = {
                k: np.array(v, copy=True) for k, v in run(backend).items()
            }
        traces[backend] = t

    comparisons: dict[str, BackendComparison] = {}
    ref_state = results[reference]
    for backend in order[1:]:
        state = results[backend]
        mismatched = [
            k for k, v in ref_state.items()
            if not tol.arrays_agree(v, state.get(k, np.zeros(0)))
        ]
        divergence = first_divergence(traces[reference], traces[backend], tol)
        agrees = not mismatched and divergence is None
        comparisons[backend] = BackendComparison(backend, agrees, mismatched, divergence)
    return DiffReport(reference, results, traces, comparisons)
