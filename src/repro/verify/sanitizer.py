"""Access-descriptor sanitizer: shadow-execution checks for parallel loops.

``op_par_loop`` declares, per argument, exactly which data a kernel may
touch and how (READ/WRITE/RW/INC, direct or through a map slot).  The
sanitizer executes the loop under guards that verify the kernel against
that declaration:

* **READ guard** — dats referenced only with READ access are marked
  read-only for the duration of the loop (a write raises immediately) and
  digest-checked afterwards (a write that bypassed the guard is still
  caught).
* **Footprint diff** — after execution, every written dat's changed rows
  are compared against the union of declared targets (direct iteration
  range plus the referenced map columns); rows changed outside the declared
  footprint raise.
* **Shadow pair** — the loop is re-executed twice on cloned data: dats
  declared pure WRITE have their declared footprint pre-filled with two
  different sentinels (a kernel that reads its old value, or fails to write
  part of the declared footprint, makes the two runs disagree); dats and
  globals declared pure INC have their baseline shifted by a constant ``c``
  in one run (a kernel whose contribution depends on the current value
  breaks ``shadow1 == shadow2 + c``).

All failures raise the structured
:class:`~repro.common.errors.DescriptorViolation` naming the loop, the
argument and the first offending indices.  The OPS-side helpers at the
bottom apply the READ-digest and write-footprint checks to structured
loops; stencil conformance of every accessed offset is enforced by the
(guarded) accessors themselves.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Sequence

import numpy as np

from repro.common.access import Access
from repro.common.config import swap
from repro.common.errors import DescriptorViolation

#: sentinels for the WRITE-purity shadow pair: finite (no NaN warnings in
#: kernels), far outside any physical range, and distinct
_SENTINELS = (1.6180339887e18, -2.7182818284e18)

#: tolerance of the INC linearity check: the shadow pair differs from the
#: ideal ``s2 + c`` only by re-association of the baseline shift, a few ULP
_INC_RTOL = 1e-9


@contextlib.contextmanager
def sanitized(*, shadow: bool = True) -> Iterator[None]:
    """Run the enclosed loops under the access-descriptor sanitizer.

    >>> with sanitized():
    ...     op2.par_loop(kernel, cells, q(op2.READ), res(op2.INC, c2n, 0))

    Also turns on OPS stencil checking, so structured loops validate every
    accessed offset against the declared stencil.  ``shadow=False`` skips
    the shadow-pair checks (WRITE purity, INC linearity), leaving the
    cheaper guard/digest/footprint checks.
    """
    with swap(verify_descriptors=True, verify_shadow=shadow, check_stencils=True):
        yield


def _head(indices) -> tuple:
    return tuple(int(i) for i in np.asarray(indices).reshape(-1)[:5])


# --------------------------------------------------------------------------
# OP2: unstructured loops
# --------------------------------------------------------------------------


def _group_by_dat(args) -> dict[int, list[tuple[int, object]]]:
    groups: dict[int, list[tuple[int, object]]] = {}
    for i, arg in enumerate(args):
        if arg.dat is not None:
            groups.setdefault(id(arg.dat), []).append((i, arg))
    return groups


def _declared_rows(dat, slots: list[tuple[int, object]], n: int) -> np.ndarray:
    """Bool mask over the dat's rows: where the loop declares writes."""
    mask = np.zeros(dat.set.total_size, dtype=bool)
    for _, arg in slots:
        if not arg.access.writes:
            continue
        if arg.is_direct:
            mask[:n] = True
        else:
            mask[arg.map.column(arg.idx)[:n]] = True
    return mask


def _clone_universe(args, dat_snaps: dict[int, np.ndarray], glob_snaps: dict[int, np.ndarray]):
    """Rebuild the loop's arguments over cloned dats/globals (pre-loop state)."""
    from repro.op2.args import Arg
    from repro.op2.dat import Dat, Global

    dats: dict[int, object] = {}
    globs: dict[int, object] = {}
    clones = []
    for arg in args:
        if arg.is_global:
            g = globs.get(id(arg.glob))
            if g is None:
                g = Global(arg.glob.dim, glob_snaps[id(arg.glob)].copy(),
                           dtype=arg.glob.dtype, name=arg.glob.name)
                globs[id(arg.glob)] = g
            clones.append(Arg(access=arg.access, glob=g))
        else:
            d = dats.get(id(arg.dat))
            if d is None:
                d = Dat(arg.dat.set, arg.dat.dim, dat_snaps[id(arg.dat)].copy(),
                        dtype=arg.dat.dtype, name=arg.dat.name)
                dats[id(arg.dat)] = d
            clones.append(Arg(access=arg.access, dat=d, map=arg.map, idx=arg.idx))
    return clones, dats, globs


def sanitized_execute(impl, kernel, iterset, args: list, n: int) -> tuple[int, int]:
    """Run ``impl`` under the sanitizer; returns (colours, shadow runs)."""
    from repro.common.config import get_config
    from repro.op2.backends import BACKENDS

    loop = kernel.name
    groups = _group_by_dat(args)
    dat_snaps = {key: slots[0][1].dat.data.copy() for key, slots in groups.items()}
    glob_snaps = {id(a.glob): a.glob.data.copy() for a in args if a.is_global}

    read_only = {
        key: slots for key, slots in groups.items()
        if all(not arg.access.writes for _, arg in slots)
    }

    # 1) guard: READ-only dats cannot be written while the loop runs
    guarded = []
    for key, slots in read_only.items():
        dat = slots[0][1].dat
        guarded.append((dat, dat.data.flags.writeable))
        dat.data.flags.writeable = False
    try:
        colours = impl(kernel, iterset, args, n)
    except ValueError as exc:
        if "read-only" not in str(exc):
            raise
        slots = [s for slots in read_only.values() for s in slots]
        names = ", ".join(f"arg {i} ({arg.dat.name})" for i, arg in slots)
        arg_index = slots[0][0] if len(slots) == 1 else None
        raise DescriptorViolation(
            f"loop {loop!r}: kernel wrote a READ argument ({names})",
            loop=loop, arg_index=arg_index, kind="read-arg-written",
        ) from exc
    finally:
        for dat, was_writeable in guarded:
            dat.data.flags.writeable = was_writeable

    # 2) post-hoc digest: READ-only dats must be bitwise unchanged
    for key, slots in read_only.items():
        dat = slots[0][1].dat
        if not np.array_equal(dat.data, dat_snaps[key]):
            changed = np.nonzero(np.any(dat.data != dat_snaps[key], axis=-1))[0]
            i = slots[0][0]
            raise DescriptorViolation(
                f"loop {loop!r}, arg {i} ({dat.name}, READ): data changed at "
                f"rows {_head(changed)}",
                loop=loop, arg_index=i, kind="read-arg-written", indices=_head(changed),
            )

    # 3) footprint diff: changed rows must lie in the declared write targets
    for key, slots in groups.items():
        if key in read_only:
            continue
        dat = slots[0][1].dat
        declared = _declared_rows(dat, slots, n)
        changed = np.any(dat.data != dat_snaps[key], axis=-1)
        outside = np.nonzero(changed & ~declared)[0]
        if outside.size:
            i = next(i for i, arg in slots if arg.access.writes)
            raise DescriptorViolation(
                f"loop {loop!r}, arg {i} ({dat.name}, "
                f"{slots[0][1].access.short}): wrote rows {_head(outside)} "
                f"outside the declared footprint",
                loop=loop, arg_index=i, kind="write-outside-footprint",
                indices=_head(outside),
            )

    # 4) shadow pair: WRITE purity and INC linearity
    shadow_runs = 0
    if get_config().verify_shadow:
        pure = {}
        for key, slots in groups.items():
            accesses = {arg.access for _, arg in slots}
            if accesses == {Access.WRITE}:
                pure[key] = "write"
            elif accesses == {Access.INC}:
                pure[key] = "inc"
        inc_globs = {
            id(a.glob) for a in args if a.is_global and a.access is Access.INC
        }
        if pure or inc_globs:
            shadow_runs = 2
            # the shadow pair always runs seq: it builds no plans (openmp/
            # cuda would pollute the plan cache with clone-dat ids), and it
            # hands the kernel direct views of the accumulated values — vec
            # gathers INC args into zeroed buffers and scatters with add.at,
            # which would mask an overwriting "increment" (f[0] = x behaves
            # like f[0] += x on a zero buffer)
            shadow_impl = BACKENDS["seq"]
            shifts: dict[int, float] = {}
            universes = []
            for run, sentinel in enumerate(_SENTINELS):
                clones, dats, globs = _clone_universe(args, dat_snaps, glob_snaps)
                for key, mode in pure.items():
                    clone = dats[key]
                    if mode == "write":
                        rows = _declared_rows(clone, groups[key], n)
                        clone.data[rows] = sentinel
                    else:  # inc: shift the baseline in the first run only
                        c = shifts.setdefault(
                            key, 1.0 + float(np.max(np.abs(dat_snaps[key]), initial=0.0))
                        )
                        if run == 0:
                            clone.data += c
                for gkey in inc_globs:
                    c = shifts.setdefault(gkey, 1.0 + float(np.max(np.abs(glob_snaps[gkey]))))
                    if run == 0:
                        globs[gkey].data += c
                shadow_impl(kernel, iterset, clones, n)
                universes.append((dats, globs))
            (d1, g1), (d2, g2) = universes
            for key, mode in pure.items():
                a, b = d1[key].data, d2[key].data
                name = d1[key].name
                i = groups[key][0][0]
                if mode == "write":
                    bad = np.nonzero(np.any(a != b, axis=-1))[0]
                    if bad.size:
                        raise DescriptorViolation(
                            f"loop {loop!r}, arg {i} ({name}, W): kernel reads its "
                            f"old value or leaves part of the declared footprint "
                            f"unwritten (rows {_head(bad)})",
                            loop=loop, arg_index=i, kind="write-reads-old-value",
                            indices=_head(bad),
                        )
                else:
                    c = shifts[key]
                    tol = _INC_RTOL * max(1.0, abs(c))
                    if not np.allclose(a, b + c, rtol=_INC_RTOL, atol=tol):
                        bad = np.nonzero(np.any(np.abs(a - (b + c)) > tol, axis=-1))[0]
                        raise DescriptorViolation(
                            f"loop {loop!r}, arg {i} ({name}, I): contribution "
                            f"depends on the current value — not a pure increment "
                            f"(rows {_head(bad)})",
                            loop=loop, arg_index=i, kind="inc-not-increment",
                            indices=_head(bad),
                        )
            for gkey in inc_globs:
                c = shifts[gkey]
                tol = _INC_RTOL * max(1.0, abs(c))
                if not np.allclose(g1[gkey].data, g2[gkey].data + c,
                                   rtol=_INC_RTOL, atol=tol):
                    i = next(j for j, a in enumerate(args)
                             if a.is_global and id(a.glob) == gkey)
                    raise DescriptorViolation(
                        f"loop {loop!r}, arg {i} ({args[i].glob.name}, I): global "
                        f"contribution depends on the current value",
                        loop=loop, arg_index=i, kind="inc-not-increment",
                    )
    return colours, shadow_runs


# --------------------------------------------------------------------------
# OPS: structured loops
# --------------------------------------------------------------------------


def ops_snapshot(args) -> dict[int, np.ndarray]:
    """Pre-loop copies of every dat's storage (reductions carry no state)."""
    snaps: dict[int, np.ndarray] = {}
    for arg in args:
        dat = getattr(arg, "dat", None)
        if dat is not None and id(dat) not in snaps:
            snaps[id(dat)] = dat.data.copy()
    return snaps


def ops_post_check(
    loop: str,
    ranges: Sequence[tuple[int, int]],
    args,
    snaps: dict[int, np.ndarray],
) -> None:
    """READ-digest and write-footprint checks for one structured loop."""
    seen: set[int] = set()
    for i, arg in enumerate(args):
        dat = getattr(arg, "dat", None)
        if dat is None or id(dat) in seen:
            continue
        seen.add(id(dat))
        writes = any(
            a.access.writes for a in args if getattr(a, "dat", None) is dat
        )
        changed = dat.data != snaps[id(dat)]
        if not writes:
            if changed.any():
                where = tuple(zip(*np.nonzero(changed)))[:5]
                raise DescriptorViolation(
                    f"loop {loop!r}, arg {i} ({dat.name}, READ): data changed "
                    f"at storage points {where}",
                    loop=loop, arg_index=i, kind="read-arg-written", indices=where,
                )
            continue
        # writes are centre-point only, so the declared footprint is exactly
        # the iteration range (in storage coordinates)
        allowed = np.zeros_like(changed)
        idx = tuple(
            slice(lo + dat.halo_depth, hi + dat.halo_depth) for lo, hi in ranges
        )
        allowed[idx] = True
        outside = changed & ~allowed
        if outside.any():
            where = tuple(zip(*np.nonzero(outside)))[:5]
            raise DescriptorViolation(
                f"loop {loop!r}, arg {i} ({dat.name}, {arg.access.short}): wrote "
                f"storage points {where} outside the iteration range {list(ranges)}",
                loop=loop, arg_index=i, kind="write-outside-footprint", indices=where,
            )
