"""Correctness tooling: the library checks the program, not just runs it.

The access-execute abstraction hands the library complete knowledge of what
every loop may touch (paper Section II; Veldhuizen & Gannon's "active
library" takes exactly this compiler-like verification role).  This package
turns that knowledge into three layers of checking:

1. **Access-descriptor sanitizer** (:mod:`repro.verify.sanitizer`): an
   opt-in shadow-execution mode — enable with :func:`sanitized` — under
   which every ``op_par_loop``/``ops_par_loop`` verifies its kernel against
   the declared descriptors: READ args are guarded read-only and digest
   checked, written data is diffed against the declared maps/ranges, and a
   shadow pair of executions proves WRITE args never read their old value
   and INC args are pure increments.  Violations raise the structured
   :class:`~repro.common.errors.DescriptorViolation`.
2. **Colouring race detector** (:mod:`repro.verify.races`):
   :func:`check_plan` replays an execution plan and asserts no two
   same-coloured blocks (or same-coloured elements within a block) share an
   indirect write target; :func:`torn_update_check` executes the plan with
   *non-atomic* scatters in perturbed within-colour order, so a corrupted
   colouring manifests as a lost update instead of silently passing.
3. **Differential harness** (:mod:`repro.verify.diff`):
   :func:`diff_backends` runs the same application on every backend,
   records a per-loop trace of written data, asserts (bitwise or
   ULP/tolerance-bounded) agreement against the reference backend, and
   localises any failure to the first diverging loop.
"""

from repro.common.errors import DescriptorViolation, RaceViolation
from repro.verify.diff import (
    BackendDivergence,
    DiffReport,
    Divergence,
    LoopTrace,
    Tolerance,
    diff_backends,
    first_divergence,
    max_ulp_diff,
    trace_scope,
)
from repro.verify.races import check_plan, race_targets, torn_update_check
from repro.verify.sanitizer import sanitized

__all__ = [
    "DescriptorViolation",
    "RaceViolation",
    "sanitized",
    "check_plan",
    "race_targets",
    "torn_update_check",
    "BackendDivergence",
    "DiffReport",
    "Divergence",
    "LoopTrace",
    "Tolerance",
    "diff_backends",
    "first_divergence",
    "max_ulp_diff",
    "trace_scope",
]
