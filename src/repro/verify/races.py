"""Colouring race detector: does the plan actually prevent races?

Two-level colouring (paper Section II-B) is only as good as the plan that
computes it.  This module checks plans from two directions:

* :func:`check_plan` — static replay: walk the plan and assert that no two
  same-coloured blocks, and no two same-elem-coloured elements within one
  block, write a common indirect location.
* :func:`torn_update_check` — dynamic proof: execute the plan twice on
  cloned data — once in plan order with atomic (``np.add.at``) scatters,
  once with every colour's elements randomly permuted and *non-atomic*
  buffered scatters, which lose one of two conflicting updates exactly
  like an unsynchronised commit on real hardware.  A correct colouring
  makes the two runs agree; a corrupted one shows up as a torn update.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.common.access import Access
from repro.common.errors import RaceViolation
from repro.op2.plan import Plan, _race_targets, build_plan


def race_targets(args: Sequence, n: int) -> np.ndarray:
    """The (n, k) indirect-write target matrix the colouring must separate."""
    return _race_targets(list(args), n)


def _duplicate_target(owners: np.ndarray, tgts: np.ndarray):
    """First target claimed by two distinct owners (per-owner duplicates ok)."""
    if tgts.size == 0:
        return None
    pairs = np.unique(np.stack([owners, tgts], axis=1), axis=0)
    order = np.argsort(pairs[:, 1], kind="stable")
    t = pairs[order, 1]
    o = pairs[order, 0]
    dup = np.nonzero(t[1:] == t[:-1])[0]
    if dup.size:
        i = int(dup[0])
        return int(t[i]), int(o[i]), int(o[i + 1])
    return None


def check_plan(plan: Plan, args: Sequence, *, loop: str = "?") -> int:
    """Replay ``plan`` and assert its colouring admits no write conflicts.

    Returns the number of (colour, level) groups checked; raises
    :class:`~repro.common.errors.RaceViolation` naming the conflicting
    blocks/elements and the shared target otherwise.
    """
    targets = _race_targets(list(args), plan.n_elements)
    if targets.size == 0:
        return 0
    arity = targets.shape[1]
    checked = 0

    # level 1: same-coloured blocks must not share any written location
    for colour in range(plan.n_block_colours):
        elems = plan.elements_of_colour(colour)
        owners = np.repeat(plan.block_of[elems], arity)
        hit = _duplicate_target(owners, targets[elems].ravel())
        if hit is not None:
            t, b1, b2 = hit
            raise RaceViolation(
                f"loop {loop!r}: blocks {b1} and {b2} share block colour "
                f"{colour} but both write location {t}"
            )
        checked += 1

    # level 2: within a block, same-coloured elements must not share targets
    for b in range(plan.n_blocks):
        elems = plan.elements_of_block(b)
        ecol = plan.elem_colour[elems]
        for c in np.unique(ecol):
            sub = elems[ecol == c]
            owners = np.repeat(sub, arity)
            hit = _duplicate_target(owners, targets[sub].ravel())
            if hit is not None:
                t, e1, e2 = hit
                raise RaceViolation(
                    f"loop {loop!r}: elements {e1} and {e2} in block {b} share "
                    f"element colour {int(c)} but both write location {t}"
                )
            checked += 1
    return checked


def _racy_scatter(arg, buf: np.ndarray, idx: np.ndarray) -> None:
    """Commit one argument non-atomically: conflicting increments are torn."""
    from repro.op2.backends import base

    if arg.is_indirect and arg.access is Access.INC:
        cols = arg.map.values[idx, arg.idx]
        # buffered fancy-index update: with duplicate targets, only one of
        # the conflicting contributions lands — the torn update
        arg.dat.data[cols] += buf
        return
    base._scatter(arg, buf, idx)


def _execute_racy(kernel, args, idx: np.ndarray) -> None:
    from repro.op2.backends import base

    n = idx.size
    if n == 0:
        return
    buffers = [base._gather(arg, idx, n) for arg in args]
    kernel.vec_func(*buffers)
    for arg, buf in zip(args, buffers):
        _racy_scatter(arg, buf, idx)


def torn_update_check(
    kernel,
    iterset,
    args: Sequence,
    *,
    n: int | None = None,
    block_size: int | None = None,
    plan: Plan | None = None,
    seed: int = 0,
    rtol: float = 1e-12,
) -> None:
    """Prove within-colour order-independence by racy re-execution.

    Executes ``plan`` (built for the loop if not given) twice on cloned
    data: a reference pass in plan order with atomic scatters, and a
    perturbed pass where each colour's element order is shuffled and INC
    commits are non-atomic.  Dats must agree bitwise (a correct colouring
    leaves no two conflicting updates in one colour group, so the torn
    scatter is exact); INC globals are compared to ``rtol`` since summation
    order legitimately moves.  Raises RaceViolation on disagreement.
    """
    from repro.op2.backends.base import execute_subset
    from repro.verify.sanitizer import _clone_universe

    arg_list = list(args)
    n = iterset.size if n is None else n
    if plan is None:
        plan = build_plan(iterset, arg_list, block_size=block_size, n_elements=n)

    dat_snaps = {id(a.dat): a.dat.data.copy() for a in arg_list if a.dat is not None}
    glob_snaps = {id(a.glob): a.glob.data.copy() for a in arg_list if a.is_global}
    ref_args, ref_dats, ref_globs = _clone_universe(arg_list, dat_snaps, glob_snaps)
    racy_args, racy_dats, racy_globs = _clone_universe(arg_list, dat_snaps, glob_snaps)
    rng = np.random.default_rng(seed)

    for colour in range(plan.n_block_colours):
        elems = plan.elements_of_colour(colour)
        if elems.size == 0:
            continue
        ecol = plan.elem_colour[elems]
        for ec in range(plan.n_elem_colours):
            subset = elems[ecol == ec]
            if subset.size == 0:
                continue
            execute_subset(kernel, ref_args, subset, subset.size)
            _execute_racy(kernel, racy_args, rng.permutation(subset))

    for key, ref in ref_dats.items():
        racy = racy_dats[key]
        if not np.array_equal(ref.data, racy.data):
            bad = np.nonzero(np.any(ref.data != racy.data, axis=-1))[0]
            raise RaceViolation(
                f"loop {kernel.name!r}: torn-update run diverges on dat "
                f"{ref.name!r} at rows {tuple(int(b) for b in bad[:5])} — "
                f"the colouring does not serialise conflicting updates"
            )
    for key, ref in ref_globs.items():
        racy = racy_globs[key]
        if not np.allclose(ref.data, racy.data, rtol=rtol, atol=0.0):
            raise RaceViolation(
                f"loop {kernel.name!r}: torn-update run diverges on global "
                f"{ref.name!r} ({ref.data} vs {racy.data})"
            )
