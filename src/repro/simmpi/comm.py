"""Communicator for the in-process MPI simulator.

Each rank runs in its own thread; every rank owns a mailbox (a list of
message envelopes guarded by a condition variable).  ``send`` deposits a
deep-ish copy of the payload into the destination mailbox; ``recv`` blocks
until a matching (source, tag) envelope arrives.  NumPy payloads are copied
so ranks cannot alias each other's memory — the same isolation real MPI
gives you.

A configurable timeout (``repro.common.config``'s ``deadlock_timeout``)
turns an MPI deadlock (mismatched send/recv) into a :class:`DeadlockError`
instead of a hung test suite.

Resilience hooks: a world may carry a fault plan (see
:mod:`repro.resilience.faults`) consulted on every send, and a shared
``failed`` rank set.  Once a rank is marked failed, peers communicating
with it raise :class:`RankFailedError` promptly instead of waiting out the
deadlock timeout.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
# bound once at import: monotonic runs on every blocking-receive wakeup
from time import monotonic as _monotonic
from time import sleep as _sleep
from typing import Any, Callable, Optional

import numpy as np

from repro.common.config import get_config
from repro.common.counters import PerfCounters
from repro.common.errors import MessageLostError, RankFailedError, ReproError
from repro.telemetry import tracer as _trace

#: matches any source / any tag, like MPI_ANY_SOURCE / MPI_ANY_TAG
ANY = -1

#: fallback seconds a blocking receive waits before declaring deadlock;
#: the live value is ``get_config().deadlock_timeout``
DEADLOCK_TIMEOUT = 60.0


class DeadlockError(ReproError):
    """A blocking operation timed out: the simulated job has deadlocked."""


def _deadlock_timeout(timeout: float | None) -> float:
    """Resolve an explicit timeout against the configured default."""
    return get_config().deadlock_timeout if timeout is None else timeout


def _payload_nbytes(obj: Any) -> int:
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    if isinstance(obj, (list, tuple)):
        return sum(_payload_nbytes(o) for o in obj)
    return 8  # scalars / small python objects: count a word


def _copy_payload(obj: Any) -> Any:
    """Copy array payloads so sender and receiver never alias."""
    if isinstance(obj, np.ndarray):
        return obj.copy()
    if isinstance(obj, list):
        return [_copy_payload(o) for o in obj]
    if isinstance(obj, tuple):
        return tuple(_copy_payload(o) for o in obj)
    if isinstance(obj, dict):
        return {k: _copy_payload(v) for k, v in obj.items()}
    return obj


@dataclass
class _Envelope:
    src: int
    tag: int
    payload: Any


class _Mailbox:
    """Thread-safe matching queue of envelopes for one rank."""

    def __init__(self) -> None:
        self._messages: list[_Envelope] = []
        self._cond = threading.Condition()

    def put(self, env: _Envelope) -> None:
        with self._cond:
            self._messages.append(env)
            self._cond.notify_all()

    def _find(self, src: int, tag: int) -> Optional[int]:
        for i, env in enumerate(self._messages):
            if (src == ANY or env.src == src) and (tag == ANY or env.tag == tag):
                return i
        return None

    def get(
        self,
        src: int,
        tag: int,
        timeout: float,
        failed: set[int] | None = None,
    ) -> _Envelope:
        """Pop the first matching envelope, waiting up to ``timeout`` seconds.

        Waits on the remaining deadline (woken by :meth:`put` and by failure
        notifications) rather than polling.  When ``failed`` is given and the
        awaited source — or, for ANY-source receives, any rank — has failed
        with no matching message pending, raises :class:`RankFailedError`
        immediately: a contribution from a dead rank can never arrive.
        """
        limit = threading.TIMEOUT_MAX if timeout is None else timeout
        deadline = _monotonic() + limit
        with self._cond:
            while True:
                idx = self._find(src, tag)
                if idx is not None:
                    return self._messages.pop(idx)
                if failed:
                    if src in failed:
                        raise RankFailedError(
                            f"recv(src={src}, tag={tag}): rank {src} has failed"
                        )
                    if src == ANY:
                        raise RankFailedError(
                            f"recv(src=ANY, tag={tag}): rank(s) "
                            f"{sorted(failed)} failed with no message pending"
                        )
                remaining = deadline - _monotonic()
                if remaining <= 0:
                    raise DeadlockError(
                        f"recv(src={src}, tag={tag}) timed out after {timeout}s"
                    )
                self._cond.wait(timeout=min(remaining, threading.TIMEOUT_MAX))

    def probe(self, src: int, tag: int) -> bool:
        with self._cond:
            return self._find(src, tag) is not None

    def wake(self) -> None:
        """Wake blocked receivers (e.g. so they notice a rank failure)."""
        with self._cond:
            self._cond.notify_all()


class ThreadTransport:
    """In-process transport: one mailbox per rank plus a shared thread barrier.

    This is the reference implementation of the transport protocol shared
    with :class:`repro.mp.transport.ProcessTransport`: ``deliver`` must copy
    (or otherwise un-alias) the payload, ``collect`` must honour the
    deadlock timeout and the failed-rank set with :class:`_Mailbox.get`'s
    exact semantics, and ``barrier_wait`` must synchronise all live ranks.
    """

    def __init__(self, size: int):
        self.size = size
        self.mailboxes = [_Mailbox() for _ in range(size)]
        self.barrier = threading.Barrier(size)

    def deliver(self, src: int, dest: int, tag: int, payload: Any) -> None:
        self.mailboxes[dest].put(_Envelope(src, tag, _copy_payload(payload)))

    def collect(
        self, rank: int, src: int, tag: int, timeout: float, failed=None
    ) -> _Envelope:
        return self.mailboxes[rank].get(src, tag, timeout, failed=failed)

    def probe(self, rank: int, src: int, tag: int) -> bool:
        return self.mailboxes[rank].probe(src, tag)

    def barrier_wait(self, rank: int) -> None:
        self.barrier.wait()

    def wake_all(self) -> None:
        """Wake blocked receivers (e.g. so they notice a rank failure)."""
        for mb in self.mailboxes:
            mb.wake()

    def abort(self) -> None:
        """Break any current/future barrier so a dead world can be reaped."""
        self.barrier.abort()


class Request:
    """Handle for a non-blocking operation (completed lazily on wait/test)."""

    def __init__(self, fn: Callable[[], Any]):
        self._fn = fn
        self._done = False
        self._result: Any = None

    def wait(self) -> Any:
        if not self._done:
            self._result = self._fn()
            self._done = True
        return self._result

    def test(self) -> tuple[bool, Any]:
        """Non-destructive completion test (best-effort for recv)."""
        if self._done:
            return True, self._result
        return False, None


@dataclass
class _WorldState:
    """Shared state for one simulated world (all ranks)."""

    size: int
    #: message fabric: ThreadTransport here, ProcessTransport in repro.mp
    transport: Any
    coll_lock: threading.Lock = field(default_factory=threading.Lock)
    coll_slots: dict[tuple[int, str], list] = field(default_factory=dict)
    coll_seq: dict[str, int] = field(default_factory=dict)
    #: ranks that have died (injected kill or organic exception); the mp
    #: executor substitutes a shared-memory set-alike view here
    failed: Any = field(default_factory=set)
    #: optional repro.resilience.faults.FaultPlan consulted on sends/loops
    fault_plan: Any = None
    #: optional repro.resilience.detection.RetryPolicy for transient faults
    retry: Any = None

    def mark_failed(self, rank: int) -> None:
        """Record a rank's death and wake every blocked receiver."""
        self.failed.add(rank)
        self.transport.wake_all()


_REDUCE_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "sum": lambda a, b: a + b,
    "min": lambda a, b: np.minimum(a, b) if isinstance(a, np.ndarray) else min(a, b),
    "max": lambda a, b: np.maximum(a, b) if isinstance(a, np.ndarray) else max(a, b),
    "prod": lambda a, b: a * b,
}


class SimComm:
    """Per-rank communicator handle over a shared world state.

    The collective algorithms are implemented on top of point-to-point
    messages through rank 0 (gather+bcast shape).  That is slower than a
    tree but keeps reduction order deterministic: contributions are always
    combined in rank order.
    """

    # collective tags live in a reserved high range
    _TAG_COLL = 1 << 20

    def __init__(self, world: _WorldState, rank: int, counters: PerfCounters | None = None):
        self._world = world
        self.rank = rank
        self.size = world.size
        self.counters = counters if counters is not None else PerfCounters()
        self._coll_round = 0

    # -- point-to-point ----------------------------------------------------

    def send(self, payload: Any, dest: int, tag: int = 0) -> None:
        """Deposit a message; copies array payloads (buffered send semantics).

        Sends to a failed rank raise :class:`RankFailedError` at once.  When
        the world carries a fault plan, matching message faults fire here:
        drops are retried under the world's retry policy (the plan is
        re-consulted per attempt, so a fault with ``times=k`` passes after k
        drops); with no policy — or once it is exhausted and the fault still
        fires — the message is lost and :class:`MessageLostError` is raised
        if a policy was in play, otherwise the loss stays silent (receiver-
        side detection via the deadlock timeout).
        """
        if not (0 <= dest < self.size):
            raise ValueError(f"invalid destination rank {dest}")
        st = self._world
        if dest in st.failed:
            raise RankFailedError(f"send(dest={dest}, tag={tag}): rank {dest} has failed")
        copies = 1
        if st.fault_plan is not None:
            attempts = 0
            while True:
                fault = st.fault_plan.on_send(self.rank, dest, tag, self.counters)
                if fault is None:
                    break
                if fault.kind == "drop":
                    retry = st.retry
                    if retry is not None:
                        if attempts >= retry.max_retries:
                            raise MessageLostError(
                                f"send(dest={dest}, tag={tag}) dropped "
                                f"{attempts + 1} times; retries exhausted"
                            )
                        _sleep(retry.delay(attempts))
                        attempts += 1
                        self.counters.record_message_retried()
                        continue
                    return  # silent loss: nobody is watching this send
                if fault.kind == "delay":
                    _sleep(fault.seconds)
                    break
                if fault.kind == "duplicate":
                    copies = 2
                    break
                raise ValueError(f"unknown message-fault kind {fault.kind!r}")
        nbytes = _payload_nbytes(payload)
        trc = _trace.ACTIVE
        if trc is not None:
            trc.instant("mpi_send", "mpi", dest=dest, tag=tag, bytes=nbytes)
        for _ in range(copies):
            self.counters.record_message(nbytes)
            st.transport.deliver(self.rank, dest, tag, payload)

    def _get_env(self, source: int, tag: int, timeout: float | None) -> _Envelope:
        """Blocking mailbox pop, recorded as an ``mpi_recv`` span when traced.

        The span covers the whole blocking wait — the "wait time" the report
        CLI attributes to halo exchanges or general communication.
        """
        trc = _trace.ACTIVE
        if trc is None:
            return self._world.transport.collect(
                self.rank, source, tag, _deadlock_timeout(timeout),
                failed=self._world.failed,
            )
        span = trc.begin("mpi_recv", "mpi", src=source, tag=tag)
        try:
            return self._world.transport.collect(
                self.rank, source, tag, _deadlock_timeout(timeout),
                failed=self._world.failed,
            )
        finally:
            trc.end(span)

    def recv(self, source: int = ANY, tag: int = ANY, timeout: float | None = None) -> Any:
        return self._get_env(source, tag, timeout).payload

    def isend(self, payload: Any, dest: int, tag: int = 0) -> Request:
        # buffered sends complete immediately
        self.send(payload, dest, tag)
        return Request(lambda: None)

    def irecv(self, source: int = ANY, tag: int = ANY) -> Request:
        return Request(lambda: self.recv(source, tag))

    def sendrecv(self, payload: Any, dest: int, source: int, tag: int = 0) -> Any:
        self.send(payload, dest, tag)
        return self.recv(source, tag)

    def probe(self, source: int = ANY, tag: int = ANY) -> bool:
        return self._world.transport.probe(self.rank, source, tag)

    # -- collectives --------------------------------------------------------

    def barrier(self) -> None:
        trc = _trace.ACTIVE
        if trc is None:
            self._world.transport.barrier_wait(self.rank)
            return
        span = trc.begin("mpi_barrier", "mpi")
        try:
            self._world.transport.barrier_wait(self.rank)
        finally:
            trc.end(span)

    def _next_tag(self) -> int:
        # every collective call consumes one tag slot; SPMD code calls
        # collectives in the same order on every rank so the counters agree
        tag = self._TAG_COLL + self._coll_round
        self._coll_round += 1
        return tag

    def bcast(self, payload: Any, root: int = 0) -> Any:
        tag = self._next_tag()
        if self.rank == root:
            for r in range(self.size):
                if r != root:
                    self.send(payload, r, tag)
            return _copy_payload(payload)
        return self.recv(root, tag)

    def gather(self, payload: Any, root: int = 0) -> Optional[list]:
        tag = self._next_tag()
        if self.rank == root:
            out: list = [None] * self.size
            out[root] = _copy_payload(payload)
            for _ in range(self.size - 1):
                env = self._get_env(ANY, tag, None)
                out[env.src] = env.payload
            return out
        self.send(payload, root, tag)
        return None

    def allgather(self, payload: Any) -> list:
        gathered = self.gather(payload, root=0)
        return self.bcast(gathered, root=0)

    def scatter(self, payloads: Optional[list], root: int = 0) -> Any:
        tag = self._next_tag()
        if self.rank == root:
            if payloads is None or len(payloads) != self.size:
                raise ValueError("scatter root must supply one payload per rank")
            for r in range(self.size):
                if r != root:
                    self.send(payloads[r], r, tag)
            return _copy_payload(payloads[root])
        return self.recv(root, tag)

    def reduce(self, payload: Any, op: str = "sum", root: int = 0) -> Any:
        if op not in _REDUCE_OPS:
            raise ValueError(f"unknown reduction op {op!r}")
        gathered = self.gather(payload, root=root)
        self.counters.record_reduction()
        if gathered is None:
            return None
        fn = _REDUCE_OPS[op]
        acc = gathered[0]
        for item in gathered[1:]:
            acc = fn(acc, item)
        return acc

    def allreduce(self, payload: Any, op: str = "sum") -> Any:
        result = self.reduce(payload, op=op, root=0)
        return self.bcast(result, root=0)

    def alltoall(self, payloads: list) -> list:
        if len(payloads) != self.size:
            raise ValueError("alltoall needs one payload per rank")
        tag = self._next_tag()
        for r in range(self.size):
            if r != self.rank:
                self.send(payloads[r], r, tag)
        out: list = [None] * self.size
        out[self.rank] = _copy_payload(payloads[self.rank])
        for _ in range(self.size - 1):
            env = self._get_env(ANY, tag, None)
            out[env.src] = env.payload
        return out

    # -- exchange helper used by halo code -----------------------------------

    def neighbor_exchange(self, sends: dict[int, Any], tag: int = 7) -> dict[int, Any]:
        """Exchange payloads with a set of neighbour ranks.

        ``sends`` maps neighbour rank -> payload.  Every rank must name the
        same neighbour relation symmetrically (if i sends to j, j sends to i),
        which is true for halo exchanges by construction.  Returns received
        payloads keyed by source rank.
        """
        for dest, payload in sends.items():
            self.send(payload, dest, tag)
        out: dict[int, Any] = {}
        for src in sends:
            out[src] = self.recv(src, tag)
        return out
