"""Communicator for the in-process MPI simulator.

Each rank runs in its own thread; every rank owns a mailbox (a list of
message envelopes guarded by a condition variable).  ``send`` deposits a
deep-ish copy of the payload into the destination mailbox; ``recv`` blocks
until a matching (source, tag) envelope arrives.  NumPy payloads are copied
so ranks cannot alias each other's memory — the same isolation real MPI
gives you.

A configurable timeout turns an MPI deadlock (mismatched send/recv) into a
:class:`DeadlockError` instead of a hung test suite.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

import numpy as np

from repro.common.counters import PerfCounters
from repro.common.errors import ReproError

#: matches any source / any tag, like MPI_ANY_SOURCE / MPI_ANY_TAG
ANY = -1

#: seconds a blocking receive waits before declaring deadlock
DEADLOCK_TIMEOUT = 60.0


class DeadlockError(ReproError):
    """A blocking operation timed out: the simulated job has deadlocked."""


def _payload_nbytes(obj: Any) -> int:
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    if isinstance(obj, (list, tuple)):
        return sum(_payload_nbytes(o) for o in obj)
    return 8  # scalars / small python objects: count a word


def _copy_payload(obj: Any) -> Any:
    """Copy array payloads so sender and receiver never alias."""
    if isinstance(obj, np.ndarray):
        return obj.copy()
    if isinstance(obj, list):
        return [_copy_payload(o) for o in obj]
    if isinstance(obj, tuple):
        return tuple(_copy_payload(o) for o in obj)
    if isinstance(obj, dict):
        return {k: _copy_payload(v) for k, v in obj.items()}
    return obj


@dataclass
class _Envelope:
    src: int
    tag: int
    payload: Any


class _Mailbox:
    """Thread-safe matching queue of envelopes for one rank."""

    def __init__(self) -> None:
        self._messages: list[_Envelope] = []
        self._cond = threading.Condition()

    def put(self, env: _Envelope) -> None:
        with self._cond:
            self._messages.append(env)
            self._cond.notify_all()

    def _find(self, src: int, tag: int) -> Optional[int]:
        for i, env in enumerate(self._messages):
            if (src == ANY or env.src == src) and (tag == ANY or env.tag == tag):
                return i
        return None

    def get(self, src: int, tag: int, timeout: float) -> _Envelope:
        limit = threading.TIMEOUT_MAX if timeout is None else timeout
        with self._cond:
            idx = self._find(src, tag)
            waited = 0.0
            while idx is None:
                self._cond.wait(timeout=0.5)
                waited += 0.5
                idx = self._find(src, tag)
                if idx is None and waited >= limit:
                    raise DeadlockError(
                        f"recv(src={src}, tag={tag}) timed out after {timeout}s"
                    )
            return self._messages.pop(idx)

    def probe(self, src: int, tag: int) -> bool:
        with self._cond:
            return self._find(src, tag) is not None


class Request:
    """Handle for a non-blocking operation (completed lazily on wait/test)."""

    def __init__(self, fn: Callable[[], Any]):
        self._fn = fn
        self._done = False
        self._result: Any = None

    def wait(self) -> Any:
        if not self._done:
            self._result = self._fn()
            self._done = True
        return self._result

    def test(self) -> tuple[bool, Any]:
        """Non-destructive completion test (best-effort for recv)."""
        if self._done:
            return True, self._result
        return False, None


@dataclass
class _WorldState:
    """Shared state for one simulated world (all ranks)."""

    size: int
    mailboxes: list[_Mailbox]
    barrier: threading.Barrier
    coll_lock: threading.Lock = field(default_factory=threading.Lock)
    coll_slots: dict[tuple[int, str], list] = field(default_factory=dict)
    coll_seq: dict[str, int] = field(default_factory=dict)


_REDUCE_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "sum": lambda a, b: a + b,
    "min": lambda a, b: np.minimum(a, b) if isinstance(a, np.ndarray) else min(a, b),
    "max": lambda a, b: np.maximum(a, b) if isinstance(a, np.ndarray) else max(a, b),
    "prod": lambda a, b: a * b,
}


class SimComm:
    """Per-rank communicator handle over a shared world state.

    The collective algorithms are implemented on top of point-to-point
    messages through rank 0 (gather+bcast shape).  That is slower than a
    tree but keeps reduction order deterministic: contributions are always
    combined in rank order.
    """

    # collective tags live in a reserved high range
    _TAG_COLL = 1 << 20

    def __init__(self, world: _WorldState, rank: int, counters: PerfCounters | None = None):
        self._world = world
        self.rank = rank
        self.size = world.size
        self.counters = counters if counters is not None else PerfCounters()
        self._coll_round = 0

    # -- point-to-point ----------------------------------------------------

    def send(self, payload: Any, dest: int, tag: int = 0) -> None:
        """Deposit a message; copies array payloads (buffered send semantics)."""
        if not (0 <= dest < self.size):
            raise ValueError(f"invalid destination rank {dest}")
        nbytes = _payload_nbytes(payload)
        self.counters.record_message(nbytes)
        self._world.mailboxes[dest].put(_Envelope(self.rank, tag, _copy_payload(payload)))

    def recv(self, source: int = ANY, tag: int = ANY, timeout: float = DEADLOCK_TIMEOUT) -> Any:
        env = self._world.mailboxes[self.rank].get(source, tag, timeout)
        return env.payload

    def isend(self, payload: Any, dest: int, tag: int = 0) -> Request:
        # buffered sends complete immediately
        self.send(payload, dest, tag)
        return Request(lambda: None)

    def irecv(self, source: int = ANY, tag: int = ANY) -> Request:
        return Request(lambda: self.recv(source, tag))

    def sendrecv(self, payload: Any, dest: int, source: int, tag: int = 0) -> Any:
        self.send(payload, dest, tag)
        return self.recv(source, tag)

    def probe(self, source: int = ANY, tag: int = ANY) -> bool:
        return self._world.mailboxes[self.rank].probe(source, tag)

    # -- collectives --------------------------------------------------------

    def barrier(self) -> None:
        self._world.barrier.wait()

    def _next_tag(self) -> int:
        # every collective call consumes one tag slot; SPMD code calls
        # collectives in the same order on every rank so the counters agree
        tag = self._TAG_COLL + self._coll_round
        self._coll_round += 1
        return tag

    def bcast(self, payload: Any, root: int = 0) -> Any:
        tag = self._next_tag()
        if self.rank == root:
            for r in range(self.size):
                if r != root:
                    self.send(payload, r, tag)
            return _copy_payload(payload)
        return self.recv(root, tag)

    def gather(self, payload: Any, root: int = 0) -> Optional[list]:
        tag = self._next_tag()
        if self.rank == root:
            out: list = [None] * self.size
            out[root] = _copy_payload(payload)
            for _ in range(self.size - 1):
                env = self._world.mailboxes[self.rank].get(ANY, tag, DEADLOCK_TIMEOUT)
                out[env.src] = env.payload
            return out
        self.send(payload, root, tag)
        return None

    def allgather(self, payload: Any) -> list:
        gathered = self.gather(payload, root=0)
        return self.bcast(gathered, root=0)

    def scatter(self, payloads: Optional[list], root: int = 0) -> Any:
        tag = self._next_tag()
        if self.rank == root:
            if payloads is None or len(payloads) != self.size:
                raise ValueError("scatter root must supply one payload per rank")
            for r in range(self.size):
                if r != root:
                    self.send(payloads[r], r, tag)
            return _copy_payload(payloads[root])
        return self.recv(root, tag)

    def reduce(self, payload: Any, op: str = "sum", root: int = 0) -> Any:
        if op not in _REDUCE_OPS:
            raise ValueError(f"unknown reduction op {op!r}")
        gathered = self.gather(payload, root=root)
        self.counters.record_reduction()
        if gathered is None:
            return None
        fn = _REDUCE_OPS[op]
        acc = gathered[0]
        for item in gathered[1:]:
            acc = fn(acc, item)
        return acc

    def allreduce(self, payload: Any, op: str = "sum") -> Any:
        result = self.reduce(payload, op=op, root=0)
        return self.bcast(result, root=0)

    def alltoall(self, payloads: list) -> list:
        if len(payloads) != self.size:
            raise ValueError("alltoall needs one payload per rank")
        tag = self._next_tag()
        for r in range(self.size):
            if r != self.rank:
                self.send(payloads[r], r, tag)
        out: list = [None] * self.size
        out[self.rank] = _copy_payload(payloads[self.rank])
        for _ in range(self.size - 1):
            env = self._world.mailboxes[self.rank].get(ANY, tag, DEADLOCK_TIMEOUT)
            out[env.src] = env.payload
        return out

    # -- exchange helper used by halo code -----------------------------------

    def neighbor_exchange(self, sends: dict[int, Any], tag: int = 7) -> dict[int, Any]:
        """Exchange payloads with a set of neighbour ranks.

        ``sends`` maps neighbour rank -> payload.  Every rank must name the
        same neighbour relation symmetrically (if i sends to j, j sends to i),
        which is true for halo exchanges by construction.  Returns received
        payloads keyed by source rank.
        """
        for dest, payload in sends.items():
            self.send(payload, dest, tag)
        out: dict[int, Any] = {}
        for src in sends:
            out[src] = self.recv(src, tag)
        return out
