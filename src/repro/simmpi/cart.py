"""Cartesian topology helpers (MPI_Dims_create / MPI_Cart_* equivalents).

OPS decomposes each structured block over a cartesian process grid; these
helpers provide the factorisation and coordinate arithmetic.
"""

from __future__ import annotations

from typing import Sequence

from repro.simmpi.comm import SimComm


def dims_create(nranks: int, ndims: int) -> list[int]:
    """Choose a balanced ``ndims``-dimensional factorisation of ``nranks``.

    Mirrors ``MPI_Dims_create``: dimensions are as close to each other as
    possible and sorted in non-increasing order.
    """
    if nranks < 1 or ndims < 1:
        raise ValueError("nranks and ndims must be positive")
    dims = [1] * ndims
    remaining = nranks
    # repeatedly peel the smallest prime factor onto the currently smallest dim
    factors: list[int] = []
    n = remaining
    f = 2
    while f * f <= n:
        while n % f == 0:
            factors.append(f)
            n //= f
        f += 1
    if n > 1:
        factors.append(n)
    for factor in sorted(factors, reverse=True):
        i = dims.index(min(dims))
        dims[i] *= factor
    return sorted(dims, reverse=True)


class CartComm:
    """A cartesian view over a :class:`SimComm` (non-periodic, row-major)."""

    def __init__(self, comm: SimComm, dims: Sequence[int]):
        total = 1
        for d in dims:
            total *= d
        if total != comm.size:
            raise ValueError(f"dims {list(dims)} do not cover {comm.size} ranks")
        self.comm = comm
        self.dims = list(dims)
        self.ndims = len(dims)

    @property
    def rank(self) -> int:
        return self.comm.rank

    @property
    def size(self) -> int:
        return self.comm.size

    def coords(self, rank: int | None = None) -> list[int]:
        """Cartesian coordinates of ``rank`` (default: this rank)."""
        if rank is None:
            rank = self.comm.rank
        out = []
        for extent in reversed(self.dims):
            out.append(rank % extent)
            rank //= extent
        return list(reversed(out))

    def rank_of(self, coords: Sequence[int]) -> int:
        """Rank at the given coordinates (row-major)."""
        rank = 0
        for c, extent in zip(coords, self.dims):
            if not (0 <= c < extent):
                raise ValueError(f"coordinate {list(coords)} out of grid {self.dims}")
            rank = rank * extent + c
        return rank

    def shift(self, dim: int, disp: int = 1) -> tuple[int | None, int | None]:
        """(source, dest) neighbour ranks along ``dim``; None at boundaries."""
        coords = self.coords()

        def neighbour(offset: int) -> int | None:
            c = list(coords)
            c[dim] += offset
            if 0 <= c[dim] < self.dims[dim]:
                return self.rank_of(c)
            return None

        return neighbour(-disp), neighbour(+disp)

    def neighbours(self) -> list[int]:
        """All face-adjacent neighbour ranks, ascending, no duplicates."""
        out = set()
        for dim in range(self.ndims):
            lo, hi = self.shift(dim)
            if lo is not None:
                out.add(lo)
            if hi is not None:
                out.add(hi)
        return sorted(out)
