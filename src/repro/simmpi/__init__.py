"""simmpi — a deterministic in-process MPI simulator.

The paper's OP2/OPS libraries sit on real MPI; offline we substitute a small
SPMD runtime that executes N ranks as threads inside one Python process.
It supports the subset of MPI the libraries need:

* blocking and non-blocking point-to-point (``send``/``recv``/``isend``/``irecv``)
  with tag and source matching,
* collectives (``barrier``, ``bcast``, ``gather``, ``allgather``, ``scatter``,
  ``reduce``, ``allreduce``, ``alltoall``) with rank-ordered, hence
  deterministic, reduction order,
* cartesian topology helpers (:mod:`repro.simmpi.cart`),
* per-rank message/byte counters, the quantities the scaling model consumes.

Use :func:`run_spmd` to execute a rank function over a simulated world::

    def main(comm):
        return comm.allreduce(comm.rank, op="sum")

    results = run_spmd(4, main)   # [6, 6, 6, 6]
"""

from repro.simmpi.comm import SimComm, Request, DeadlockError
from repro.simmpi.executor import run_spmd, World
from repro.simmpi.cart import dims_create, CartComm

__all__ = [
    "SimComm",
    "Request",
    "DeadlockError",
    "run_spmd",
    "World",
    "dims_create",
    "CartComm",
]
