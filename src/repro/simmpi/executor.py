"""SPMD executor: run a rank function over N simulated ranks.

Each rank executes in a Python thread with its own :class:`SimComm` and
:class:`PerfCounters`.  Exceptions raised by any rank are re-raised in the
caller after all threads have been reaped, so a failing rank fails the test
instead of hanging it.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Sequence

from repro.common.counters import PerfCounters
from repro.simmpi.comm import SimComm, _WorldState, _Mailbox


class World:
    """A simulated MPI world of ``size`` ranks.

    Normally constructed for you by :func:`run_spmd`; build one directly when
    a test needs access to the communicators before/after the run.
    """

    def __init__(self, size: int):
        if size < 1:
            raise ValueError("world size must be >= 1")
        self.size = size
        self._state = _WorldState(
            size=size,
            mailboxes=[_Mailbox() for _ in range(size)],
            barrier=threading.Barrier(size),
        )
        self.counters = [PerfCounters() for _ in range(size)]
        self.comms = [SimComm(self._state, r, self.counters[r]) for r in range(size)]

    def total_counters(self) -> PerfCounters:
        """Merge all per-rank counters into one aggregate."""
        total = PerfCounters()
        for c in self.counters:
            total.merge(c)
        return total


def run_spmd(
    nranks: int,
    fn: Callable[..., Any],
    *args: Any,
    world: World | None = None,
    rank_args: Sequence[tuple] | None = None,
) -> list[Any]:
    """Run ``fn(comm, *args)`` on every rank of a simulated world.

    ``fn`` receives the rank's :class:`SimComm` as its first argument.  When
    ``rank_args`` is given it supplies per-rank extra positional arguments
    (useful to hand each rank its partition of a mesh).  Returns the list of
    per-rank return values, in rank order.

    For a world of size 1 the function runs inline on the calling thread,
    which keeps single-rank paths easy to debug and profile.
    """
    if world is None:
        world = World(nranks)
    elif world.size != nranks:
        raise ValueError("world size does not match nranks")

    def call(rank: int) -> Any:
        extra = rank_args[rank] if rank_args is not None else ()
        return fn(world.comms[rank], *args, *extra)

    if nranks == 1:
        return [call(0)]

    results: list[Any] = [None] * nranks
    errors: list[tuple[int, BaseException]] = []

    def worker(rank: int) -> None:
        try:
            results[rank] = call(rank)
        except BaseException as exc:  # noqa: BLE001 - reraised below
            errors.append((rank, exc))
            # free ranks stuck in a barrier so the job can be reaped
            world._state.barrier.abort()

    threads = [
        threading.Thread(target=worker, args=(r,), name=f"simmpi-rank-{r}")
        for r in range(nranks)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    if errors:
        # broken-barrier errors are secondary casualties of the abort;
        # report the original failure
        primary = [e for e in errors if not isinstance(e[1], threading.BrokenBarrierError)]
        rank, exc = sorted(primary or errors, key=lambda e: e[0])[0]
        raise RuntimeError(f"rank {rank} failed: {exc!r}") from exc
    return results
