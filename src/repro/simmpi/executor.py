"""SPMD executor: run a rank function over N simulated ranks.

Each rank executes in a Python thread with its own :class:`SimComm` and
:class:`PerfCounters`; loop statistics are routed to the rank's counters
through a per-thread counter scope, so ranks never cross-route each other's
records.  Exceptions raised by any rank are re-raised in the caller after
all threads have been reaped, so a failing rank fails the test instead of
hanging it.

When the world carries a fault plan (see :mod:`repro.resilience`), every
rank registers a thread-local loop observer with it — the hook that lets a
plan kill a rank at its Nth loop or slow it down — and a dying rank marks
itself failed in the shared world state so peers communicating with it
raise :class:`RankFailedError` promptly.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Sequence

from repro.common.counters import PerfCounters
from repro.common.errors import RankFailedError
from repro.common.profiling import add_loop_observer, counters_scope, remove_loop_observer
from repro.simmpi.comm import SimComm, ThreadTransport, _WorldState
from repro.telemetry import tracer as _trace


class World:
    """A simulated MPI world of ``size`` ranks.

    Normally constructed for you by :func:`run_spmd`; build one directly when
    a test needs access to the communicators before/after the run, or to
    attach a fault plan / retry policy for resilience runs.
    """

    def __init__(self, size: int, *, fault_plan: Any = None, retry: Any = None):
        if size < 1:
            raise ValueError("world size must be >= 1")
        self.size = size
        self._state = _WorldState(
            size=size,
            transport=ThreadTransport(size),
            fault_plan=fault_plan,
            retry=retry,
        )
        self.counters = [PerfCounters() for _ in range(size)]
        self.comms = [SimComm(self._state, r, self.counters[r]) for r in range(size)]

    @property
    def failed_ranks(self) -> set[int]:
        """Ranks that died during the last run (injected or organic)."""
        return set(self._state.failed)

    def total_counters(self) -> PerfCounters:
        """Merge all per-rank counters into one aggregate."""
        total = PerfCounters()
        for c in self.counters:
            total.merge(c)
        return total


def run_spmd(
    nranks: int,
    fn: Callable[..., Any],
    *args: Any,
    world: World | None = None,
    rank_args: Sequence[tuple] | None = None,
) -> list[Any]:
    """Run ``fn(comm, *args)`` on every rank of a simulated world.

    ``fn`` receives the rank's :class:`SimComm` as its first argument.  When
    ``rank_args`` is given it supplies per-rank extra positional arguments
    (useful to hand each rank its partition of a mesh).  Returns the list of
    per-rank return values, in rank order.

    For a world of size 1 the function runs inline on the calling thread,
    which keeps single-rank paths easy to debug and profile.
    """
    if world is None:
        world = World(nranks)
    elif world.size != nranks:
        raise ValueError("world size does not match nranks")

    plan = world._state.fault_plan

    def call(rank: int) -> Any:
        extra = rank_args[rank] if rank_args is not None else ()
        trc = _trace.ACTIVE
        if trc is not None:
            # tag this thread's trace events with its simulated rank so the
            # exporters can lay ranks out as separate timeline processes
            trc.set_rank(rank)
        observer = None
        if plan is not None:
            def observer(event, _rank=rank):  # noqa: ARG001 - loop-event hook
                plan.on_loop(_rank, world.counters[_rank])

            add_loop_observer(observer, local=True)
        # deferred: repro.ops.decomp imports simmpi, so this module cannot
        # import repro.ops at load time
        from repro.ops import lazy as _ops_lazy

        try:
            result = fn(world.comms[rank], *args, *extra)
            # a rank returning from the collective is an observation point:
            # loops it queued lazily must land while its thread still exists
            _ops_lazy.flush_point("rank_return")
            return result
        except BaseException:
            # dead rank (injected kill, deadlock, kernel error): its queued
            # tail must not execute — the eager program would have crashed
            # before reaching it — and must not leak the global queue count
            _ops_lazy.abandon()
            raise
        finally:
            if observer is not None:
                remove_loop_observer(observer, local=True)

    if nranks == 1:
        return [call(0)]

    results: list[Any] = [None] * nranks
    errors: list[tuple[int, BaseException]] = []

    def worker(rank: int) -> None:
        try:
            with counters_scope(world.counters[rank]):
                results[rank] = call(rank)
        except BaseException as exc:  # noqa: BLE001 - reraised below
            errors.append((rank, exc))
            # let peers observe the death: wake blocked receivers and free
            # ranks stuck in a barrier so the job can be reaped
            world._state.mark_failed(rank)
            world._state.transport.abort()

    threads = [
        threading.Thread(target=worker, args=(r,), name=f"simmpi-rank-{r}")
        for r in range(nranks)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    if errors:
        # broken-barrier errors and peers' RankFailedErrors are secondary
        # casualties of the first death; report the root cause
        primary = [e for e in errors if not isinstance(e[1], threading.BrokenBarrierError)]
        root = [e for e in primary if not isinstance(e[1], RankFailedError)]
        rank, exc = sorted(root or primary or errors, key=lambda e: e[0])[0]
        raise RuntimeError(f"rank {rank} failed: {exc!r}") from exc
    return results
