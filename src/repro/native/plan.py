"""Admission gates and runtime bindings for native loops.

``try_compile_ops`` / ``try_compile_op2`` are the single entry points the
execplan layer calls while building a plan.  They either return a bound
``Native*Loop`` (a zero-argument compiled call plus the reduction
marshalling around it) or record exactly one ``native.fallback`` telemetry
instant + counter and return ``None`` — the plan then keeps its
interpreted vec machinery, so a decline is never observable in results.

The admission ladder, in order:

1. ``config.native`` (``REPRO_NATIVE``) must be on.
2. The kernel's :class:`~repro.lint.abstract.KernelCertificate` must be
   ``translatable`` (complete lowering, pure, proven-bounded extents).
3. Structural gates that keep C-vs-vec bitwise: float64 contiguous data
   only; no pairwise-summed accumulations (global INC, ``Reduction('inc')``
   — declined in codegen); written dats must not alias other arguments
   (op2 allows multi-arg writes only when every access to that dat is
   indirect, which the two-phase schedule orders exactly like the vec
   scatters); ops written dats must have centre-only proven extents (the
   per-element/per-statement execution orders coincide only then).
4. Every certificate-proven offset must land inside the actual storage
   (ops: within halo-padded bounds for this range; op2: within ``dim``,
   and map columns within the dat's rows) — the C has no bounds checks,
   so admission is where memory safety is proven.
5. Codegen itself (:mod:`.cgen`) declines anything without an exact C
   spelling, and the toolchain (:mod:`.cache`) declines when there is no
   compiler.
"""

from __future__ import annotations

import math

import numpy as np

from repro.common.config import get_config
from repro.common.profiling import active_counters
from repro.lint.abstract import certify_callable
from repro.native import cache as _cache
from repro.native import cgen as _cgen
from repro.telemetry import tracer as _trace

__all__ = ["NativeOpsLoop", "NativeOp2Loop", "try_compile_ops", "try_compile_op2"]


def _fallback(domain: str, loop_name: str, reason: str) -> None:
    """Account one declined loop: counter tick + a single telemetry instant."""
    active_counters().record_native_fallback()
    trc = _trace.ACTIVE
    if trc is not None:
        trc.instant("native.fallback", "native", domain=domain, loop=loop_name, reason=reason)


def _load(source: str, loop_name: str):
    """Compile-or-load with the compile span and cache-traffic counters."""
    counters = active_counters()
    trc = _trace.ACTIVE
    if _cache.is_cached(source):
        kern, cached = _cache.load_kernel(source)
    else:
        span = (
            trc.begin("native.compile", "native", loop=loop_name)
            if trc is not None
            else None
        )
        try:
            kern, cached = _cache.load_kernel(source)
        finally:
            if span is not None:
                trc.end(span)
    if cached:
        counters.record_native_cache_hit()
        if trc is not None:
            trc.instant("native.cache_hit", "native", loop=loop_name)
    else:
        counters.record_native_cache_miss()
        counters.record_native_compile()
        if trc is not None:
            trc.instant("native.cache_miss", "native", loop=loop_name)
    return kern


def _const_values(fn, code: "_cgen.NativeCode", ir) -> np.ndarray:
    """Resolve the cv slots (closure/global scalars, defaulted params)."""
    values = []
    for tagged in code.const_names:
        tag, name = tagged[0], tagged[1:]
        if tag == "=":
            obj = _cgen.resolve_free(fn, name)
        else:  # "@": a defaulted trailing parameter
            defaults = fn.__defaults__ or ()
            idx = ir.params.index(name) - (len(ir.params) - len(defaults))
            if idx < 0 or idx >= len(defaults):
                raise _cgen.Untranslatable(f"parameter {name!r} has no default")
            obj = defaults[idx]
        if isinstance(obj, bool) or not isinstance(
            obj, (int, float, np.floating, np.integer)
        ):
            raise _cgen.Untranslatable(f"constant {name!r} is not a numeric scalar")
        values.append(float(obj))
    return np.asarray(values, dtype=np.float64)


def _addr(arr: np.ndarray) -> int:
    return arr.ctypes.data


_EMPTY_I64 = np.empty(0, dtype=np.int64)
_EMPTY_F64 = np.empty(0, dtype=np.float64)


# -- ops ----------------------------------------------------------------------

class NativeOpsLoop:
    """A compiled structured loop bound to its storage addresses."""

    __slots__ = ("call", "red_info", "red_arr", "_keepalive")

    def __init__(self, call, red_info, red_arr, keepalive):
        self.call = call
        self.red_info = red_info  # [(slot, kind, arg_index), ...]
        self.red_arr = red_arr
        self._keepalive = keepalive

    def execute(self, args) -> None:
        red = self.red_arr
        info = self.red_info
        for j, kind, _k in info:
            # seed with the fold identity: the register then equals
            # np.min/np.max over the swept elements exactly
            red[j] = math.inf if kind == "min" else -math.inf
        self.call()
        for j, kind, k in info:
            handle = args[k]
            # the same handle.min(value) fold the vec path performs
            (handle.min if kind == "min" else handle.max)(red[j])


def try_compile_ops(kernel, ranges, args, loop_name: str) -> NativeOpsLoop | None:
    """Admission + build for one OPS loop site; None means use vec."""
    if not get_config().native:
        _fallback("ops", loop_name, "disabled")
        return None
    try:
        return _build_ops(kernel, ranges, args, loop_name)
    except (_cgen.Untranslatable, _cache.NativeUnavailable) as exc:
        _fallback("ops", loop_name, exc.reason)
    except Exception as exc:  # the native tier must never break a plan
        _fallback("ops", loop_name, f"internal:{type(exc).__name__}: {exc}")
    return None


def _build_ops(kernel, ranges, args, loop_name: str) -> NativeOpsLoop:
    fn = getattr(kernel, "func", kernel)
    ndim = len(ranges)
    if any(hi <= lo for lo, hi in ranges):
        raise _cgen.Untranslatable("empty range")

    cert = certify_callable(fn)
    if not cert.translatable:
        raise _cgen.Untranslatable(
            "certificate: " + "; ".join(cert.reasons or ("not translatable",))
        )

    argspecs: list[tuple] = []
    dat_of: list = []  # per-arg dat or None
    for arg in args:
        dat = getattr(arg, "dat", None)
        if dat is not None:
            argspecs.append(("dat", bool(arg.access.writes)))
            dat_of.append(dat)
        elif getattr(arg, "kind", None) in ("inc", "min", "max"):
            if arg.kind == "inc":
                raise _cgen.Untranslatable("inc reduction is pairwise-summed on vec")
            argspecs.append(("red", arg.kind))
            dat_of.append(None)
        else:
            raise _cgen.Untranslatable("argument is neither dat nor reduction")

    # aliasing: a written dat must be referenced by exactly one argument —
    # vec's per-statement order and C's per-element order only coincide then
    for k, (spec, dat) in enumerate(zip(argspecs, dat_of)):
        if dat is None or not (spec[0] == "dat" and spec[1]):
            continue
        if any(d is dat for j, d in enumerate(dat_of) if j != k):
            raise _cgen.Untranslatable("written dat aliased by another argument")

    params = _cgen.ir_for_callable(fn).params
    if len(args) > len(params):
        raise _cgen.Untranslatable("more loop arguments than kernel parameters")

    # storage-bounds proof: every certified offset must stay inside the
    # halo-padded storage for this range (C performs no checks)
    for k, (spec, dat) in enumerate(zip(argspecs, dat_of)):
        if dat is None:
            continue
        if dat.dtype != np.float64:
            raise _cgen.Untranslatable(f"dat {dat.name} is not float64")
        st = dat._storage
        if not st.flags["C_CONTIGUOUS"] or st.itemsize != 8 or st.ndim != ndim:
            raise _cgen.Untranslatable(f"dat {dat.name} storage is not dense {ndim}-D")
        pname = params[k]
        reads = cert.reads_of(pname) or ()
        writes = cert.writes_of(pname) or ()
        if spec[1] and any(any(c != 0 for c in pt) for pt in (*reads, *writes)):
            # the Jacobi hazard: reading a neighbour of a dat you write has
            # different per-element vs per-statement semantics
            raise _cgen.Untranslatable(f"written dat {dat.name} accessed off-centre")
        h = dat.halo_depth
        for pt in (*reads, *writes):
            if len(pt) != ndim:
                raise _cgen.Untranslatable(f"{pname}: offset arity != {ndim}")
            for d, o in enumerate(pt):
                lo, hi = ranges[d]
                if lo + o + h < 0 or hi + o + h > st.shape[d]:
                    raise _cgen.Untranslatable(
                        f"{pname}: offset {pt} leaves storage for range {ranges[d]}"
                    )

    code = _cgen.generate_ops(fn, argspecs, ndim, loop_name)
    cv = _const_values(fn, code, _cgen.ir_for_callable(fn))

    # runtime binding: base pointers pre-offset to the range origin,
    # outer strides in elements, extents per dimension
    ptr_vals = []
    strides: list[int] = []
    for _, k in code.ptr_spec:
        dat = dat_of[k]
        st = dat._storage
        el = [s // st.itemsize for s in st.strides]
        off = sum((ranges[d][0] + dat.halo_depth) * el[d] for d in range(ndim))
        ptr_vals.append(st.ctypes.data + 8 * off)
        strides.extend(el[:-1])
    ptrs = np.asarray(ptr_vals, dtype=np.uint64) if ptr_vals else np.empty(0, np.uint64)
    sarr = np.asarray(strides, dtype=np.int64) if strides else _EMPTY_I64
    marr = np.asarray([_addr(sarr)], dtype=np.uint64)
    narr = np.asarray([hi - lo for lo, hi in ranges], dtype=np.int64)
    red_arr = (
        np.zeros(len(code.red_spec), dtype=np.float64) if code.red_spec else _EMPTY_F64
    )
    cv_arr = cv if cv.size else _EMPTY_F64

    kern = _load(code.source, loop_name)
    call = kern.make_call(_addr(ptrs), _addr(marr), _addr(narr), _addr(red_arr), _addr(cv_arr))
    red_info = [(j, kind, k) for j, (_, k, kind) in enumerate(code.red_spec)]
    keepalive = (kern, ptrs, sarr, marr, narr, cv_arr, args)
    return NativeOpsLoop(call, red_info, red_arr, keepalive)


# -- op2 ----------------------------------------------------------------------

class NativeOp2Loop:
    """A compiled unstructured loop bound to its storage addresses."""

    __slots__ = ("call", "gmm_cells", "red_arr", "guards", "_keepalive")

    def __init__(self, call, gmm_cells, red_arr, guards, keepalive):
        self.call = call
        self.gmm_cells = gmm_cells  # [(slot, glob, cell), ...]
        self.red_arr = red_arr
        self.guards = guards  # [(owner, ndarray), ...] — identity checks
        self._keepalive = keepalive

    def still_valid(self) -> bool:
        """The baked addresses are only valid while every array survives."""
        for owner, arr in self.guards:
            if owner.data is not arr:
                return False
        return True

    def execute(self) -> None:
        red = self.red_arr
        cells = self.gmm_cells
        for j, g, c in cells:
            red[j] = g.data[c]
        self.call()
        for j, g, c in cells:
            g.data[c] = red[j]


def try_compile_op2(kernel, args, backend: str, n: int, loop_name: str) -> NativeOp2Loop | None:
    """Admission + build for one OP2 loop site; None means use vec."""
    if not get_config().native:
        _fallback("op2", loop_name, "disabled")
        return None
    try:
        return _build_op2(kernel, args, backend, n, loop_name)
    except (_cgen.Untranslatable, _cache.NativeUnavailable) as exc:
        _fallback("op2", loop_name, exc.reason)
    except Exception as exc:  # the native tier must never break a plan
        _fallback("op2", loop_name, f"internal:{type(exc).__name__}: {exc}")
    return None


def _build_op2(kernel, args, backend: str, n: int, loop_name: str) -> NativeOp2Loop:
    if backend != "vec":
        # openmp runs coloured subsets; only the single vec sweep is mirrored
        raise _cgen.Untranslatable(f"backend {backend!r} (native mirrors vec)")
    if n <= 0:
        raise _cgen.Untranslatable("empty iteration set")
    fn = getattr(kernel, "func", kernel)

    cert = certify_callable(fn)
    if not cert.translatable:
        raise _cgen.Untranslatable(
            "certificate: " + "; ".join(cert.reasons or ("not translatable",))
        )

    argspecs: list[tuple] = []
    for arg in args:
        acc = arg.access.name
        if arg.glob is not None:
            if acc == "READ":
                argspecs.append(("gread", arg.glob.dim))
            elif acc in ("MIN", "MAX"):
                argspecs.append(("gmm", arg.glob.dim, acc.lower()))
            else:
                raise _cgen.Untranslatable("global INC is pairwise-summed on vec")
            if arg.glob.dtype != np.float64:
                raise _cgen.Untranslatable("global is not float64")
            continue
        dat = arg.dat
        if dat.dtype != np.float64:
            raise _cgen.Untranslatable(f"dat {dat.name} is not float64")
        d = dat.data
        if d.ndim != 2 or not d.flags["C_CONTIGUOUS"] or d.itemsize != 8:
            raise _cgen.Untranslatable(f"dat {dat.name} storage is not dense (n, dim)")
        argspecs.append(("direct" if arg.map is None else "ind", dat.dim, acc))

    # aliasing: a dat with any written argument must either appear exactly
    # once, or be accessed *only* indirectly — indirect reads gather before
    # the sweep and indirect writes scatter after it, in argument order,
    # exactly like the vec schedule, so ordering cannot diverge
    for k, arg in enumerate(args):
        if arg.dat is None or not arg.access.writes:
            continue
        peers = [j for j, a in enumerate(args) if a.dat is arg.dat]
        if len(peers) > 1 and any(args[j].map is None for j in peers):
            raise _cgen.Untranslatable("written dat aliased by a direct argument")

    # component-bounds proof: every certified offset within [0, dim)
    params = _cgen.ir_for_callable(fn).params
    if len(params) != len(args):
        raise _cgen.Untranslatable("argument/parameter count mismatch")
    for k, arg in enumerate(args):
        dim = arg.glob.dim if arg.glob is not None else arg.dat.dim
        pname = params[k]
        for pt in (*(cert.reads_of(pname) or ()), *(cert.writes_of(pname) or ())):
            if len(pt) != 1 or not (0 <= pt[0] < dim):
                raise _cgen.Untranslatable(
                    f"{pname}: component {pt} outside [0, {dim})"
                )

    code = _cgen.generate_op2(fn, argspecs, loop_name)
    cv = _const_values(fn, code, _cgen.ir_for_callable(fn))

    # map columns (plan-owned, int64, bounds-checked) and scratch buffers
    cols: dict[int, np.ndarray] = {}
    for _, k in code.map_spec:
        arg = args[k]
        c = np.ascontiguousarray(arg.map.values[:n, arg.idx], dtype=np.int64)
        if c.size and (c.min() < 0 or c.max() >= arg.dat.data.shape[0]):
            raise _cgen.Untranslatable(f"map column {k} leaves dat rows")
        cols[k] = c
    scratch: dict[int, np.ndarray] = {
        k: np.empty(n * dim, dtype=np.float64) for k, dim in code.scratch_spec
    }

    ptr_vals = []
    guards: list[tuple] = []
    seen = set()
    for role, k in code.ptr_spec:
        if role == "dat":
            d = args[k].dat
            ptr_vals.append(d.data.ctypes.data)
            if id(d) not in seen:
                seen.add(id(d))
                guards.append((d, d.data))
        elif role == "scratch":
            ptr_vals.append(scratch[k].ctypes.data)
        else:  # glob
            g = args[k].glob
            ptr_vals.append(g.data.ctypes.data)
            if id(g) not in seen:
                seen.add(id(g))
                guards.append((g, g.data))
    gmm_cells = []
    for j, entry in enumerate(code.red_spec):
        _, k, c, _kind = entry
        g = args[k].glob
        gmm_cells.append((j, g, c))
        if id(g) not in seen:
            seen.add(id(g))
            guards.append((g, g.data))

    ptrs = np.asarray(ptr_vals, dtype=np.uint64) if ptr_vals else np.empty(0, np.uint64)
    col_arrs = [cols[k] for _, k in code.map_spec]
    marr = (
        np.asarray([_addr(c) for c in col_arrs], dtype=np.uint64)
        if col_arrs
        else np.empty(0, np.uint64)
    )
    narr = np.asarray([n], dtype=np.int64)
    red_arr = (
        np.zeros(len(code.red_spec), dtype=np.float64) if code.red_spec else _EMPTY_F64
    )
    cv_arr = cv if cv.size else _EMPTY_F64

    kern = _load(code.source, loop_name)
    call = kern.make_call(_addr(ptrs), _addr(marr), _addr(narr), _addr(red_arr), _addr(cv_arr))
    keepalive = (kern, ptrs, marr, narr, cv_arr, col_arrs, scratch, args)
    return NativeOp2Loop(call, gmm_cells, red_arr, guards, keepalive)
