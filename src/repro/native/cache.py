"""Compile-and-load machinery: the on-disk shared-object cache.

Generated C is content-addressed: the cache key is a SHA-256 over the
source text, the compiler path and the exact flag vector, so a source
change, a toolchain change or a flag change each produce a new entry and
a stale ``.so`` can never be picked up for new code.  Entries are
published with write-to-temp + ``os.replace``, which is atomic on POSIX:
two processes compiling the same kernel concurrently both succeed and one
rename wins — no locks, no torn files.

Loading prefers cffi's ABI mode (``ffi.dlopen`` — no setuptools, no
compile-against-Python) and falls back to ``ctypes.CDLL``.  Both release
the GIL for the duration of the C call.  A cached ``.so`` that fails to
dlopen (truncated, wrong arch, corrupted) is unlinked and recompiled
once; only if that also fails does the loop fall back to vec.

Compilation flags pin the FP semantics the bitwise guarantee needs:
``-ffp-contract=off`` (GCC defaults to ``fast`` in gnu mode, which would
fuse ``a*b+c`` into FMA and change results) and
``-fno-unsafe-math-optimizations``.  ``-O2`` is safe under those.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
import time

from repro.common.config import get_config

__all__ = [
    "NativeUnavailable",
    "find_compiler",
    "cache_dir",
    "load_kernel",
    "clear_memory_cache",
    "cache_info",
    "cache_clear",
    "cache_prune",
    "CFLAGS",
]


class NativeUnavailable(Exception):
    """No working toolchain/loader: the native tier cannot run here."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


#: exact flag vector — part of the cache key
CFLAGS = (
    "-O2",
    "-std=c11",
    "-fPIC",
    "-shared",
    "-ffp-contract=off",
    "-fno-unsafe-math-optimizations",
)

_SIG = "void kernel_run(double **p, const long long **m, const long long *n, double *red, const double *cv);"

_lock = threading.Lock()
_compiler: tuple[bool, str | None] = (False, None)  # (resolved, path)
_mem: dict[str, "LoadedKernel"] = {}


def find_compiler() -> str | None:
    """The C compiler to use, or None.

    ``REPRO_NATIVE_CC`` overrides discovery: a path/name to use verbatim,
    or ``none`` to disable compilation (the no-toolchain degradation path,
    also what CI's compiler-less matrix leg sets).
    """
    global _compiler
    with _lock:
        resolved, path = _compiler
        if resolved:
            return path
        env = os.environ.get("REPRO_NATIVE_CC")
        if env is not None:
            env = env.strip()
            if env.lower() in ("", "none", "0"):
                path = None
            else:
                path = shutil.which(env) or (env if os.path.exists(env) else None)
        else:
            path = next(
                (p for c in ("cc", "gcc", "clang") if (p := shutil.which(c))),
                None,
            )
        _compiler = (True, path)
        return path


def _reset_compiler_cache() -> None:
    """Testing hook: re-read REPRO_NATIVE_CC on next find_compiler()."""
    global _compiler
    with _lock:
        _compiler = (False, None)


def cache_dir() -> str:
    """The on-disk cache directory (created on first use)."""
    cfg = get_config()
    d = (
        cfg.native_cache_dir
        or os.environ.get("REPRO_NATIVE_CACHE_DIR")
        or os.path.join(os.path.expanduser("~"), ".cache", "repro", "native")
    )
    os.makedirs(d, exist_ok=True)
    return d


def source_key(source: str) -> str:
    """Content hash of one translation unit under the current toolchain."""
    cc = find_compiler() or "none"
    h = hashlib.sha256()
    h.update(source.encode())
    h.update(b"\0")
    h.update(" ".join(CFLAGS).encode())
    h.update(b"\0")
    h.update(cc.encode())
    return h.hexdigest()[:32]


class LoadedKernel:
    """A dlopened entry point with pre-castable argument marshalling."""

    __slots__ = ("path", "_make")

    def __init__(self, path: str, make):
        self.path = path
        self._make = make

    def make_call(self, p_addr: int, m_addr: int, n_addr: int, red_addr: int, cv_addr: int):
        """A zero-argument callable bound to five stable buffer addresses."""
        return self._make(p_addr, m_addr, n_addr, red_addr, cv_addr)


def _load_so(path: str) -> LoadedKernel:
    """dlopen ``path`` via cffi (preferred) or ctypes."""
    try:
        import cffi

        ffi = cffi.FFI()
        ffi.cdef(_SIG)
        lib = ffi.dlopen(path)
        raw = lib.kernel_run

        def make(pa, ma, na, ra, ca, _ffi=ffi, _raw=raw):
            args = (
                _ffi.cast("double **", pa),
                _ffi.cast("const long long **", ma),
                _ffi.cast("const long long *", na),
                _ffi.cast("double *", ra),
                _ffi.cast("const double *", ca),
            )
            return lambda: _raw(*args)

        return LoadedKernel(path, make)
    except ImportError:
        pass  # no cffi in this environment: ctypes below
    import ctypes

    lib = ctypes.CDLL(path)
    raw = lib.kernel_run
    raw.restype = None
    raw.argtypes = [ctypes.c_void_p] * 5

    def make(pa, ma, na, ra, ca, _raw=raw):
        return lambda: _raw(pa, ma, na, ra, ca)

    return LoadedKernel(path, make)


def _compile(source: str, key: str, cc: str, directory: str) -> str:
    """Compile ``source`` and atomically publish ``<key>.c`` + ``<key>.so``."""
    so_path = os.path.join(directory, f"{key}.so")
    fd, tmp_c = tempfile.mkstemp(suffix=".c", dir=directory)
    try:
        with os.fdopen(fd, "w") as f:
            f.write(source)
        tmp_so = tmp_c[:-2] + ".so"
        proc = subprocess.run(
            [cc, *CFLAGS, "-o", tmp_so, tmp_c, "-lm"],
            capture_output=True,
            text=True,
        )
        if proc.returncode != 0:
            raise NativeUnavailable(
                f"cc failed ({proc.returncode}): {proc.stderr.strip()[:500]}"
            )
        # keep the source next to the object for repro-native / debugging
        os.replace(tmp_c, os.path.join(directory, f"{key}.c"))
        tmp_c = None
        os.replace(tmp_so, so_path)
    finally:
        if tmp_c is not None and os.path.exists(tmp_c):
            os.unlink(tmp_c)
    return so_path


def is_cached(source: str) -> bool:
    """True when ``source`` would load without running the compiler."""
    key = source_key(source)
    with _lock:
        if key in _mem:
            return True
    return os.path.exists(os.path.join(cache_dir(), f"{key}.so"))


def load_kernel(source: str) -> tuple[LoadedKernel, bool]:
    """The compiled entry point for ``source``: ``(kernel, was_cached)``.

    ``was_cached`` is True when the ``.so`` came off disk without running
    the compiler (the warm-cache case the benchmarks separate out).
    Raises :class:`NativeUnavailable` when no compiler is available and
    the object is not already cached, or when compilation/loading fails.
    """
    key = source_key(source)
    with _lock:
        hit = _mem.get(key)
    if hit is not None:
        return hit, True

    directory = cache_dir()
    so_path = os.path.join(directory, f"{key}.so")
    was_cached = os.path.exists(so_path)
    if not was_cached:
        cc = find_compiler()
        if cc is None:
            raise NativeUnavailable("no C compiler available")
        so_path = _compile(source, key, cc, directory)
    try:
        kern = _load_so(so_path)
    except OSError:
        # corrupt/stale on-disk object: drop it and compile exactly once
        try:
            os.unlink(so_path)
        except OSError:
            pass
        cc = find_compiler()
        if cc is None:
            raise NativeUnavailable("cached object unloadable and no compiler")
        was_cached = False
        so_path = _compile(source, key, cc, directory)
        kern = _load_so(so_path)
    with _lock:
        _mem[key] = kern
    return kern, was_cached


def clear_memory_cache() -> None:
    """Drop in-process handles (tests; dlopened objects stay mapped)."""
    with _lock:
        _mem.clear()


# -- cache maintenance (the repro-native CLI) ---------------------------------

def _entries(directory: str | None = None) -> list[tuple[str, str, int, float]]:
    d = directory or cache_dir()
    out = []
    try:
        names = os.listdir(d)
    except OSError:
        return out
    for name in sorted(names):
        if not (name.endswith(".so") or name.endswith(".c")):
            continue
        # mkstemp temporaries from an in-flight compile (possibly another
        # process's) share the directory and the suffixes; published keys
        # are hex digests, so the "tmp" prefix cleanly separates them.
        # Counting or unlinking an in-flight temp here would fail the
        # racing compile.
        if name.startswith("tmp"):
            continue
        path = os.path.join(d, name)
        try:
            st = os.stat(path)
        except OSError:
            continue
        out.append((name, path, st.st_size, st.st_mtime))
    return out


def _stale_tmps(directory: str | None = None, min_age_seconds: float = 3600.0) -> list[str]:
    """Leftover mkstemp temporaries from crashed compiles, old enough that
    no live compile can still own them."""
    d = directory or cache_dir()
    cutoff = time.time() - min_age_seconds
    out = []
    try:
        names = os.listdir(d)
    except OSError:
        return out
    for name in names:
        if not name.startswith("tmp"):
            continue
        if not (name.endswith(".so") or name.endswith(".c")):
            continue
        path = os.path.join(d, name)
        try:
            if os.stat(path).st_mtime < cutoff:
                out.append(path)
        except OSError:
            continue
    return out


def cache_info() -> dict:
    """Entry count / byte totals / directory, for ``repro-native info``."""
    d = cache_dir()
    entries = _entries(d)
    sos = [e for e in entries if e[0].endswith(".so")]
    return {
        "dir": d,
        "objects": len(sos),
        "sources": len(entries) - len(sos),
        "bytes": sum(e[2] for e in entries),
        "compiler": find_compiler(),
        "loaded": len(_mem),
    }


def cache_clear() -> int:
    """Remove every cached object+source; returns the number removed.

    In-flight compile temporaries are left alone (unlinking them would fail
    a concurrent compiler); hour-old leftovers from crashed compiles go.
    """
    removed = 0
    for _, path, _, _ in _entries():
        try:
            os.unlink(path)
            removed += 1
        except OSError:
            pass
    for path in _stale_tmps():
        try:
            os.unlink(path)
            removed += 1
        except OSError:
            pass
    clear_memory_cache()
    return removed


def cache_prune(max_age_days: float = 30.0) -> int:
    """Remove entries older than ``max_age_days``; returns the number removed."""
    cutoff = time.time() - max_age_days * 86400.0
    removed = 0
    for _, path, _, mtime in _entries():
        if mtime < cutoff:
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                pass
    for path in _stale_tmps(min_age_seconds=max(max_age_days * 86400.0, 3600.0)):
        try:
            os.unlink(path)
            removed += 1
        except OSError:
            pass
    return removed
