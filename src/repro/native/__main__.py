"""Cache maintenance command line: ``python -m repro.native`` / ``repro-native``.

Subcommands::

    repro-native info             # directory, entry counts, bytes, compiler
    repro-native clear            # remove every cached object + source
    repro-native prune [--days N] # remove entries older than N days (30)

Exit codes: 0 — success; 2 — usage error.
"""

from __future__ import annotations

import argparse
import sys

from repro.native import cache as _cache


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-native",
        description="Inspect and maintain the native compiled-kernel cache.",
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("info", help="show cache directory, entry counts and compiler")
    sub.add_parser("clear", help="remove every cached object and source")
    prune = sub.add_parser("prune", help="remove entries older than --days")
    prune.add_argument(
        "--days", type=float, default=30.0, help="age threshold in days (default 30)"
    )
    args = parser.parse_args(argv)

    if args.command == "info" or args.command is None:
        info = _cache.cache_info()
        print(f"cache dir : {info['dir']}")
        print(f"objects   : {info['objects']} (.so)")
        print(f"sources   : {info['sources']} (.c)")
        print(f"bytes     : {info['bytes']}")
        print(f"compiler  : {info['compiler'] or '(none found)'}")
        print(f"loaded    : {info['loaded']} in-process")
        return 0
    if args.command == "clear":
        removed = _cache.cache_clear()
        print(f"removed {removed} cache entries")
        return 0
    if args.command == "prune":
        removed = _cache.cache_prune(max_age_days=args.days)
        print(f"pruned {removed} entries older than {args.days:g} days")
        return 0
    parser.print_usage(sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main())
