"""Kernel IR → C translation for the native backend.

This is the code generator the paper's translator architecture points at:
the same lowered kernel IR that backs the linter and the abstract
certifier (:mod:`repro.lint.ir`) is walked a third time, now emitting a
small C translation unit per loop.  Two generators share one expression
emitter:

* :func:`generate_ops` — a dense loop nest over the block ranges, with
  per-dat base pointers pre-offset to the range origin and outer strides
  passed at run time (so one ``.so`` serves every tile shape of a given
  structural signature), and
* :func:`generate_op2` — a two-phase loop over an unstructured set:
  phase A computes each element (indirect reads through the map columns,
  writes landing in per-arg scratch), phase B replays the scatters in
  argument order, reproducing the vec executor's gather/compute/scatter
  schedule bitwise (``np.add.at`` and the segment scatter accumulate in
  element order; fancy assignment is last-writer-wins in element order).

Bitwise discipline.  The generated C must produce the *same bits* as the
vec path, so only constructs with an exact NumPy↔C correspondence are
emitted: ``+ - * /`` (IEEE), ``sqrt`` (correctly rounded on both sides),
``fabs``, ``x ** 2`` (NumPy's fast scalar power lowers it to ``x*x``),
ternary selects (``np.where`` computes both branches but selects the
identical value), and NumPy's NaN-aware ``minimum``/``maximum``, whose C
loop is ``(a < b || a != a) ? a : b`` — ties keep the accumulator, NaNs
propagate from either side.  Transcendentals other than ``sqrt``
(``exp``/``log``/``sin``…) are *declined*: NumPy's SIMD routines are not
libm.  Everything declined raises :class:`Untranslatable` with a reason
string that flows into the ``native.fallback`` telemetry instant.

Scalar constants that are not part of the kernel *source* — closure
cells, module globals, defaulted trailing parameters — are never baked
into the C text.  They are loaded from the ``cv`` (constant-vector)
argument at run time, so per-timestep closures (CloverLeaf's ``dt``)
re-use one cached shared object instead of recompiling every step.
Integer constants used in *index* position are the exception: they change
the stencil, i.e. the structure of the loop, and are baked.

Every entry point has one fixed signature::

    void kernel_run(double **p, const long long **m, const long long *n,
                    double *red, const double *cv)

``p``: data pointers (dats, scratch, globals) — ``m``: integer arrays
(map columns / ops strides) — ``n``: iteration extents — ``red``:
reduction cells (in: identity or current value, out: folded) — ``cv``:
runtime scalar constants.
"""

from __future__ import annotations

import ast
import builtins
import inspect
import math
import textwrap
from dataclasses import dataclass

import numpy as np

from repro.lint.ir import (
    EBin,
    ECall,
    ECmp,
    EConst,
    EIf,
    ELoad,
    EName,
    EUn,
    KernelIR,
    SAssign,
    SAug,
    SExpr,
    SFold,
    SFor,
    SIf,
    SReturn,
    TLocal,
    TParam,
    lower_kernel,
)

__all__ = [
    "Untranslatable",
    "NativeCode",
    "ir_for_callable",
    "generate_ops",
    "generate_op2",
]

ENTRY = "kernel_run"


class Untranslatable(Exception):
    """The kernel (or this binding of it) has no bitwise-exact C form."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


@dataclass
class NativeCode:
    """Generated C plus the binding recipe the plan layer marshals."""

    source: str
    entry: str
    #: what each ``p[j]`` slot is: ("dat", argidx) | ("scratch", argidx)
    #: | ("glob", argidx) — in slot order
    ptr_spec: tuple = ()
    #: what each ``m[j]`` slot is: ("strides",) for ops, ("cols", argidx)
    map_spec: tuple = ()
    #: reduction cells in ``red`` order: ("red", argidx, kind) for ops
    #: Reduction handles, ("gmm", argidx, cell, kind) for op2 globals
    red_spec: tuple = ()
    #: names resolved into ``cv`` slots at plan-build time, in slot order;
    #: ``"="name`` is a free/closure read, ``"@"name`` a defaulted parameter
    const_names: tuple = ()
    #: scratch slots: (argidx, n_components) — op2 only
    scratch_spec: tuple = ()


# -- IR retrieval ------------------------------------------------------------

_IR_CACHE: dict = {}


def ir_for_callable(fn) -> KernelIR:
    """The lowered IR of a kernel function, cached by code object.

    Mirrors ``certify_callable``'s source extraction exactly; raises
    :class:`Untranslatable` where the certifier would degrade gracefully,
    because codegen needs the structured body, not just the footprints.
    """
    fn = getattr(fn, "func", fn)  # unwrap Kernel-like wrappers
    code = getattr(fn, "__code__", None)
    if code is None:
        raise Untranslatable("not a plain Python function")
    cached = _IR_CACHE.get(code)
    if cached is not None:
        return cached
    try:
        src = textwrap.dedent(inspect.getsource(fn))
        tree = ast.parse(src)
    except (OSError, TypeError, SyntaxError) as exc:
        raise Untranslatable(f"kernel source unavailable: {exc}") from exc
    fndef = next((n for n in tree.body if isinstance(n, ast.FunctionDef)), None)
    if fndef is None:
        raise Untranslatable("kernel is not a plain `def` function")
    ir = _IR_CACHE[code] = lower_kernel(fndef)
    return ir


# -- C literal spelling / free-name resolution --------------------------------

def _c_double(v: float) -> str:
    f = float(v)
    if f != f:
        return "NAN"
    if f == math.inf:
        return "INFINITY"
    if f == -math.inf:
        return "-INFINITY"
    # hex float literals round-trip every finite double exactly
    return float(f).hex()


def resolve_free(fn, dotted: str):
    """Resolve a free (closure / global / builtin) name read by the kernel."""
    parts = dotted.split(".")
    root = parts[0]
    code = fn.__code__
    if root in code.co_freevars and fn.__closure__ is not None:
        try:
            obj = fn.__closure__[code.co_freevars.index(root)].cell_contents
        except ValueError as exc:  # empty cell
            raise Untranslatable(f"unbound closure cell {root!r}") from exc
    elif root in fn.__globals__:
        obj = fn.__globals__[root]
    elif hasattr(builtins, root):
        obj = getattr(builtins, root)
    else:
        raise Untranslatable(f"unresolvable free name {dotted!r}")
    for attr in parts[1:]:
        try:
            obj = getattr(obj, attr)
        except AttributeError as exc:
            raise Untranslatable(f"unresolvable free name {dotted!r}") from exc
    return obj


#: callables with a bitwise-exact scalar C spelling, matched by identity
#: (a user shadowing ``sqrt`` with their own function must not be compiled)
_SQRT_FNS = (math.sqrt, np.sqrt)
_ABS_FNS = (abs, math.fabs, np.abs, np.absolute)
_MIN_FNS = (min, np.minimum)
_MAX_FNS = (max, np.maximum)
_WHERE_FNS = (np.where,)
_FLOAT_FNS = (float, np.float64)


def _np_select(keep: str, other: str, op: str) -> str:
    """NumPy's minimum/maximum C loop: ``(a OP b || a != a) ? a : b``.

    The first operand wins ties and propagates its NaN; the second
    operand's NaN also propagates (the select falls through to it).
    """
    return f"(({keep} {op} {other} || {keep} != {keep}) ? {keep} : {other})"


# -- bindings ----------------------------------------------------------------

@dataclass
class _Bind:
    """How one kernel parameter is realised in C."""

    role: str  # opsdat | opsred | direct | iread | ibuf | gread | gmm | default
    k: int  # argument position (-1 for defaults)
    dim: int = 1  # components (op2); unused for ops dats
    writable: bool = False
    kind: str = ""  # reduction kind (opsred/gmm) or access name (ibuf)


class _Emitter:
    """Shared statement/expression emitter for both generators."""

    def __init__(self, fn, ir: KernelIR, binds: dict[str, _Bind], kind: str):
        self.fn = fn
        self.ir = ir
        self.binds = binds
        self.kind = kind  # "ops" | "op2"
        self.lines: list[str] = []
        self.loop_vars: set[str] = set()
        self.locals: set[str] = set()
        self.const_slots: dict[str, int] = {}  # tagged name -> cv index
        self._tmp = 0
        self._depth = 1

    # -- constant-vector slots ----------------------------------------------

    def _cv(self, tagged: str) -> str:
        j = self.const_slots.setdefault(tagged, len(self.const_slots))
        return f"cv[{j}]"

    def free_scalar(self, dotted: str) -> str:
        """A free name that must resolve to a Python/NumPy scalar → cv slot."""
        obj = resolve_free(self.fn, dotted)
        if isinstance(obj, bool) or not isinstance(
            obj, (int, float, np.floating, np.integer)
        ):
            raise Untranslatable(f"free name {dotted!r} is not a numeric scalar")
        return self._cv("=" + dotted)

    # -- expression contexts --------------------------------------------------

    def value(self, e) -> str:
        """Emit ``e`` as a double-valued C expression."""
        if isinstance(e, EConst):
            if isinstance(e.value, bool) or not isinstance(e.value, (int, float)):
                raise Untranslatable(f"non-numeric constant {e.value!r}")
            return _c_double(e.value)
        if isinstance(e, EName):
            return self._name_value(e)
        if isinstance(e, ELoad):
            return self.load(e.param, e.index, store=False)
        if isinstance(e, EBin):
            return self._bin(e)
        if isinstance(e, EUn):
            if e.op == "-":
                return f"(-{self.value(e.operand)})"
            if e.op == "+":
                return self.value(e.operand)
            raise Untranslatable(f"unary {e.op!r} in value context")
        if isinstance(e, EIf):
            if self.kind == "ops" and self._data_dependent(e.test):
                # the vec path feeds the original kernel whole arrays; a
                # per-point ternary only has array semantics via np.where
                raise Untranslatable("data-dependent ternary (use np.where)")
            return f"({self.cond(e.test)} ? {self.value(e.body)} : {self.value(e.orelse)})"
        if isinstance(e, ECall):
            return self._call(e)
        if isinstance(e, ECmp):
            raise Untranslatable("boolean value used arithmetically")
        raise Untranslatable(f"unsupported expression {type(e).__name__}")

    def _name_value(self, e: EName) -> str:
        if e.kind == "param":
            b = self.binds.get(e.name)
            if b is None:
                raise Untranslatable(f"unbound parameter {e.name!r}")
            if b.role == "default":
                return self._cv("@" + e.name)
            raise Untranslatable(f"bare reference to array parameter {e.name!r}")
        if e.name in self.loop_vars:
            return f"(double)v_{e.name}"
        if e.name in self.locals:
            return f"l_{e.name}"
        return self.free_scalar(e.name)

    def _bin(self, e: EBin) -> str:
        if e.op in ("+", "-", "*", "/"):
            return f"({self.value(e.left)} {e.op} {self.value(e.right)})"
        if e.op == "**":
            exp = e.right
            if isinstance(exp, EConst) and not isinstance(exp.value, bool):
                ev = float(exp.value)
                x = self.value(e.left)
                # NumPy's fast_scalar_power: square / identity / sqrt /
                # reciprocal are the only exactly-mirrorable exponents
                if ev == 2.0:
                    t = self._fresh()
                    self.emit(f"const double {t} = {x};")
                    return f"({t} * {t})"
                if ev == 1.0:
                    return x
                if ev == 0.5:
                    return f"sqrt({x})"
                if ev == -1.0:
                    return f"(1.0 / {x})"
            raise Untranslatable("general ** has no bitwise C equivalent")
        raise Untranslatable(f"operator {e.op!r} has no bitwise C equivalent")

    def cond(self, e) -> str:
        """Emit ``e`` as an int-valued C condition."""
        if isinstance(e, ECmp):
            if e.ops and e.ops[0] in ("and", "or"):
                j = " && " if e.ops[0] == "and" else " || "
                return "(" + j.join(self.cond(v) for v in e.operands) + ")"
            if not e.ops or len(e.ops) != len(e.operands) - 1:
                raise Untranslatable("comparison with unknown operators")
            parts = []
            for i, op in enumerate(e.ops):
                if op == "?":
                    raise Untranslatable("unsupported comparison operator")
                parts.append(
                    f"({self.value(e.operands[i])} {op} {self.value(e.operands[i + 1])})"
                )
            return "(" + " && ".join(parts) + ")"
        if isinstance(e, EUn) and e.op == "not":
            return f"(!{self.cond(e.operand)})"
        if isinstance(e, EConst) and isinstance(e.value, bool):
            return "1" if e.value else "0"
        # a numeric expression used for truthiness
        return f"({self.value(e)} != 0.0)"

    # -- integer index expressions -------------------------------------------

    def _index_const(self, e) -> int:
        if isinstance(e, EConst) and isinstance(e.value, int) and not isinstance(e.value, bool):
            return e.value
        if isinstance(e, EUn) and e.op in ("-", "+"):
            v = self._index_const(e.operand)
            return -v if e.op == "-" else v
        if isinstance(e, EBin) and e.op in ("+", "-", "*"):
            lv, rv = self._index_const(e.left), self._index_const(e.right)
            return {"+": lv + rv, "-": lv - rv, "*": lv * rv}[e.op]
        if (
            isinstance(e, EName)
            and e.kind == "name"
            and e.name not in self.loop_vars
            and e.name not in self.locals
        ):
            obj = resolve_free(self.fn, e.name)
            if isinstance(obj, (int, np.integer)) and not isinstance(obj, bool):
                return int(obj)
        raise Untranslatable("index is not a compile-time integer")

    def index(self, e) -> str:
        try:
            return str(self._index_const(e))
        except Untranslatable:
            pass
        if isinstance(e, EName) and e.kind == "name" and e.name in self.loop_vars:
            return f"v_{e.name}"
        if isinstance(e, EBin) and e.op in ("+", "-", "*"):
            return f"({self.index(e.left)} {e.op} {self.index(e.right)})"
        if isinstance(e, EUn) and e.op in ("-", "+"):
            return f"({e.op}{self.index(e.operand)})"
        raise Untranslatable("unsupported index expression")

    # -- calls ----------------------------------------------------------------

    def _call(self, e: ECall) -> str:
        if e.func is None:
            raise Untranslatable("dynamic call")
        try:
            target = resolve_free(self.fn, e.func)
        except Untranslatable:
            target = None

        def _is(group) -> bool:
            return any(target is g for g in group)

        if _is(_SQRT_FNS):
            self._arity(e, 1)
            return f"sqrt({self.value(e.args[0])})"
        if _is(_ABS_FNS):
            self._arity(e, 1)
            return f"fabs({self.value(e.args[0])})"
        if _is(_FLOAT_FNS):
            self._arity(e, 1)
            return self.value(e.args[0])
        if _is(_MIN_FNS) or _is(_MAX_FNS):
            if len(e.args) < 2:
                raise Untranslatable(f"{e.func}() needs >= 2 arguments")
            is_min = _is(_MIN_FNS)
            if (target is min or target is max) and self.kind == "ops":
                # the ops vec path calls the *builtin* on scalars: the new
                # value wins only on strict compare, ties/NaNs keep the left
                acc = self.value(e.args[0])
                for a in e.args[1:]:
                    ta, tb = self._fresh(), self._fresh()
                    self.emit(f"const double {ta} = {acc};")
                    self.emit(f"const double {tb} = {self.value(a)};")
                    op = "<" if is_min else ">"
                    acc = f"(({tb} {op} {ta}) ? {tb} : {ta})"
                return acc
            # op2's kernelvec rewrites builtin min/max to a left fold of
            # np.minimum/np.maximum; direct np.minimum calls are the same
            op = "<" if is_min else ">"
            acc = self.value(e.args[0])
            for a in e.args[1:]:
                ta, tb = self._fresh(), self._fresh()
                self.emit(f"const double {ta} = {acc};")
                self.emit(f"const double {tb} = {self.value(a)};")
                acc = _np_select(ta, tb, op)
            return acc
        if _is(_WHERE_FNS):
            self._arity(e, 3)
            return (
                f"({self.cond(e.args[0])} ? {self.value(e.args[1])}"
                f" : {self.value(e.args[2])})"
            )
        raise Untranslatable(f"call to {e.func!r} has no bitwise C equivalent")

    @staticmethod
    def _arity(e: ECall, n: int) -> None:
        if len(e.args) != n:
            raise Untranslatable(f"{e.func}() expects {n} argument(s)")

    # -- parameter loads/stores (provided by the concrete generators) --------

    def load(self, param: str, index, store: bool) -> str:
        raise NotImplementedError

    # -- statements -----------------------------------------------------------

    def emit(self, line: str) -> None:
        self.lines.append("    " * self._depth + line)

    def _fresh(self) -> str:
        self._tmp += 1
        return f"t{self._tmp}"

    def body(self, stmts: list) -> None:
        for i, s in enumerate(stmts):
            if (
                isinstance(s, SExpr)
                and isinstance(s.value, EConst)
                and isinstance(s.value.value, str)
            ):
                continue  # docstring
            if isinstance(s, SReturn):
                if (
                    i == len(stmts) - 1
                    and isinstance(s.value, EConst)
                    and s.value.value is None
                ):
                    continue  # trailing bare return
                raise Untranslatable("return inside kernel body")
            self.stmt(s)

    def stmt(self, s) -> None:
        if isinstance(s, SAssign):
            if len(s.targets) != 1:
                raise Untranslatable("chained assignment")
            self._assign(s.targets[0], s.value, aug=None)
        elif isinstance(s, SAug):
            if s.op not in ("+", "-", "*", "/"):
                raise Untranslatable(f"augmented {s.op}= has no bitwise C equivalent")
            self._assign(s.target, s.value, aug=s.op)
        elif isinstance(s, SFold):
            self._fold(s)
        elif isinstance(s, SIf):
            self._if(s)
        elif isinstance(s, SFor):
            self._for(s)
        elif isinstance(s, SExpr):
            raise Untranslatable("expression statement with effects")
        else:
            raise Untranslatable(f"unsupported statement {type(s).__name__}")

    def _assign(self, target, value, aug: str | None) -> None:
        if isinstance(target, TLocal):
            if target.name in self.loop_vars:
                raise Untranslatable(f"loop variable {target.name!r} reassigned")
            rhs = self.value(value)
            lhs = f"l_{target.name}"
            self.locals.add(target.name)
        elif isinstance(target, TParam):
            b = self.binds.get(target.param)
            if b is None or not b.writable:
                raise Untranslatable(f"write to read-only parameter {target.param!r}")
            rhs = self.value(value)
            lhs = self.load(target.param, target.index, store=True)
        else:
            raise Untranslatable("opaque assignment target")
        if aug is None:
            self.emit(f"{lhs} = {rhs};")
        else:
            self.emit(f"{lhs} {aug}= {rhs};")

    def _fold(self, s: SFold) -> None:
        raise Untranslatable("reduction fold not supported here")

    def _if(self, s: SIf) -> None:
        if self.kind == "op2":
            # kernelvec rejects `if` statements outright: no vec semantics
            raise Untranslatable("if statement (op2 kernels use ternaries)")
        if self._data_dependent(s.test):
            # a data-dependent `if` test on whole arrays has no defined vec
            # meaning; only uniform (scalar) tests ever ran under vec
            raise Untranslatable("data-dependent if test")
        self.emit(f"if {self.cond(s.test)} {{")
        self._depth += 1
        self.body(s.body)
        self._depth -= 1
        if s.orelse:
            self.emit("} else {")
            self._depth += 1
            self.body(s.orelse)
            self._depth -= 1
        self.emit("}")

    def _data_dependent(self, e) -> bool:
        stack = [e]
        while stack:
            x = stack.pop()
            if isinstance(x, ELoad):
                return True
            if isinstance(x, EName) and (x.kind == "param" or x.name in self.locals):
                return True
            for attr in ("left", "right", "operand", "test", "body", "orelse"):
                v = getattr(x, attr, None)
                if v is not None:
                    stack.append(v)
            for attr in ("operands", "args", "elts"):
                stack.extend(getattr(x, attr, ()) or ())
        return False

    def _for(self, s: SFor) -> None:
        var = s.var
        if var in self.binds or var in self.locals:
            raise Untranslatable(f"loop variable {var!r} shadows another name")
        lo, hi, st = self.index(s.start), self.index(s.stop), self.index(s.step)
        if st != "1":
            raise Untranslatable("non-unit range step")
        self.emit(f"for (long long v_{var} = {lo}; v_{var} < {hi}; ++v_{var}) {{")
        self.loop_vars.add(var)
        self._depth += 1
        self.body(s.body)
        self._depth -= 1
        self.loop_vars.discard(var)
        self.emit("}")

    def declared_locals(self) -> list[str]:
        return sorted(self.locals)


# -- ops generator ------------------------------------------------------------

class _OpsEmitter(_Emitter):
    def __init__(self, fn, ir, binds, ndim: int):
        super().__init__(fn, ir, binds, "ops")
        self.ndim = ndim
        self.red_regs: dict[str, int] = {}  # param name -> red slot

    def load(self, param: str, index, store: bool) -> str:
        b = self.binds.get(param)
        if b is None:
            raise Untranslatable(f"unbound parameter {param!r}")
        if b.role != "opsdat":
            raise Untranslatable(f"subscript on non-dat parameter {param!r}")
        if index is None or len(index) != self.ndim:
            raise Untranslatable(f"{param!r} indexed with wrong arity")
        terms = []
        for d in range(self.ndim):
            off = self.index(index[d])
            pos = f"i{d}" if off == "0" else f"(i{d} + ({off}))"
            if d < self.ndim - 1:
                terms.append(f"{pos} * s{b.k}_{d}")
            else:
                terms.append(pos)
        return f"p{b.k}[{' + '.join(terms)}]"

    def _fold(self, s: SFold) -> None:
        b = self.binds.get(s.param)
        if b is None or b.role != "opsred":
            raise Untranslatable("fold on a non-reduction parameter")
        if s.method != b.kind:
            raise Untranslatable(f".{s.method}() fold on a {b.kind!r} reduction")
        if b.kind not in ("min", "max"):
            # Reduction('inc') accumulates via np.sum (pairwise) on the vec
            # path — a sequential C loop is NOT bitwise-identical
            raise Untranslatable("inc reduction is pairwise-summed on vec")
        op = "<" if b.kind == "min" else ">"
        j = self.red_regs[s.param]
        for a in s.args:
            t = self._fresh()
            self.emit(f"const double {t} = {self.value(a)};")
            # np.min folds rows sequentially with the NumPy select: the
            # running register wins ties and propagates its NaN
            self.emit(f"r{j} = {_np_select(f'r{j}', t, op)};")


def generate_ops(fn, argspecs, ndim: int, loop_name: str) -> NativeCode:
    """Generate C for one OPS structured loop.

    ``argspecs`` classifies each loop argument: ``("dat", writes)`` or
    ``("red", kind)`` — structure only, never values.
    """
    fn = getattr(fn, "func", fn)
    ir = ir_for_callable(fn)
    params = ir.params
    if len(argspecs) > len(params):
        raise Untranslatable("more loop arguments than kernel parameters")
    if len(params) - len(argspecs) > ir.n_defaults:
        raise Untranslatable("unbound kernel parameters without defaults")

    binds: dict[str, _Bind] = {}
    ptr_spec: list = []
    red_spec: list = []
    dat_args: list[int] = []
    for k, spec in enumerate(argspecs):
        name = params[k]
        if spec[0] == "dat":
            binds[name] = _Bind("opsdat", k, writable=bool(spec[1]))
            ptr_spec.append(("dat", k))
            dat_args.append(k)
        elif spec[0] == "red":
            binds[name] = _Bind("opsred", k, kind=spec[1])
            red_spec.append(("red", k, spec[1]))
        else:
            raise Untranslatable(f"argument {k} is neither dat nor reduction")
    for name in params[len(argspecs):]:
        binds[name] = _Bind("default", -1)

    em = _OpsEmitter(fn, ir, binds, ndim)
    for j, (_, k, _kind) in enumerate(red_spec):
        em.red_regs[params[k]] = j
    em._depth = ndim
    em.body(ir.body)

    decls: list[str] = []
    for j, (_, k) in enumerate(ptr_spec):
        decls.append(f"    double *p{k} = p[{j}];")
    si = 0
    for k in dat_args:
        for d in range(ndim - 1):
            decls.append(f"    const long long s{k}_{d} = m[0][{si}];")
            si += 1
    for j in range(len(red_spec)):
        decls.append(f"    double r{j} = red[{j}];")
    for d in range(ndim):
        decls.append(f"    const long long n{d} = n[{d}];")

    nest_open = [
        "    " * (d + 1) + f"for (long long i{d} = 0; i{d} < n{d}; ++i{d}) {{"
        for d in range(ndim)
    ]
    local_decls = ["    " * (ndim + 1) + f"double l_{nm};" for nm in em.declared_locals()]
    body_lines = ["    " + ln for ln in em.lines]
    nest_close = ["    " * (d + 1) + "}" for d in range(ndim - 1, -1, -1)]
    epilogue = [f"    red[{j}] = r{j};" for j in range(len(red_spec))]

    source = "\n".join(
        [
            "#include <math.h>",
            "",
            f"/* ops loop '{loop_name}': kernel '{ir.name}', {ndim}-D nest */",
            "void kernel_run(double **p, const long long **m, const long long *n,",
            "                double *red, const double *cv)",
            "{",
            "    (void)p; (void)m; (void)red; (void)cv;",
            *decls,
            *nest_open,
            *local_decls,
            *body_lines,
            *nest_close,
            *epilogue,
            "}",
            "",
        ]
    )
    return NativeCode(
        source=source,
        entry=ENTRY,
        ptr_spec=tuple(ptr_spec),
        map_spec=(("strides",),) if dat_args else (),
        red_spec=tuple(red_spec),
        const_names=tuple(em.const_slots),
    )


# -- op2 generator -------------------------------------------------------------

class _Op2Emitter(_Emitter):
    def __init__(self, fn, ir, binds):
        super().__init__(fn, ir, binds, "op2")

    def load(self, param: str, index, store: bool) -> str:
        b = self.binds.get(param)
        if b is None:
            raise Untranslatable(f"unbound parameter {param!r}")
        if index is None or len(index) != 1:
            raise Untranslatable(f"{param!r} indexed with wrong arity")
        c = self.index(index[0])
        if b.role == "direct":
            return f"p{b.k}[e * {b.dim} + {c}]"
        if b.role == "iread":
            if store:
                raise Untranslatable(f"write to READ parameter {param!r}")
            return f"p{b.k}[t{b.k} * {b.dim} + {c}]"
        if b.role == "ibuf":
            return f"S{b.k}[e * {b.dim} + {c}]"
        if b.role == "gread":
            if store:
                raise Untranslatable(f"write to READ global {param!r}")
            return f"g{b.k}[{c}]"
        if b.role == "gmm":
            return f"a{b.k}[{c}]"
        raise Untranslatable(f"subscript on scalar parameter {param!r}")

    def _fold(self, s: SFold) -> None:
        # `t[0] = min(t[0], x)` on a MIN/MAX global: kernelvec runs it as
        # row = np.minimum(row, x) — the row (first operand) wins ties
        b = self.binds.get(s.param)
        if b is None or b.role != "gmm":
            raise Untranslatable("fold on a non-global parameter")
        if s.method != b.kind:
            raise Untranslatable(f"{s.method} fold on a {b.kind} global")
        if s.index is None or len(s.index) != 1:
            raise Untranslatable("fold with wrong index arity")
        cell = f"a{b.k}[{self.index(s.index[0])}]"
        op = "<" if b.kind == "min" else ">"
        for a in s.args:
            t = self._fresh()
            self.emit(f"const double {t} = {self.value(a)};")
            self.emit(f"{cell} = {_np_select(cell, t, op)};")


def generate_op2(fn, argspecs, loop_name: str) -> NativeCode:
    """Generate two-phase C for one OP2 unstructured loop.

    ``argspecs`` classifies each argument: ``("direct", dim, access)``,
    ``("ind", dim, access)``, ``("gread", dim)`` or ``("gmm", dim, kind)``.
    """
    fn = getattr(fn, "func", fn)
    ir = ir_for_callable(fn)
    params = ir.params
    if len(argspecs) != len(params):
        raise Untranslatable("argument/parameter count mismatch")

    binds: dict[str, _Bind] = {}
    ptr_spec: list = []
    map_spec: list = []
    red_spec: list = []
    scratch_spec: list = []
    gmm_args: list[int] = []
    for k, spec in enumerate(argspecs):
        name = params[k]
        role = spec[0]
        if role == "gread":
            binds[name] = _Bind("gread", k, dim=int(spec[1]))
            ptr_spec.append(("glob", k))
        elif role == "gmm":
            dim, kind = int(spec[1]), spec[2]
            binds[name] = _Bind("gmm", k, dim=dim, writable=True, kind=kind)
            gmm_args.append(k)
            for c in range(dim):
                red_spec.append(("gmm", k, c, kind))
        elif role in ("direct", "ind"):
            dim, acc = int(spec[1]), spec[2]
            if acc not in ("READ", "WRITE", "RW", "INC"):
                raise Untranslatable(f"access {acc} on a dat argument")
            writes = acc != "READ"
            if role == "direct":
                binds[name] = _Bind("direct", k, dim=dim, writable=writes)
                ptr_spec.append(("dat", k))
            else:
                map_spec.append(("cols", k))
                if writes:
                    binds[name] = _Bind("ibuf", k, dim=dim, writable=True, kind=acc)
                    ptr_spec.append(("dat", k))
                    ptr_spec.append(("scratch", k))
                    scratch_spec.append((k, dim))
                else:
                    binds[name] = _Bind("iread", k, dim=dim)
                    ptr_spec.append(("dat", k))
        else:
            raise Untranslatable(f"unknown argument role {role!r}")

    em = _Op2Emitter(fn, ir, binds)
    em._depth = 2
    em.body(ir.body)

    decls: list[str] = []
    for j, (role, k) in enumerate(ptr_spec):
        if role == "dat":
            decls.append(f"    double *p{k} = p[{j}];")
        elif role == "scratch":
            decls.append(f"    double *S{k} = p[{j}];")
        else:
            decls.append(f"    const double *g{k} = p[{j}];")
    for j, (_, k) in enumerate(map_spec):
        decls.append(f"    const long long *c{k} = m[{j}];")
    decls.append("    const long long ne = n[0];")
    for k in gmm_args:
        b = binds[params[k]]
        for c in range(b.dim):
            decls.append(f"    double acc{k}_{c} = red[{_red_slot(red_spec, k, c)}];")

    # phase A prologue per element: map columns, scratch init, global cells
    pro: list[str] = []
    for _, k in map_spec:
        pro.append(f"        const long long t{k} = c{k}[e];")
    for k, dim in scratch_spec:
        b = binds[params[k]]
        if b.kind == "INC":
            for c in range(dim):
                pro.append(f"        S{k}[e * {dim} + {c}] = 0.0;")
        else:
            # WRITE and RW both gather the current values (the vec path's
            # _G_TAKE), so an unwritten component scatters back unchanged
            for c in range(dim):
                pro.append(
                    f"        S{k}[e * {dim} + {c}] = p{k}[t{k} * {dim} + {c}];"
                )
    for k in gmm_args:
        b = binds[params[k]]
        pro.append(f"        double a{k}[{b.dim}];")
        for c in range(b.dim):
            pro.append(f"        a{k}[{c}] = red[{_red_slot(red_spec, k, c)}];")

    # per-element epilogue: fold each global row into the running
    # accumulator the way buf.min(axis=0) does — sequential over elements,
    # accumulator wins ties (and g_old seeds the chain, matching the final
    # np.minimum(g, buf.min(axis=0)) exactly)
    gmm_epi: list[str] = []
    for k in gmm_args:
        b = binds[params[k]]
        op = "<" if b.kind == "min" else ">"
        for c in range(b.dim):
            acc = f"acc{k}_{c}"
            gmm_epi.append(f"        {acc} = {_np_select(acc, f'a{k}[{c}]', op)};")

    local_decls = [f"        double l_{nm};" for nm in em.declared_locals()]

    # phase B: scatters replayed in argument order (np.add.at element
    # order for INC; fancy-assign last-writer-wins element order otherwise)
    phase_b: list[str] = []
    for k, dim in scratch_spec:
        b = binds[params[k]]
        assign = "+=" if b.kind == "INC" else "="
        phase_b.append("    for (long long e = 0; e < ne; ++e) {")
        phase_b.append(f"        const long long w{k} = c{k}[e];")
        for c in range(dim):
            phase_b.append(
                f"        p{k}[w{k} * {dim} + {c}] {assign} S{k}[e * {dim} + {c}];"
            )
        phase_b.append("    }")

    epilogue = [
        f"    red[{_red_slot(red_spec, k, c)}] = acc{k}_{c};"
        for k in gmm_args
        for c in range(binds[params[k]].dim)
    ]

    source = "\n".join(
        [
            "#include <math.h>",
            "",
            f"/* op2 loop '{loop_name}': kernel '{ir.name}', two-phase */",
            "void kernel_run(double **p, const long long **m, const long long *n,",
            "                double *red, const double *cv)",
            "{",
            "    (void)p; (void)m; (void)red; (void)cv;",
            *decls,
            "    for (long long e = 0; e < ne; ++e) {",
            *pro,
            *local_decls,
            *em.lines,
            *gmm_epi,
            "    }",
            *phase_b,
            *epilogue,
            "}",
            "",
        ]
    )
    return NativeCode(
        source=source,
        entry=ENTRY,
        ptr_spec=tuple(ptr_spec),
        map_spec=tuple(map_spec),
        red_spec=tuple(red_spec),
        const_names=tuple(em.const_slots),
        scratch_spec=tuple(scratch_spec),
    )


def _red_slot(red_spec: list, k: int, c: int) -> int:
    for j, entry in enumerate(red_spec):
        if entry[0] == "gmm" and entry[1] == k and entry[2] == c:
            return j
    raise Untranslatable("missing reduction slot")
