"""Native compiled-kernel backend (the paper's "active library" endgame).

The translator has always emitted backend C *text* (Fig 7); this package
closes the loop and runs it.  Certified kernels — those whose
:class:`repro.lint.abstract.KernelCertificate` proves complete lowering,
purity and bounded extents — are lowered from the kernel IR to a small C
translation unit, compiled once into an on-disk shared-object cache, and
dispatched as a tier *inside* the existing execplan plans, so the lazy
tiling queue and the serving layer inherit compiled execution for free.

Admission is deliberately bitwise-conservative: only loops whose C
execution is IEEE-identical to the vec path are compiled (elementwise
arithmetic, ``sqrt``/``fabs``, ternary selects, order-exact MIN/MAX folds,
occurrence-order INC scatters).  Float *accumulations* whose NumPy
reduction is pairwise (global INC, ``Reduction("inc")``) are declined, so
``REPRO_NATIVE=1`` (the default) never perturbs a single bit of any
existing backend-equivalence guarantee.  Everything declined — by the
certificate, the structural gate, a missing toolchain, or ``REPRO_NATIVE=0``
— falls back to the vec path with one ``native.fallback`` telemetry
instant and a counter tick.
"""

from repro.native.cgen import Untranslatable, generate_op2, generate_ops, ir_for_callable
from repro.native.cache import (
    NativeUnavailable,
    cache_clear,
    cache_dir,
    cache_info,
    cache_prune,
    clear_memory_cache,
    find_compiler,
    load_kernel,
)
from repro.native.plan import NativeOp2Loop, NativeOpsLoop, try_compile_op2, try_compile_ops

__all__ = [
    "Untranslatable",
    "NativeUnavailable",
    "generate_ops",
    "generate_op2",
    "ir_for_callable",
    "cache_dir",
    "cache_info",
    "cache_clear",
    "cache_prune",
    "clear_memory_cache",
    "find_compiler",
    "load_kernel",
    "NativeOpsLoop",
    "NativeOp2Loop",
    "try_compile_ops",
    "try_compile_op2",
]
