"""Shared primitives used by every subsystem.

This package deliberately has no dependency on any other ``repro``
subpackage; everything else builds on top of it.
"""

from repro.common.access import Access, OP_READ, OP_WRITE, OP_RW, OP_INC, OP_MIN, OP_MAX
from repro.common.counters import PerfCounters, LoopRecord
from repro.common.errors import (
    ReproError,
    APIError,
    PlanError,
    StencilMismatchError,
    PartitionError,
    CheckpointError,
    TranslatorError,
)

__all__ = [
    "Access",
    "OP_READ",
    "OP_WRITE",
    "OP_RW",
    "OP_INC",
    "OP_MIN",
    "OP_MAX",
    "PerfCounters",
    "LoopRecord",
    "ReproError",
    "APIError",
    "PlanError",
    "StencilMismatchError",
    "PartitionError",
    "CheckpointError",
    "TranslatorError",
]
