"""Human-readable diagnostics, in the spirit of OP2's op_timing_output.

The paper (Section II-C) highlights the built-in development aids: per-loop
timing breakdowns and consistency checks.  :func:`timing_report` renders
the active counters the way OP2 prints its loop table.
"""

from __future__ import annotations

from repro.common.counters import PerfCounters


def timing_report(counters: PerfCounters, *, top: int | None = None) -> str:
    """Per-loop table: count, time, bandwidth, arithmetic intensity.

    ``top`` selects the N most *expensive* loops (by wall time), but the
    selected rows render sorted by loop name: wall times jitter from run to
    run, so a time-ordered table would make report goldens unstable.
    """
    # reporting is an observation point: queued lazy loops must execute (and
    # account) before their rows are rendered.  Deferred import — repro.ops
    # depends on repro.common, not vice versa
    from repro.ops import lazy as _lazy

    _lazy.flush_point("timing_report")
    rows = []
    for rec in counters.loops.values():
        gb = rec.bytes_moved / 1e9
        bw = gb / rec.wall_seconds if rec.wall_seconds > 0 else 0.0
        ai = rec.flops / rec.bytes_moved if rec.bytes_moved else 0.0
        rows.append((rec.wall_seconds, rec.name, rec.invocations, rec.iterations, gb, bw, ai, rec.colours))
    if top is not None:
        rows.sort(key=lambda r: (-r[0], r[1]))
        rows = rows[:top]
    rows.sort(key=lambda r: r[1])

    header = (
        f"{'loop':<24}{'calls':>7}{'iterations':>12}{'GB moved':>10}"
        f"{'time(s)':>9}{'GB/s':>8}{'flop/B':>8}{'colours':>8}"
    )
    lines = [header, "-" * len(header)]
    for secs, name, calls, iters, gb, bw, ai, colours in rows:
        lines.append(
            f"{name:<24}{calls:>7}{iters:>12}{gb:>10.3f}"
            f"{secs:>9.3f}{bw:>8.1f}{ai:>8.2f}{colours:>8}"
        )
    lines.append("-" * len(header))
    total_t = sum(r[0] for r in rows)
    total_gb = sum(r[4] for r in rows)
    lines.append(f"{'total':<24}{'':>7}{'':>12}{total_gb:>10.3f}{total_t:>9.3f}")
    if counters.halo_exchanges or counters.messages_sent:
        lines.append(
            f"comm: {counters.halo_exchanges} halo exchanges, "
            f"{counters.messages_sent} messages, "
            f"{counters.bytes_sent / 1e6:.2f} MB sent, "
            f"{counters.reductions} reductions"
        )
    if counters.faults_injected or counters.restarts:
        lines.append(
            f"resilience: {counters.faults_injected} faults injected "
            f"({counters.messages_dropped} dropped, "
            f"{counters.messages_delayed} delayed, "
            f"{counters.messages_duplicated} duplicated), "
            f"{counters.messages_retried} retries, "
            f"{counters.restarts} restarts, "
            f"{counters.recovery_seconds:.3f} s in recovery"
        )
    if counters.plan_hits or counters.plan_misses:
        lines.append(
            f"execplan: {counters.plan_hits} hits, {counters.plan_misses} misses "
            f"({100.0 * counters.plan_hit_rate:.1f}% hit rate), "
            f"{counters.plan_invalidations} invalidations, "
            f"{counters.plan_evictions} evictions"
        )
    if counters.loops_sanitized:
        lines.append(
            f"verify: {counters.loops_sanitized} loops sanitized, "
            f"{counters.shadow_runs} shadow runs"
        )
    if counters.lazy_flushes:
        lines.append(
            f"lazy: {counters.lazy_flushes} flushes, "
            f"{counters.lazy_loops} loops queued, "
            f"{counters.lazy_groups} fused groups in {counters.lazy_tiles} tiles, "
            f"chain cache {counters.chain_hits}/{counters.chain_misses} hit/miss "
            f"({100.0 * counters.chain_hit_rate:.1f}%), "
            f"{counters.lazy_bytes_saved / 1e6:.2f} MB movement saved"
        )
    if counters.native_calls or counters.native_fallbacks:
        lines.append(
            f"native: {counters.native_calls} compiled-kernel calls, "
            f"so-cache {counters.native_cache_hits}/{counters.native_cache_misses} "
            f"hit/miss ({100.0 * counters.native_cache_hit_rate:.1f}%), "
            f"{counters.native_compiles} cc runs, "
            f"{counters.native_fallbacks} fallbacks"
        )
    # deferred import: repro.telemetry depends on repro.common, not vice versa
    from repro import telemetry

    tele = telemetry.summary()
    if tele is not None:
        lines.append(tele)
    return "\n".join(lines)
