"""Monotonic identity tokens for cache keys.

Caches used to key on ``id(obj)``, which is unsound: once an object is
garbage collected CPython may hand its address to a brand-new object, and
the cache then returns state computed for the dead one.  Every cacheable
runtime object (Set, Map, Dat, Global, Kernel, Block...) instead carries a
process-unique monotonic ``token`` assigned at construction; tokens are
never reused, so a token-keyed entry can only ever match the object it was
built from.
"""

from __future__ import annotations

import itertools

# itertools.count() is atomic under the GIL, so token draws are thread-safe
# (simulated MPI ranks construct per-rank Sets/Maps/Dats concurrently)
_counter = itertools.count(1)


def next_token() -> int:
    """Draw a fresh process-unique token."""
    return next(_counter)


def stable_token(obj) -> int | tuple:
    """A stable cache token for ``obj``.

    Prefers the object's own ``token`` attribute; otherwise assigns one on
    first use (plain functions, e.g. OPS kernels, accept new attributes).
    Objects that accept neither fall back to ``("id", id(obj))`` — callers
    using that fallback must hold a strong reference to ``obj`` for the
    lifetime of the cache entry so the id cannot be recycled.
    """
    tok = getattr(obj, "token", None)
    if tok is not None:
        return tok
    tok = getattr(obj, "_repro_token", None)
    if tok is not None:
        return tok
    tok = next_token()
    try:
        obj._repro_token = tok
    except (AttributeError, TypeError):
        return ("id", id(obj))
    return tok


def kernel_token(fn) -> int | tuple:
    """A cache token for a kernel callable, shared by equivalent functions.

    Kernel factories (``make_pdv_kernel(dt, dx, dy)``) return a *fresh*
    closure on every call, and nested ``def``s mint a fresh function object
    per enclosing call; keying compiled plans on the function object would
    make every invocation a cache miss.  Functions with the same code
    object and the same (hashable) captured state are semantically
    identical, so they map to one token — the code object plus everything
    that parameterises it: closure cell values, positional defaults, and
    keyword-only defaults.  Defaults matter: ``def pdv(..., frac=0.5 * dt)``
    bakes a per-step timestep into ``__defaults__``, and a token that
    ignored it would replay a stale kernel.  The code object is held alive
    by the cache key, so its identity hash can never be recycled.  Anything
    without a code object, or capturing unhashable state, falls back to
    :func:`stable_token`.
    """
    code = getattr(fn, "__code__", None)
    if code is None:
        return stable_token(fn)
    closure = getattr(fn, "__closure__", None)
    kwdefaults = getattr(fn, "__kwdefaults__", None)
    try:
        cells = tuple(c.cell_contents for c in closure) if closure else ()
        values = (
            cells,
            getattr(fn, "__defaults__", None) or (),
            tuple(sorted(kwdefaults.items())) if kwdefaults else (),
        )
        hash(values)
    except (ValueError, TypeError):  # empty cell or unhashable capture
        return stable_token(fn)
    return ("code", code, values)
