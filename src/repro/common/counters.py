"""Performance counters.

Every parallel-loop execution records how much data it moved and how much
arithmetic it performed.  The counters are *measured* from the access
descriptors and set/range sizes — they are exact for the abstract machine —
and are the input to :mod:`repro.perfmodel`, which converts them into
predicted runtimes on catalogued hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field
# bound once at import: Timer sits on every par_loop hot path, and the
# two-level ``time.perf_counter`` attribute walk is measurable there
from time import perf_counter as _perf_counter


@dataclass
class LoopRecord:
    """Aggregated statistics for one named parallel loop."""

    name: str
    invocations: int = 0
    iterations: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    flops: int = 0
    indirect_reads: int = 0
    indirect_writes: int = 0
    #: unique-location portion of the indirect traffic: what reaches DRAM
    #: when caches capture all re-references (res_calc reads each cell's q
    #: once from memory even though ~4 edges reference it)
    indirect_reads_unique: int = 0
    indirect_writes_unique: int = 0
    colours: int = 0
    wall_seconds: float = 0.0

    @property
    def bytes_moved(self) -> int:
        """Total off-chip traffic (read + written)."""
        return self.bytes_read + self.bytes_written

    @property
    def is_indirect(self) -> bool:
        """True if the loop ever touched data through a mapping."""
        return (self.indirect_reads + self.indirect_writes) > 0

    def merge(self, other: "LoopRecord") -> None:
        """Fold another record (same loop, e.g. another rank) into this one."""
        self.invocations += other.invocations
        self.iterations += other.iterations
        self.bytes_read += other.bytes_read
        self.bytes_written += other.bytes_written
        self.flops += other.flops
        self.indirect_reads += other.indirect_reads
        self.indirect_writes += other.indirect_writes
        self.indirect_reads_unique += other.indirect_reads_unique
        self.indirect_writes_unique += other.indirect_writes_unique
        self.colours = max(self.colours, other.colours)
        self.wall_seconds += other.wall_seconds


@dataclass
class PerfCounters:
    """Per-run registry of loop records and communication counters."""

    loops: dict[str, LoopRecord] = field(default_factory=dict)
    messages_sent: int = 0
    bytes_sent: int = 0
    reductions: int = 0
    halo_exchanges: int = 0
    # -- resilience: injected faults and recovery cost --------------------------
    faults_injected: int = 0
    messages_dropped: int = 0
    messages_retried: int = 0
    messages_delayed: int = 0
    messages_duplicated: int = 0
    restarts: int = 0
    recovery_seconds: float = 0.0
    # -- verification: sanitizer activity ---------------------------------------
    loops_sanitized: int = 0
    shadow_runs: int = 0
    # -- compiled loop executors: plan-cache traffic -----------------------------
    plan_hits: int = 0
    plan_misses: int = 0
    plan_invalidations: int = 0
    plan_evictions: int = 0
    # -- lazy execution: queue flushes, fusion and schedule-cache traffic ---------
    lazy_flushes: int = 0
    lazy_loops: int = 0
    lazy_groups: int = 0
    lazy_tiles: int = 0
    #: modelled DRAM traffic avoided by keeping fused tiles cache-resident
    lazy_bytes_saved: int = 0
    chain_hits: int = 0
    chain_misses: int = 0
    # -- native backend: compiled-kernel dispatch and the .so cache ---------------
    native_calls: int = 0
    native_compiles: int = 0
    native_cache_hits: int = 0
    native_cache_misses: int = 0
    native_fallbacks: int = 0

    def loop(self, name: str) -> LoopRecord:
        """Return (creating if needed) the record for loop ``name``."""
        rec = self.loops.get(name)
        if rec is None:
            rec = self.loops[name] = LoopRecord(name)
        return rec

    def record_message(self, nbytes: int) -> None:
        self.messages_sent += 1
        self.bytes_sent += int(nbytes)

    def record_halo_exchange(self, nmessages: int, nbytes: int) -> None:
        self.halo_exchanges += 1
        self.messages_sent += int(nmessages)
        self.bytes_sent += int(nbytes)

    def record_reduction(self) -> None:
        self.reductions += 1

    def record_fault(self, kind: str) -> None:
        """Account one injected fault firing (kill/drop/delay/duplicate/slow)."""
        self.faults_injected += 1
        if kind == "drop":
            self.messages_dropped += 1
        elif kind == "delay":
            self.messages_delayed += 1
        elif kind == "duplicate":
            self.messages_duplicated += 1

    def record_message_retried(self) -> None:
        self.messages_retried += 1

    def record_restart(self, recovery_seconds: float) -> None:
        self.restarts += 1
        self.recovery_seconds += recovery_seconds

    def record_sanitized_loop(self, shadow_runs: int = 0) -> None:
        """Account one loop executed under the access-descriptor sanitizer."""
        self.loops_sanitized += 1
        self.shadow_runs += int(shadow_runs)

    def record_plan_hit(self) -> None:
        self.plan_hits += 1

    def record_plan_miss(self) -> None:
        self.plan_misses += 1

    def record_plan_invalidation(self) -> None:
        self.plan_invalidations += 1

    def record_plan_eviction(self) -> None:
        self.plan_evictions += 1

    def record_lazy_flush(self, nloops: int) -> None:
        """Account one lazy-queue flush executing ``nloops`` deferred loops."""
        self.lazy_flushes += 1
        self.lazy_loops += int(nloops)

    def record_lazy_group(self, ntiles: int, bytes_saved: int) -> None:
        """Account one fused group executed as ``ntiles`` cross-loop tiles."""
        self.lazy_groups += 1
        self.lazy_tiles += int(ntiles)
        self.lazy_bytes_saved += int(bytes_saved)

    def record_chain_hit(self) -> None:
        self.chain_hits += 1

    def record_chain_miss(self) -> None:
        self.chain_misses += 1

    def record_native_call(self) -> None:
        """Account one loop executed through a compiled C entry point."""
        self.native_calls += 1

    def record_native_compile(self) -> None:
        """Account one actual C-compiler invocation (a .so cache miss pays it)."""
        self.native_compiles += 1

    def record_native_cache_hit(self) -> None:
        self.native_cache_hits += 1

    def record_native_cache_miss(self) -> None:
        self.native_cache_misses += 1

    def record_native_fallback(self) -> None:
        """Account one loop declined by the native tier (ran on vec instead)."""
        self.native_fallbacks += 1

    @property
    def chain_hit_rate(self) -> float:
        """Fraction of flushes served from the chain-schedule cache."""
        total = self.chain_hits + self.chain_misses
        return self.chain_hits / total if total else 0.0

    @property
    def native_cache_hit_rate(self) -> float:
        """Fraction of compiled-kernel lookups served without running cc."""
        total = self.native_cache_hits + self.native_cache_misses
        return self.native_cache_hits / total if total else 0.0

    @property
    def plan_hit_rate(self) -> float:
        """Fraction of fast-path lookups served from the compiled-loop cache."""
        total = self.plan_hits + self.plan_misses
        return self.plan_hits / total if total else 0.0

    def merge(self, other: "PerfCounters") -> None:
        """Fold another counter set (e.g. from another simulated rank) in."""
        for name, rec in other.loops.items():
            self.loop(name).merge(rec)
        self.messages_sent += other.messages_sent
        self.bytes_sent += other.bytes_sent
        self.reductions += other.reductions
        self.halo_exchanges += other.halo_exchanges
        self.faults_injected += other.faults_injected
        self.messages_dropped += other.messages_dropped
        self.messages_retried += other.messages_retried
        self.messages_delayed += other.messages_delayed
        self.messages_duplicated += other.messages_duplicated
        self.restarts += other.restarts
        self.recovery_seconds += other.recovery_seconds
        self.loops_sanitized += other.loops_sanitized
        self.shadow_runs += other.shadow_runs
        self.plan_hits += other.plan_hits
        self.plan_misses += other.plan_misses
        self.plan_invalidations += other.plan_invalidations
        self.plan_evictions += other.plan_evictions
        self.lazy_flushes += other.lazy_flushes
        self.lazy_loops += other.lazy_loops
        self.lazy_groups += other.lazy_groups
        self.lazy_tiles += other.lazy_tiles
        self.lazy_bytes_saved += other.lazy_bytes_saved
        self.chain_hits += other.chain_hits
        self.chain_misses += other.chain_misses
        self.native_calls += other.native_calls
        self.native_compiles += other.native_compiles
        self.native_cache_hits += other.native_cache_hits
        self.native_cache_misses += other.native_cache_misses
        self.native_fallbacks += other.native_fallbacks

    def reset(self) -> None:
        self.loops.clear()
        self.messages_sent = 0
        self.bytes_sent = 0
        self.reductions = 0
        self.halo_exchanges = 0
        self.faults_injected = 0
        self.messages_dropped = 0
        self.messages_retried = 0
        self.messages_delayed = 0
        self.messages_duplicated = 0
        self.restarts = 0
        self.recovery_seconds = 0.0
        self.loops_sanitized = 0
        self.shadow_runs = 0
        self.plan_hits = 0
        self.plan_misses = 0
        self.plan_invalidations = 0
        self.plan_evictions = 0
        self.lazy_flushes = 0
        self.lazy_loops = 0
        self.lazy_groups = 0
        self.lazy_tiles = 0
        self.lazy_bytes_saved = 0
        self.chain_hits = 0
        self.chain_misses = 0
        self.native_calls = 0
        self.native_compiles = 0
        self.native_cache_hits = 0
        self.native_cache_misses = 0
        self.native_fallbacks = 0

    def summary_rows(self) -> list[tuple[str, int, int, int, float]]:
        """Rows of (loop, iterations, bytes, flops, seconds), insertion order."""
        return [
            (r.name, r.iterations, r.bytes_moved, r.flops, r.wall_seconds)
            for r in self.loops.values()
        ]


class Timer:
    """Context manager accumulating wall time onto a :class:`LoopRecord`."""

    def __init__(self, record: LoopRecord):
        self._record = record
        self._t0 = 0.0

    def __enter__(self) -> "Timer":
        self._t0 = _perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._record.wall_seconds += _perf_counter() - self._t0
