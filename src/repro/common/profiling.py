"""Shared profiling and loop-observation scaffolding.

Both libraries route loop statistics into the *active* counters (a global
default, overridable with :func:`counters_scope`) and announce every loop
execution to registered observers — the hook the checkpointing subsystem
uses to watch the loop chain.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.common.access import Access
from repro.common.counters import PerfCounters

_global_counters = PerfCounters()
_counters_stack: list[PerfCounters] = []
_observers: list[Callable[["LoopEvent"], None]] = []


@dataclass
class ArgEvent:
    """Access descriptor of one loop argument, library-agnostic."""

    name: str
    access: Access
    dim: int
    indirect: bool = False
    is_global: bool = False
    data_ref: Any = None  # the Dat/Global object, for checkpoint saves


@dataclass
class LoopEvent:
    """What observers see: loop name plus its argument descriptors.

    An observer may set ``skip`` to suppress the loop body — the mechanism
    behind checkpoint-recovery fast-forwarding, where "the op_par_loops do
    not carry out any computations, only set the value of op_arg_gbl
    arguments" (paper Section VI).
    """

    name: str
    args: list[ArgEvent] = field(default_factory=list)
    api: str = "op2"
    skip: bool = False


def active_counters() -> PerfCounters:
    """The counters currently receiving loop statistics."""
    return _counters_stack[-1] if _counters_stack else _global_counters


def global_counters() -> PerfCounters:
    """The process-default counters."""
    return _global_counters


@contextlib.contextmanager
def counters_scope(counters: PerfCounters) -> Iterator[PerfCounters]:
    """Route loop statistics to ``counters`` within the scope."""
    _counters_stack.append(counters)
    try:
        yield counters
    finally:
        _counters_stack.pop()


def add_loop_observer(fn: Callable[[LoopEvent], None]) -> None:
    """Register a callback invoked before every loop execution."""
    _observers.append(fn)


def remove_loop_observer(fn: Callable[[LoopEvent], None]) -> None:
    _observers.remove(fn)


def notify_loop(event: LoopEvent) -> None:
    """Announce a loop execution to all observers."""
    for obs in list(_observers):
        obs(event)


@contextlib.contextmanager
def loop_chain_record() -> Iterator[list[LoopEvent]]:
    """Record the sequence of loops executed inside the scope."""
    events: list[LoopEvent] = []
    _observers.append(events.append)
    try:
        yield events
    finally:
        _observers.remove(events.append)
