"""Shared profiling and loop-observation scaffolding.

Both libraries route loop statistics into the *active* counters (a global
default, overridable with :func:`counters_scope`) and announce every loop
execution to registered observers — the hook the checkpointing subsystem
uses to watch the loop chain.
"""

from __future__ import annotations

import contextlib
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.common.access import Access
from repro.common.counters import PerfCounters

_global_counters = PerfCounters()
_observers: list[Callable[["LoopEvent"], None]] = []

# Counter scopes are per-thread: simulated MPI ranks run as threads, and a
# shared scope stack would cross-route loop statistics between ranks (and
# let one rank pop another's scope).  Loop observers come in two flavours:
# process-wide (serial tooling such as loop_chain_record) and thread-local
# (per-rank checkpoint managers and fault injectors inside run_spmd).
_tls = threading.local()


def _counters_stack() -> list[PerfCounters]:
    stack = getattr(_tls, "counters_stack", None)
    if stack is None:
        stack = _tls.counters_stack = []
    return stack


def _local_observers() -> list[Callable[["LoopEvent"], None]]:
    obs = getattr(_tls, "observers", None)
    if obs is None:
        obs = _tls.observers = []
    return obs


@dataclass
class ArgEvent:
    """Access descriptor of one loop argument, library-agnostic."""

    name: str
    access: Access
    dim: int
    indirect: bool = False
    is_global: bool = False
    data_ref: Any = None  # the Dat/Global object, for checkpoint saves


@dataclass
class LoopEvent:
    """What observers see: loop name plus its argument descriptors.

    An observer may set ``skip`` to suppress the loop body — the mechanism
    behind checkpoint-recovery fast-forwarding, where "the op_par_loops do
    not carry out any computations, only set the value of op_arg_gbl
    arguments" (paper Section VI).
    """

    name: str
    args: list[ArgEvent] = field(default_factory=list)
    api: str = "op2"
    skip: bool = False


def active_counters() -> PerfCounters:
    """The counters currently receiving loop statistics (per-thread)."""
    stack = _counters_stack()
    return stack[-1] if stack else _global_counters


def global_counters() -> PerfCounters:
    """The process-default counters."""
    return _global_counters


@contextlib.contextmanager
def counters_scope(counters: PerfCounters) -> Iterator[PerfCounters]:
    """Route this thread's loop statistics to ``counters`` within the scope.

    Leaving the scope is an observation point for lazily queued loops:
    the caller is about to read ``counters``, so work queued inside the
    scope must execute (and account) before the routing is popped.  On an
    exceptional exit the queue is left alone — it drains at the next
    observation point — so the flush can never mask the original error.
    """
    stack = _counters_stack()
    stack.append(counters)
    try:
        yield counters
    except BaseException:
        stack.pop()
        raise
    else:
        # deferred import: repro.ops depends on repro.common, not vice versa
        from repro.ops import lazy as _lazy

        try:
            _lazy.flush_point("counters_scope_exit")
        finally:
            stack.pop()


def add_loop_observer(fn: Callable[[LoopEvent], None], *, local: bool = False) -> None:
    """Register a callback invoked before every loop execution.

    With ``local=True`` the observer only sees loops executed by the
    registering thread — how per-rank observers (checkpoint managers,
    recovery replayers, fault plans) coexist inside a threaded SPMD run.

    Installation is an observation point for the lazy runtime: loops the
    calling thread queued *before* this call drain first, because eager
    execution would have run them before the observer existed — so the
    observer sees exactly the eager event stream from installation
    onwards.  (A global observer installed from another thread cannot
    drain that thread's queue; such a queue falls back to whole-loop
    replay at its next flush.)
    """
    # deferred import: repro.ops depends on repro.common, not vice versa
    from repro.ops import lazy as _lazy

    _lazy.flush_point("observer_install")
    (_local_observers() if local else _observers).append(fn)


def remove_loop_observer(fn: Callable[[LoopEvent], None], *, local: bool = False) -> None:
    (_local_observers() if local else _observers).remove(fn)


def observers_active() -> bool:
    """True when any process-wide or this-thread loop observer is registered.

    The par_loop hot paths use this to skip building a :class:`LoopEvent`
    (and the per-arg :class:`ArgEvent` list) entirely when nobody is
    listening — the common case outside checkpointed/traced runs.
    """
    if _observers:
        return True
    local = getattr(_tls, "observers", None)
    return bool(local)


def notify_loop(event: LoopEvent) -> None:
    """Announce a loop execution to all process-wide, then thread-local, observers."""
    for obs in list(_observers):
        obs(event)
    local = getattr(_tls, "observers", None)
    if local:
        for obs in list(local):
            obs(event)


@contextlib.contextmanager
def loop_chain_record() -> Iterator[list[LoopEvent]]:
    """Record the sequence of loops executed inside the scope."""
    events: list[LoopEvent] = []
    _observers.append(events.append)
    try:
        yield events
    finally:
        _observers.remove(events.append)
