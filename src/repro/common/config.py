"""Global runtime configuration knobs.

Kept intentionally tiny: a plain dataclass instance that subsystems read at
call time, so tests can flip flags with ``swap()``.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, replace
from typing import Iterator


@dataclass
class Config:
    """Runtime options shared across subsystems."""

    #: run OPS runtime stencil verification on every loop (slow; for debugging)
    check_stencils: bool = False
    #: shadow-execute every parallel loop under the access-descriptor
    #: sanitizer (repro.verify): READ args guarded read-only, written
    #: footprints diffed against the declared maps/ranges.  Very slow; the
    #: off-mode cost is a single flag test per loop.
    verify_descriptors: bool = False
    #: with the sanitizer on, also run the shadow-pair checks that prove
    #: OP_WRITE args never read their old value and OP_INC args are pure
    #: increments (two extra executions of every loop on cloned data)
    verify_shadow: bool = True
    #: default block size for OP2 colouring plans (elements per mini-block)
    plan_block_size: int = 256
    #: use compiled loop executors (repro.op2.execplan / repro.ops.execplan):
    #: the first invocation of a loop signature builds a CompiledLoop (plan +
    #: buffer arena + scatter schedule), later invocations replay it.  Off
    #: means every call takes the interpreted path (the pre-plan behaviour;
    #: benchmarks toggle this to measure the amortisation win)
    use_execplan: bool = True
    #: maximum number of compiled loops kept per registry (LRU eviction)
    execplan_cache_size: int = 512
    #: below this many scattered entries an OP_INC scatter keeps using
    #: ``np.add.at``: the sort/segment machinery only pays off on bulk
    #: scatters, and tiny loops (boundary conditions) stay on the simple path
    execplan_scatter_min: int = 64
    #: default CUDA-sim thread-block size
    cuda_block_size: int = 128
    #: collect per-loop performance counters
    profiling: bool = True
    #: verbose diagnostics to stdout
    verbose: bool = False
    #: seconds a blocking simmpi receive waits before declaring deadlock;
    #: resilience tests with induced failures lower this so a lost message
    #: does not stall the suite for a minute
    deadlock_timeout: float = 60.0


_config = Config()


def get_config() -> Config:
    """Return the live configuration object."""
    return _config


@contextlib.contextmanager
def swap(**overrides) -> Iterator[Config]:
    """Temporarily override configuration fields.

    >>> with swap(check_stencils=True):
    ...     ...
    """
    global _config
    old = _config
    _config = replace(old, **overrides)
    try:
        yield _config
    finally:
        _config = old
