"""Global runtime configuration knobs.

Kept intentionally tiny: a plain dataclass instance that subsystems read at
call time, so tests can flip flags with ``swap()``.  Fields marked with an
environment variable below are initialised from the process environment, so
deployments (the serving layer in particular) can size caches without code
changes; :func:`configure` applies persistent in-process overrides on top.
"""

from __future__ import annotations

import contextlib
import os
from dataclasses import dataclass, field, replace
from typing import Iterator


def _env_int(name: str, default: int) -> int:
    """An integer default overridable from the environment (bad values ignored)."""
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        return default
    return value if value >= 1 else default


def _env_float(name: str, default: float) -> float:
    """A float default overridable from the environment (bad values ignored)."""
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        value = float(raw)
    except ValueError:
        return default
    return value if value > 0 else default


def _env_bool(name: str, default: bool) -> bool:
    """A boolean default overridable from the environment (``1``/``true`` on)."""
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw.strip().lower() in ("1", "true", "yes", "on")


@dataclass
class Config:
    """Runtime options shared across subsystems."""

    #: run OPS runtime stencil verification on every loop (slow; for debugging)
    check_stencils: bool = False
    #: shadow-execute every parallel loop under the access-descriptor
    #: sanitizer (repro.verify): READ args guarded read-only, written
    #: footprints diffed against the declared maps/ranges.  Very slow; the
    #: off-mode cost is a single flag test per loop.
    verify_descriptors: bool = False
    #: with the sanitizer on, also run the shadow-pair checks that prove
    #: OP_WRITE args never read their old value and OP_INC args are pure
    #: increments (two extra executions of every loop on cloned data)
    verify_shadow: bool = True
    #: default block size for OP2 colouring plans (elements per mini-block)
    plan_block_size: int = 256
    #: use compiled loop executors (repro.op2.execplan / repro.ops.execplan):
    #: the first invocation of a loop signature builds a CompiledLoop (plan +
    #: buffer arena + scatter schedule), later invocations replay it.  Off
    #: means every call takes the interpreted path (the pre-plan behaviour;
    #: benchmarks toggle this to measure the amortisation win)
    use_execplan: bool = True
    #: maximum number of compiled loops kept per registry (LRU eviction).
    #: Default 512 plans per registry (op2 and ops each keep their own);
    #: override per process with ``REPRO_EXECPLAN_CACHE_SIZE`` or at runtime
    #: with :func:`configure` / ``op2.set_plan_cache_capacity`` — the serving
    #: layer sizes this to hold every tenant's warm plans simultaneously
    execplan_cache_size: int = field(
        default_factory=lambda: _env_int("REPRO_EXECPLAN_CACHE_SIZE", 512)
    )
    #: below this many scattered entries an OP_INC scatter keeps using
    #: ``np.add.at``: the sort/segment machinery only pays off on bulk
    #: scatters, and tiny loops (boundary conditions) stay on the simple path
    execplan_scatter_min: int = 64
    #: default CUDA-sim thread-block size
    cuda_block_size: int = 128
    #: queue OPS par_loops instead of executing them eagerly; the queue
    #: drains in skewed cross-loop tiles at the first data observation
    #: (``repro.ops.lazy``).  ``REPRO_LAZY=1`` enables it process-wide
    lazy: bool = field(default_factory=lambda: _env_bool("REPRO_LAZY", False))
    #: per-dimension cross-loop tile shape for lazy flushes; ``None`` picks
    #: an adaptive default (``tileplan.DEFAULT_TILE`` capped to the chain's
    #: extents)
    lazy_tile: tuple[int, ...] | None = None
    #: maximum loops fused into one cross-loop tile group
    lazy_max_group: int = 16
    #: queued loops per thread before a forced flush (bounds deferral of a
    #: program that never observes its data)
    lazy_queue_limit: int = 512
    #: maximum cached chain schedules (LRU; ``REPRO_CHAIN_CACHE_SIZE``)
    chain_cache_size: int = field(
        default_factory=lambda: _env_int("REPRO_CHAIN_CACHE_SIZE", 128)
    )
    #: compile certified kernels to native C entry points behind the
    #: execplan tier (repro.native).  Only bitwise-safe loops are admitted,
    #: so this is on by default; ``REPRO_NATIVE=0`` disables it process-wide
    #: and every declined loop falls back to the vec path transparently
    native: bool = field(default_factory=lambda: _env_bool("REPRO_NATIVE", True))
    #: on-disk shared-object cache directory for compiled kernels; ``None``
    #: means ``$REPRO_NATIVE_CACHE_DIR`` or ``~/.cache/repro/native``
    native_cache_dir: str | None = field(
        default_factory=lambda: os.environ.get("REPRO_NATIVE_CACHE_DIR") or None
    )
    #: collect per-loop performance counters
    profiling: bool = True
    #: verbose diagnostics to stdout
    verbose: bool = False
    #: seconds a blocking simmpi receive waits before declaring deadlock;
    #: resilience tests with induced failures lower this so a lost message
    #: does not stall the suite for a minute
    deadlock_timeout: float = 60.0
    #: seconds between wakeups while a multi-process receive or the worker
    #: supervisor polls pipes and failure flags (``REPRO_MP_POLL``); the
    #: upper bound on how late a worker death is noticed
    mp_poll_interval: float = field(
        default_factory=lambda: _env_float("REPRO_MP_POLL", 0.05)
    )
    #: directory where multi-process workers export their telemetry rings as
    #: ``trace-rank<NNN>.jsonl`` on exit (``REPRO_MP_TRACE_DIR``); ``None``
    #: disables per-worker trace export
    mp_trace_dir: str | None = field(
        default_factory=lambda: os.environ.get("REPRO_MP_TRACE_DIR") or None
    )


_config = Config()


def get_config() -> Config:
    """Return the live configuration object."""
    return _config


def configure(**overrides) -> Config:
    """Apply persistent configuration overrides (unlike the scoped ``swap``).

    >>> configure(execplan_cache_size=2048)

    Returns the new live configuration.  Unknown field names raise
    ``TypeError`` exactly as ``dataclasses.replace`` would.
    """
    global _config
    _config = replace(_config, **overrides)
    return _config


@contextlib.contextmanager
def swap(**overrides) -> Iterator[Config]:
    """Temporarily override configuration fields.

    >>> with swap(check_stencils=True):
    ...     ...
    """
    global _config
    old = _config
    _config = replace(old, **overrides)
    try:
        yield _config
    finally:
        _config = old
