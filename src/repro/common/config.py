"""Global runtime configuration knobs.

Kept intentionally tiny: a plain dataclass instance that subsystems read at
call time, so tests can flip flags with ``swap()``.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, replace
from typing import Iterator


@dataclass
class Config:
    """Runtime options shared across subsystems."""

    #: run OPS runtime stencil verification on every loop (slow; for debugging)
    check_stencils: bool = False
    #: default block size for OP2 colouring plans (elements per mini-block)
    plan_block_size: int = 256
    #: default CUDA-sim thread-block size
    cuda_block_size: int = 128
    #: collect per-loop performance counters
    profiling: bool = True
    #: verbose diagnostics to stdout
    verbose: bool = False
    #: seconds a blocking simmpi receive waits before declaring deadlock;
    #: resilience tests with induced failures lower this so a lost message
    #: does not stall the suite for a minute
    deadlock_timeout: float = 60.0


_config = Config()


def get_config() -> Config:
    """Return the live configuration object."""
    return _config


@contextlib.contextmanager
def swap(**overrides) -> Iterator[Config]:
    """Temporarily override configuration fields.

    >>> with swap(check_stencils=True):
    ...     ...
    """
    global _config
    old = _config
    _config = replace(old, **overrides)
    try:
        yield _config
    finally:
        _config = old
