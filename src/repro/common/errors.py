"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class APIError(ReproError):
    """Invalid use of the OP2/OPS public API (bad arguments, wrong sets...)."""


class PlanError(ReproError):
    """Failure while constructing or validating a colouring execution plan."""


class StencilMismatchError(ReproError):
    """A kernel accessed a point outside its declared stencil (OPS runtime check)."""


class PartitionError(ReproError):
    """Failure while partitioning a mesh across MPI ranks."""


class CheckpointError(ReproError):
    """Failure while planning, writing or restoring a checkpoint."""


class TranslatorError(ReproError):
    """Failure while parsing an application or generating backend code."""
