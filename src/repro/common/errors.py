"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class APIError(ReproError):
    """Invalid use of the OP2/OPS public API (bad arguments, wrong sets...)."""


class PlanError(ReproError):
    """Failure while constructing or validating a colouring execution plan."""


class StencilMismatchError(ReproError):
    """A kernel accessed a point outside its declared stencil (OPS runtime check)."""


class PartitionError(ReproError):
    """Failure while partitioning a mesh across MPI ranks."""


class CheckpointError(ReproError):
    """Failure while planning, writing or restoring a checkpoint."""


class ResilienceError(ReproError):
    """Base class for simulated-failure conditions (injection and detection)."""


class RankKilledError(ResilienceError):
    """Raised inside a rank that a :class:`FaultPlan` scheduled to die."""


class RankFailedError(ResilienceError):
    """A communication partner has failed; raised promptly instead of a
    deadlock timeout so peers of a dead rank fail fast."""


class MessageLostError(ResilienceError):
    """A transient message fault persisted through every configured retry."""


class TranslatorError(ReproError):
    """Failure while parsing an application or generating backend code."""
