"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class APIError(ReproError):
    """Invalid use of the OP2/OPS public API (bad arguments, wrong sets...)."""


class AccessDeclarationError(APIError):
    """An access mode is invalid for the argument it was declared on.

    Raised at declaration time (building the descriptor) or, for
    descriptors constructed outside the public helpers, when the loop
    validates its arguments; carries the structured context so tools can
    report it without parsing the message.
    """

    def __init__(
        self,
        message: str,
        *,
        dat: str | None = None,
        access: str | None = None,
        loop: str | None = None,
        arg_index: int | None = None,
    ):
        super().__init__(message)
        self.dat = dat
        self.access = access
        self.loop = loop
        self.arg_index = arg_index


class PlanError(ReproError):
    """Failure while constructing or validating a colouring execution plan."""


class StencilMismatchError(ReproError):
    """A kernel accessed a point outside its declared stencil (OPS runtime check)."""


class DescriptorViolation(StencilMismatchError):
    """A kernel broke its declared access descriptor (the sanitizer's verdict).

    Structured so tooling can point at the exact site: ``loop`` is the loop
    name, ``arg_index`` the position of the offending argument (None when the
    violation is attributed to a dat rather than a single arg), ``kind`` one
    of the check identifiers (``read-arg-written``, ``write-outside-footprint``,
    ``inc-not-increment``, ``write-reads-old-value``, ``stencil``), and
    ``indices`` the first few offending element/grid indices.
    """

    def __init__(
        self,
        message: str,
        *,
        loop: str = "?",
        arg_index: int | None = None,
        kind: str = "descriptor",
        indices: tuple = (),
    ):
        super().__init__(message)
        self.loop = loop
        self.arg_index = arg_index
        self.kind = kind
        self.indices = tuple(indices)


class RaceViolation(ReproError):
    """A colouring plan admits two concurrent updates of one location."""


class PartitionError(ReproError):
    """Failure while partitioning a mesh across MPI ranks."""


class CheckpointError(ReproError):
    """Failure while planning, writing or restoring a checkpoint."""


class ResilienceError(ReproError):
    """Base class for simulated-failure conditions (injection and detection)."""


class RankKilledError(ResilienceError):
    """Raised inside a rank that a :class:`FaultPlan` scheduled to die."""


class RankFailedError(ResilienceError):
    """A communication partner has failed; raised promptly instead of a
    deadlock timeout so peers of a dead rank fail fast."""


class MessageLostError(ResilienceError):
    """A transient message fault persisted through every configured retry."""


class WorkerDiedError(ResilienceError):
    """A real worker process exited without reporting a result (SIGKILL, OOM,
    segfault...).  Carries the rank and the raw exit code so the resilient
    driver can classify the death as recoverable."""

    def __init__(self, message: str, *, rank: int, exitcode: int | None = None):
        super().__init__(message)
        self.rank = rank
        self.exitcode = exitcode


class TranslatorError(ReproError):
    """Failure while parsing an application or generating backend code."""


class TelemetryError(ReproError):
    """Invalid use of the tracing API (mismatched span exit, bad trace file)."""


class ServeError(ReproError):
    """Invalid use of the serving layer (bad job spec, illegal transition)."""


class AdmissionRejected(ServeError):
    """Base class for typed backpressure: the queue refused a submission.

    Carries the structured context (``tenant``, ``limit``, ``depth``) so
    clients can implement retry/backoff without parsing messages.
    """

    def __init__(self, message: str, *, tenant: str, limit: int, depth: int):
        super().__init__(message)
        self.tenant = tenant
        self.limit = limit
        self.depth = depth


class QueueFullRejected(AdmissionRejected):
    """The global queue depth limit was reached (whole-service backpressure)."""


class TenantQuotaRejected(AdmissionRejected):
    """One tenant's pending-job quota was reached (per-tenant fair admission)."""
