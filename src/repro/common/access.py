"""Access descriptors shared by OP2 and OPS.

The access mode of every argument is the heart of the access-execute
abstraction: the library uses it to derive halo exchanges, race-avoidance
colouring, reduction handling and checkpoint save/drop decisions.
"""

from __future__ import annotations

import enum

from repro.common.errors import AccessDeclarationError


class Access(enum.Enum):
    """How a parallel-loop argument accesses its dataset.

    Mirrors OP2's ``OP_READ`` / ``OP_WRITE`` / ``OP_RW`` / ``OP_INC`` and the
    global-reduction modes ``OP_MIN`` / ``OP_MAX``.
    """

    READ = "read"
    WRITE = "write"
    RW = "rw"
    INC = "inc"
    MIN = "min"
    MAX = "max"

    @property
    def reads(self) -> bool:
        """True if the old value of the data is observed by the kernel."""
        return self in (Access.READ, Access.RW, Access.INC, Access.MIN, Access.MAX)

    @property
    def writes(self) -> bool:
        """True if the kernel may modify the data."""
        return self is not Access.READ

    @property
    def is_reduction(self) -> bool:
        """True for modes that combine contributions (INC/MIN/MAX)."""
        return self in (Access.INC, Access.MIN, Access.MAX)

    @property
    def short(self) -> str:
        """One/two-letter code used in Figure-8-style tables (R/W/I/RW/MIN/MAX)."""
        return {
            Access.READ: "R",
            Access.WRITE: "W",
            Access.RW: "RW",
            Access.INC: "I",
            Access.MIN: "MIN",
            Access.MAX: "MAX",
        }[self]


def validate_argument_access(
    access: Access,
    *,
    is_global: bool,
    dat: str | None = None,
    loop: str | None = None,
    arg_index: int | None = None,
) -> None:
    """Check an access mode is legal for the argument it is declared on.

    MIN/MAX are reduction modes: their results are combined across
    threads and ranks, which only makes sense for Global/Reduction
    handles — per-element dats have no combine step.  Called at
    declaration time by the op2/ops descriptor builders and re-checked
    when a loop validates its arguments (for descriptors built by hand),
    so the error can name the loop and argument position.
    """
    if access in (Access.MIN, Access.MAX) and not is_global:
        where = f" of loop {loop!r}" if loop else ""
        pos = f" (argument {arg_index})" if arg_index is not None else ""
        raise AccessDeclarationError(
            f"{access.name} access declared for {dat or 'a dat'!r}{pos}{where}: "
            "MIN/MAX are global-reduction modes and are only valid on "
            "Global/Reduction arguments",
            dat=dat, access=access.name, loop=loop, arg_index=arg_index,
        )


# OP2/OPS-style module-level aliases, so application code reads like the paper.
OP_READ = Access.READ
OP_WRITE = Access.WRITE
OP_RW = Access.RW
OP_INC = Access.INC
OP_MIN = Access.MIN
OP_MAX = Access.MAX
