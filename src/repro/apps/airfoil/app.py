"""Airfoil driver: the OP2 loop chain (paper Fig 8's sequence).

One outer iteration is save_soln followed by two Runge-Kutta-like inner
sweeps of adt_calc, res_calc, bres_calc, update — the 9-loop periodic
sequence the speculative checkpoint placement detects.
"""

from __future__ import annotations

import numpy as np

from repro import op2
from repro.apps.airfoil.kernels import (
    CFL,
    EPS,
    GAM,
    GM1,
    K_ADT_CALC,
    K_BRES_CALC,
    K_RES_CALC,
    K_SAVE_SOLN,
    K_UPDATE,
    QINF0,
    QINF1,
    QINF2,
    QINF3,
)
from repro.apps.airfoil.mesh import AirfoilMesh, generate_mesh
from repro.simmpi.comm import SimComm


def default_qinf() -> np.ndarray:
    """The free-stream conserved state (rho, rho*u, rho*v, rho*E)."""
    return np.asarray([QINF0, QINF1, QINF2, QINF3])


class AirfoilApp:
    """Airfoil written against the OP2 API."""

    RK_STEPS = 2  # inner sweeps per outer iteration, as in the original

    def __init__(self, mesh: AirfoilMesh | None = None, *, nx: int = 60, ny: int = 40,
                 jitter: float = 0.0, backend: str = "vec"):
        self.mesh = mesh if mesh is not None else generate_mesh(nx, ny, jitter=jitter)
        self.backend = backend
        self.rms = op2.Global(1, 0.0, name="rms")

    # -- one outer iteration, serial ------------------------------------------------

    def iteration(self) -> None:
        m = self.mesh
        be = self.backend
        op2.par_loop(K_SAVE_SOLN, m.cells, m.q(op2.READ), m.qold(op2.WRITE), backend=be)
        for _ in range(self.RK_STEPS):
            op2.par_loop(
                K_ADT_CALC,
                m.cells,
                m.x(op2.READ, m.cell2node, 0),
                m.x(op2.READ, m.cell2node, 1),
                m.x(op2.READ, m.cell2node, 2),
                m.x(op2.READ, m.cell2node, 3),
                m.q(op2.READ),
                m.adt(op2.WRITE),
                backend=be,
            )
            op2.par_loop(
                K_RES_CALC,
                m.edges,
                m.x(op2.READ, m.edge2node, 0),
                m.x(op2.READ, m.edge2node, 1),
                m.q(op2.READ, m.edge2cell, 0),
                m.q(op2.READ, m.edge2cell, 1),
                m.adt(op2.READ, m.edge2cell, 0),
                m.adt(op2.READ, m.edge2cell, 1),
                m.res(op2.INC, m.edge2cell, 0),
                m.res(op2.INC, m.edge2cell, 1),
                backend=be,
            )
            op2.par_loop(
                K_BRES_CALC,
                m.bedges,
                m.x(op2.READ, m.bedge2node, 0),
                m.x(op2.READ, m.bedge2node, 1),
                m.q(op2.READ, m.bedge2cell, 0),
                m.adt(op2.READ, m.bedge2cell, 0),
                m.res(op2.INC, m.bedge2cell, 0),
                m.bound(op2.READ),
                backend=be,
            )
            self.rms.data[:] = 0.0
            op2.par_loop(
                K_UPDATE,
                m.cells,
                m.qold(op2.READ),
                m.q(op2.WRITE),
                m.res(op2.RW),
                m.adt(op2.READ),
                self.rms(op2.INC),
                backend=be,
            )

    def run(self, iterations: int) -> float:
        """Run ``iterations`` outer iterations; returns the final RMS residual."""
        for _ in range(iterations):
            self.iteration()
        return float(np.sqrt(self.rms.value / self.mesh.cells.size))

    # -- distributed execution ----------------------------------------------------------

    def build_partitioned(self, nranks: int, method: str = "block"):
        """Partition the mesh for ``nranks`` ranks (cells are primary)."""
        from repro.op2.halo import build_partitioned_mesh
        from repro.op2.partition import partition_set

        m = self.mesh
        coords = None
        if method == "rcb":
            # cell centroids from the 4 corner nodes
            coords = m.x.data[m.cell2node.values].mean(axis=1)
        assign = partition_set(
            m.cells.size, nranks, method, coords=coords, map_=m.cell2node
        ).assignment
        return build_partitioned_mesh(
            nranks, m.cells, assign, m.all_maps, m.all_dats, [self.rms]
        )

    def run_distributed(self, comm: SimComm, pm, iterations: int) -> float:
        """SPMD body: run the loop chain on one rank of a partitioned mesh."""
        m = self.mesh
        rm = pm.local(comm.rank)
        be = self.backend
        lrms = rm.local_global(self.rms)
        for _ in range(iterations):
            rm.par_loop(comm, K_SAVE_SOLN, m.cells, m.q(op2.READ), m.qold(op2.WRITE), backend=be)
            for _ in range(self.RK_STEPS):
                rm.par_loop(
                    comm,
                    K_ADT_CALC,
                    m.cells,
                    m.x(op2.READ, m.cell2node, 0),
                    m.x(op2.READ, m.cell2node, 1),
                    m.x(op2.READ, m.cell2node, 2),
                    m.x(op2.READ, m.cell2node, 3),
                    m.q(op2.READ),
                    m.adt(op2.WRITE),
                    backend=be,
                )
                rm.par_loop(
                    comm,
                    K_RES_CALC,
                    m.edges,
                    m.x(op2.READ, m.edge2node, 0),
                    m.x(op2.READ, m.edge2node, 1),
                    m.q(op2.READ, m.edge2cell, 0),
                    m.q(op2.READ, m.edge2cell, 1),
                    m.adt(op2.READ, m.edge2cell, 0),
                    m.adt(op2.READ, m.edge2cell, 1),
                    m.res(op2.INC, m.edge2cell, 0),
                    m.res(op2.INC, m.edge2cell, 1),
                    backend=be,
                )
                rm.par_loop(
                    comm,
                    K_BRES_CALC,
                    m.bedges,
                    m.x(op2.READ, m.bedge2node, 0),
                    m.x(op2.READ, m.bedge2node, 1),
                    m.q(op2.READ, m.bedge2cell, 0),
                    m.adt(op2.READ, m.bedge2cell, 0),
                    m.res(op2.INC, m.bedge2cell, 0),
                    m.bound(op2.READ),
                    backend=be,
                )
                lrms.data[:] = 0.0
                rm.par_loop(
                    comm,
                    K_UPDATE,
                    m.cells,
                    m.qold(op2.READ),
                    m.q(op2.WRITE),
                    m.res(op2.RW),
                    m.adt(op2.READ),
                    lrms(op2.INC),
                    backend=be,
                )
        return float(np.sqrt(lrms.value / self.mesh.cells.size))
