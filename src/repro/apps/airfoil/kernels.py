"""The five Airfoil user kernels, as in the original OP2 distribution.

Written elementwise (paper Section II-A: "from the perspective of a
single-threaded implementation"); the translator vectorises them for the
production backends.  Branching is expressed with conditional expressions,
matching the DSL restriction discussed in Section IV.
"""

from __future__ import annotations

import math

from repro import op2

# -- flow constants (op_decl_const) -----------------------------------------------

GAM = 1.4
GM1 = GAM - 1.0
CFL = 0.9
EPS = 0.05

# free stream: Mach 0.4 flow along +x at unit density / pressure
MACH = 0.4
_P_INF = 1.0
_R_INF = 1.0
_C_INF = math.sqrt(GAM * _P_INF / _R_INF)
_U_INF = MACH * _C_INF

QINF0 = _R_INF
QINF1 = _R_INF * _U_INF
QINF2 = 0.0
QINF3 = _P_INF / GM1 + 0.5 * _R_INF * _U_INF * _U_INF


def save_soln(q, qold):
    for n in range(4):
        qold[n] = q[n]


def adt_calc(x1, x2, x3, x4, q, adt):
    ri = 1.0 / q[0]
    u = ri * q[1]
    v = ri * q[2]
    c = math.sqrt(GAM * GM1 * (ri * q[3] - 0.5 * (u * u + v * v)))

    dx = x2[0] - x1[0]
    dy = x2[1] - x1[1]
    val = abs(u * dy - v * dx) + c * math.sqrt(dx * dx + dy * dy)

    dx = x3[0] - x2[0]
    dy = x3[1] - x2[1]
    val = val + abs(u * dy - v * dx) + c * math.sqrt(dx * dx + dy * dy)

    dx = x4[0] - x3[0]
    dy = x4[1] - x3[1]
    val = val + abs(u * dy - v * dx) + c * math.sqrt(dx * dx + dy * dy)

    dx = x1[0] - x4[0]
    dy = x1[1] - x4[1]
    val = val + abs(u * dy - v * dx) + c * math.sqrt(dx * dx + dy * dy)

    adt[0] = val / CFL


def res_calc(x1, x2, q1, q2, adt1, adt2, res1, res2):
    dx = x1[0] - x2[0]
    dy = x1[1] - x2[1]

    ri1 = 1.0 / q1[0]
    p1 = GM1 * (q1[3] - 0.5 * ri1 * (q1[1] * q1[1] + q1[2] * q1[2]))
    vol1 = ri1 * (q1[1] * dy - q1[2] * dx)

    ri2 = 1.0 / q2[0]
    p2 = GM1 * (q2[3] - 0.5 * ri2 * (q2[1] * q2[1] + q2[2] * q2[2]))
    vol2 = ri2 * (q2[1] * dy - q2[2] * dx)

    mu = 0.5 * (adt1[0] + adt2[0]) * EPS

    f = 0.5 * (vol1 * q1[0] + vol2 * q2[0]) + mu * (q1[0] - q2[0])
    res1[0] += f
    res2[0] -= f
    f = 0.5 * (vol1 * q1[1] + p1 * dy + vol2 * q2[1] + p2 * dy) + mu * (q1[1] - q2[1])
    res1[1] += f
    res2[1] -= f
    f = 0.5 * (vol1 * q1[2] - p1 * dx + vol2 * q2[2] - p2 * dx) + mu * (q1[2] - q2[2])
    res1[2] += f
    res2[2] -= f
    f = 0.5 * (vol1 * (q1[3] + p1) + vol2 * (q2[3] + p2)) + mu * (q1[3] - q2[3])
    res1[3] += f
    res2[3] -= f


def bres_calc(x1, x2, q1, adt1, res1, bound):
    dx = x1[0] - x2[0]
    dy = x1[1] - x2[1]

    ri1 = 1.0 / q1[0]
    p1 = GM1 * (q1[3] - 0.5 * ri1 * (q1[1] * q1[1] + q1[2] * q1[2]))
    vol1 = ri1 * (q1[1] * dy - q1[2] * dx)

    ri2 = 1.0 / QINF0
    p2 = GM1 * (QINF3 - 0.5 * ri2 * (QINF1 * QINF1 + QINF2 * QINF2))
    vol2 = ri2 * (QINF1 * dy - QINF2 * dx)

    mu = adt1[0] * EPS
    wall = bound[0]

    f0 = 0.5 * (vol1 * q1[0] + vol2 * QINF0) + mu * (q1[0] - QINF0)
    f1 = 0.5 * (vol1 * q1[1] + p1 * dy + vol2 * QINF1 + p2 * dy) + mu * (q1[1] - QINF1)
    f2 = 0.5 * (vol1 * q1[2] - p1 * dx + vol2 * QINF2 - p2 * dx) + mu * (q1[2] - QINF2)
    f3 = 0.5 * (vol1 * (q1[3] + p1) + vol2 * (QINF3 + p2)) + mu * (q1[3] - QINF3)

    # wall (bound == 1): only the pressure force acts; else far-field flux
    res1[0] += 0.0 if wall == 1.0 else f0
    res1[1] += p1 * dy if wall == 1.0 else f1
    res1[2] += -p1 * dx if wall == 1.0 else f2
    res1[3] += 0.0 if wall == 1.0 else f3


def update(qold, q, res, adt, rms):
    adti = 1.0 / adt[0]
    for n in range(4):
        delta = adti * res[n]
        q[n] = qold[n] - delta
        res[n] = 0.0
        rms[0] += delta * delta


# -- kernel objects with arithmetic-cost annotations ----------------------------------
# flops from the original kernels; sqrt counted as several flops, as the
# paper's Table I discussion does for adt_calc's "expensive square root
# instructions".

K_SAVE_SOLN = op2.Kernel(save_soln, "save_soln", flops_per_elem=0)
# adt_calc's five square roots dominate its arithmetic; counted at the
# ~30-flop cost class of a scalar sqrt, which is what makes vectorisation
# "necessary" for this loop (paper Table I discussion)
K_ADT_CALC = op2.Kernel(adt_calc, "adt_calc", flops_per_elem=190, divergence=0.1)
K_RES_CALC = op2.Kernel(
    res_calc, "res_calc", flops_per_elem=70, vectorisable=False, divergence=0.3
)
K_BRES_CALC = op2.Kernel(
    bres_calc, "bres_calc", flops_per_elem=60, vectorisable=False, divergence=0.5
)
K_UPDATE = op2.Kernel(update, "update", flops_per_elem=17)
