"""Airfoil: non-linear 2D inviscid CFD on an unstructured quad mesh (OP2).

The paper's original Airfoil operates on a mesh around an aerofoil; offline
we generate a synthetic channel mesh with the same sets/maps/dats structure
and the original kernels (save_soln, adt_calc, res_calc, bres_calc, update).
A hand-coded NumPy reference (:mod:`repro.apps.airfoil.reference`)
implements the same numerics directly for original-vs-DSL comparisons.
"""

from repro.apps.airfoil.mesh import AirfoilMesh, generate_mesh
from repro.apps.airfoil.app import AirfoilApp, GAM, GM1, CFL, EPS
from repro.apps.airfoil.reference import AirfoilReference

__all__ = [
    "AirfoilMesh",
    "generate_mesh",
    "AirfoilApp",
    "AirfoilReference",
    "GAM",
    "GM1",
    "CFL",
    "EPS",
]
