"""Hand-coded NumPy Airfoil: the "original" implementation.

Implements exactly the same numerics as :mod:`repro.apps.airfoil.app`, but
directly over arrays with no DSL — the hand-tuned counterpart used to show
"the high-level programming approach introduces no overhead" (paper
Sections IV/V).  Bit-level agreement with the OP2 version is asserted in
the integration tests.
"""

from __future__ import annotations

import numpy as np

from repro.apps.airfoil.kernels import (
    CFL,
    EPS,
    GAM,
    GM1,
    QINF0,
    QINF1,
    QINF2,
    QINF3,
)
from repro.apps.airfoil.mesh import AirfoilMesh


class AirfoilReference:
    """Direct-array Airfoil on the same mesh arrays."""

    RK_STEPS = 2

    def __init__(self, mesh: AirfoilMesh):
        # private copies: running the reference never disturbs the OP2 state
        self.x = mesh.x.data.copy()
        self.q = mesh.q.data.copy()
        self.qold = np.zeros_like(self.q)
        self.adt = np.zeros(mesh.cells.size)
        self.res = np.zeros_like(self.q)
        self.bound = mesh.bound.data[:, 0].copy()
        self.e2n = mesh.edge2node.values.copy()
        self.e2c = mesh.edge2cell.values.copy()
        self.b2n = mesh.bedge2node.values.copy()
        self.b2c = mesh.bedge2cell.values[:, 0].copy()
        self.c2n = mesh.cell2node.values.copy()
        self.ncells = mesh.cells.size
        self.rms = 0.0

    # -- kernels, hand-vectorised -------------------------------------------------

    def _save_soln(self) -> None:
        self.qold[...] = self.q

    def _adt_calc(self) -> None:
        q = self.q
        ri = 1.0 / q[:, 0]
        u = ri * q[:, 1]
        v = ri * q[:, 2]
        c = np.sqrt(GAM * GM1 * (ri * q[:, 3] - 0.5 * (u * u + v * v)))
        corners = self.x[self.c2n]  # (ncells, 4, 2)
        val = None
        for a, b in ((0, 1), (1, 2), (2, 3), (3, 0)):
            dx = corners[:, b, 0] - corners[:, a, 0]
            dy = corners[:, b, 1] - corners[:, a, 1]
            if val is None:
                val = np.abs(u * dy - v * dx) + c * np.sqrt(dx * dx + dy * dy)
            else:
                # left-associated like the kernel, for bitwise agreement
                val = val + np.abs(u * dy - v * dx) + c * np.sqrt(dx * dx + dy * dy)
        self.adt[...] = val / CFL

    def _res_calc(self) -> None:
        x1 = self.x[self.e2n[:, 0]]
        x2 = self.x[self.e2n[:, 1]]
        q1 = self.q[self.e2c[:, 0]]
        q2 = self.q[self.e2c[:, 1]]
        adt1 = self.adt[self.e2c[:, 0]]
        adt2 = self.adt[self.e2c[:, 1]]

        dx = x1[:, 0] - x2[:, 0]
        dy = x1[:, 1] - x2[:, 1]
        ri1 = 1.0 / q1[:, 0]
        p1 = GM1 * (q1[:, 3] - 0.5 * ri1 * (q1[:, 1] ** 2 + q1[:, 2] ** 2))
        vol1 = ri1 * (q1[:, 1] * dy - q1[:, 2] * dx)
        ri2 = 1.0 / q2[:, 0]
        p2 = GM1 * (q2[:, 3] - 0.5 * ri2 * (q2[:, 1] ** 2 + q2[:, 2] ** 2))
        vol2 = ri2 * (q2[:, 1] * dy - q2[:, 2] * dx)
        mu = 0.5 * (adt1 + adt2) * EPS

        f = np.empty((len(dx), 4))
        f[:, 0] = 0.5 * (vol1 * q1[:, 0] + vol2 * q2[:, 0]) + mu * (q1[:, 0] - q2[:, 0])
        f[:, 1] = (
            0.5 * (vol1 * q1[:, 1] + p1 * dy + vol2 * q2[:, 1] + p2 * dy)
            + mu * (q1[:, 1] - q2[:, 1])
        )
        f[:, 2] = (
            0.5 * (vol1 * q1[:, 2] - p1 * dx + vol2 * q2[:, 2] - p2 * dx)
            + mu * (q1[:, 2] - q2[:, 2])
        )
        f[:, 3] = (
            0.5 * (vol1 * (q1[:, 3] + p1) + vol2 * (q2[:, 3] + p2))
            + mu * (q1[:, 3] - q2[:, 3])
        )
        np.add.at(self.res, self.e2c[:, 0], f)
        np.add.at(self.res, self.e2c[:, 1], -f)

    def _bres_calc(self) -> None:
        x1 = self.x[self.b2n[:, 0]]
        x2 = self.x[self.b2n[:, 1]]
        q1 = self.q[self.b2c]
        adt1 = self.adt[self.b2c]

        dx = x1[:, 0] - x2[:, 0]
        dy = x1[:, 1] - x2[:, 1]
        ri1 = 1.0 / q1[:, 0]
        p1 = GM1 * (q1[:, 3] - 0.5 * ri1 * (q1[:, 1] ** 2 + q1[:, 2] ** 2))
        vol1 = ri1 * (q1[:, 1] * dy - q1[:, 2] * dx)
        ri2 = 1.0 / QINF0
        p2 = GM1 * (QINF3 - 0.5 * ri2 * (QINF1 * QINF1 + QINF2 * QINF2))
        vol2 = ri2 * (QINF1 * dy - QINF2 * dx)
        mu = adt1 * EPS
        wall = self.bound == 1.0

        f = np.empty((len(dx), 4))
        f[:, 0] = 0.5 * (vol1 * q1[:, 0] + vol2 * QINF0) + mu * (q1[:, 0] - QINF0)
        f[:, 1] = (
            0.5 * (vol1 * q1[:, 1] + p1 * dy + vol2 * QINF1 + p2 * dy)
            + mu * (q1[:, 1] - QINF1)
        )
        f[:, 2] = (
            0.5 * (vol1 * q1[:, 2] - p1 * dx + vol2 * QINF2 - p2 * dx)
            + mu * (q1[:, 2] - QINF2)
        )
        f[:, 3] = (
            0.5 * (vol1 * (q1[:, 3] + p1) + vol2 * (QINF3 + p2))
            + mu * (q1[:, 3] - QINF3)
        )
        f[wall, 0] = 0.0
        f[wall, 1] = (p1 * dy)[wall]
        f[wall, 2] = (-p1 * dx)[wall]
        f[wall, 3] = 0.0
        np.add.at(self.res, self.b2c, f)

    def _update(self) -> None:
        adti = (1.0 / self.adt)[:, None]
        delta = adti * self.res
        self.q[...] = self.qold - delta
        self.res[...] = 0.0
        self.rms += float(np.sum(delta * delta))

    # -- driver ----------------------------------------------------------------------

    def iteration(self) -> None:
        self._save_soln()
        for _ in range(self.RK_STEPS):
            self._adt_calc()
            self._res_calc()
            self._bres_calc()
            self.rms = 0.0
            self._update()

    def run(self, iterations: int) -> float:
        for _ in range(iterations):
            self.iteration()
        return float(np.sqrt(self.rms / self.ncells))
