"""Synthetic unstructured quad mesh for Airfoil.

The original benchmark reads a 720k-cell far-field mesh around an aerofoil;
offline we generate a channel mesh with identical structure: quad cells,
interior edges carrying two cells, boundary edges carrying one cell plus a
boundary-condition flag (1 = solid wall along the bottom, representing the
aerofoil surface; 2 = far field).  Edge node orientation follows the
original convention: the flux normal ``(dy, -dx)`` of edge nodes ``(n1,
n2)`` points from ``cell1`` towards ``cell2`` (outward on boundaries), so a
uniform free stream produces an exactly zero residual — the consistency
invariant the tests check.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import op2


@dataclass
class AirfoilMesh:
    """The Airfoil sets, maps and dats (paper Section II-A's mesh triple)."""

    nodes: op2.Set
    edges: op2.Set
    bedges: op2.Set
    cells: op2.Set
    edge2node: op2.Map
    edge2cell: op2.Map
    bedge2node: op2.Map
    bedge2cell: op2.Map
    cell2node: op2.Map
    x: op2.Dat  # node coordinates (dim 2)
    q: op2.Dat  # conserved flow variables on cells (dim 4)
    qold: op2.Dat
    adt: op2.Dat  # local timestep area/dt (dim 1)
    res: op2.Dat  # residual (dim 4)
    bound: op2.Dat  # boundary-condition flag on bedges (1=wall, 2=far field)
    nx: int
    ny: int

    @property
    def all_maps(self) -> list[op2.Map]:
        return [self.edge2node, self.edge2cell, self.bedge2node, self.bedge2cell, self.cell2node]

    @property
    def all_dats(self) -> list[op2.Dat]:
        return [self.x, self.q, self.qold, self.adt, self.res, self.bound]


def generate_mesh(
    nx: int,
    ny: int,
    *,
    qinf: np.ndarray | None = None,
    jitter: float = 0.0,
    seed: int = 0,
) -> AirfoilMesh:
    """Build an ``nx`` x ``ny``-cell channel mesh.

    ``jitter`` perturbs interior node coordinates by a fraction of the cell
    size (making the mesh genuinely irregular for partitioning/renumbering
    experiments) — geometric consistency, and hence the zero-residual
    invariant, is preserved because fluxes use the actual coordinates.
    """
    n_nodes = (nx + 1) * (ny + 1)
    n_cells = nx * ny
    nodes = op2.Set(n_nodes, "nodes")
    cells = op2.Set(n_cells, "cells")

    def nid(i: int, j: int) -> int:
        return i * (ny + 1) + j

    def cid(i: int, j: int) -> int:
        return i * ny + j

    # -- node coordinates (vectorised: benchmark meshes run to ~10^6 nodes) ---
    gi, gj = np.meshgrid(np.arange(nx + 1), np.arange(ny + 1), indexing="ij")
    xs = np.stack([gi.reshape(-1) / nx, gj.reshape(-1) / ny], axis=1)
    if jitter > 0:
        rng = np.random.default_rng(seed)
        interior_mask = (
            (gi > 0) & (gi < nx) & (gj > 0) & (gj < ny)
        ).reshape(-1)
        n_int = int(interior_mask.sum())
        xs[interior_mask] += rng.uniform(-jitter, jitter, (n_int, 2)) / np.asarray(
            [nx, ny], dtype=float
        )

    def nids(i, j):
        return i * (ny + 1) + j

    def cids(i, j):
        return i * ny + j

    # -- cell -> node (counter-clockwise) ------------------------------------------
    ci, cj = np.meshgrid(np.arange(nx), np.arange(ny), indexing="ij")
    ci, cj = ci.reshape(-1), cj.reshape(-1)
    c2n = np.stack(
        [nids(ci, cj), nids(ci + 1, cj), nids(ci + 1, cj + 1), nids(ci, cj + 1)],
        axis=1,
    )

    # -- interior edges -------------------------------------------------------------
    # vertical faces between (i, j) and (i+1, j): normal +x
    vi, vj = np.meshgrid(np.arange(nx - 1), np.arange(ny), indexing="ij")
    vi, vj = vi.reshape(-1), vj.reshape(-1)
    v_nodes = np.stack([nids(vi + 1, vj + 1), nids(vi + 1, vj)], axis=1)
    v_cells = np.stack([cids(vi, vj), cids(vi + 1, vj)], axis=1)
    # horizontal faces between (i, j) and (i, j+1): normal +y
    hi, hj = np.meshgrid(np.arange(nx), np.arange(ny - 1), indexing="ij")
    hi, hj = hi.reshape(-1), hj.reshape(-1)
    h_nodes = np.stack([nids(hi, hj + 1), nids(hi + 1, hj + 1)], axis=1)
    h_cells = np.stack([cids(hi, hj), cids(hi, hj + 1)], axis=1)
    e_nodes = np.vstack([v_nodes, h_nodes])
    e_cells = np.vstack([v_cells, h_cells])

    # -- boundary edges ----------------------------------------------------------------
    b_nodes: list[tuple[int, int]] = []
    b_cells: list[int] = []
    b_flag: list[float] = []
    for i in range(nx):  # bottom: solid wall (the "aerofoil" surface)
        b_nodes.append((nid(i + 1, 0), nid(i, 0)))
        b_cells.append(cid(i, 0))
        b_flag.append(1.0)
    for i in range(nx):  # top: far field
        b_nodes.append((nid(i, ny), nid(i + 1, ny)))
        b_cells.append(cid(i, ny - 1))
        b_flag.append(2.0)
    for j in range(ny):  # left: far field
        b_nodes.append((nid(0, j), nid(0, j + 1)))
        b_cells.append(cid(0, j))
        b_flag.append(2.0)
    for j in range(ny):  # right: far field
        b_nodes.append((nid(nx, j + 1), nid(nx, j)))
        b_cells.append(cid(nx - 1, j))
        b_flag.append(2.0)

    edges = op2.Set(len(e_nodes), "edges")
    bedges = op2.Set(len(b_nodes), "bedges")

    edge2node = op2.Map(edges, nodes, 2, np.asarray(e_nodes), "edge2node")
    edge2cell = op2.Map(edges, cells, 2, np.asarray(e_cells), "edge2cell")
    bedge2node = op2.Map(bedges, nodes, 2, np.asarray(b_nodes), "bedge2node")
    bedge2cell = op2.Map(bedges, cells, 1, np.asarray(b_cells).reshape(-1, 1), "bedge2cell")
    cell2node = op2.Map(cells, nodes, 4, c2n, "cell2node")

    # -- flow state: uniform free stream -------------------------------------------------
    if qinf is None:
        from repro.apps.airfoil.app import default_qinf

        qinf = default_qinf()
    q0 = np.tile(qinf, (n_cells, 1))

    return AirfoilMesh(
        nodes=nodes,
        edges=edges,
        bedges=bedges,
        cells=cells,
        edge2node=edge2node,
        edge2cell=edge2cell,
        bedge2node=bedge2node,
        bedge2cell=bedge2cell,
        cell2node=cell2node,
        x=op2.Dat(nodes, 2, xs, name="x"),
        q=op2.Dat(cells, 4, q0, name="q"),
        qold=op2.Dat(cells, 4, name="q_old"),
        adt=op2.Dat(cells, 1, name="adt"),
        res=op2.Dat(cells, 4, name="res"),
        bound=op2.Dat(bedges, 1, np.asarray(b_flag), name="bound"),
        nx=nx,
        ny=ny,
    )
