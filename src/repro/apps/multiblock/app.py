"""Two-block diffusion solver with explicit inter-block halos."""

from __future__ import annotations

import numpy as np

from repro import ops

ALPHA = 0.2  # diffusion number (stable for the 5-point explicit scheme)


def diffuse_kernel(u, unew):
    unew[0, 0] = u[0, 0] + ALPHA * (
        u[1, 0] + u[-1, 0] + u[0, 1] + u[0, -1] - 4.0 * u[0, 0]
    )


def _reflect_sides(dat: ops.Dat, *, lo_x=True, hi_x=True, lo_y=True, hi_y=True) -> None:
    """Zero-flux (mirror) boundaries on the selected physical sides."""
    h = dat.halo_depth
    a = dat.data
    sx, sy = dat.size
    for k in range(1, h + 1):
        if lo_x:
            a[h - k, :] = a[h + k - 1, :]
        if hi_x:
            a[h + sx - 1 + k, :] = a[h + sx - k, :]
        if lo_y:
            a[:, h - k] = a[:, h + k - 1]
        if hi_y:
            a[:, h + sy - 1 + k] = a[:, h + sy - k]


class MultiBlockDiffusion:
    """Diffusion on [0, 2n) x [0, m), split into a left and a right block.

    Each step: reflect the six *outer* boundaries, apply the inter-block
    halo group (each block's ghost column comes from its neighbour's edge
    column — the explicit synchronisation point), then one ``ops_par_loop``
    per block.
    """

    def __init__(self, n: int, m: int, *, initial: np.ndarray | None = None):
        self.n, self.m = n, m
        self.left_block = ops.Block(2, "left")
        self.right_block = ops.Block(2, "right")
        self.uL = ops.Dat(self.left_block, (n, m), halo_depth=1, name="uL")
        self.uR = ops.Dat(self.right_block, (n, m), halo_depth=1, name="uR")
        self.vL = ops.Dat(self.left_block, (n, m), halo_depth=1, name="vL")
        self.vR = ops.Dat(self.right_block, (n, m), halo_depth=1, name="vR")
        if initial is not None:
            assert initial.shape == (2 * n, m)
            self.uL.interior[...] = initial[:n]
            self.uR.interior[...] = initial[n:]

        # user-declared inter-block halos: the paper's explicit coupling
        self.interface = ops.HaloGroup(
            [
                # right block's low-x ghost column <- left block's last column
                ops.Halo(self.uL, self.uR, [(n - 1, n), (0, m)], [(-1, 0), (0, m)]),
                # left block's high-x ghost column <- right block's first column
                ops.Halo(self.uR, self.uL, [(0, 1), (0, m)], [(n, n + 1), (0, m)]),
            ],
            name="interface",
        )

    def step(self) -> None:
        # physical boundaries (the interface sides are NOT reflected)
        _reflect_sides(self.uL, hi_x=False)
        _reflect_sides(self.uR, lo_x=False)
        # explicit inter-block synchronisation point
        self.interface.apply()
        r = [(0, self.n), (0, self.m)]
        ops.par_loop(
            diffuse_kernel, self.left_block, r,
            self.uL(ops.READ, ops.S2D_5PT), self.vL(ops.WRITE), name="diffuse_L",
        )
        ops.par_loop(
            diffuse_kernel, self.right_block, r,
            self.uR(ops.READ, ops.S2D_5PT), self.vR(ops.WRITE), name="diffuse_R",
        )
        self.uL.interior[...] = self.vL.interior
        self.uR.interior[...] = self.vR.interior

    def run(self, steps: int) -> np.ndarray:
        for _ in range(steps):
            self.step()
        return self.solution()

    def solution(self) -> np.ndarray:
        return np.vstack([self.uL.interior, self.uR.interior])

    def total(self) -> float:
        """Conserved quantity (zero-flux boundaries conserve the integral)."""
        return float(self.uL.interior.sum() + self.uR.interior.sum())


class SingleBlockDiffusion:
    """The same problem on one (2n, m) block: the validation oracle."""

    def __init__(self, n: int, m: int, *, initial: np.ndarray | None = None):
        self.n, self.m = n, m
        self.block = ops.Block(2, "union")
        self.u = ops.Dat(self.block, (2 * n, m), halo_depth=1, name="u")
        self.v = ops.Dat(self.block, (2 * n, m), halo_depth=1, name="v")
        if initial is not None:
            self.u.interior[...] = initial

    def step(self) -> None:
        _reflect_sides(self.u)
        ops.par_loop(
            diffuse_kernel, self.block, [(0, 2 * self.n), (0, self.m)],
            self.u(ops.READ, ops.S2D_5PT), self.v(ops.WRITE), name="diffuse",
        )
        self.u.interior[...] = self.v.interior

    def run(self, steps: int) -> np.ndarray:
        for _ in range(steps):
            self.step()
        return self.u.interior.copy()
