"""Multi-block structured demo: the OPS feature CloverLeaf doesn't exercise.

OPS "targets multi-block structured mesh computations that often occur in
complex CFD simulations" with user-declared halos between blocks whose
exchange "serve[s] as synchronization points between the execution of
different blocks" (paper Section II-A).  This app solves scalar diffusion
on a domain split into two abutting blocks, coupled through explicit
:class:`~repro.ops.halo.Halo` transfers — and validates against a
single-block solve of the union domain, which must match bitwise.
"""

from repro.apps.multiblock.app import MultiBlockDiffusion, SingleBlockDiffusion

__all__ = ["MultiBlockDiffusion", "SingleBlockDiffusion"]
