"""Sod shock tube: 1-D hydrodynamics on OPS with an analytic oracle.

The same Lagrangian + donor-cell-remap scheme as the CloverLeaf proxy,
reduced to one dimension and validated against the *exact* Riemann solution
(:mod:`repro.apps.sod.exact_riemann`) — the classic verification problem
for compressible-flow codes.  Convergence of the L1 error with resolution
is asserted in the tests.
"""

from repro.apps.sod.app import SodApp
from repro.apps.sod.exact_riemann import exact_sod_solution, riemann_star_state

__all__ = ["SodApp", "exact_sod_solution", "riemann_star_state"]
