"""Exact Riemann solver for the 1-D Euler equations (Toro's method).

Given left/right states (rho, u, p), solves the star-region pressure with
Newton iteration and samples the self-similar solution at x/t — the
analytic oracle for the Sod problem.
"""

from __future__ import annotations

import numpy as np

GAMMA = 1.4


def _fK(p: float, rho: float, pK: float) -> tuple[float, float]:
    """Toro's f_K(p) and its derivative for one side of the discontinuity."""
    g = GAMMA
    cK = np.sqrt(g * pK / rho)
    if p > pK:  # shock
        aK = 2.0 / ((g + 1.0) * rho)
        bK = (g - 1.0) / (g + 1.0) * pK
        f = (p - pK) * np.sqrt(aK / (p + bK))
        df = np.sqrt(aK / (bK + p)) * (1.0 - 0.5 * (p - pK) / (bK + p))
    else:  # rarefaction
        f = 2.0 * cK / (g - 1.0) * ((p / pK) ** ((g - 1.0) / (2.0 * g)) - 1.0)
        df = 1.0 / (rho * cK) * (p / pK) ** (-(g + 1.0) / (2.0 * g))
    return f, df


def riemann_star_state(
    left: tuple[float, float, float],
    right: tuple[float, float, float],
    *,
    tol: float = 1e-12,
    max_iter: int = 100,
) -> tuple[float, float]:
    """Star-region pressure and velocity for states (rho, u, p)."""
    rhoL, uL, pL = left
    rhoR, uR, pR = right
    du = uR - uL
    # initial guess: two-rarefaction approximation
    g = GAMMA
    cL = np.sqrt(g * pL / rhoL)
    cR = np.sqrt(g * pR / rhoR)
    z = (g - 1.0) / (2.0 * g)
    p = ((cL + cR - 0.5 * (g - 1.0) * du) / (cL / pL**z + cR / pR**z)) ** (1.0 / z)
    p = max(p, tol)
    for _ in range(max_iter):
        fL, dfL = _fK(p, rhoL, pL)
        fR, dfR = _fK(p, rhoR, pR)
        change = (fL + fR + du) / (dfL + dfR)
        p_new = p - change
        if p_new <= 0:
            p_new = tol
        if abs(p_new - p) < tol * 0.5 * (p_new + p):
            p = p_new
            break
        p = p_new
    fL, _ = _fK(p, rhoL, pL)
    fR, _ = _fK(p, rhoR, pR)
    u = 0.5 * (uL + uR) + 0.5 * (fR - fL)
    return float(p), float(u)


def _sample(
    xi: np.ndarray,
    left: tuple[float, float, float],
    right: tuple[float, float, float],
    p_star: float,
    u_star: float,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sample (rho, u, p) at the similarity coordinates ``xi = x/t``."""
    g = GAMMA
    rhoL, uL, pL = left
    rhoR, uR, pR = right
    cL = np.sqrt(g * pL / rhoL)
    cR = np.sqrt(g * pR / rhoR)

    rho = np.empty_like(xi)
    u = np.empty_like(xi)
    p = np.empty_like(xi)

    left_side = xi <= u_star
    # -- left of the contact ---------------------------------------------------
    if p_star > pL:  # left shock
        rho_starL = rhoL * (
            (p_star / pL + (g - 1.0) / (g + 1.0))
            / ((g - 1.0) / (g + 1.0) * p_star / pL + 1.0)
        )
        sL = uL - cL * np.sqrt((g + 1.0) / (2.0 * g) * p_star / pL + (g - 1.0) / (2.0 * g))
        pre = xi < sL
        rho[left_side] = np.where(pre[left_side], rhoL, rho_starL)
        u[left_side] = np.where(pre[left_side], uL, u_star)
        p[left_side] = np.where(pre[left_side], pL, p_star)
    else:  # left rarefaction
        rho_starL = rhoL * (p_star / pL) ** (1.0 / g)
        c_starL = cL * (p_star / pL) ** ((g - 1.0) / (2.0 * g))
        head = uL - cL
        tail = u_star - c_starL
        in_fan = (xi >= head) & (xi <= tail)
        fan_u = 2.0 / (g + 1.0) * (cL + (g - 1.0) / 2.0 * uL + xi)
        fan_c = 2.0 / (g + 1.0) * (cL + (g - 1.0) / 2.0 * (uL - xi))
        fan_rho = rhoL * (fan_c / cL) ** (2.0 / (g - 1.0))
        fan_p = pL * (fan_c / cL) ** (2.0 * g / (g - 1.0))
        m = left_side
        rho[m] = np.where(xi[m] < head, rhoL, np.where(in_fan[m], fan_rho[m], rho_starL))
        u[m] = np.where(xi[m] < head, uL, np.where(in_fan[m], fan_u[m], u_star))
        p[m] = np.where(xi[m] < head, pL, np.where(in_fan[m], fan_p[m], p_star))

    # -- right of the contact --------------------------------------------------
    m = ~left_side
    if p_star > pR:  # right shock
        rho_starR = rhoR * (
            (p_star / pR + (g - 1.0) / (g + 1.0))
            / ((g - 1.0) / (g + 1.0) * p_star / pR + 1.0)
        )
        sR = uR + cR * np.sqrt((g + 1.0) / (2.0 * g) * p_star / pR + (g - 1.0) / (2.0 * g))
        post = xi > sR
        rho[m] = np.where(post[m], rhoR, rho_starR)
        u[m] = np.where(post[m], uR, u_star)
        p[m] = np.where(post[m], pR, p_star)
    else:  # right rarefaction
        rho_starR = rhoR * (p_star / pR) ** (1.0 / g)
        c_starR = cR * (p_star / pR) ** ((g - 1.0) / (2.0 * g))
        head = uR + cR
        tail = u_star + c_starR
        in_fan = (xi >= tail) & (xi <= head)
        fan_u = 2.0 / (g + 1.0) * (-cR + (g - 1.0) / 2.0 * uR + xi)
        fan_c = 2.0 / (g + 1.0) * (cR - (g - 1.0) / 2.0 * (uR - xi))
        fan_rho = rhoR * (fan_c / cR) ** (2.0 / (g - 1.0))
        fan_p = pR * (fan_c / cR) ** (2.0 * g / (g - 1.0))
        rho[m] = np.where(xi[m] > head, rhoR, np.where(in_fan[m], fan_rho[m], rho_starR))
        u[m] = np.where(xi[m] > head, uR, np.where(in_fan[m], fan_u[m], u_star))
        p[m] = np.where(xi[m] > head, pR, np.where(in_fan[m], fan_p[m], p_star))

    return rho, u, p


def exact_sod_solution(
    x: np.ndarray,
    t: float,
    *,
    x0: float = 0.5,
    left: tuple[float, float, float] = (1.0, 0.0, 1.0),
    right: tuple[float, float, float] = (0.125, 0.0, 0.1),
) -> dict[str, np.ndarray]:
    """Exact (rho, u, p, e) profiles of the Sod problem at time ``t``."""
    p_star, u_star = riemann_star_state(left, right)
    xi = (np.asarray(x, dtype=float) - x0) / max(t, 1e-300)
    rho, u, p = _sample(xi, left, right, p_star, u_star)
    e = p / ((GAMMA - 1.0) * rho)
    return {"rho": rho, "u": u, "p": p, "e": e}
