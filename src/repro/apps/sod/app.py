"""1-D Sod shock tube on the OPS API (CloverLeaf's scheme, one dimension)."""

from __future__ import annotations

import numpy as np

from repro import ops

GAMMA = 1.4
G_SMALL = 1.0e-16
DTC_SAFE = 0.5

S1D_SELF = ops.Stencil(1, [(0,)], "S1D_SELF")
S1D_FACE = ops.Stencil(1, [(0,), (1,)], "S1D_FACE")
S1D_DONOR = ops.Stencil(1, [(0,), (-1,)], "S1D_DONOR")
S1D_VEL = ops.Stencil(1, [(0,), (-1,), (1,)], "S1D_VEL")


class SodApp:
    """Sod's problem on [0, 1]: (1, 0, 1) left of x0, (0.125, 0, 0.1) right."""

    def __init__(self, n: int = 400, *, x0: float = 0.5, backend: str = "vec"):
        self.n = n
        self.dx = 1.0 / n
        self.x0 = x0
        self.backend = backend
        self.time = 0.0
        blk = ops.Block(1, "tube")
        self.block = blk

        def cell(name):
            return ops.Dat(blk, n, halo_depth=2, name=name)

        def node(name):
            return ops.Dat(blk, n + 1, halo_depth=2, name=name)

        self.density0, self.density1 = cell("density0"), cell("density1")
        self.energy0, self.energy1 = cell("energy0"), cell("energy1")
        self.pressure, self.soundspeed, self.viscosity = (
            cell("pressure"), cell("soundspeed"), cell("viscosity"),
        )
        self.xvel0, self.xvel1 = node("xvel0"), node("xvel1")
        self.node_mass, self.mom_flux = node("node_mass"), node("mom_flux")
        self.node_flux = node("node_flux")
        self.vol_flux = node("vol_flux")
        self.mass_flux = node("mass_flux")
        self.ener_flux = node("ener_flux")

        centres = (np.arange(n) + 0.5) * self.dx
        left = centres < x0
        self.density0.interior[...] = np.where(left, 1.0, 0.125)
        p = np.where(left, 1.0, 0.1)
        self.energy0.interior[...] = p / ((GAMMA - 1.0) * self.density0.interior)

    # -- boundary conditions ---------------------------------------------------------

    def _bcs(self) -> None:
        """Transmissive (outflow) boundaries: copy the edge values outward."""
        for dat, node_like in (
            (self.density0, False), (self.energy0, False), (self.pressure, False),
            (self.viscosity, False), (self.density1, False), (self.energy1, False),
            (self.xvel0, True), (self.xvel1, True),
            (self.mass_flux, True), (self.vol_flux, True), (self.ener_flux, True),
        ):
            h = dat.halo_depth
            a = dat.data
            s = dat.size[0]
            for k in range(1, h + 1):
                a[h - k] = a[h]
                a[h + s - 1 + k] = a[h + s - 1]

    # -- one step -------------------------------------------------------------------

    def step(self) -> float:
        n, dx = self.n, self.dx
        be = self.backend
        cells = [(0, n)]
        nodes = [(0, n + 1)]
        self._bcs()

        def ideal_gas(d, e, p, c):
            p[0] = (GAMMA - 1.0) * d[0] * e[0]
            c[0] = np.sqrt(GAMMA * (GAMMA - 1.0) * e[0])

        ops.par_loop(ideal_gas, self.block, cells,
                     self.density0(ops.READ), self.energy0(ops.READ),
                     self.pressure(ops.WRITE), self.soundspeed(ops.WRITE),
                     backend=be, name="sod_ideal_gas")

        def viscosity_k(xv, d, q):
            du = xv[1] - xv[0]
            q[0] = np.where(du < 0.0, 2.0 * d[0] * du * du, 0.0)

        ops.par_loop(viscosity_k, self.block, cells,
                     self.xvel0(ops.READ, S1D_FACE), self.density0(ops.READ),
                     self.viscosity(ops.WRITE), backend=be, name="sod_viscosity")
        self._bcs()

        dt_min = ops.Reduction("min", name="sod_dt")

        def calc_dt(d, c, q, xv, t):
            cc = np.sqrt(c[0] * c[0] + 2.0 * q[0] / (d[0] + G_SMALL)) + G_SMALL
            u = 0.5 * np.abs(xv[0] + xv[1])
            t.min(DTC_SAFE * dx / (cc + u + G_SMALL))

        ops.par_loop(calc_dt, self.block, cells,
                     self.density0(ops.READ), self.soundspeed(ops.READ),
                     self.viscosity(ops.READ), self.xvel0(ops.READ, S1D_FACE),
                     dt_min, backend=be, name="sod_calc_dt")
        dt = float(dt_min.value)

        # Lagrangian phase -----------------------------------------------------------
        def pdv(xv, d0, e0, p, q, d1, e1, frac=0.5 * dt):
            total = (xv[1] - xv[0]) * frac
            vc = total / dx
            d1[0] = d0[0] / (1.0 + vc)
            e1[0] = e0[0] - (p[0] + q[0]) / (d0[0] + G_SMALL) * vc

        ops.par_loop(pdv, self.block, cells,
                     self.xvel0(ops.READ, S1D_FACE), self.density0(ops.READ),
                     self.energy0(ops.READ), self.pressure(ops.READ),
                     self.viscosity(ops.READ), self.density1(ops.WRITE),
                     self.energy1(ops.WRITE), backend=be, name="sod_pdv_predict")
        ops.par_loop(ideal_gas, self.block, cells,
                     self.density1(ops.READ), self.energy1(ops.READ),
                     self.pressure(ops.WRITE), self.soundspeed(ops.WRITE),
                     backend=be, name="sod_ideal_gas")
        self._bcs()

        def accelerate(d, p, q, xv0, xv1):
            nodal_mass = 0.5 * (d[0] + d[-1]) * dx
            step = dt / (nodal_mass + G_SMALL)
            xv1[0] = xv0[0] - step * ((p[0] - p[-1]) + (q[0] - q[-1]))

        ops.par_loop(accelerate, self.block, nodes,
                     self.density0(ops.READ, S1D_DONOR), self.pressure(ops.READ, S1D_DONOR),
                     self.viscosity(ops.READ, S1D_DONOR), self.xvel0(ops.READ),
                     self.xvel1(ops.WRITE), backend=be, name="sod_accelerate")
        self._bcs()

        def pdv_correct(xv0, xv1, d0, e0, p, q, d1, e1):
            total = 0.5 * ((xv0[1] + xv1[1]) - (xv0[0] + xv1[0])) * dt
            vc = total / dx
            d1[0] = d0[0] / (1.0 + vc)
            e1[0] = e0[0] - (p[0] + q[0]) / (d0[0] + G_SMALL) * vc

        ops.par_loop(pdv_correct, self.block, cells,
                     self.xvel0(ops.READ, S1D_FACE), self.xvel1(ops.READ, S1D_FACE),
                     self.density0(ops.READ), self.energy0(ops.READ),
                     self.pressure(ops.READ), self.viscosity(ops.READ),
                     self.density1(ops.WRITE), self.energy1(ops.WRITE),
                     backend=be, name="sod_pdv_correct")

        # remap phase ------------------------------------------------------------------
        def flux_calc(xv0, xv1, vf):
            vf[0] = 0.5 * dt * (xv0[0] + xv1[0])

        ops.par_loop(flux_calc, self.block, nodes,
                     self.xvel0(ops.READ), self.xvel1(ops.READ),
                     self.vol_flux(ops.WRITE), backend=be, name="sod_flux_calc")
        self._bcs()

        def mass_ener_flux(vf, d1, e1, mf, ef):
            donor_d = np.where(vf[0] > 0.0, d1[-1], d1[0])
            donor_e = np.where(vf[0] > 0.0, e1[-1], e1[0])
            mf[0] = vf[0] * donor_d
            ef[0] = vf[0] * donor_d * donor_e

        ops.par_loop(mass_ener_flux, self.block, nodes,
                     self.vol_flux(ops.READ), self.density1(ops.READ, S1D_DONOR),
                     self.energy1(ops.READ, S1D_DONOR), self.mass_flux(ops.WRITE),
                     self.ener_flux(ops.WRITE), backend=be, name="sod_mass_ener_flux")

        def advec_cell(vf, mf, ef, d1, e1):
            dv = vf[1] - vf[0]
            pre_vol = dx + dv
            post_vol = dx
            pre_mass = d1[0] * pre_vol
            post_mass = pre_mass + mf[0] - mf[1]
            post_e = (e1[0] * pre_mass + ef[0] - ef[1]) / (post_mass + G_SMALL)
            d1[0] = post_mass / post_vol
            e1[0] = post_e

        ops.par_loop(advec_cell, self.block, cells,
                     self.vol_flux(ops.READ, S1D_FACE), self.mass_flux(ops.READ, S1D_FACE),
                     self.ener_flux(ops.READ, S1D_FACE), self.density1(ops.RW),
                     self.energy1(ops.RW), backend=be, name="sod_advec_cell")

        # momentum remap ------------------------------------------------------------------
        def node_mass_k(d1, nm):
            nm[0] = 0.5 * (d1[0] + d1[-1]) * dx

        self._bcs()
        ops.par_loop(node_mass_k, self.block, nodes,
                     self.density1(ops.READ, S1D_DONOR), self.node_mass(ops.WRITE),
                     backend=be, name="sod_node_mass")

        def mom_flux_k(mf, xv, out, nf):
            flux = 0.5 * (mf[-1] + mf[0])
            donor = np.where(flux > 0.0, xv[-1], xv[0])
            out[0] = flux * donor
            nf[0] = flux

        ops.par_loop(mom_flux_k, self.block, nodes,
                     self.mass_flux(ops.READ, S1D_DONOR), self.xvel1(ops.READ, S1D_VEL),
                     self.mom_flux(ops.WRITE), self.node_flux(ops.WRITE),
                     backend=be, name="sod_mom_flux")

        def mom_update(out, nf, nm, xv):
            # conservative remap: (u * pre_mass + flux_in - flux_out) / post_mass
            post = nm[0] + G_SMALL
            pre = nm[0] - nf[0] + nf[1]
            xv[0] = (xv[0] * pre + out[0] - out[1]) / post

        ops.par_loop(mom_update, self.block, [(1, n)],
                     self.mom_flux(ops.READ, S1D_FACE), self.node_flux(ops.READ, S1D_FACE),
                     self.node_mass(ops.READ), self.xvel1(ops.RW),
                     backend=be, name="sod_mom_update")

        # reset -------------------------------------------------------------------------
        def reset_c(d0, e0, d1, e1):
            d0[0] = d1[0]
            e0[0] = e1[0]

        def reset_n(x0v, x1v):
            x0v[0] = x1v[0]

        ops.par_loop(reset_c, self.block, cells,
                     self.density0(ops.WRITE), self.energy0(ops.WRITE),
                     self.density1(ops.READ), self.energy1(ops.READ),
                     backend=be, name="sod_reset_cell")
        ops.par_loop(reset_n, self.block, nodes,
                     self.xvel0(ops.WRITE), self.xvel1(ops.READ),
                     backend=be, name="sod_reset_node")

        self.time += dt
        return dt

    def run_until(self, t_end: float, max_steps: int = 100_000) -> float:
        steps = 0
        while self.time < t_end and steps < max_steps:
            dt = self.step()
            if self.time + dt > t_end:
                pass  # last partial step overshoot is acceptable at CFL size
            steps += 1
        return self.time

    # -- observables -----------------------------------------------------------------------

    def centres(self) -> np.ndarray:
        return (np.arange(self.n) + 0.5) * self.dx

    def profiles(self) -> dict[str, np.ndarray]:
        return {
            "rho": self.density0.interior.copy(),
            "e": self.energy0.interior.copy(),
            "p": self.pressure.interior.copy(),
            "u": 0.5 * (self.xvel0.interior[:-1] + self.xvel0.interior[1:]),
        }

    def total_mass(self) -> float:
        return float(self.density0.interior.sum() * self.dx)
