"""CloverLeaf 3D: the same hydro scheme in three dimensions (OPS).

The UK mini-app consortium ships CloverLeaf 2D and 3D; the paper evaluates
the 2D code, but a credible OPS release carries both.  This is the 2D
scheme (EOS, artificial viscosity, CFL control, PdV predictor/corrector,
nodal acceleration, direction-split donor-cell advection with conservative
momentum remap) extended to three dimensions, with rotating sweep orders.

Validation (tests): a z-uniform 3D problem must reproduce the 2D solver's
solution exactly, z-velocities staying identically zero; mass is conserved
to round-off; the symmetric blast stays symmetric under axis permutation.
"""

from repro.apps.cloverleaf3d.app import CloverLeaf3DApp, clover_bm3_state

__all__ = ["CloverLeaf3DApp", "clover_bm3_state"]
