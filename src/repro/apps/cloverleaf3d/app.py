"""CloverLeaf 3D driver and kernels.

Formulas are the 2D scheme's with the third dimension added symmetrically;
every per-direction phase is written once and driven by a direction index.
The artificial-viscosity length scale is kept at ``dx*dy`` so a z-uniform
problem reproduces the 2D solver *exactly* (the validation oracle).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product

import numpy as np

from repro import ops
from repro.apps.cloverleaf.state import DT_INIT, DT_MAX, DTC_SAFE, G_BIG, G_SMALL, GAMMA

# direction metadata: unit offsets
_DIRS = ((1, 0, 0), (0, 1, 0), (0, 0, 1))


def _stencil(points) -> ops.Stencil:
    return ops.Stencil(3, points)


S3_SELF = _stencil([(0, 0, 0)])
#: the 8 nodes of a cell (cell loops reading node data)
S3_NODE8 = _stencil(list(product((0, 1), repeat=3)))
#: the 8 cells of a node (node loops reading cell data)
S3_CELL8 = _stencil(list(product((0, -1), repeat=3)))
S3_FACE = [_stencil([(0, 0, 0), d]) for d in _DIRS]
S3_DONOR = [_stencil([(0, 0, 0), tuple(-c for c in d)]) for d in _DIRS]
S3_VEL = [
    _stencil([(0, 0, 0), tuple(-c for c in d), d]) for d in _DIRS
]
#: the 4 faces of direction d adjacent to a node (offsets in the other dims)
S3_NODE_FACES = [
    _stencil(
        [
            tuple(-o if k != d and o else 0 for k, o in enumerate(offs))
            for offs in product((0, 1), repeat=3)
            if offs[d] == 0
        ]
    )
    for d in range(3)
]


@dataclass
class Clover3DState:
    block: ops.Block
    nx: int
    ny: int
    nz: int
    dx: float
    dy: float
    dz: float
    dats: dict[str, ops.Dat] = field(default_factory=dict)

    @property
    def volume(self) -> float:
        return self.dx * self.dy * self.dz

    def __getattr__(self, name):
        if name == "dats":
            raise AttributeError(name)
        try:
            return self.dats[name]
        except KeyError:
            raise AttributeError(name) from None


#: field -> (centering per axis, flips per axis); 'n' node-like, 'c' cell-like
FIELD_INFO_3D: dict[str, tuple[str, tuple[float, float, float]]] = {
    "density0": ("ccc", (1, 1, 1)),
    "density1": ("ccc", (1, 1, 1)),
    "energy0": ("ccc", (1, 1, 1)),
    "energy1": ("ccc", (1, 1, 1)),
    "pressure": ("ccc", (1, 1, 1)),
    "viscosity": ("ccc", (1, 1, 1)),
    "soundspeed": ("ccc", (1, 1, 1)),
    "xvel0": ("nnn", (-1, 1, 1)),
    "xvel1": ("nnn", (-1, 1, 1)),
    "yvel0": ("nnn", (1, -1, 1)),
    "yvel1": ("nnn", (1, -1, 1)),
    "zvel0": ("nnn", (1, 1, -1)),
    "zvel1": ("nnn", (1, 1, -1)),
    "node_mass": ("nnn", (1, 1, 1)),
    "mom_flux": ("nnn", (1, 1, 1)),
    "node_flux": ("nnn", (1, 1, 1)),
    "vol_flux_x": ("ncc", (-1, 1, 1)),
    "mass_flux_x": ("ncc", (-1, 1, 1)),
    "ener_flux_x": ("ncc", (-1, 1, 1)),
    "vol_flux_y": ("cnc", (1, -1, 1)),
    "mass_flux_y": ("cnc", (1, -1, 1)),
    "ener_flux_y": ("cnc", (1, -1, 1)),
    "vol_flux_z": ("ccn", (1, 1, -1)),
    "mass_flux_z": ("ccn", (1, 1, -1)),
    "ener_flux_z": ("ccn", (1, 1, -1)),
}


def clover_bm3_state(
    nx: int, ny: int, nz: int, *, extent: tuple[float, float, float] = (10.0, 10.0, 10.0)
) -> Clover3DState:
    """clover_bm-style setup: a dense energetic region in the low corner.

    The source spans the full z extent, so small-``nz`` problems are
    z-uniform (the 2D-equivalence oracle).
    """
    blk = ops.Block(3, "clover3d")
    st = Clover3DState(
        block=blk, nx=nx, ny=ny, nz=nz,
        dx=extent[0] / nx, dy=extent[1] / ny, dz=extent[2] / nz,
    )
    sizes = {
        "ccc": (nx, ny, nz),
        "nnn": (nx + 1, ny + 1, nz + 1),
        "ncc": (nx + 1, ny, nz),
        "cnc": (nx, ny + 1, nz),
        "ccn": (nx, ny, nz + 1),
    }
    for name, (centering, _) in FIELD_INFO_3D.items():
        st.dats[name] = ops.Dat(blk, sizes[centering], halo_depth=2, name=name)

    st.density0.interior[...] = 0.2
    st.energy0.interior[...] = 1.0
    ix, iy = max(nx // 2, 1), max(ny // 2, 1)
    st.density0.interior[:ix, :iy, :] = 1.0
    st.energy0.interior[:ix, :iy, :] = 2.5
    return st


def reflect3(dat: ops.Dat, centering: str, flips) -> None:
    """Reflective boundaries on all six sides (mirror per centering)."""
    h = dat.halo_depth
    a = dat.data
    for ax in range(3):
        s = dat.size[ax]
        node = centering[ax] == "n"
        f = flips[ax]
        for k in range(1, h + 1):
            lo = [slice(None)] * 3
            lo_src = [slice(None)] * 3
            hi = [slice(None)] * 3
            hi_src = [slice(None)] * 3
            lo[ax] = h - k
            lo_src[ax] = h + k if node else h + k - 1
            hi[ax] = h + s - 1 + k
            hi_src[ax] = h + s - 1 - k if node else h + s - k
            a[tuple(lo)] = f * a[tuple(lo_src)]
            a[tuple(hi)] = f * a[tuple(hi_src)]
    dat.halo_dirty = True


class CloverLeaf3DApp:
    """CloverLeaf 3D on the OPS API."""

    #: sweep orders rotated per step (z last on even steps matches the 2D
    #: solver's x-then-y / y-then-x alternation when the state is z-uniform)
    ORDERS = ((0, 1, 2), (1, 0, 2), (2, 1, 0))

    def __init__(self, nx: int = 16, ny: int = 16, nz: int = 16,
                 state: Clover3DState | None = None, backend: str = "vec"):
        self.st = state if state is not None else clover_bm3_state(nx, ny, nz)
        self.backend = backend
        self.dt = DT_INIT
        self.step_count = 0
        #: only alternate between the first two orders when the problem is
        #: run as a 2D-equivalence oracle; full runs rotate all three
        self.rotate_all = True

    # -- helpers -----------------------------------------------------------------

    def _bcs(self, names) -> None:
        for name in names:
            centering, flips = FIELD_INFO_3D[name]
            reflect3(self.st.dats[name], centering, flips)

    def _loop(self, kernel, ranges, *args, name) -> None:
        ops.par_loop(kernel, self.st.block, ranges, *args, backend=self.backend, name=name)

    def _cells(self):
        return [(0, self.st.nx), (0, self.st.ny), (0, self.st.nz)]

    def _nodes(self):
        return [(0, self.st.nx + 1), (0, self.st.ny + 1), (0, self.st.nz + 1)]

    def _d(self, axis: int) -> float:
        return (self.st.dx, self.st.dy, self.st.dz)[axis]

    def _vel(self, axis: int, level: int) -> ops.Dat:
        return self.st.dats[f"{'xyz'[axis]}vel{level}"]

    def _flux(self, kind: str, axis: int) -> ops.Dat:
        return self.st.dats[f"{kind}_flux_{'xyz'[axis]}"]

    # -- phases ----------------------------------------------------------------------

    def timestep(self) -> float:
        st = self.st
        self._bcs(["density0", "energy0", "xvel0", "yvel0", "zvel0"])

        def ideal_gas(d, e, p, c):
            p[0, 0, 0] = (GAMMA - 1.0) * d[0, 0, 0] * e[0, 0, 0]
            c[0, 0, 0] = np.sqrt(GAMMA * (GAMMA - 1.0) * e[0, 0, 0])

        self._loop(ideal_gas, self._cells(),
                   st.density0(ops.READ), st.energy0(ops.READ),
                   st.pressure(ops.WRITE), st.soundspeed(ops.WRITE), name="ideal_gas3")

        dx, dy, dz = st.dx, st.dy, st.dz
        lc2 = dx * dy  # matches the 2D coefficient (z-uniform oracle)

        def face_mean(v, axis):
            """Mean of a node dat over the 4 nodes of the cell's +axis face
            minus its -axis face (the velocity jump across the cell)."""
            plus = 0.0
            minus = 0.0
            for offs in product((0, 1), repeat=3):
                if offs[axis] == 1:
                    plus = plus + v[offs]
                else:
                    minus = minus + v[offs]
            return 0.25 * (plus - minus)

        def viscosity_k(xv, yv, zv, d0, q):
            ug = face_mean(xv, 0)
            vg = face_mean(yv, 1)
            wg = face_mean(zv, 2)
            div = ug / dx + vg / dy + wg / dz
            strain = (ug / dx) ** 2 + (vg / dy) ** 2 + (wg / dz) ** 2
            q[0, 0, 0] = np.where(div < 0.0, 2.0 * d0[0, 0, 0] * strain * lc2, 0.0)

        self._loop(viscosity_k, self._cells(),
                   st.xvel0(ops.READ, S3_NODE8), st.yvel0(ops.READ, S3_NODE8),
                   st.zvel0(ops.READ, S3_NODE8), st.density0(ops.READ),
                   st.viscosity(ops.WRITE), name="viscosity3")
        self._bcs(["pressure", "viscosity"])

        dt_min = ops.Reduction("min", name="dt3")

        def calc_dt(d0, c0, q, xv, yv, zv, t):
            cc = np.sqrt(c0[0, 0, 0] ** 2 + 2.0 * q[0, 0, 0] / (d0[0, 0, 0] + G_SMALL)) + G_SMALL
            vels = (xv, yv, zv)
            val = G_BIG
            for axis, dd in enumerate((dx, dy, dz)):
                u = 0.0
                for offs in product((0, 1), repeat=3):
                    u = u + vels[axis][offs]
                u = 0.125 * np.abs(u)
                val = np.minimum(val, DTC_SAFE * dd / (cc + u + G_SMALL))
            t.min(val)

        self._loop(calc_dt, self._cells(),
                   st.density0(ops.READ), st.soundspeed(ops.READ), st.viscosity(ops.READ),
                   st.xvel0(ops.READ, S3_NODE8), st.yvel0(ops.READ, S3_NODE8),
                   st.zvel0(ops.READ, S3_NODE8), dt_min, name="calc_dt3")
        self.dt = float(min(dt_min.value, DT_MAX))
        return self.dt

    def _pdv(self, corrector: bool) -> None:
        st = self.st
        dt = self.dt
        dx, dy, dz = st.dx, st.dy, st.dz
        volume = st.volume
        frac = dt if corrector else 0.5 * dt
        areas = (dy * dz, dx * dz, dx * dy)

        def face_flux(v0, v1, axis):
            plus = 0.0
            minus = 0.0
            for offs in product((0, 1), repeat=3):
                val = v0[offs] if v1 is None else 0.5 * (v0[offs] + v1[offs])
                if offs[axis] == 1:
                    plus = plus + val
                else:
                    minus = minus + val
            return 0.25 * (plus - minus) * frac * areas[axis]

        if corrector:

            def pdv_k(xv0, yv0, zv0, xv1, yv1, zv1, d0, e0, p, q, d1, e1):
                total = (
                    face_flux(xv0, xv1, 0) + face_flux(yv0, yv1, 1) + face_flux(zv0, zv1, 2)
                )
                vc = total / volume
                d1[0, 0, 0] = d0[0, 0, 0] / (1.0 + vc)
                e1[0, 0, 0] = e0[0, 0, 0] - (
                    (p[0, 0, 0] + q[0, 0, 0]) / (d0[0, 0, 0] + G_SMALL)
                ) * vc

            self._loop(pdv_k, self._cells(),
                       st.xvel0(ops.READ, S3_NODE8), st.yvel0(ops.READ, S3_NODE8),
                       st.zvel0(ops.READ, S3_NODE8), st.xvel1(ops.READ, S3_NODE8),
                       st.yvel1(ops.READ, S3_NODE8), st.zvel1(ops.READ, S3_NODE8),
                       st.density0(ops.READ), st.energy0(ops.READ),
                       st.pressure(ops.READ), st.viscosity(ops.READ),
                       st.density1(ops.WRITE), st.energy1(ops.WRITE), name="pdv_correct3")
        else:

            def pdv_k(xv0, yv0, zv0, d0, e0, p, q, d1, e1):
                total = (
                    face_flux(xv0, None, 0) + face_flux(yv0, None, 1) + face_flux(zv0, None, 2)
                )
                vc = total / volume
                d1[0, 0, 0] = d0[0, 0, 0] / (1.0 + vc)
                e1[0, 0, 0] = e0[0, 0, 0] - (
                    (p[0, 0, 0] + q[0, 0, 0]) / (d0[0, 0, 0] + G_SMALL)
                ) * vc

            self._loop(pdv_k, self._cells(),
                       st.xvel0(ops.READ, S3_NODE8), st.yvel0(ops.READ, S3_NODE8),
                       st.zvel0(ops.READ, S3_NODE8),
                       st.density0(ops.READ), st.energy0(ops.READ),
                       st.pressure(ops.READ), st.viscosity(ops.READ),
                       st.density1(ops.WRITE), st.energy1(ops.WRITE), name="pdv_predict3")

    def lagrangian(self) -> None:
        st = self.st
        self._pdv(corrector=False)

        def ideal_gas(d, e, p, c):
            p[0, 0, 0] = (GAMMA - 1.0) * d[0, 0, 0] * e[0, 0, 0]
            c[0, 0, 0] = np.sqrt(GAMMA * (GAMMA - 1.0) * e[0, 0, 0])

        self._loop(ideal_gas, self._cells(),
                   st.density1(ops.READ), st.energy1(ops.READ),
                   st.pressure(ops.WRITE), st.soundspeed(ops.WRITE), name="ideal_gas3")

        def revert(d0, e0, d1, e1):
            d1[0, 0, 0] = d0[0, 0, 0]
            e1[0, 0, 0] = e0[0, 0, 0]

        self._loop(revert, self._cells(),
                   st.density0(ops.READ), st.energy0(ops.READ),
                   st.density1(ops.WRITE), st.energy1(ops.WRITE), name="revert3")
        self._bcs(["pressure", "viscosity", "density0"])

        dt = self.dt
        dx, dy, dz = st.dx, st.dy, st.dz
        volume = st.volume
        areas = (dy * dz, dx * dz, dx * dy)

        def grad(p, axis):
            """0.25 * sum over the 4 cell-pairs adjacent to the node."""
            total = 0.0
            for offs in product((0, -1), repeat=3):
                if offs[axis] == 0:
                    lo = tuple(-1 if k == axis else offs[k] for k in range(3))
                    total = total + (p[offs] - p[lo])
            return 0.25 * total

        def accelerate(d0, p, q, xv0, yv0, zv0, xv1, yv1, zv1):
            nodal_mass = 0.0
            for offs in product((0, -1), repeat=3):
                nodal_mass = nodal_mass + d0[offs]
            nodal_mass = 0.125 * nodal_mass * volume
            step = dt / (nodal_mass + G_SMALL)
            xv1[0, 0, 0] = xv0[0, 0, 0] - step * areas[0] * (grad(p, 0) + grad(q, 0))
            yv1[0, 0, 0] = yv0[0, 0, 0] - step * areas[1] * (grad(p, 1) + grad(q, 1))
            zv1[0, 0, 0] = zv0[0, 0, 0] - step * areas[2] * (grad(p, 2) + grad(q, 2))

        self._loop(accelerate, self._nodes(),
                   st.density0(ops.READ, S3_CELL8), st.pressure(ops.READ, S3_CELL8),
                   st.viscosity(ops.READ, S3_CELL8),
                   st.xvel0(ops.READ), st.yvel0(ops.READ), st.zvel0(ops.READ),
                   st.xvel1(ops.WRITE), st.yvel1(ops.WRITE), st.zvel1(ops.WRITE),
                   name="accelerate3")
        self._bcs(["xvel1", "yvel1", "zvel1"])
        self._pdv(corrector=True)

    def advection(self) -> None:
        st = self.st
        dt = self.dt
        dx, dy, dz = st.dx, st.dy, st.dz
        areas = (dy * dz, dx * dz, dx * dy)
        volume = st.volume

        # volume fluxes in all three directions -------------------------------------
        for axis in range(3):
            v0 = self._vel(axis, 0)
            v1 = self._vel(axis, 1)
            vf = self._flux("vol", axis)
            area = areas[axis]

            def flux_calc(a0, a1, out, area=area, axis=axis):
                total = 0.0
                for offs in product((0, 1), repeat=3):
                    if offs[axis] == 0:
                        total = total + a0[offs] + a1[offs]
                out[0, 0, 0] = 0.125 * dt * area * total

            ranges = self._cells()
            ranges[axis] = (0, ranges[axis][1] + 1)
            self._loop(flux_calc, ranges,
                       v0(ops.READ, S3_NODE_FACES[axis]), v1(ops.READ, S3_NODE_FACES[axis]),
                       vf(ops.WRITE), name=f"flux_calc3_{'xyz'[axis]}")

        order = self.ORDERS[self.step_count % (3 if self.rotate_all else 2)]
        for sweep, axis in enumerate(order):
            self._sweep(axis, order[sweep:], volume)

    def _sweep(self, axis: int, remaining, volume: float) -> None:
        st = self.st
        self._bcs(["density1", "energy1"])
        vf = self._flux("vol", axis)
        mf = self._flux("mass", axis)
        ef = self._flux("ener", axis)
        back = tuple(-c for c in _DIRS[axis])
        fwd = _DIRS[axis]

        def mass_ener_flux(v, d1, e1, m, e):
            donor_d = np.where(v[0, 0, 0] > 0.0, d1[back], d1[0, 0, 0])
            donor_e = np.where(v[0, 0, 0] > 0.0, e1[back], e1[0, 0, 0])
            m[0, 0, 0] = v[0, 0, 0] * donor_d
            e[0, 0, 0] = v[0, 0, 0] * donor_d * donor_e

        ranges = self._cells()
        ranges[axis] = (0, ranges[axis][1] + 1)
        self._loop(mass_ener_flux, ranges,
                   vf(ops.READ), st.density1(ops.READ, S3_DONOR[axis]),
                   st.energy1(ops.READ, S3_DONOR[axis]),
                   mf(ops.WRITE), ef(ops.WRITE), name=f"mass_ener_flux3_{'xyz'[axis]}")

        rem_fluxes = [self._flux("vol", a) for a in remaining]
        rem_dirs = [(_DIRS[a]) for a in remaining]

        def advec_cell(*args):
            # args: one vol-flux accessor per remaining dir, then mf, ef, d1, e1
            vols = args[: len(rem_dirs)]
            m, e, d1, e1 = args[len(rem_dirs):]
            pre_vol = volume
            dv_this = None
            for v, dirc in zip(vols, rem_dirs):
                dv = v[dirc] - v[0, 0, 0]
                pre_vol = pre_vol + dv
                if dirc == fwd and dv_this is None:
                    dv_this = dv
            post_vol = pre_vol - dv_this
            pre_mass = d1[0, 0, 0] * pre_vol
            post_mass = pre_mass + m[0, 0, 0] - m[fwd]
            post_e = (e1[0, 0, 0] * pre_mass + e[0, 0, 0] - e[fwd]) / (post_mass + G_SMALL)
            d1[0, 0, 0] = post_mass / post_vol
            e1[0, 0, 0] = post_e

        vol_args = [
            self._flux("vol", a)(ops.READ, S3_FACE[a]) for a in remaining
        ]
        self._loop(advec_cell, self._cells(),
                   *vol_args,
                   mf(ops.READ, S3_FACE[axis]), ef(ops.READ, S3_FACE[axis]),
                   st.density1(ops.RW), st.energy1(ops.RW),
                   name=f"advec_cell3_{'xyz'[axis]}")

        # momentum remap -----------------------------------------------------------
        self._bcs(["density1", f"mass_flux_{'xyz'[axis]}"])

        def node_mass_k(d1, nm):
            total = 0.0
            for offs in product((0, -1), repeat=3):
                total = total + d1[offs]
            nm[0, 0, 0] = 0.125 * total * volume

        self._loop(node_mass_k, self._nodes(),
                   st.density1(ops.READ, S3_CELL8), st.node_mass(ops.WRITE),
                   name="advec_mom_node_mass3")

        node_face_offs = [
            tuple(-o if k != axis and o else 0 for k, o in enumerate(offs))
            for offs in product((0, 1), repeat=3)
            if offs[axis] == 0
        ]

        for vaxis in range(3):
            vel = self._vel(vaxis, 1)
            self._bcs([f"{'xyz'[vaxis]}vel1"])

            def mom_flux_k(m, xv, out, nf):
                flux = 0.0
                for offs in node_face_offs:
                    flux = flux + m[offs]
                flux = 0.25 * flux
                donor = np.where(flux > 0.0, xv[back], xv[0, 0, 0])
                out[0, 0, 0] = flux * donor
                nf[0, 0, 0] = flux

            self._loop(mom_flux_k, self._nodes(),
                       mf(ops.READ, S3_NODE_FACES[axis]), vel(ops.READ, S3_VEL[axis]),
                       st.mom_flux(ops.WRITE), st.node_flux(ops.WRITE),
                       name=f"advec_mom_flux3_{'xyz'[axis]}")

            def mom_update(out, nf, nm, xv):
                post = nm[0, 0, 0] + G_SMALL
                pre = nm[0, 0, 0] - nf[0, 0, 0] + nf[fwd]
                xv[0, 0, 0] = (xv[0, 0, 0] * pre + out[0, 0, 0] - out[fwd]) / post

            ranges = self._nodes()
            ranges[axis] = (1, ranges[axis][1] - 1)
            self._loop(mom_update, ranges,
                       st.mom_flux(ops.READ, S3_FACE[axis]),
                       st.node_flux(ops.READ, S3_FACE[axis]),
                       st.node_mass(ops.READ), vel(ops.RW),
                       name=f"advec_mom_update3_{'xyz'[axis]}")

    def reset(self) -> None:
        st = self.st

        def reset_c(d0, e0, d1, e1):
            d0[0, 0, 0] = d1[0, 0, 0]
            e0[0, 0, 0] = e1[0, 0, 0]

        def reset_n(x0, y0, z0, x1, y1, z1):
            x0[0, 0, 0] = x1[0, 0, 0]
            y0[0, 0, 0] = y1[0, 0, 0]
            z0[0, 0, 0] = z1[0, 0, 0]

        self._loop(reset_c, self._cells(),
                   st.density0(ops.WRITE), st.energy0(ops.WRITE),
                   st.density1(ops.READ), st.energy1(ops.READ), name="reset_cell3")
        self._loop(reset_n, self._nodes(),
                   st.xvel0(ops.WRITE), st.yvel0(ops.WRITE), st.zvel0(ops.WRITE),
                   st.xvel1(ops.READ), st.yvel1(ops.READ), st.zvel1(ops.READ),
                   name="reset_node3")

    def step(self) -> float:
        dt = self.timestep()
        self.lagrangian()
        self.advection()
        self.reset()
        self.step_count += 1
        return dt

    def run(self, steps: int) -> dict[str, float]:
        for _ in range(steps):
            self.step()
        return self.field_summary()

    def field_summary(self) -> dict[str, float]:
        st = self.st
        volume = st.volume
        cell_mass = st.density0.interior * volume
        return {
            "volume": volume * st.nx * st.ny * st.nz,
            "mass": float(cell_mass.sum()),
            "ie": float((cell_mass * st.energy0.interior).sum()),
            "pressure": float((volume * st.pressure.interior).sum()),
        }
