"""CloverLeaf OPS kernels.

Each factory returns an accessor-indexed kernel closed over the loop's
scalar parameters (dt, cell sizes) — the analogue of the Fortran kernels'
module constants.  Kernels use NumPy ufuncs, which operate identically on
the scalar accessors of the ``seq`` backend and the array accessors of the
``vec``/``tiled`` backends, so a single source serves every target.

Stencil declarations for every kernel are collected in :data:`STENCILS`.
"""

from __future__ import annotations

import numpy as np

from repro import ops
from repro.apps.cloverleaf.state import DTC_SAFE, G_BIG, G_SMALL, GAMMA

# -- stencils -----------------------------------------------------------------

S_SELF = ops.Stencil(2, [(0, 0)], "S_SELF")
#: the four nodes of a cell / four cells of a node (after offset convention)
S_NODE4 = ops.Stencil(2, [(0, 0), (1, 0), (0, 1), (1, 1)], "S_NODE4")
S_CELL4 = ops.Stencil(2, [(0, 0), (-1, 0), (0, -1), (-1, -1)], "S_CELL4")
S_FACE_X = ops.Stencil(2, [(0, 0), (1, 0)], "S_FACE_X")
S_FACE_Y = ops.Stencil(2, [(0, 0), (0, 1)], "S_FACE_Y")
S_DONOR_X = ops.Stencil(2, [(0, 0), (-1, 0)], "S_DONOR_X")
S_DONOR_Y = ops.Stencil(2, [(0, 0), (0, -1)], "S_DONOR_Y")
S_NODE_PAIR_X = ops.Stencil(2, [(0, 0), (0, -1), (-1, 0), (-1, -1)], "S_NODE_PAIR_X")
S_VEL_X = ops.Stencil(2, [(0, 0), (-1, 0), (1, 0)], "S_VEL_X")
S_VEL_Y = ops.Stencil(2, [(0, 0), (0, -1), (0, 1)], "S_VEL_Y")


def ideal_gas_kernel(d, e, p, c):
    """EOS: pressure and soundspeed from density and specific energy."""
    dv = d[0, 0]
    ev = e[0, 0]
    p[0, 0] = (GAMMA - 1.0) * dv * ev
    c[0, 0] = np.sqrt(GAMMA * (GAMMA - 1.0) * ev)


def make_viscosity_kernel(dx: float, dy: float):
    """Artificial (von Neumann-Richtmyer-style) viscosity from velocity gradients."""

    def viscosity_kernel(xvel0, yvel0, density0, visc):
        ugrad = 0.5 * ((xvel0[1, 0] + xvel0[1, 1]) - (xvel0[0, 0] + xvel0[0, 1]))
        vgrad = 0.5 * ((yvel0[0, 1] + yvel0[1, 1]) - (yvel0[0, 0] + yvel0[1, 0]))
        div = ugrad / dx + vgrad / dy
        strain = (ugrad / dx) ** 2 + (vgrad / dy) ** 2
        visc[0, 0] = np.where(div < 0.0, 2.0 * density0[0, 0] * strain * dx * dy, 0.0)

    return viscosity_kernel


def make_calc_dt_kernel(dx: float, dy: float):
    """CFL timestep control: MIN reduction over cells."""

    def calc_dt_kernel(density0, soundspeed, viscosity, xvel0, yvel0, dt_min):
        cc = soundspeed[0, 0] ** 2 + 2.0 * viscosity[0, 0] / (
            density0[0, 0] + G_SMALL
        )
        cc = np.sqrt(cc) + G_SMALL
        u = 0.25 * np.abs(xvel0[0, 0] + xvel0[1, 0] + xvel0[0, 1] + xvel0[1, 1])
        v = 0.25 * np.abs(yvel0[0, 0] + yvel0[1, 0] + yvel0[0, 1] + yvel0[1, 1])
        dtc = DTC_SAFE * np.minimum(dx / (cc + u + G_SMALL), dy / (cc + v + G_SMALL))
        dt_min.min(np.minimum(dtc, G_BIG))

    return calc_dt_kernel


def make_pdv_kernel(dt: float, dx: float, dy: float, *, corrector: bool):
    """PdV work: density/energy change from the velocity divergence.

    Predictor uses half dt with the level-0 velocities; corrector uses the
    full dt with the average of level-0 and level-1 velocities.
    """
    volume = dx * dy
    frac = 0.5 * dt if not corrector else dt

    if not corrector:

        def pdv_kernel(xvel0, yvel0, density0, energy0, pressure, viscosity, density1, energy1):
            left = 0.5 * (xvel0[0, 0] + xvel0[0, 1]) * frac * dy
            right = 0.5 * (xvel0[1, 0] + xvel0[1, 1]) * frac * dy
            bottom = 0.5 * (yvel0[0, 0] + yvel0[1, 0]) * frac * dx
            top = 0.5 * (yvel0[0, 1] + yvel0[1, 1]) * frac * dx
            total = (right - left) + (top - bottom)
            vol_change = total / volume
            density1[0, 0] = density0[0, 0] / (1.0 + vol_change)
            energy1[0, 0] = energy0[0, 0] - (
                (pressure[0, 0] + viscosity[0, 0]) / (density0[0, 0] + G_SMALL)
            ) * vol_change

        return pdv_kernel

    def pdv_corrector_kernel(
        xvel0, yvel0, xvel1, yvel1, density0, energy0, pressure, viscosity, density1, energy1
    ):
        left = 0.25 * (xvel0[0, 0] + xvel0[0, 1] + xvel1[0, 0] + xvel1[0, 1]) * frac * dy
        right = 0.25 * (xvel0[1, 0] + xvel0[1, 1] + xvel1[1, 0] + xvel1[1, 1]) * frac * dy
        bottom = 0.25 * (yvel0[0, 0] + yvel0[1, 0] + yvel1[0, 0] + yvel1[1, 0]) * frac * dx
        top = 0.25 * (yvel0[0, 1] + yvel0[1, 1] + yvel1[0, 1] + yvel1[1, 1]) * frac * dx
        total = (right - left) + (top - bottom)
        vol_change = total / volume
        density1[0, 0] = density0[0, 0] / (1.0 + vol_change)
        energy1[0, 0] = energy0[0, 0] - (
            (pressure[0, 0] + viscosity[0, 0]) / (density0[0, 0] + G_SMALL)
        ) * vol_change

    return pdv_corrector_kernel


def revert_kernel(density0, energy0, density1, energy1):
    density1[0, 0] = density0[0, 0]
    energy1[0, 0] = energy0[0, 0]


def make_accelerate_kernel(dt: float, dx: float, dy: float):
    """Node acceleration from pressure and viscosity gradients (full dt).

    The gradient terms below average the two adjacent cell-pair differences
    (the 0.5 factors), so ``stepbymass`` carries the full dt — mirroring the
    original's halfdt times a two-pair *sum*.
    """
    volume = dx * dy

    def accelerate_kernel(density0, pressure, viscosity, xvel0, yvel0, xvel1, yvel1):
        nodal_mass = (
            0.25
            * (
                density0[0, 0]
                + density0[-1, 0]
                + density0[0, -1]
                + density0[-1, -1]
            )
            * volume
        )
        stepbymass = dt / (nodal_mass + G_SMALL)
        dpx = 0.5 * dy * (
            (pressure[0, 0] + pressure[0, -1]) - (pressure[-1, 0] + pressure[-1, -1])
        )
        dpy = 0.5 * dx * (
            (pressure[0, 0] + pressure[-1, 0]) - (pressure[0, -1] + pressure[-1, -1])
        )
        dvx = 0.5 * dy * (
            (viscosity[0, 0] + viscosity[0, -1]) - (viscosity[-1, 0] + viscosity[-1, -1])
        )
        dvy = 0.5 * dx * (
            (viscosity[0, 0] + viscosity[-1, 0]) - (viscosity[0, -1] + viscosity[-1, -1])
        )
        xvel1[0, 0] = xvel0[0, 0] - stepbymass * (dpx + dvx)
        yvel1[0, 0] = yvel0[0, 0] - stepbymass * (dpy + dvy)

    return accelerate_kernel


def make_flux_calc_x_kernel(dt: float, dy: float):
    def flux_calc_x_kernel(xvel0, xvel1, vol_flux_x):
        vol_flux_x[0, 0] = (
            0.25 * dt * dy * (xvel0[0, 0] + xvel0[0, 1] + xvel1[0, 0] + xvel1[0, 1])
        )

    return flux_calc_x_kernel


def make_flux_calc_y_kernel(dt: float, dx: float):
    def flux_calc_y_kernel(yvel0, yvel1, vol_flux_y):
        vol_flux_y[0, 0] = (
            0.25 * dt * dx * (yvel0[0, 0] + yvel0[1, 0] + yvel1[0, 0] + yvel1[1, 0])
        )

    return flux_calc_y_kernel


def mass_ener_flux_x_kernel(vol_flux_x, density1, energy1, mass_flux_x, ener_flux_x):
    """Donor-cell upwind mass/energy flux through x faces."""
    vf = vol_flux_x[0, 0]
    donor_d = np.where(vf > 0.0, density1[-1, 0], density1[0, 0])
    donor_e = np.where(vf > 0.0, energy1[-1, 0], energy1[0, 0])
    mass_flux_x[0, 0] = vf * donor_d
    ener_flux_x[0, 0] = vf * donor_d * donor_e


def mass_ener_flux_y_kernel(vol_flux_y, density1, energy1, mass_flux_y, ener_flux_y):
    vf = vol_flux_y[0, 0]
    donor_d = np.where(vf > 0.0, density1[0, -1], density1[0, 0])
    donor_e = np.where(vf > 0.0, energy1[0, -1], energy1[0, 0])
    mass_flux_y[0, 0] = vf * donor_d
    ener_flux_y[0, 0] = vf * donor_d * donor_e


def make_advec_cell_x_kernel(dx: float, dy: float, *, first: bool = True):
    """x-direction remap with Lagrangian pre/post volumes (conserves mass).

    ``pre_vol`` is the cell's Lagrangian volume: on the first sweep of a
    step it carries the whole volume change (x and y parts); on the second
    sweep only the x part remains.  The x pass removes the x part.
    """
    volume = dx * dy

    def advec_cell_x_kernel(
        vol_flux_x, vol_flux_y, mass_flux_x, ener_flux_x, density1, energy1
    ):
        dvx = vol_flux_x[1, 0] - vol_flux_x[0, 0]
        dvy = vol_flux_y[0, 1] - vol_flux_y[0, 0]
        pre_vol = volume + dvx + dvy if first else volume + dvx
        post_vol = pre_vol - dvx
        pre_mass = density1[0, 0] * pre_vol
        post_mass = pre_mass + mass_flux_x[0, 0] - mass_flux_x[1, 0]
        post_ener = (
            energy1[0, 0] * pre_mass + ener_flux_x[0, 0] - ener_flux_x[1, 0]
        ) / (post_mass + G_SMALL)
        density1[0, 0] = post_mass / post_vol
        energy1[0, 0] = post_ener

    return advec_cell_x_kernel


def make_advec_cell_y_kernel(dx: float, dy: float, *, first: bool = False):
    """y-direction remap: removes the y part of the volume change."""
    volume = dx * dy

    def advec_cell_y_kernel(
        vol_flux_x, vol_flux_y, mass_flux_y, ener_flux_y, density1, energy1
    ):
        dvx = vol_flux_x[1, 0] - vol_flux_x[0, 0]
        dvy = vol_flux_y[0, 1] - vol_flux_y[0, 0]
        pre_vol = volume + dvx + dvy if first else volume + dvy
        post_vol = pre_vol - dvy
        pre_mass = density1[0, 0] * pre_vol
        post_mass = pre_mass + mass_flux_y[0, 0] - mass_flux_y[0, 1]
        post_ener = (
            energy1[0, 0] * pre_mass + ener_flux_y[0, 0] - ener_flux_y[0, 1]
        ) / (post_mass + G_SMALL)
        density1[0, 0] = post_mass / post_vol
        energy1[0, 0] = post_ener

    return advec_cell_y_kernel


def make_node_mass_kernel(dx: float, dy: float):
    volume = dx * dy

    def node_mass_kernel(density1, node_mass):
        node_mass[0, 0] = (
            0.25
            * (
                density1[0, 0]
                + density1[-1, 0]
                + density1[0, -1]
                + density1[-1, -1]
            )
            * volume
        )

    return node_mass_kernel


def mom_flux_x_kernel(mass_flux_x, vel, mom_flux, node_flux):
    """Upwind momentum flux through the left boundary of each node cell."""
    flux = 0.5 * (mass_flux_x[0, -1] + mass_flux_x[0, 0])
    donor = np.where(flux > 0.0, vel[-1, 0], vel[0, 0])
    mom_flux[0, 0] = flux * donor
    node_flux[0, 0] = flux


def mom_flux_y_kernel(mass_flux_y, vel, mom_flux, node_flux):
    flux = 0.5 * (mass_flux_y[-1, 0] + mass_flux_y[0, 0])
    donor = np.where(flux > 0.0, vel[0, -1], vel[0, 0])
    mom_flux[0, 0] = flux * donor
    node_flux[0, 0] = flux


def mom_update_x_kernel(mom_flux, node_flux, node_mass, vel):
    """Conservative remap: (u*pre_mass + flux_in - flux_out) / post_mass."""
    post = node_mass[0, 0] + G_SMALL
    pre = node_mass[0, 0] - node_flux[0, 0] + node_flux[1, 0]
    vel[0, 0] = (vel[0, 0] * pre + mom_flux[0, 0] - mom_flux[1, 0]) / post


def mom_update_y_kernel(mom_flux, node_flux, node_mass, vel):
    post = node_mass[0, 0] + G_SMALL
    pre = node_mass[0, 0] - node_flux[0, 0] + node_flux[0, 1]
    vel[0, 0] = (vel[0, 0] * pre + mom_flux[0, 0] - mom_flux[0, 1]) / post


def reset_cell_kernel(density0, energy0, density1, energy1):
    density0[0, 0] = density1[0, 0]
    energy0[0, 0] = energy1[0, 0]


def reset_node_kernel(xvel0, yvel0, xvel1, yvel1):
    xvel0[0, 0] = xvel1[0, 0]
    yvel0[0, 0] = yvel1[0, 0]


def make_field_summary_kernel(dx: float, dy: float):
    volume = dx * dy

    def field_summary_kernel(density0, energy0, pressure, xvel0, yvel0, vol, mass, ie, ke, press):
        vsq = 0.25 * (
            (xvel0[0, 0] ** 2 + yvel0[0, 0] ** 2)
            + (xvel0[1, 0] ** 2 + yvel0[1, 0] ** 2)
            + (xvel0[0, 1] ** 2 + yvel0[0, 1] ** 2)
            + (xvel0[1, 1] ** 2 + yvel0[1, 1] ** 2)
        )
        cell_mass = density0[0, 0] * volume
        vol.inc(volume + 0.0 * cell_mass)
        mass.inc(cell_mass)
        ie.inc(cell_mass * energy0[0, 0])
        ke.inc(cell_mass * 0.5 * vsq)
        press.inc(volume * pressure[0, 0])

    return field_summary_kernel
