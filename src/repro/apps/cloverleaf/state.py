"""CloverLeaf field state and problem setup.

The field set mirrors the original's staggered layout:

* cell-centred  ``(nx, ny)``:     density0/1, energy0/1, pressure,
  viscosity, soundspeed
* node-centred  ``(nx+1, ny+1)``: xvel0/1, yvel0/1, node_mass, mom_flux
* x-face        ``(nx+1, ny)``:   vol_flux_x, mass_flux_x, ener_flux_x
* y-face        ``(nx, ny+1)``:   vol_flux_y, mass_flux_y, ener_flux_y

The standard setup is the clover_bm energy source: quiescent background
(density 0.2, energy 1.0) with a dense energetic region in the lower-left
quadrant (density 1.0, energy 2.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import ops

GAMMA = 1.4
G_SMALL = 1.0e-16
G_BIG = 1.0e21
DTC_SAFE = 0.7
DT_INIT = 0.04
DT_MAX = 0.04


@dataclass
class CloverState:
    """All CloverLeaf fields on one OPS block."""

    block: ops.Block
    nx: int
    ny: int
    dx: float
    dy: float
    # cell-centred
    density0: ops.Dat = field(default=None)
    density1: ops.Dat = field(default=None)
    energy0: ops.Dat = field(default=None)
    energy1: ops.Dat = field(default=None)
    pressure: ops.Dat = field(default=None)
    viscosity: ops.Dat = field(default=None)
    soundspeed: ops.Dat = field(default=None)
    # node-centred
    xvel0: ops.Dat = field(default=None)
    xvel1: ops.Dat = field(default=None)
    yvel0: ops.Dat = field(default=None)
    yvel1: ops.Dat = field(default=None)
    node_mass: ops.Dat = field(default=None)
    mom_flux: ops.Dat = field(default=None)
    node_flux: ops.Dat = field(default=None)
    # x-faces
    vol_flux_x: ops.Dat = field(default=None)
    mass_flux_x: ops.Dat = field(default=None)
    ener_flux_x: ops.Dat = field(default=None)
    # y-faces
    vol_flux_y: ops.Dat = field(default=None)
    mass_flux_y: ops.Dat = field(default=None)
    ener_flux_y: ops.Dat = field(default=None)

    @property
    def volume(self) -> float:
        """Uniform cell volume (area in 2D)."""
        return self.dx * self.dy

    @property
    def cell_dats(self) -> list[ops.Dat]:
        return [
            self.density0,
            self.density1,
            self.energy0,
            self.energy1,
            self.pressure,
            self.viscosity,
            self.soundspeed,
        ]

    @property
    def all_dats(self) -> list[ops.Dat]:
        return self.cell_dats + [
            self.xvel0,
            self.xvel1,
            self.yvel0,
            self.yvel1,
            self.node_mass,
            self.mom_flux,
            self.node_flux,
            self.vol_flux_x,
            self.mass_flux_x,
            self.ener_flux_x,
            self.vol_flux_y,
            self.mass_flux_y,
            self.ener_flux_y,
        ]


def clover_bm_state(nx: int, ny: int, *, extent: tuple[float, float] = (10.0, 10.0)) -> CloverState:
    """Build the clover_bm-style problem on an ``nx`` x ``ny`` grid."""
    blk = ops.Block(2, "clover")
    st = CloverState(block=blk, nx=nx, ny=ny, dx=extent[0] / nx, dy=extent[1] / ny)

    def cell(name: str) -> ops.Dat:
        return ops.Dat(blk, (nx, ny), halo_depth=2, name=name)

    def node(name: str) -> ops.Dat:
        return ops.Dat(blk, (nx + 1, ny + 1), halo_depth=2, name=name)

    def xface(name: str) -> ops.Dat:
        return ops.Dat(blk, (nx + 1, ny), halo_depth=2, name=name)

    def yface(name: str) -> ops.Dat:
        return ops.Dat(blk, (nx, ny + 1), halo_depth=2, name=name)

    st.density0 = cell("density0")
    st.density1 = cell("density1")
    st.energy0 = cell("energy0")
    st.energy1 = cell("energy1")
    st.pressure = cell("pressure")
    st.viscosity = cell("viscosity")
    st.soundspeed = cell("soundspeed")
    st.xvel0 = node("xvel0")
    st.xvel1 = node("xvel1")
    st.yvel0 = node("yvel0")
    st.yvel1 = node("yvel1")
    st.node_mass = node("node_mass")
    st.mom_flux = node("mom_flux")
    st.node_flux = node("node_flux")
    st.vol_flux_x = xface("vol_flux_x")
    st.mass_flux_x = xface("mass_flux_x")
    st.ener_flux_x = xface("ener_flux_x")
    st.vol_flux_y = yface("vol_flux_y")
    st.mass_flux_y = yface("mass_flux_y")
    st.ener_flux_y = yface("ener_flux_y")

    # clover_bm energy source: dense hot region in the lower-left quadrant
    st.density0.interior[...] = 0.2
    st.energy0.interior[...] = 1.0
    ix = max(nx // 2, 1)
    iy = max(ny // 2, 1)
    st.density0.interior[:ix, :iy] = 1.0
    st.energy0.interior[:ix, :iy] = 2.5
    return st


#: field name -> (centering, flip_x, flip_y); centering axes are
#: 'n' (node-like, extent n+1, mirror about the boundary node) or
#: 'c' (cell-like, extent n, mirror about the boundary face)
FIELD_INFO: dict[str, tuple[str, float, float]] = {
    "density0": ("cc", 1.0, 1.0),
    "density1": ("cc", 1.0, 1.0),
    "energy0": ("cc", 1.0, 1.0),
    "energy1": ("cc", 1.0, 1.0),
    "pressure": ("cc", 1.0, 1.0),
    "viscosity": ("cc", 1.0, 1.0),
    "soundspeed": ("cc", 1.0, 1.0),
    "xvel0": ("nn", -1.0, 1.0),
    "xvel1": ("nn", -1.0, 1.0),
    "yvel0": ("nn", 1.0, -1.0),
    "yvel1": ("nn", 1.0, -1.0),
    "node_mass": ("nn", 1.0, 1.0),
    "mom_flux": ("nn", 1.0, 1.0),
    "node_flux": ("nn", 1.0, 1.0),
    "vol_flux_x": ("nc", -1.0, 1.0),
    "mass_flux_x": ("nc", -1.0, 1.0),
    "ener_flux_x": ("nc", -1.0, 1.0),
    "vol_flux_y": ("cn", 1.0, -1.0),
    "mass_flux_y": ("cn", 1.0, -1.0),
    "ener_flux_y": ("cn", 1.0, -1.0),
}


def reflect_dat(
    dat: ops.Dat,
    centering: str,
    flip_x: float,
    flip_y: float,
    *,
    depth: int = 2,
    lo_x: bool = True,
    hi_x: bool = True,
    lo_y: bool = True,
    hi_y: bool = True,
) -> None:
    """Fill ghost layers of one dat with reflective (free-slip) values.

    The four boolean flags select which physical boundaries this dat's
    storage actually touches — under MPI only edge ranks reflect, interior
    partition boundaries are filled by halo exchange instead.
    """
    h = dat.halo_depth
    d = min(depth, h)
    a = dat.data
    sx, sy = dat.size
    node_x = centering[0] == "n"
    node_y = centering[1] == "n"
    for k in range(1, d + 1):
        if lo_x:
            a[h - k, :] = flip_x * a[h + k if node_x else h + k - 1, :]
        if hi_x:
            a[h + sx - 1 + k, :] = flip_x * a[h + sx - 1 - k if node_x else h + sx - k, :]
    for k in range(1, d + 1):
        if lo_y:
            a[:, h - k] = flip_y * a[:, h + k if node_y else h + k - 1]
        if hi_y:
            a[:, h + sy - 1 + k] = flip_y * a[:, h + sy - 1 - k if node_y else h + sy - k]
    dat.halo_dirty = True


def apply_reflective_bcs(st: CloverState, fields: list[str], depth: int = 2) -> None:
    """Reflective boundaries on the serial (undecomposed) state."""
    for name in fields:
        centering, fx, fy = FIELD_INFO[name]
        reflect_dat(getattr(st, name), centering, fx, fy, depth=depth)
