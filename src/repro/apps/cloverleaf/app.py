"""CloverLeaf hydro cycle on the OPS API.

One timestep follows the original's sequence: EOS + viscosity + CFL
timestep control, PdV predictor, EOS on the half-step state, revert,
acceleration, PdV corrector, volume fluxes, donor-cell advection of cell
quantities and momentum (x then y sweep), field reset.  Boundary
conditions are reflective free-slip, applied into the ghost layers before
the kernels that read them.
"""

from __future__ import annotations

import numpy as np

from repro import ops
from repro.apps.cloverleaf import kernels as K
from repro.apps.cloverleaf.state import (
    DT_INIT,
    DT_MAX,
    FIELD_INFO,
    CloverState,
    apply_reflective_bcs,
    clover_bm_state,
    reflect_dat,
)


class CloverLeafApp:
    """CloverLeaf 2D written against the OPS API."""

    def __init__(self, state: CloverState | None = None, *, nx: int = 64, ny: int = 64,
                 backend: str = "vec", fuse_lagrangian: bool = False):
        self.st = state if state is not None else clover_bm_state(nx, ny)
        self.backend = backend
        self.dt = DT_INIT
        self.step_count = 0
        #: execute the PdV-predictor / EOS / revert pointwise run as one
        #: tile-fused loop chain (the Section-VI locality optimisation)
        self.fuse_lagrangian = fuse_lagrangian

    # -- helpers --------------------------------------------------------------------

    def _loop(self, kernel, ranges, *args, name: str, flops: int = 0) -> None:
        ops.par_loop(
            kernel,
            self.st.block,
            ranges,
            *args,
            backend=self.backend,
            name=name,
            flops_per_point=flops,
        )

    def _apply_bcs(self, fields: list[str], depth: int = 2) -> None:
        """Reflective boundaries; overridden edge-aware in the MPI variant."""
        apply_reflective_bcs(self.st, fields, depth)

    # -- one timestep --------------------------------------------------------------------

    def timestep(self) -> float:
        """EOS, viscosity and the CFL dt (the `timestep` phase)."""
        st = self.st
        nx, ny = st.nx, st.ny
        cells = [(0, nx), (0, ny)]
        self._apply_bcs(["density0", "energy0", "xvel0", "yvel0"])
        self._loop(
            K.ideal_gas_kernel,
            cells,
            st.density0(ops.READ),
            st.energy0(ops.READ),
            st.pressure(ops.WRITE),
            st.soundspeed(ops.WRITE),
            name="ideal_gas",
            flops=5,
        )
        self._loop(
            K.make_viscosity_kernel(st.dx, st.dy),
            cells,
            st.xvel0(ops.READ, K.S_NODE4),
            st.yvel0(ops.READ, K.S_NODE4),
            st.density0(ops.READ),
            st.viscosity(ops.WRITE),
            name="viscosity",
            flops=20,
        )
        self._apply_bcs(["pressure", "viscosity"])
        dt_min = ops.Reduction("min", name="dt_min")
        self._loop(
            K.make_calc_dt_kernel(st.dx, st.dy),
            cells,
            st.density0(ops.READ),
            st.soundspeed(ops.READ),
            st.viscosity(ops.READ),
            st.xvel0(ops.READ, K.S_NODE4),
            st.yvel0(ops.READ, K.S_NODE4),
            dt_min,
            name="calc_dt",
            flops=25,
        )
        self.dt = float(min(dt_min.value, DT_MAX))
        return self.dt

    def lagrangian(self) -> None:
        """PdV predictor/corrector and nodal acceleration."""
        st = self.st
        nx, ny = st.nx, st.ny
        cells = [(0, nx), (0, ny)]
        nodes = [(0, nx + 1), (0, ny + 1)]
        predictor = [
            (
                K.make_pdv_kernel(self.dt, st.dx, st.dy, corrector=False),
                cells,
                (
                    st.xvel0(ops.READ, K.S_NODE4),
                    st.yvel0(ops.READ, K.S_NODE4),
                    st.density0(ops.READ),
                    st.energy0(ops.READ),
                    st.pressure(ops.READ),
                    st.viscosity(ops.READ),
                    st.density1(ops.WRITE),
                    st.energy1(ops.WRITE),
                ),
                "pdv_predict",
                25,
            ),
            (
                K.ideal_gas_kernel,
                cells,
                (
                    st.density1(ops.READ),
                    st.energy1(ops.READ),
                    st.pressure(ops.WRITE),
                    st.soundspeed(ops.WRITE),
                ),
                "ideal_gas",
                5,
            ),
            (
                K.revert_kernel,
                cells,
                (
                    st.density0(ops.READ),
                    st.energy0(ops.READ),
                    st.density1(ops.WRITE),
                    st.energy1(ops.WRITE),
                ),
                "revert",
                0,
            ),
        ]
        if self.fuse_lagrangian and not hasattr(self, "lb"):
            from repro.ops.fusion import LoopChain

            chain = LoopChain(tile_shape=(64, 64))
            for kern, ranges, args, name, flops in predictor:
                chain.add(kern, st.block, ranges, *args, name=name, flops_per_point=flops)
            chain.execute(backend=self.backend)
        else:
            for kern, ranges, args, name, flops in predictor:
                self._loop(kern, ranges, *args, name=name, flops=flops)
        self._apply_bcs(["pressure", "viscosity", "density0"])
        self._loop(
            K.make_accelerate_kernel(self.dt, st.dx, st.dy),
            nodes,
            st.density0(ops.READ, K.S_CELL4),
            st.pressure(ops.READ, K.S_CELL4),
            st.viscosity(ops.READ, K.S_CELL4),
            st.xvel0(ops.READ),
            st.yvel0(ops.READ),
            st.xvel1(ops.WRITE),
            st.yvel1(ops.WRITE),
            name="accelerate",
            flops=30,
        )
        self._apply_bcs(["xvel1", "yvel1"])
        self._loop(
            K.make_pdv_kernel(self.dt, st.dx, st.dy, corrector=True),
            cells,
            st.xvel0(ops.READ, K.S_NODE4),
            st.yvel0(ops.READ, K.S_NODE4),
            st.xvel1(ops.READ, K.S_NODE4),
            st.yvel1(ops.READ, K.S_NODE4),
            st.density0(ops.READ),
            st.energy0(ops.READ),
            st.pressure(ops.READ),
            st.viscosity(ops.READ),
            st.density1(ops.WRITE),
            st.energy1(ops.WRITE),
            name="pdv_correct",
            flops=35,
        )

    def advection(self) -> None:
        """Volume fluxes and donor-cell advection (direction-split sweeps).

        Like the original, the sweep order alternates each step (x-then-y on
        even steps, y-then-x on odd) to cancel splitting bias.
        """
        st = self.st
        nx, ny = st.nx, st.ny
        cells = [(0, nx), (0, ny)]
        self._loop(
            K.make_flux_calc_x_kernel(self.dt, st.dy),
            [(0, nx + 1), (0, ny)],
            st.xvel0(ops.READ, K.S_FACE_Y),
            st.xvel1(ops.READ, K.S_FACE_Y),
            st.vol_flux_x(ops.WRITE),
            name="flux_calc_x",
            flops=5,
        )
        self._loop(
            K.make_flux_calc_y_kernel(self.dt, st.dx),
            [(0, nx), (0, ny + 1)],
            st.yvel0(ops.READ, K.S_FACE_X),
            st.yvel1(ops.READ, K.S_FACE_X),
            st.vol_flux_y(ops.WRITE),
            name="flux_calc_y",
            flops=5,
        )
        order = ("x", "y") if self.step_count % 2 == 0 else ("y", "x")
        for i, direction in enumerate(order):
            first = i == 0
            self._apply_bcs(["density1", "energy1"])
            if direction == "x":
                self._loop(
                    K.mass_ener_flux_x_kernel,
                    [(0, nx + 1), (0, ny)],
                    st.vol_flux_x(ops.READ),
                    st.density1(ops.READ, K.S_DONOR_X),
                    st.energy1(ops.READ, K.S_DONOR_X),
                    st.mass_flux_x(ops.WRITE),
                    st.ener_flux_x(ops.WRITE),
                    name="mass_ener_flux_x",
                    flops=6,
                )
                self._loop(
                    K.make_advec_cell_x_kernel(st.dx, st.dy, first=first),
                    cells,
                    st.vol_flux_x(ops.READ, K.S_FACE_X),
                    st.vol_flux_y(ops.READ, K.S_FACE_Y),
                    st.mass_flux_x(ops.READ, K.S_FACE_X),
                    st.ener_flux_x(ops.READ, K.S_FACE_X),
                    st.density1(ops.RW),
                    st.energy1(ops.RW),
                    name="advec_cell_x",
                    flops=14,
                )
            else:
                self._loop(
                    K.mass_ener_flux_y_kernel,
                    [(0, nx), (0, ny + 1)],
                    st.vol_flux_y(ops.READ),
                    st.density1(ops.READ, K.S_DONOR_Y),
                    st.energy1(ops.READ, K.S_DONOR_Y),
                    st.mass_flux_y(ops.WRITE),
                    st.ener_flux_y(ops.WRITE),
                    name="mass_ener_flux_y",
                    flops=6,
                )
                self._loop(
                    K.make_advec_cell_y_kernel(st.dx, st.dy, first=first),
                    cells,
                    st.vol_flux_x(ops.READ, K.S_FACE_X),
                    st.vol_flux_y(ops.READ, K.S_FACE_Y),
                    st.mass_flux_y(ops.READ, K.S_FACE_Y),
                    st.ener_flux_y(ops.READ, K.S_FACE_Y),
                    st.density1(ops.RW),
                    st.energy1(ops.RW),
                    name="advec_cell_y",
                    flops=12,
                )
            self._momentum_sweep(direction)

    def _momentum_sweep(self, direction: str) -> None:
        st = self.st
        nx, ny = st.nx, st.ny
        nodes = [(0, nx + 1), (0, ny + 1)]
        self._apply_bcs(["density1", "mass_flux_x" if direction == "x" else "mass_flux_y"])
        self._loop(
            K.make_node_mass_kernel(st.dx, st.dy),
            nodes,
            st.density1(ops.READ, K.S_CELL4),
            st.node_mass(ops.WRITE),
            name="advec_mom_node_mass",
            flops=5,
        )
        for vel_name in ("xvel1", "yvel1"):
            vel = getattr(st, vel_name)
            self._apply_bcs([vel_name])
            if direction == "x":
                self._loop(
                    K.mom_flux_x_kernel,
                    nodes,
                    st.mass_flux_x(ops.READ, K.S_DONOR_Y),
                    vel(ops.READ, K.S_VEL_X),
                    st.mom_flux(ops.WRITE),
                    st.node_flux(ops.WRITE),
                    name="advec_mom_flux_x",
                    flops=4,
                )
                self._loop(
                    K.mom_update_x_kernel,
                    [(1, nx), (0, ny + 1)],
                    st.mom_flux(ops.READ, K.S_FACE_X),
                    st.node_flux(ops.READ, K.S_FACE_X),
                    st.node_mass(ops.READ),
                    vel(ops.RW),
                    name="advec_mom_update_x",
                    flops=6,
                )
            else:
                self._loop(
                    K.mom_flux_y_kernel,
                    nodes,
                    st.mass_flux_y(ops.READ, K.S_DONOR_X),
                    vel(ops.READ, K.S_VEL_Y),
                    st.mom_flux(ops.WRITE),
                    st.node_flux(ops.WRITE),
                    name="advec_mom_flux_y",
                    flops=4,
                )
                self._loop(
                    K.mom_update_y_kernel,
                    [(0, nx + 1), (1, ny)],
                    st.mom_flux(ops.READ, K.S_FACE_Y),
                    st.node_flux(ops.READ, K.S_FACE_Y),
                    st.node_mass(ops.READ),
                    vel(ops.RW),
                    name="advec_mom_update_y",
                    flops=6,
                )

    def reset(self) -> None:
        st = self.st
        nx, ny = st.nx, st.ny
        self._loop(
            K.reset_cell_kernel,
            [(0, nx), (0, ny)],
            st.density0(ops.WRITE),
            st.energy0(ops.WRITE),
            st.density1(ops.READ),
            st.energy1(ops.READ),
            name="reset_field_cell",
            flops=0,
        )
        self._loop(
            K.reset_node_kernel,
            [(0, nx + 1), (0, ny + 1)],
            st.xvel0(ops.WRITE),
            st.yvel0(ops.WRITE),
            st.xvel1(ops.READ),
            st.yvel1(ops.READ),
            name="reset_field_node",
            flops=0,
        )

    def step(self) -> float:
        """Advance one timestep; returns the dt taken."""
        dt = self.timestep()
        self.lagrangian()
        self.advection()
        self.reset()
        self.step_count += 1
        return dt

    def run(self, steps: int) -> dict[str, float]:
        for _ in range(steps):
            self.step()
        return self.field_summary()

    def field_summary(self) -> dict[str, float]:
        """The original's field_summary table: global conservation checks."""
        st = self.st
        vol = ops.Reduction("inc", name="vol")
        mass = ops.Reduction("inc", name="mass")
        ie = ops.Reduction("inc", name="ie")
        ke = ops.Reduction("inc", name="ke")
        press = ops.Reduction("inc", name="press")
        self._loop(
            K.make_field_summary_kernel(st.dx, st.dy),
            [(0, st.nx), (0, st.ny)],
            st.density0(ops.READ),
            st.energy0(ops.READ),
            st.pressure(ops.READ),
            st.xvel0(ops.READ, K.S_NODE4),
            st.yvel0(ops.READ, K.S_NODE4),
            vol,
            mass,
            ie,
            ke,
            press,
            name="field_summary",
            flops=20,
        )
        return {
            "volume": vol.value,
            "mass": mass.value,
            "ie": ie.value,
            "ke": ke.value,
            "pressure": press.value,
        }


class DistributedCloverLeafApp(CloverLeafApp):
    """CloverLeaf on a cartesian-decomposed block (SPMD, one instance per rank).

    Reuses the serial driver's loop chain verbatim: loops are routed
    through the rank's :class:`~repro.ops.decomp.LocalBlock` (which
    intersects ranges, exchanges halos on demand and combines reductions),
    and reflective boundaries are applied only on the ranks touching the
    physical domain edges — interior partition boundaries are filled by
    halo exchange.
    """

    def __init__(self, comm, decomp, state: CloverState, *, backend: str = "vec"):
        # note: self.st keeps the *global* dat handles; LocalBlock translates
        super().__init__(state, backend=backend)
        self.comm = comm
        self.decomp = decomp
        self.lb = decomp.local(comm.rank)
        coords = decomp.coords(comm.rank)
        self._lo_x = coords[0] == 0
        self._hi_x = coords[0] == decomp.dims[0] - 1
        self._lo_y = coords[1] == 0
        self._hi_y = coords[1] == decomp.dims[1] - 1

    def _loop(self, kernel, ranges, *args, name: str, flops: int = 0) -> None:
        self.lb.par_loop(
            self.comm,
            kernel,
            ranges,
            *args,
            backend=self.backend,
            name=name,
            flops_per_point=flops,
        )

    def _apply_bcs(self, fields: list[str], depth: int = 2) -> None:
        for fname in fields:
            centering, fx, fy = FIELD_INFO[fname]
            ldat = self.lb.local_dat(getattr(self.st, fname))
            reflect_dat(
                ldat,
                centering,
                fx,
                fy,
                lo_x=self._lo_x,
                hi_x=self._hi_x,
                lo_y=self._lo_y,
                hi_y=self._hi_y,
            )

    def gather_field(self, name: str):
        """Collect one field's interior in global layout (on every rank)."""
        return self.lb.gather(self.comm, getattr(self.st, name))
