"""CloverLeaf 2D: explicit compressible-Euler hydrodynamics (OPS).

"CloverLeaf ... involves the solution of the compressible Euler equations,
which form a system of four partial differential equations ... solved using
a finite volume method on a structured staggered grid" (paper Section V).

This package contains the OPS-API implementation (:mod:`app`) with the
full kernel families of the original (ideal_gas, viscosity, timestep
control, PdV, revert, accelerate, flux_calc, cell and momentum advection,
reset, field_summary) and the hand-coded NumPy "original"
(:mod:`reference`) the paper's Fig 5 compares against.

Simplifications vs. the Fortran original (documented in DESIGN.md):
uniform rectangular cells, fixed cell volumes during advection, simplified
(but conservative) donor-cell momentum advection, reflective boundaries
applied by a halo helper instead of generated update_halo kernels.
"""

from repro.apps.cloverleaf.state import CloverState, clover_bm_state
from repro.apps.cloverleaf.app import CloverLeafApp
from repro.apps.cloverleaf.reference import CloverLeafReference

__all__ = ["CloverState", "clover_bm_state", "CloverLeafApp", "CloverLeafReference"]
