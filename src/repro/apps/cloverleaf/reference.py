"""Hand-coded NumPy CloverLeaf: the "Original" of paper Fig 5.

Direct array-slice implementation of the same hydro cycle, written the way
a performance programmer would port the Fortran original to NumPy: padded
arrays, explicit shifted views, no DSL.  Bitwise agreement with the OPS
version is asserted in the integration tests.
"""

from __future__ import annotations

import numpy as np

from repro.apps.cloverleaf.state import (
    DT_INIT,
    DT_MAX,
    DTC_SAFE,
    G_BIG,
    G_SMALL,
    GAMMA,
)

H = 2  # ghost layers


def _padded(nx: int, ny: int) -> np.ndarray:
    return np.zeros((nx + 2 * H, ny + 2 * H))


class CloverLeafReference:
    """Direct-array CloverLeaf on the clover_bm problem."""

    def __init__(self, nx: int, ny: int, *, extent: tuple[float, float] = (10.0, 10.0)):
        self.nx, self.ny = nx, ny
        self.dx, self.dy = extent[0] / nx, extent[1] / ny
        self.volume = self.dx * self.dy
        self.dt = DT_INIT
        self.step_count = 0

        c, n = (nx, ny), (nx + 1, ny + 1)
        fx, fy = (nx + 1, ny), (nx, ny + 1)
        self.density0 = _padded(*c)
        self.density1 = _padded(*c)
        self.energy0 = _padded(*c)
        self.energy1 = _padded(*c)
        self.pressure = _padded(*c)
        self.viscosity = _padded(*c)
        self.soundspeed = _padded(*c)
        self.xvel0 = _padded(*n)
        self.xvel1 = _padded(*n)
        self.yvel0 = _padded(*n)
        self.yvel1 = _padded(*n)
        self.node_mass = _padded(*n)
        self.mom_flux = _padded(*n)
        self.node_flux = _padded(*n)
        self.vol_flux_x = _padded(*fx)
        self.mass_flux_x = _padded(*fx)
        self.ener_flux_x = _padded(*fx)
        self.vol_flux_y = _padded(*fy)
        self.mass_flux_y = _padded(*fy)
        self.ener_flux_y = _padded(*fy)

        # clover_bm setup
        self._int(self.density0, c)[...] = 0.2
        self._int(self.energy0, c)[...] = 1.0
        ix, iy = max(nx // 2, 1), max(ny // 2, 1)
        self._int(self.density0, c)[:ix, :iy] = 1.0
        self._int(self.energy0, c)[:ix, :iy] = 2.5

        self._sizes = {
            id(self.density0): c, id(self.density1): c, id(self.energy0): c,
            id(self.energy1): c, id(self.pressure): c, id(self.viscosity): c,
            id(self.soundspeed): c,
            id(self.xvel0): n, id(self.xvel1): n, id(self.yvel0): n,
            id(self.yvel1): n, id(self.node_mass): n, id(self.mom_flux): n,
            id(self.node_flux): n,
            id(self.vol_flux_x): fx, id(self.mass_flux_x): fx, id(self.ener_flux_x): fx,
            id(self.vol_flux_y): fy, id(self.mass_flux_y): fy, id(self.ener_flux_y): fy,
        }

    # -- view helpers --------------------------------------------------------------

    @staticmethod
    def _int(a: np.ndarray, size: tuple[int, int]) -> np.ndarray:
        return a[H : H + size[0], H : H + size[1]]

    def v(self, a: np.ndarray, ranges, off=(0, 0)) -> np.ndarray:
        """Shifted view of ``a`` over interior ``ranges`` (like Dat.region)."""
        (xlo, xhi), (ylo, yhi) = ranges
        return a[H + xlo + off[0] : H + xhi + off[0], H + ylo + off[1] : H + yhi + off[1]]

    def _reflect(self, a: np.ndarray, centering: str, flip_x: float, flip_y: float) -> None:
        sx, sy = self._sizes[id(a)]
        node_x = centering[0] == "n"
        node_y = centering[1] == "n"
        for k in range(1, H + 1):
            a[H - k, :] = flip_x * a[H + k if node_x else H + k - 1, :]
            a[H + sx - 1 + k, :] = flip_x * a[H + sx - 1 - k if node_x else H + sx - k, :]
        for k in range(1, H + 1):
            a[:, H - k] = flip_y * a[:, H + k if node_y else H + k - 1]
            a[:, H + sy - 1 + k] = flip_y * a[:, H + sy - 1 - k if node_y else H + sy - k]

    def _bc_cells(self, *arrays: np.ndarray) -> None:
        for a in arrays:
            self._reflect(a, "cc", 1.0, 1.0)

    # -- phases -----------------------------------------------------------------------

    def _ideal_gas(self, d: np.ndarray, e: np.ndarray) -> None:
        c = (self.nx, self.ny)
        dv, ev = self._int(d, c), self._int(e, c)
        self._int(self.pressure, c)[...] = (GAMMA - 1.0) * dv * ev
        self._int(self.soundspeed, c)[...] = np.sqrt(GAMMA * (GAMMA - 1.0) * ev)

    def _viscosity(self) -> None:
        r = [(0, self.nx), (0, self.ny)]
        xv, yv = self.xvel0, self.yvel0
        ugrad = 0.5 * (
            (self.v(xv, r, (1, 0)) + self.v(xv, r, (1, 1)))
            - (self.v(xv, r, (0, 0)) + self.v(xv, r, (0, 1)))
        )
        vgrad = 0.5 * (
            (self.v(yv, r, (0, 1)) + self.v(yv, r, (1, 1)))
            - (self.v(yv, r, (0, 0)) + self.v(yv, r, (1, 0)))
        )
        div = ugrad / self.dx + vgrad / self.dy
        strain = (ugrad / self.dx) ** 2 + (vgrad / self.dy) ** 2
        self.v(self.viscosity, r)[...] = np.where(
            div < 0.0, 2.0 * self.v(self.density0, r) * strain * self.dx * self.dy, 0.0
        )

    def _calc_dt(self) -> float:
        r = [(0, self.nx), (0, self.ny)]
        cc = self.v(self.soundspeed, r) ** 2 + 2.0 * self.v(self.viscosity, r) / (
            self.v(self.density0, r) + G_SMALL
        )
        cc = np.sqrt(cc) + G_SMALL
        xv, yv = self.xvel0, self.yvel0
        u = 0.25 * np.abs(
            self.v(xv, r, (0, 0)) + self.v(xv, r, (1, 0))
            + self.v(xv, r, (0, 1)) + self.v(xv, r, (1, 1))
        )
        v = 0.25 * np.abs(
            self.v(yv, r, (0, 0)) + self.v(yv, r, (1, 0))
            + self.v(yv, r, (0, 1)) + self.v(yv, r, (1, 1))
        )
        dtc = DTC_SAFE * np.minimum(
            self.dx / (cc + u + G_SMALL), self.dy / (cc + v + G_SMALL)
        )
        return float(min(np.minimum(dtc, G_BIG).min(), DT_MAX))

    def _pdv(self, corrector: bool) -> None:
        r = [(0, self.nx), (0, self.ny)]
        frac = self.dt if corrector else 0.5 * self.dt
        xv, yv = self.xvel0, self.yvel0
        if corrector:
            x1, y1 = self.xvel1, self.yvel1
            left = 0.25 * (
                self.v(xv, r, (0, 0)) + self.v(xv, r, (0, 1))
                + self.v(x1, r, (0, 0)) + self.v(x1, r, (0, 1))
            ) * frac * self.dy
            right = 0.25 * (
                self.v(xv, r, (1, 0)) + self.v(xv, r, (1, 1))
                + self.v(x1, r, (1, 0)) + self.v(x1, r, (1, 1))
            ) * frac * self.dy
            bottom = 0.25 * (
                self.v(yv, r, (0, 0)) + self.v(yv, r, (1, 0))
                + self.v(y1, r, (0, 0)) + self.v(y1, r, (1, 0))
            ) * frac * self.dx
            top = 0.25 * (
                self.v(yv, r, (0, 1)) + self.v(yv, r, (1, 1))
                + self.v(y1, r, (0, 1)) + self.v(y1, r, (1, 1))
            ) * frac * self.dx
        else:
            left = 0.5 * (self.v(xv, r, (0, 0)) + self.v(xv, r, (0, 1))) * frac * self.dy
            right = 0.5 * (self.v(xv, r, (1, 0)) + self.v(xv, r, (1, 1))) * frac * self.dy
            bottom = 0.5 * (self.v(yv, r, (0, 0)) + self.v(yv, r, (1, 0))) * frac * self.dx
            top = 0.5 * (self.v(yv, r, (0, 1)) + self.v(yv, r, (1, 1))) * frac * self.dx
        total = (right - left) + (top - bottom)
        vol_change = total / self.volume
        d0, e0 = self.v(self.density0, r), self.v(self.energy0, r)
        self.v(self.density1, r)[...] = d0 / (1.0 + vol_change)
        self.v(self.energy1, r)[...] = e0 - (
            (self.v(self.pressure, r) + self.v(self.viscosity, r)) / (d0 + G_SMALL)
        ) * vol_change

    def _revert(self) -> None:
        self.density1[...] = self.density0
        self.energy1[...] = self.energy0

    def _accelerate(self) -> None:
        r = [(0, self.nx + 1), (0, self.ny + 1)]
        d, p, q = self.density0, self.pressure, self.viscosity
        nodal_mass = 0.25 * (
            self.v(d, r, (0, 0)) + self.v(d, r, (-1, 0))
            + self.v(d, r, (0, -1)) + self.v(d, r, (-1, -1))
        ) * self.volume
        stepbymass = self.dt / (nodal_mass + G_SMALL)
        dpx = 0.5 * self.dy * (
            (self.v(p, r, (0, 0)) + self.v(p, r, (0, -1)))
            - (self.v(p, r, (-1, 0)) + self.v(p, r, (-1, -1)))
        )
        dpy = 0.5 * self.dx * (
            (self.v(p, r, (0, 0)) + self.v(p, r, (-1, 0)))
            - (self.v(p, r, (0, -1)) + self.v(p, r, (-1, -1)))
        )
        dvx = 0.5 * self.dy * (
            (self.v(q, r, (0, 0)) + self.v(q, r, (0, -1)))
            - (self.v(q, r, (-1, 0)) + self.v(q, r, (-1, -1)))
        )
        dvy = 0.5 * self.dx * (
            (self.v(q, r, (0, 0)) + self.v(q, r, (-1, 0)))
            - (self.v(q, r, (0, -1)) + self.v(q, r, (-1, -1)))
        )
        self.v(self.xvel1, r)[...] = self.v(self.xvel0, r) - stepbymass * (dpx + dvx)
        self.v(self.yvel1, r)[...] = self.v(self.yvel0, r) - stepbymass * (dpy + dvy)

    def _flux_calc(self) -> None:
        rx = [(0, self.nx + 1), (0, self.ny)]
        self.v(self.vol_flux_x, rx)[...] = 0.25 * self.dt * self.dy * (
            self.v(self.xvel0, rx, (0, 0)) + self.v(self.xvel0, rx, (0, 1))
            + self.v(self.xvel1, rx, (0, 0)) + self.v(self.xvel1, rx, (0, 1))
        )
        ry = [(0, self.nx), (0, self.ny + 1)]
        self.v(self.vol_flux_y, ry)[...] = 0.25 * self.dt * self.dx * (
            self.v(self.yvel0, ry, (0, 0)) + self.v(self.yvel0, ry, (1, 0))
            + self.v(self.yvel1, ry, (0, 0)) + self.v(self.yvel1, ry, (1, 0))
        )

    def _advec_cell(self, direction: str, first: bool) -> None:
        if direction == "x":
            rf = [(0, self.nx + 1), (0, self.ny)]
            vf = self.v(self.vol_flux_x, rf)
            donor_d = np.where(
                vf > 0.0, self.v(self.density1, rf, (-1, 0)), self.v(self.density1, rf)
            )
            donor_e = np.where(
                vf > 0.0, self.v(self.energy1, rf, (-1, 0)), self.v(self.energy1, rf)
            )
            self.v(self.mass_flux_x, rf)[...] = vf * donor_d
            self.v(self.ener_flux_x, rf)[...] = vf * donor_d * donor_e
            rc = [(0, self.nx), (0, self.ny)]
            dvx = self.v(self.vol_flux_x, rc, (1, 0)) - self.v(self.vol_flux_x, rc)
            dvy = self.v(self.vol_flux_y, rc, (0, 1)) - self.v(self.vol_flux_y, rc)
            pre_vol = self.volume + dvx + dvy if first else self.volume + dvx
            post_vol = pre_vol - dvx
            pre = self.v(self.density1, rc) * pre_vol
            post = pre + self.v(self.mass_flux_x, rc) - self.v(self.mass_flux_x, rc, (1, 0))
            post_e = (
                self.v(self.energy1, rc) * pre
                + self.v(self.ener_flux_x, rc)
                - self.v(self.ener_flux_x, rc, (1, 0))
            ) / (post + G_SMALL)
            self.v(self.density1, rc)[...] = post / post_vol
            self.v(self.energy1, rc)[...] = post_e
        else:
            rf = [(0, self.nx), (0, self.ny + 1)]
            vf = self.v(self.vol_flux_y, rf)
            donor_d = np.where(
                vf > 0.0, self.v(self.density1, rf, (0, -1)), self.v(self.density1, rf)
            )
            donor_e = np.where(
                vf > 0.0, self.v(self.energy1, rf, (0, -1)), self.v(self.energy1, rf)
            )
            self.v(self.mass_flux_y, rf)[...] = vf * donor_d
            self.v(self.ener_flux_y, rf)[...] = vf * donor_d * donor_e
            rc = [(0, self.nx), (0, self.ny)]
            dvx = self.v(self.vol_flux_x, rc, (1, 0)) - self.v(self.vol_flux_x, rc)
            dvy = self.v(self.vol_flux_y, rc, (0, 1)) - self.v(self.vol_flux_y, rc)
            pre_vol = self.volume + dvx + dvy if first else self.volume + dvy
            post_vol = pre_vol - dvy
            pre = self.v(self.density1, rc) * pre_vol
            post = pre + self.v(self.mass_flux_y, rc) - self.v(self.mass_flux_y, rc, (0, 1))
            post_e = (
                self.v(self.energy1, rc) * pre
                + self.v(self.ener_flux_y, rc)
                - self.v(self.ener_flux_y, rc, (0, 1))
            ) / (post + G_SMALL)
            self.v(self.density1, rc)[...] = post / post_vol
            self.v(self.energy1, rc)[...] = post_e

    def _advec_mom(self, direction: str) -> None:
        rn = [(0, self.nx + 1), (0, self.ny + 1)]
        self._reflect(self.density1, "cc", 1.0, 1.0)
        if direction == "x":
            self._reflect(self.mass_flux_x, "nc", -1.0, 1.0)
        else:
            self._reflect(self.mass_flux_y, "cn", 1.0, -1.0)
        self.v(self.node_mass, rn)[...] = 0.25 * (
            self.v(self.density1, rn, (0, 0)) + self.v(self.density1, rn, (-1, 0))
            + self.v(self.density1, rn, (0, -1)) + self.v(self.density1, rn, (-1, -1))
        ) * self.volume
        for vel, (cent, fx, fy) in (
            (self.xvel1, ("nn", -1.0, 1.0)),
            (self.yvel1, ("nn", 1.0, -1.0)),
        ):
            self._reflect(vel, cent, fx, fy)
            if direction == "x":
                node_flux = 0.5 * (
                    self.v(self.mass_flux_x, rn, (0, -1)) + self.v(self.mass_flux_x, rn, (0, 0))
                )
                donor = np.where(node_flux > 0.0, self.v(vel, rn, (-1, 0)), self.v(vel, rn))
                self.v(self.mom_flux, rn)[...] = node_flux * donor
                self.v(self.node_flux, rn)[...] = node_flux
                ru = [(1, self.nx), (0, self.ny + 1)]
                post = self.v(self.node_mass, ru) + G_SMALL
                pre = (
                    self.v(self.node_mass, ru)
                    - self.v(self.node_flux, ru)
                    + self.v(self.node_flux, ru, (1, 0))
                )
                self.v(vel, ru)[...] = (
                    self.v(vel, ru) * pre
                    + self.v(self.mom_flux, ru)
                    - self.v(self.mom_flux, ru, (1, 0))
                ) / post
            else:
                node_flux = 0.5 * (
                    self.v(self.mass_flux_y, rn, (-1, 0)) + self.v(self.mass_flux_y, rn, (0, 0))
                )
                donor = np.where(node_flux > 0.0, self.v(vel, rn, (0, -1)), self.v(vel, rn))
                self.v(self.mom_flux, rn)[...] = node_flux * donor
                self.v(self.node_flux, rn)[...] = node_flux
                ru = [(0, self.nx + 1), (1, self.ny)]
                post = self.v(self.node_mass, ru) + G_SMALL
                pre = (
                    self.v(self.node_mass, ru)
                    - self.v(self.node_flux, ru)
                    + self.v(self.node_flux, ru, (0, 1))
                )
                self.v(vel, ru)[...] = (
                    self.v(vel, ru) * pre
                    + self.v(self.mom_flux, ru)
                    - self.v(self.mom_flux, ru, (0, 1))
                ) / post

    # -- cycle ------------------------------------------------------------------------

    def step(self) -> float:
        self._reflect(self.density0, "cc", 1.0, 1.0)
        self._reflect(self.energy0, "cc", 1.0, 1.0)
        self._reflect(self.xvel0, "nn", -1.0, 1.0)
        self._reflect(self.yvel0, "nn", 1.0, -1.0)
        self._ideal_gas(self.density0, self.energy0)
        self._viscosity()
        self._bc_cells(self.pressure, self.viscosity)
        self.dt = self._calc_dt()
        self._pdv(corrector=False)
        self._ideal_gas(self.density1, self.energy1)
        self._revert()
        self._bc_cells(self.pressure, self.viscosity, self.density0)
        self._accelerate()
        self._reflect(self.xvel1, "nn", -1.0, 1.0)
        self._reflect(self.yvel1, "nn", 1.0, -1.0)
        self._pdv(corrector=True)
        self._flux_calc()
        order = ("x", "y") if self.step_count % 2 == 0 else ("y", "x")
        for i, direction in enumerate(order):
            self._bc_cells(self.density1, self.energy1)
            self._advec_cell(direction, first=(i == 0))
            self._advec_mom(direction)
        self.step_count += 1
        # reset
        self.density0[...] = self.density1
        self.energy0[...] = self.energy1
        self.xvel0[...] = self.xvel1
        self.yvel0[...] = self.yvel1
        return self.dt

    def run(self, steps: int) -> dict[str, float]:
        for _ in range(steps):
            self.step()
        return self.field_summary()

    def field_summary(self) -> dict[str, float]:
        r = [(0, self.nx), (0, self.ny)]
        vsq = 0.25 * (
            (self.v(self.xvel0, r, (0, 0)) ** 2 + self.v(self.yvel0, r, (0, 0)) ** 2)
            + (self.v(self.xvel0, r, (1, 0)) ** 2 + self.v(self.yvel0, r, (1, 0)) ** 2)
            + (self.v(self.xvel0, r, (0, 1)) ** 2 + self.v(self.yvel0, r, (0, 1)) ** 2)
            + (self.v(self.xvel0, r, (1, 1)) ** 2 + self.v(self.yvel0, r, (1, 1)) ** 2)
        )
        cell_mass = self.v(self.density0, r) * self.volume
        return {
            "volume": float(self.volume * self.nx * self.ny),
            "mass": float(cell_mass.sum()),
            "ie": float((cell_mass * self.v(self.energy0, r)).sum()),
            "ke": float((cell_mass * 0.5 * vsq).sum()),
            "pressure": float((self.volume * self.v(self.pressure, r)).sum()),
        }
