"""Hand-coded NumPy Hydra proxy: the "Original (MPI)" baseline of Fig 3."""

from __future__ import annotations

import numpy as np

from repro.apps.hydra.kernels import CFL, EPS, GAM, GM1, PRT, RK_ALPHA, SRC
from repro.apps.hydra.mesh import HydraMesh


class HydraReference:
    """Direct-array implementation of the same numerics."""

    def __init__(self, mesh: HydraMesh):
        f = mesh.fine
        self.x = f.x.data.copy()
        self.q = mesh.q.data.copy()
        self.qold = np.zeros_like(self.q)
        self.grad = np.zeros((f.cells.size, 12))
        self.visc = np.zeros(f.cells.size)
        self.adt = np.zeros(f.cells.size)
        self.res = np.zeros_like(self.q)
        self.qc = np.zeros((mesh.coarse_cells.size, 6))
        self.resc = np.zeros_like(self.qc)
        self.e2n = f.edge2node.values.copy()
        self.e2c = f.edge2cell.values.copy()
        self.c2n = f.cell2node.values.copy()
        self.f2c = mesh.fine2coarse.values[:, 0].copy()
        self.ncells = f.cells.size
        self.rms = 0.0

    def _save(self) -> None:
        self.qold[...] = self.q

    def _vprep(self) -> None:
        self.visc[...] = self.q[:, 0] * self.q[:, 4] / self.q[:, 5]

    def _grad(self) -> None:
        self.grad[...] = 0.0
        x1 = self.x[self.e2n[:, 0]]
        x2 = self.x[self.e2n[:, 1]]
        dx = x1[:, 0] - x2[:, 0]
        dy = x1[:, 1] - x2[:, 1]
        q1 = self.q[self.e2c[:, 0]]
        q2 = self.q[self.e2c[:, 1]]
        g = np.empty((len(dx), 12))
        for n in range(6):
            d = 0.5 * (q2[:, n] - q1[:, n])
            g[:, 2 * n] = d * dy
            g[:, 2 * n + 1] = -d * dx
        np.add.at(self.grad, self.e2c[:, 0], g)
        np.add.at(self.grad, self.e2c[:, 1], g)

    def _adt(self) -> None:
        q = self.q
        ri = 1.0 / q[:, 0]
        u = ri * q[:, 1]
        v = ri * q[:, 2]
        c = np.sqrt(np.abs(GAM * GM1 * (ri * q[:, 3] - 0.5 * (u * u + v * v))))
        corners = self.x[self.c2n]
        val = np.zeros(self.ncells)
        for a, b in ((0, 1), (1, 2), (2, 3), (3, 0)):
            dx = corners[:, b, 0] - corners[:, a, 0]
            dy = corners[:, b, 1] - corners[:, a, 1]
            # left-associated like the kernel, for bitwise agreement
            val = val + np.abs(u * dy - v * dx) + c * np.sqrt(dx * dx + dy * dy)
        self.adt[...] = val / CFL

    def _iflux(self) -> None:
        x1 = self.x[self.e2n[:, 0]]
        x2 = self.x[self.e2n[:, 1]]
        dx = x1[:, 0] - x2[:, 0]
        dy = x1[:, 1] - x2[:, 1]
        q1 = self.q[self.e2c[:, 0]]
        q2 = self.q[self.e2c[:, 1]]
        adt1 = self.adt[self.e2c[:, 0]]
        adt2 = self.adt[self.e2c[:, 1]]
        ri1 = 1.0 / q1[:, 0]
        p1 = GM1 * (q1[:, 3] - 0.5 * ri1 * (q1[:, 1] ** 2 + q1[:, 2] ** 2))
        vol1 = ri1 * (q1[:, 1] * dy - q1[:, 2] * dx)
        ri2 = 1.0 / q2[:, 0]
        p2 = GM1 * (q2[:, 3] - 0.5 * ri2 * (q2[:, 1] ** 2 + q2[:, 2] ** 2))
        vol2 = ri2 * (q2[:, 1] * dy - q2[:, 2] * dx)
        mu = 0.5 * (adt1 + adt2) * EPS

        f = np.empty((len(dx), 6))
        f[:, 0] = 0.5 * (vol1 * q1[:, 0] + vol2 * q2[:, 0]) + mu * (q1[:, 0] - q2[:, 0])
        f[:, 1] = (
            0.5 * (vol1 * q1[:, 1] + p1 * dy + vol2 * q2[:, 1] + p2 * dy)
            + mu * (q1[:, 1] - q2[:, 1])
        )
        f[:, 2] = (
            0.5 * (vol1 * q1[:, 2] - p1 * dx + vol2 * q2[:, 2] - p2 * dx)
            + mu * (q1[:, 2] - q2[:, 2])
        )
        f[:, 3] = (
            0.5 * (vol1 * (q1[:, 3] + p1) + vol2 * (q2[:, 3] + p2))
            + mu * (q1[:, 3] - q2[:, 3])
        )
        f[:, 4] = 0.5 * (vol1 * q1[:, 4] + vol2 * q2[:, 4]) + mu * (q1[:, 4] - q2[:, 4])
        f[:, 5] = 0.5 * (vol1 * q1[:, 5] + vol2 * q2[:, 5]) + mu * (q1[:, 5] - q2[:, 5])
        np.add.at(self.res, self.e2c[:, 0], f)
        np.add.at(self.res, self.e2c[:, 1], -f)

    def _vflux(self) -> None:
        x1 = self.x[self.e2n[:, 0]]
        x2 = self.x[self.e2n[:, 1]]
        dx = x1[:, 0] - x2[:, 0]
        dy = x1[:, 1] - x2[:, 1]
        g1 = self.grad[self.e2c[:, 0]]
        g2 = self.grad[self.e2c[:, 1]]
        mu = 0.5 * (self.visc[self.e2c[:, 0]] + self.visc[self.e2c[:, 1]]) / PRT
        f = np.empty((len(dx), 6))
        for n in range(6):
            gx = 0.5 * (g1[:, 2 * n] + g2[:, 2 * n])
            gy = 0.5 * (g1[:, 2 * n + 1] + g2[:, 2 * n + 1])
            f[:, n] = mu * (gx * dy - gy * dx)
        np.add.at(self.res, self.e2c[:, 0], -f)
        np.add.at(self.res, self.e2c[:, 1], f)

    def _src(self) -> None:
        self.res[:, 4] += SRC * (self.visc - self.q[:, 4])
        self.res[:, 5] += SRC * (self.q[:, 4] - 0.01 * self.q[:, 5])

    def _rk(self, alpha: float, accumulate_rms: bool) -> None:
        adti = (alpha / self.adt)[:, None]
        delta = adti * self.res
        self.q[...] = self.qold - delta
        self.res[...] = 0.0
        if accumulate_rms:
            self.rms += float(np.sum(delta * delta))

    def _multigrid(self) -> None:
        self.qc[...] = 0.0
        self.resc[...] = 0.0
        np.add.at(self.qc, self.f2c, 0.25 * self.q)
        np.add.at(self.resc, self.f2c, 0.25 * self.res)
        self.qc -= 0.5 * self.resc
        self.q += 0.05 * (self.qc[self.f2c] - self.q)

    def iteration(self) -> None:
        self._save()
        self._vprep()
        for stage, alpha in enumerate(RK_ALPHA):
            last = stage == len(RK_ALPHA) - 1
            self._grad()
            self._adt()
            self._iflux()
            self._vflux()
            self._src()
            if last:
                self.rms = 0.0
            self._rk(alpha, True)
        self._multigrid()

    def run(self, iterations: int) -> float:
        for _ in range(iterations):
            self.iteration()
        return float(np.sqrt(self.rms / self.ncells))
