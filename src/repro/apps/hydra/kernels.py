"""Hydra-proxy user kernels.

Synthetic RANS-flavoured numerics: conservative central fluxes with scalar
dissipation over 6 variables, gradient accumulation over edges, a viscous
flux consuming the gradients (the data-heavy indirect loop that dominates
Hydra's profile), source terms for the turbulence variables, a 5-stage
Runge-Kutta update and 2-level multigrid transfer operators.
"""

from __future__ import annotations

import math

from repro import op2

GAM = 1.4
GM1 = GAM - 1.0
CFL = 0.6
EPS = 0.08
PRT = 0.9  # turbulent Prandtl-like coefficient
SRC = 0.02  # turbulence source coefficient

#: classic 5-stage Runge-Kutta coefficients (Jameson)
RK_ALPHA = (0.25, 0.1667, 0.375, 0.5, 1.0)


def save_soln6(q, qold):
    for n in range(6):
        qold[n] = q[n]


def vflux_prep(q, visc):
    # turbulent viscosity proxy: mu_t ~ rho * k / omega (positive by state)
    visc[0] = q[0] * q[4] / q[5]


def grad_zero(grad):
    for n in range(12):
        grad[n] = 0.0


def grad_calc(x1, x2, q1, q2, grad1, grad2):
    # edge-difference gradient accumulation: grad[2n] ~ d/dx, grad[2n+1] ~ d/dy
    dx = x1[0] - x2[0]
    dy = x1[1] - x2[1]
    for n in range(6):
        d = 0.5 * (q2[n] - q1[n])
        grad1[2 * n] += d * dy
        grad1[2 * n + 1] -= d * dx
        grad2[2 * n] += d * dy
        grad2[2 * n + 1] -= d * dx


def adt_calc6(x1, x2, x3, x4, q, adt):
    ri = 1.0 / q[0]
    u = ri * q[1]
    v = ri * q[2]
    c = math.sqrt(abs(GAM * GM1 * (ri * q[3] - 0.5 * (u * u + v * v))))
    val = 0.0
    dx = x2[0] - x1[0]
    dy = x2[1] - x1[1]
    val = val + abs(u * dy - v * dx) + c * math.sqrt(dx * dx + dy * dy)
    dx = x3[0] - x2[0]
    dy = x3[1] - x2[1]
    val = val + abs(u * dy - v * dx) + c * math.sqrt(dx * dx + dy * dy)
    dx = x4[0] - x3[0]
    dy = x4[1] - x3[1]
    val = val + abs(u * dy - v * dx) + c * math.sqrt(dx * dx + dy * dy)
    dx = x1[0] - x4[0]
    dy = x1[1] - x4[1]
    val = val + abs(u * dy - v * dx) + c * math.sqrt(dx * dx + dy * dy)
    adt[0] = val / CFL


def inv_flux(x1, x2, q1, q2, adt1, adt2, res1, res2):
    # central flux + scalar dissipation over all 6 variables
    dx = x1[0] - x2[0]
    dy = x1[1] - x2[1]
    ri1 = 1.0 / q1[0]
    p1 = GM1 * (q1[3] - 0.5 * ri1 * (q1[1] * q1[1] + q1[2] * q1[2]))
    vol1 = ri1 * (q1[1] * dy - q1[2] * dx)
    ri2 = 1.0 / q2[0]
    p2 = GM1 * (q2[3] - 0.5 * ri2 * (q2[1] * q2[1] + q2[2] * q2[2]))
    vol2 = ri2 * (q2[1] * dy - q2[2] * dx)
    mu = 0.5 * (adt1[0] + adt2[0]) * EPS

    f = 0.5 * (vol1 * q1[0] + vol2 * q2[0]) + mu * (q1[0] - q2[0])
    res1[0] += f
    res2[0] -= f
    f = 0.5 * (vol1 * q1[1] + p1 * dy + vol2 * q2[1] + p2 * dy) + mu * (q1[1] - q2[1])
    res1[1] += f
    res2[1] -= f
    f = 0.5 * (vol1 * q1[2] - p1 * dx + vol2 * q2[2] - p2 * dx) + mu * (q1[2] - q2[2])
    res1[2] += f
    res2[2] -= f
    f = 0.5 * (vol1 * (q1[3] + p1) + vol2 * (q2[3] + p2)) + mu * (q1[3] - q2[3])
    res1[3] += f
    res2[3] -= f
    # passive transport of the turbulence variables
    f = 0.5 * (vol1 * q1[4] + vol2 * q2[4]) + mu * (q1[4] - q2[4])
    res1[4] += f
    res2[4] -= f
    f = 0.5 * (vol1 * q1[5] + vol2 * q2[5]) + mu * (q1[5] - q2[5])
    res1[5] += f
    res2[5] -= f


def visc_flux(x1, x2, grad1, grad2, visc1, visc2, res1, res2):
    # gradient-consuming diffusive flux: the data-heavy indirect loop
    dx = x1[0] - x2[0]
    dy = x1[1] - x2[1]
    mu = 0.5 * (visc1[0] + visc2[0]) / PRT
    for n in range(6):
        gx = 0.5 * (grad1[2 * n] + grad2[2 * n])
        gy = 0.5 * (grad1[2 * n + 1] + grad2[2 * n + 1])
        f = mu * (gx * dy - gy * dx)
        res1[n] -= f
        res2[n] += f


def src_calc(q, visc, res):
    # production/dissipation source for the turbulence variables
    res[4] += SRC * (visc[0] - q[4])
    res[5] += SRC * (q[4] - 0.01 * q[5])


def rk_update(qold, q, res, adt, alpha, rms):
    adti = alpha[0] / adt[0]
    for n in range(6):
        delta = adti * res[n]
        q[n] = qold[n] - delta
        res[n] = 0.0
        rms[0] += delta * delta


def mg_restrict(q, res, qc, resc):
    # fine -> coarse: accumulate state and residual
    for n in range(6):
        qc[n] += 0.25 * q[n]
        resc[n] += 0.25 * res[n]


def mg_zero(qc, resc):
    for n in range(6):
        qc[n] = 0.0
        resc[n] = 0.0


def mg_smooth(qc, resc):
    # one Jacobi-like smoothing of the coarse correction; resc is consumed
    # read-only (mg_zero rewrites it before the next restriction)
    for n in range(6):
        qc[n] = qc[n] - 0.5 * resc[n]


def mg_prolong(qc, q):
    # coarse -> fine correction (read coarse through the map)
    for n in range(6):
        q[n] = q[n] + 0.05 * (qc[n] - q[n])


# -- kernel objects -------------------------------------------------------------------

K_SAVE = op2.Kernel(save_soln6, "h_save_soln", flops_per_elem=0)
K_VPREP = op2.Kernel(vflux_prep, "h_vflux_prep", flops_per_elem=2)
K_GRAD_ZERO = op2.Kernel(grad_zero, "h_grad_zero", flops_per_elem=0)
K_GRAD = op2.Kernel(grad_calc, "h_grad_calc", flops_per_elem=40, vectorisable=False, divergence=0.2)
K_ADT = op2.Kernel(adt_calc6, "h_adt_calc", flops_per_elem=60, divergence=0.1)
K_IFLUX = op2.Kernel(inv_flux, "h_inv_flux", flops_per_elem=110, vectorisable=False, divergence=0.35)
K_VFLUX = op2.Kernel(visc_flux, "h_visc_flux", flops_per_elem=80, vectorisable=False, divergence=0.35)
K_SRC = op2.Kernel(src_calc, "h_src_calc", flops_per_elem=6)
K_RK = op2.Kernel(rk_update, "h_rk_update", flops_per_elem=26)
K_MG_RESTRICT = op2.Kernel(mg_restrict, "h_mg_restrict", flops_per_elem=24, vectorisable=False)
K_MG_ZERO = op2.Kernel(mg_zero, "h_mg_zero", flops_per_elem=0)
K_MG_SMOOTH = op2.Kernel(mg_smooth, "h_mg_smooth", flops_per_elem=24)
K_MG_PROLONG = op2.Kernel(mg_prolong, "h_mg_prolong", flops_per_elem=18, vectorisable=False)
