"""Hydra-proxy driver: 5-stage Runge-Kutta + 2-level multigrid per iteration.

Executes ~36 parallel loops per time step across 13 distinct kernels, of
which five are indirect — the loop-heavy profile the paper attributes to
Hydra.  Supports serial backends and distributed execution over the
partitioned-mesh runtime, with optional mesh renumbering and graph
partitioning (the OP2 optimisations behind paper Fig 3).
"""

from __future__ import annotations

import numpy as np

from repro import op2
from repro.apps.hydra.kernels import (
    RK_ALPHA,
    K_ADT,
    K_GRAD,
    K_GRAD_ZERO,
    K_IFLUX,
    K_MG_PROLONG,
    K_MG_RESTRICT,
    K_MG_SMOOTH,
    K_MG_ZERO,
    K_RK,
    K_SAVE,
    K_SRC,
    K_VFLUX,
    K_VPREP,
)
from repro.apps.hydra.mesh import HydraMesh, generate_hydra_mesh
from repro.simmpi.comm import SimComm


class HydraApp:
    """The Hydra proxy written against the OP2 API."""

    def __init__(
        self,
        mesh: HydraMesh | None = None,
        *,
        nx: int = 40,
        ny: int = 24,
        jitter: float = 0.1,
        backend: str = "vec",
    ):
        self.mesh = mesh if mesh is not None else generate_hydra_mesh(nx, ny, jitter=jitter)
        self.backend = backend
        self.rms = op2.Global(1, 0.0, name="h_rms")
        self.alpha = op2.Global(1, 1.0, name="h_alpha")

    # -- optimisations (paper Fig 3's OP2 bars) ---------------------------------------

    def renumber(self) -> None:
        """RCM-renumber the fine cells for locality (OP2 mesh reordering)."""
        from repro.op2.renumber import rcm_permutation, apply_permutation

        m = self.mesh
        f = m.fine
        perm = rcm_permutation(f.edge2cell)
        cell_dats = [f.q, f.qold, f.adt, f.res, m.q, m.qold, m.grad, m.visc, m.adt, m.res]
        # dats on the fine cell set only (fine.q etc. are airfoil leftovers
        # sharing the set; include everything allocated on it)
        cell_dats = [d for d in cell_dats if d.set is f.cells]
        cell_maps = [f.edge2cell, f.bedge2cell]
        apply_permutation(perm, cell_dats, cell_maps)
        # fine->coarse maps FROM the renumbered set: permute its rows
        m.fine2coarse.values[:] = m.fine2coarse.values[perm]
        f.cell2node.values[:] = f.cell2node.values[perm]

    # -- serial loop chain ------------------------------------------------------------

    def iteration(self) -> None:
        m = self.mesh
        f = m.fine
        be = self.backend
        op2.par_loop(K_SAVE, f.cells, m.q(op2.READ), m.qold(op2.WRITE), backend=be)
        op2.par_loop(K_VPREP, f.cells, m.q(op2.READ), m.visc(op2.WRITE), backend=be)
        for stage, alpha in enumerate(RK_ALPHA):
            self.alpha.data[0] = alpha
            op2.par_loop(K_GRAD_ZERO, f.cells, m.grad(op2.WRITE), backend=be)
            op2.par_loop(
                K_GRAD,
                f.edges,
                f.x(op2.READ, f.edge2node, 0),
                f.x(op2.READ, f.edge2node, 1),
                m.q(op2.READ, f.edge2cell, 0),
                m.q(op2.READ, f.edge2cell, 1),
                m.grad(op2.INC, f.edge2cell, 0),
                m.grad(op2.INC, f.edge2cell, 1),
                backend=be,
            )
            op2.par_loop(
                K_ADT,
                f.cells,
                f.x(op2.READ, f.cell2node, 0),
                f.x(op2.READ, f.cell2node, 1),
                f.x(op2.READ, f.cell2node, 2),
                f.x(op2.READ, f.cell2node, 3),
                m.q(op2.READ),
                m.adt(op2.WRITE),
                backend=be,
            )
            op2.par_loop(
                K_IFLUX,
                f.edges,
                f.x(op2.READ, f.edge2node, 0),
                f.x(op2.READ, f.edge2node, 1),
                m.q(op2.READ, f.edge2cell, 0),
                m.q(op2.READ, f.edge2cell, 1),
                m.adt(op2.READ, f.edge2cell, 0),
                m.adt(op2.READ, f.edge2cell, 1),
                m.res(op2.INC, f.edge2cell, 0),
                m.res(op2.INC, f.edge2cell, 1),
                backend=be,
            )
            op2.par_loop(
                K_VFLUX,
                f.edges,
                f.x(op2.READ, f.edge2node, 0),
                f.x(op2.READ, f.edge2node, 1),
                m.grad(op2.READ, f.edge2cell, 0),
                m.grad(op2.READ, f.edge2cell, 1),
                m.visc(op2.READ, f.edge2cell, 0),
                m.visc(op2.READ, f.edge2cell, 1),
                m.res(op2.INC, f.edge2cell, 0),
                m.res(op2.INC, f.edge2cell, 1),
                backend=be,
            )
            op2.par_loop(
                K_SRC,
                f.cells,
                m.q(op2.READ),
                m.visc(op2.READ),
                m.res(op2.INC),
                backend=be,
            )
            if stage == len(RK_ALPHA) - 1:
                self.rms.data[:] = 0.0
            op2.par_loop(
                K_RK,
                f.cells,
                m.qold(op2.READ),
                m.q(op2.WRITE),
                m.res(op2.RW),
                m.adt(op2.READ),
                self.alpha(op2.READ),
                self.rms(op2.INC),
                backend=be,
            )
        # multigrid correction cycle
        op2.par_loop(K_MG_ZERO, m.coarse_cells, m.qc(op2.WRITE), m.resc(op2.WRITE), backend=be)
        op2.par_loop(
            K_MG_RESTRICT,
            f.cells,
            m.q(op2.READ),
            m.res(op2.READ),
            m.qc(op2.INC, m.fine2coarse, 0),
            m.resc(op2.INC, m.fine2coarse, 0),
            backend=be,
        )
        op2.par_loop(K_MG_SMOOTH, m.coarse_cells, m.qc(op2.RW), m.resc(op2.READ), backend=be)
        op2.par_loop(
            K_MG_PROLONG,
            f.cells,
            m.qc(op2.READ, m.fine2coarse, 0),
            m.q(op2.RW),
            backend=be,
        )

    def run(self, iterations: int) -> float:
        for _ in range(iterations):
            self.iteration()
        return float(np.sqrt(self.rms.value / self.mesh.fine.cells.size))

    # -- distributed ----------------------------------------------------------------------

    def build_partitioned(self, nranks: int, method: str = "block"):
        from repro.op2.halo import build_partitioned_mesh
        from repro.op2.partition import partition_set

        m = self.mesh
        f = m.fine
        coords = None
        if method == "rcb":
            coords = f.x.data[f.cell2node.values].mean(axis=1)
        assign = partition_set(
            f.cells.size, nranks, method, coords=coords, map_=f.cell2node
        ).assignment
        return build_partitioned_mesh(
            nranks, f.cells, assign, m.all_maps, m.all_dats, [self.rms, self.alpha]
        )

    def run_distributed(self, comm: SimComm, pm, iterations: int) -> float:
        m = self.mesh
        f = m.fine
        rm = pm.local(comm.rank)
        be = self.backend
        lrms = rm.local_global(self.rms)
        lalpha = rm.local_global(self.alpha)
        for _ in range(iterations):
            rm.par_loop(comm, K_SAVE, f.cells, m.q(op2.READ), m.qold(op2.WRITE), backend=be)
            rm.par_loop(comm, K_VPREP, f.cells, m.q(op2.READ), m.visc(op2.WRITE), backend=be)
            for stage, alpha in enumerate(RK_ALPHA):
                lalpha.data[0] = alpha
                rm.par_loop(comm, K_GRAD_ZERO, f.cells, m.grad(op2.WRITE), backend=be)
                rm.par_loop(
                    comm,
                    K_GRAD,
                    f.edges,
                    f.x(op2.READ, f.edge2node, 0),
                    f.x(op2.READ, f.edge2node, 1),
                    m.q(op2.READ, f.edge2cell, 0),
                    m.q(op2.READ, f.edge2cell, 1),
                    m.grad(op2.INC, f.edge2cell, 0),
                    m.grad(op2.INC, f.edge2cell, 1),
                    backend=be,
                )
                rm.par_loop(
                    comm,
                    K_ADT,
                    f.cells,
                    f.x(op2.READ, f.cell2node, 0),
                    f.x(op2.READ, f.cell2node, 1),
                    f.x(op2.READ, f.cell2node, 2),
                    f.x(op2.READ, f.cell2node, 3),
                    m.q(op2.READ),
                    m.adt(op2.WRITE),
                    backend=be,
                )
                rm.par_loop(
                    comm,
                    K_IFLUX,
                    f.edges,
                    f.x(op2.READ, f.edge2node, 0),
                    f.x(op2.READ, f.edge2node, 1),
                    m.q(op2.READ, f.edge2cell, 0),
                    m.q(op2.READ, f.edge2cell, 1),
                    m.adt(op2.READ, f.edge2cell, 0),
                    m.adt(op2.READ, f.edge2cell, 1),
                    m.res(op2.INC, f.edge2cell, 0),
                    m.res(op2.INC, f.edge2cell, 1),
                    backend=be,
                )
                rm.par_loop(
                    comm,
                    K_VFLUX,
                    f.edges,
                    f.x(op2.READ, f.edge2node, 0),
                    f.x(op2.READ, f.edge2node, 1),
                    m.grad(op2.READ, f.edge2cell, 0),
                    m.grad(op2.READ, f.edge2cell, 1),
                    m.visc(op2.READ, f.edge2cell, 0),
                    m.visc(op2.READ, f.edge2cell, 1),
                    m.res(op2.INC, f.edge2cell, 0),
                    m.res(op2.INC, f.edge2cell, 1),
                    backend=be,
                )
                rm.par_loop(
                    comm, K_SRC, f.cells,
                    m.q(op2.READ), m.visc(op2.READ), m.res(op2.INC), backend=be,
                )
                if stage == len(RK_ALPHA) - 1:
                    lrms.data[:] = 0.0
                rm.par_loop(
                    comm,
                    K_RK,
                    f.cells,
                    m.qold(op2.READ),
                    m.q(op2.WRITE),
                    m.res(op2.RW),
                    m.adt(op2.READ),
                    lalpha(op2.READ),
                    lrms(op2.INC),
                    backend=be,
                )
            rm.par_loop(
                comm, K_MG_ZERO, m.coarse_cells,
                m.qc(op2.WRITE), m.resc(op2.WRITE), backend=be,
            )
            rm.par_loop(
                comm,
                K_MG_RESTRICT,
                f.cells,
                m.q(op2.READ),
                m.res(op2.READ),
                m.qc(op2.INC, m.fine2coarse, 0),
                m.resc(op2.INC, m.fine2coarse, 0),
                backend=be,
            )
            rm.par_loop(
                comm, K_MG_SMOOTH, m.coarse_cells,
                m.qc(op2.RW), m.resc(op2.READ), backend=be,
            )
            rm.par_loop(
                comm,
                K_MG_PROLONG,
                f.cells,
                m.qc(op2.READ, m.fine2coarse, 0),
                m.q(op2.RW),
                backend=be,
            )
        return float(np.sqrt(lrms.value / self.mesh.fine.cells.size))
