"""Hydra proxy: a synthetic industrial-scale unstructured CFD app (OP2).

Rolls-Royce Hydra is proprietary (Fortran 77, ~300 loops, ~50k lines); this
proxy reproduces the *performance-relevant characteristics* the paper
attributes to it relative to Airfoil (Section IV):

* a larger state: 6 conserved variables plus a 12-component gradient field,
  so it "moves many times more data per grid point than Airfoil does",
* "a large number of indirect loops": gradient accumulation, inviscid and
  viscous edge fluxes, multigrid restriction — per Runge-Kutta stage,
* a 5-step Runge-Kutta time-march accelerated by a two-level multigrid
  cycle, matching Hydra's described solver structure,
* heavier kernels with more arithmetic and branching, which on GPUs
  "achieve lower occupancy and have higher branch divergence".

The numerics are synthetic (documented in DESIGN.md) but conservative and
deterministic, with a hand-coded NumPy reference for original-vs-OP2
comparisons (paper Fig 3's "Original" bar).
"""

from repro.apps.hydra.mesh import HydraMesh, generate_hydra_mesh
from repro.apps.hydra.app import HydraApp
from repro.apps.hydra.reference import HydraReference

__all__ = ["HydraMesh", "generate_hydra_mesh", "HydraApp", "HydraReference"]
