"""Two-level unstructured mesh for the Hydra proxy.

Reuses the Airfoil channel-mesh topology for the fine level and adds a
coarsened level (2x2 cell agglomeration) with a fine-to-coarse map — the
multigrid structure Hydra's solver is described with.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import op2
from repro.apps.airfoil.mesh import AirfoilMesh, generate_mesh

NVAR = 6  # rho, rho*u, rho*v, rho*E, k, omega
NGRAD = 2 * NVAR


@dataclass
class HydraMesh:
    """Fine Airfoil-style mesh plus a coarse multigrid level."""

    fine: AirfoilMesh
    coarse_cells: op2.Set
    fine2coarse: op2.Map
    # fine-level fields
    q: op2.Dat  # (cells, 6)
    qold: op2.Dat
    grad: op2.Dat  # (cells, 12)
    visc: op2.Dat  # (cells, 1) turbulent viscosity proxy
    adt: op2.Dat
    res: op2.Dat  # (cells, 6)
    # coarse-level fields
    qc: op2.Dat  # (coarse, 6) restricted state
    resc: op2.Dat  # (coarse, 6) restricted residual / correction

    @property
    def all_maps(self) -> list[op2.Map]:
        return self.fine.all_maps + [self.fine2coarse]

    @property
    def all_dats(self) -> list[op2.Dat]:
        return [
            self.fine.x,
            self.fine.bound,
            self.q,
            self.qold,
            self.grad,
            self.visc,
            self.adt,
            self.res,
            self.qc,
            self.resc,
        ]


def initial_state(n_cells: int, *, seed: int = 7) -> np.ndarray:
    """A smooth perturbed RANS-like state (positive density/energy/k/omega)."""
    rng = np.random.default_rng(seed)
    q = np.zeros((n_cells, NVAR))
    q[:, 0] = 1.0 + 0.01 * rng.standard_normal(n_cells)  # rho
    q[:, 1] = 0.4 * q[:, 0]  # rho*u
    q[:, 2] = 0.02 * rng.standard_normal(n_cells)  # rho*v
    q[:, 3] = 2.0 + 0.05 * rng.standard_normal(n_cells)  # rho*E
    q[:, 4] = 0.01 * (1.0 + 0.1 * rng.standard_normal(n_cells))  # k
    q[:, 5] = 1.0 + 0.05 * rng.standard_normal(n_cells)  # omega
    return q


def generate_hydra_mesh(nx: int, ny: int, *, jitter: float = 0.1, seed: int = 0) -> HydraMesh:
    """Build the two-level Hydra mesh (``nx``/``ny`` must be even)."""
    if nx % 2 or ny % 2:
        raise ValueError("hydra mesh needs even nx, ny for 2x2 coarsening")
    fine = generate_mesh(nx, ny, jitter=jitter, seed=seed)
    n_cells = fine.cells.size

    ncx, ncy = nx // 2, ny // 2
    coarse_cells = op2.Set(ncx * ncy, "coarse_cells")
    f2c = np.zeros((n_cells, 1), dtype=np.int64)
    for i in range(nx):
        for j in range(ny):
            f2c[i * ny + j, 0] = (i // 2) * ncy + (j // 2)
    fine2coarse = op2.Map(fine.cells, coarse_cells, 1, f2c, "fine2coarse")

    return HydraMesh(
        fine=fine,
        coarse_cells=coarse_cells,
        fine2coarse=fine2coarse,
        q=op2.Dat(fine.cells, NVAR, initial_state(n_cells, seed=seed + 7), name="q6"),
        qold=op2.Dat(fine.cells, NVAR, name="q6_old"),
        grad=op2.Dat(fine.cells, NGRAD, name="grad"),
        visc=op2.Dat(fine.cells, 1, name="visc"),
        adt=op2.Dat(fine.cells, 1, name="adt6"),
        res=op2.Dat(fine.cells, NVAR, name="res6"),
        qc=op2.Dat(coarse_cells, NVAR, name="qc"),
        resc=op2.Dat(coarse_cells, NVAR, name="resc"),
    )
