"""Proxy applications.

* :mod:`repro.apps.airfoil` — the non-linear 2D inviscid Airfoil CFD
  mini-app written against the OP2 API, "a experimentation forerunner
  representative of the Rolls-Royce Hydra CFD code" (paper Section IV).
* :mod:`repro.apps.cloverleaf` — the 2D CloverLeaf hydrodynamics mini-app
  written against the OPS API, with the hand-coded "original"
  implementation it is compared to in paper Fig 5.
* :mod:`repro.apps.hydra` — a synthetic industrial-scale proxy with
  Hydra's performance-relevant characteristics: many more loops, more
  indirect accesses and more bytes per grid point than Airfoil.
"""
