"""Pipe-based message transport for true multi-process SPMD worlds.

Implements the same transport protocol as
:class:`repro.simmpi.comm.ThreadTransport`, so :class:`~repro.simmpi.comm.SimComm`
— and with it every collective, the fault hooks, the counters and the
telemetry spans — runs unchanged on top of real worker processes.

Design constraints, in priority order:

* **SIGKILL safety.**  A worker may die at any instruction.  The fabric
  therefore holds *no shared locks*: every channel is a unidirectional
  ``multiprocessing.Pipe(duplex=False)`` with exactly one writer (the source
  rank) and one reader (the destination rank).  ``multiprocessing.Queue``
  was rejected precisely because its shared put-lock can be left acquired
  by a killed feeder thread, wedging every other sender.
* **Prompt failure detection.**  Failed ranks are flagged in a
  ``RawArray('b')`` inherited over fork; blocked receivers poll their pipes
  with short ``connection.wait`` slices and re-check the flags each wakeup,
  so a peer's death surfaces as :class:`RankFailedError` within one poll
  interval instead of a deadlock timeout.
* **Deterministic matching.**  Each rank drains ready pipes into a private
  pending list and matches (source, tag) against it with the same
  first-match rule as the in-process mailbox, so ANY-source receives and
  out-of-order tags behave identically across executors.

Sends write directly into the destination pipe.  The OS pipe buffer
(~64 KiB) gives buffered-send semantics for all realistic halo/collective
payloads; a larger message turns the send into a rendezvous, which is
still correct for every communication pattern the library emits (gathers
and exchanges always have the matching receive posted).  When a rank dies
mid-exchange the supervisor drains the dead rank's incoming pipes so a
peer blocked on a full pipe to the corpse is released.

The barrier is message-based (gather + release through rank 0) on a
reserved tag range, giving the same all-live-ranks synchronisation as the
thread barrier while staying kill-safe: a dead rank breaks the barrier via
the failure flags, not via a poisoned lock.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
from multiprocessing import connection as _mpc
from multiprocessing.sharedctypes import RawArray
from time import monotonic as _monotonic
from typing import Any

from repro.common.config import get_config
from repro.common.errors import RankFailedError
from repro.simmpi.comm import ANY, DeadlockError, _copy_payload, _Envelope

#: barrier rounds use tags above the collective range (1 << 20)
_TAG_BARRIER = 1 << 21


class FailedFlags:
    """Set-alike view over a shared byte array of per-rank failure flags.

    Drop-in for the ``set`` used by ``_WorldState.failed``: supports
    membership, truthiness, iteration (sorted, for error messages) and
    ``add``.  Writes are single-byte stores — atomic enough for a flag that
    only ever transitions 0 -> 1 — so no cross-process lock is needed.
    """

    def __init__(self, size: int):
        self._flags = RawArray("b", size)

    def add(self, rank: int) -> None:
        self._flags[rank] = 1

    def __contains__(self, rank: Any) -> bool:
        return isinstance(rank, int) and 0 <= rank < len(self._flags) and bool(
            self._flags[rank]
        )

    def __bool__(self) -> bool:
        return any(self._flags)

    def __iter__(self):
        return iter(r for r, f in enumerate(self._flags) if f)

    def __len__(self) -> int:
        return sum(1 for f in self._flags if f)


class ProcessTransport:
    """Per-ordered-pair pipe fabric + shared failure flags for one world.

    Built in the parent before forking; workers inherit every connection
    and only ever touch their own row (their incoming readers and their
    outgoing writers), so no two processes share a pipe end.
    """

    def __init__(self, size: int, *, poll_interval: float | None = None):
        self.size = size
        self.poll_interval = poll_interval
        self.failed = FailedFlags(size)
        # _rx[dest] is a list of (src, reader); _tx[src][dest] is the writer
        self._rx: list[list[tuple[int, Any]]] = [[] for _ in range(size)]
        self._tx: list[dict[int, Any]] = [{} for _ in range(size)]
        for src in range(size):
            for dest in range(size):
                if src == dest:
                    continue
                reader, writer = mp.Pipe(duplex=False)
                self._rx[dest].append((src, reader))
                self._tx[src][dest] = writer
        # per-rank private state; each process only touches its own rank's
        # entry (inherited copy-on-write, never shared)
        self._pending: list[list[_Envelope]] = [[] for _ in range(size)]
        self._barrier_round = [0] * size
        self._dead_conns: set[int] = set()

    def _poll(self) -> float:
        if self.poll_interval is not None:
            return self.poll_interval
        return get_config().mp_poll_interval

    # -- sending -----------------------------------------------------------

    def deliver(self, src: int, dest: int, tag: int, payload: Any) -> None:
        if src == dest:
            # self-sends never cross a pipe; copy to un-alias, same as the
            # thread transport does for every delivery
            self._pending[dest].append(_Envelope(src, tag, _copy_payload(payload)))
            return
        # pickling through the pipe un-aliases the payload, same as the
        # thread transport's explicit copy
        try:
            self._tx[src][dest].send((tag, payload))
        except (BrokenPipeError, OSError) as exc:
            if dest in self.failed:
                raise RankFailedError(
                    f"send(dest={dest}, tag={tag}): rank {dest} has failed"
                ) from exc
            raise

    # -- receiving ---------------------------------------------------------

    def _drain(self, rank: int, timeout: float) -> bool:
        """Pull every ready incoming message into the pending list."""
        conns = [
            (src, c) for src, c in self._rx[rank] if id(c) not in self._dead_conns
        ]
        if not conns:
            return False
        ready = _mpc.wait([c for _, c in conns], timeout)
        if not ready:
            return False
        got = False
        by_id = {id(c): src for src, c in conns}
        for conn in ready:
            src = by_id[id(conn)]
            try:
                tag, payload = conn.recv()
            except (EOFError, OSError, pickle.UnpicklingError):
                # writer died mid-message; the failure flags carry the news
                self._dead_conns.add(id(conn))
                continue
            self._pending[rank].append(_Envelope(src, tag, payload))
            got = True
        return got

    def _match(self, rank: int, src: int, tag: int) -> _Envelope | None:
        pending = self._pending[rank]
        for i, env in enumerate(pending):
            if (src == ANY or env.src == src) and (tag == ANY or env.tag == tag):
                return pending.pop(i)
        return None

    def collect(
        self, rank: int, src: int, tag: int, timeout: float, failed=None
    ) -> _Envelope:
        limit = 1e12 if timeout is None else timeout
        deadline = _monotonic() + limit
        while True:
            env = self._match(rank, src, tag)
            if env is not None:
                return env
            # drain whatever is already buffered before declaring a source
            # dead: messages it sent before dying must still be delivered
            if self._drain(rank, 0):
                continue
            if failed:
                if src in failed:
                    raise RankFailedError(
                        f"recv(src={src}, tag={tag}): rank {src} has failed"
                    )
                if src == ANY:
                    raise RankFailedError(
                        f"recv(src=ANY, tag={tag}): rank(s) "
                        f"{sorted(failed)} failed with no message pending"
                    )
            remaining = deadline - _monotonic()
            if remaining <= 0:
                raise DeadlockError(
                    f"recv(src={src}, tag={tag}) timed out after {timeout}s"
                )
            self._drain(rank, min(remaining, self._poll()))

    def probe(self, rank: int, src: int, tag: int) -> bool:
        self._drain(rank, 0)
        pending = self._pending[rank]
        for env in pending:
            if (src == ANY or env.src == src) and (tag == ANY or env.tag == tag):
                return True
        return False

    # -- barrier -----------------------------------------------------------

    def barrier_wait(self, rank: int) -> None:
        """Message barrier: gather-to-0 then broadcast-release.

        Each process keeps its own round counter (SPMD code hits barriers in
        the same order on every rank), so consecutive barriers use distinct
        tags and cannot steal each other's arrival messages.
        """
        tag = _TAG_BARRIER + self._barrier_round[rank]
        self._barrier_round[rank] += 1
        timeout = get_config().deadlock_timeout
        if rank == 0:
            for _ in range(self.size - 1):
                self.collect(0, ANY, tag, timeout, failed=self.failed)
            for r in range(1, self.size):
                self.deliver(0, r, tag, None)
        else:
            self.deliver(rank, 0, tag, None)
            self.collect(rank, 0, tag, timeout, failed=self.failed)

    # -- failure plumbing ----------------------------------------------------

    def wake_all(self) -> None:
        """No-op: blocked receivers poll the shared failure flags directly."""

    def abort(self) -> None:
        """No-op: the message barrier unblocks via the failure flags."""

    def drain_dead(self, rank: int) -> None:
        """Discard messages addressed to a dead rank (supervisor side).

        A live sender blocked on the dead rank's full pipe is released as
        soon as the buffer drains; it then notices the failure flag on its
        next receive or send.
        """
        for _src, conn in self._rx[rank]:
            if id(conn) in self._dead_conns:
                continue
            try:
                while conn.poll(0):
                    conn.recv()
            except (EOFError, OSError, pickle.UnpicklingError):
                self._dead_conns.add(id(conn))

    def close(self) -> None:
        """Close every pipe end held by this process (parent cleanup)."""
        for row in self._rx:
            for _src, conn in row:
                try:
                    conn.close()
                except OSError:
                    pass
        for row in self._tx:
            for conn in row.values():
                try:
                    conn.close()
                except OSError:
                    pass
