"""Checkpoint-restart over real worker processes.

:func:`run_resilient_spmd_mp` is the multi-process twin of
:func:`repro.resilience.driver.run_resilient_spmd`: same
:class:`~repro.resilience.driver.SpmdJob` contract, same on-disk round
layout, same recovery semantics — but failures are *real*.  A worker
SIGKILLed mid-run trips the supervisor's sentinel watch, surfaces as a
:class:`~repro.common.errors.WorkerDiedError`, and the driver rebuilds the
job, fast-forwards every rank through the latest round flushed by *all*
ranks (those files are on shared disk, so they survive the death), and
resumes — bitwise-identically to a fault-free run, which the test suite
asserts.

Checkpoint managers and replayers are installed *inside* each worker (the
rank body wrapper runs post-fork), so loop observers stay process-local
exactly as they are thread-local in the in-process driver.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any, Callable

from repro.checkpoint.manager import CheckpointManager, RecoveryReplayer
from repro.checkpoint.store import FileStore, latest_common_round, round_glob, round_path
from repro.common.counters import PerfCounters
from repro.common.errors import ResilienceError
from repro.mp.executor import MpWorld, run_spmd_mp
from repro.resilience.driver import ResilientResult, SpmdJob
from repro.simmpi.comm import DeadlockError
from repro.telemetry import tracer as _trace


def run_resilient_spmd_mp(
    nranks: int,
    job: SpmdJob,
    *,
    ckpt_dir: str | Path,
    frequency: int | None = None,
    max_restarts: int = 3,
    job_id: str | None = None,
    share_dats: bool = True,
    on_attempt_start: Callable[[int, list[int]], None] | None = None,
) -> ResilientResult:
    """Run ``job`` over ``nranks`` worker processes, surviving real deaths.

    ``frequency`` is the checkpoint cadence in loops (None disables
    checkpointing, so every restart replays from scratch).  ``share_dats``
    moves every rank's checkpoint datasets onto shared-memory segments for
    the run.  ``on_attempt_start`` receives ``(attempt_number, worker_pids)``
    once an attempt's ranks are forked — the hook resilience tests use to
    aim a SIGKILL at a live worker.  Raises :class:`ResilienceError` once
    ``max_restarts`` is exceeded, and re-raises immediately on organic
    (non-death, non-deadlock) errors.
    """
    ckpt_dir = Path(ckpt_dir)
    ckpt_dir.mkdir(parents=True, exist_ok=True)
    for stale in round_glob(ckpt_dir, job_id=job_id):
        stale.unlink()

    aggregate = PerfCounters()
    restarts = 0
    recovered_rounds: list[int] = []

    while True:
        attempt_start = time.perf_counter()
        state = job.setup()
        recovery = latest_common_round(ckpt_dir, nranks, job_id=job_id) if restarts else None
        # a death can leave ranks with different flushed-round counts; restart
        # the numbering past every existing file so rank rounds stay aligned
        existing = [int(p.stem.split("-n")[1]) for p in round_glob(ckpt_dir, job_id=job_id)]
        base = max(existing) + 1 if existing else 0
        next_round = {r: base for r in range(nranks)}
        world = MpWorld(nranks)
        shared: list[Any] = []
        if share_dats:
            for r in range(nranks):
                shared.extend(job.datasets(r, state).values())

        def rank_body(comm, _state=state, _recovery=recovery, _next=next_round):
            # runs inside the forked worker: observers and stores are
            # process-local, only the flushed .npz files are shared
            rank = comm.rank
            replayer = None
            manager = None
            if _recovery is not None:
                store = FileStore.load(round_path(ckpt_dir, rank, _recovery[0], job_id=job_id))
                replayer = RecoveryReplayer(
                    store, job.datasets(rank, _state), job.globals_(rank, _state)
                )
                replayer.install(local=True)
            if frequency is not None:

                def flush_round(mgr, _rank=rank):
                    round_no = _next[_rank]
                    mgr.store.path = round_path(ckpt_dir, _rank, round_no, job_id=job_id)
                    mgr.store.flush()
                    _next[_rank] = round_no + 1
                    mgr.restart(FileStore(round_path(ckpt_dir, _rank, round_no + 1, job_id=job_id)))

                manager = CheckpointManager(
                    FileStore(round_path(ckpt_dir, rank, _next[rank], job_id=job_id)),
                    frequency=frequency,
                    on_complete=flush_round,
                    job_id=job_id,
                )
                if replayer is not None:
                    for name, series in replayer.store.globals.items():
                        for idx, val in series:
                            manager.store.record_global(name, idx, val)
                manager.install(local=True)
            try:
                return job.rank_main(comm, _state)
            finally:
                if manager is not None:
                    manager.remove()
                if replayer is not None:
                    replayer.remove()

        attempt_no = restarts + 1
        on_start = None
        if on_attempt_start is not None:
            def on_start(pids, _n=attempt_no):
                on_attempt_start(_n, pids)

        try:
            results = run_spmd_mp(
                nranks, rank_body, world=world,
                shared_dats=shared or None, on_start=on_start,
            )
        except (RuntimeError, ResilienceError, DeadlockError) as err:
            aggregate.merge(world.total_counters())
            cause = err.__cause__ if isinstance(err, RuntimeError) else err
            if not isinstance(cause, (ResilienceError, DeadlockError)):
                raise  # an organic bug, not a worker death
            restarts += 1
            aggregate.record_restart(time.perf_counter() - attempt_start)
            if restarts > max_restarts:
                raise ResilienceError(
                    f"giving up after {max_restarts} restart(s); last failure: {cause}"
                ) from err
            available = latest_common_round(ckpt_dir, nranks, job_id=job_id)
            recovered_rounds.append(available[0] if available is not None else -1)
            trc = _trace.ACTIVE
            if trc is not None:
                trc.instant(
                    "restart", "resilience",
                    attempt=restarts + 1,
                    recovered_round=recovered_rounds[-1],
                    cause=type(cause).__name__,
                )
            continue

        aggregate.merge(world.total_counters())
        return ResilientResult(
            results=results,
            restarts=restarts,
            attempts=restarts + 1,
            recovered_rounds=recovered_rounds,
            counters=aggregate,
        )
