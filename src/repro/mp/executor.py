"""Multi-process SPMD executor: real worker processes hosting ranks.

Drop-in alternative to :func:`repro.simmpi.executor.run_spmd` — same
signature plus multi-process extras — with the deterministic in-process
executor kept as the verification oracle (``diff_backends`` across the two
must be bitwise-identical).

Workers are forked, so the rank function, the decomposed app state and the
configuration travel by inheritance: nothing needs to be picklable except
message payloads and per-rank return values.  Each child builds a
:class:`SimComm` over the shared :class:`~repro.mp.transport.ProcessTransport`,
runs the rank body under its own counter scope, then ships
``(result, PerfCounters)`` back over a dedicated result pipe.

The supervisor (the parent) waits on result pipes and process sentinels
together.  A worker that dies without reporting — SIGKILL, OOM, segfault —
trips its sentinel: the supervisor marks the rank failed in the shared
flags (peers then raise :class:`RankFailedError` within one poll interval),
drains the corpse's incoming pipes so blocked senders are released, and
records a :class:`WorkerDiedError` carrying the exit code for the
resilient driver to classify.
"""

from __future__ import annotations

import multiprocessing as _mp
import os
import signal
import sys
from multiprocessing import connection as _mpc
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.common.config import get_config
from repro.common.counters import PerfCounters
from repro.common.errors import RankFailedError, ReproError, WorkerDiedError
from repro.common.profiling import active_counters, counters_scope
from repro.mp.shm import DatArena
from repro.mp.transport import ProcessTransport
from repro.simmpi.comm import SimComm, _WorldState
from repro.telemetry import tracer as _trace


class MpWorld:
    """A multi-process MPI world of ``size`` ranks.

    Mirrors :class:`repro.simmpi.executor.World` (``counters``,
    ``failed_ranks``, ``total_counters``) and adds the process handles:
    ``pids`` once the run has started, and :meth:`kill` for resilience
    tests that murder a live worker.

    Single-use: the pipe fabric is consumed by one run.
    """

    def __init__(self, size: int, *, poll_interval: float | None = None):
        if size < 1:
            raise ValueError("world size must be >= 1")
        self.size = size
        self.transport = ProcessTransport(size, poll_interval=poll_interval)
        self.counters = [PerfCounters() for _ in range(size)]
        self.pids: list[int | None] = [None] * size
        self._used = False

    @property
    def failed_ranks(self) -> set[int]:
        """Ranks that died during the last run (organic or killed)."""
        return set(self.transport.failed)

    def total_counters(self) -> PerfCounters:
        """Merge all per-rank counters into one aggregate."""
        total = PerfCounters()
        for c in self.counters:
            total.merge(c)
        return total

    def kill(self, rank: int, sig: int = signal.SIGKILL) -> None:
        """Send a signal to a live worker (resilience tests)."""
        pid = self.pids[rank]
        if pid is None:
            raise ReproError(f"rank {rank} has no live worker process")
        os.kill(pid, sig)


def _child_main(
    rank: int,
    fn: Callable[..., Any],
    args: tuple,
    extra: tuple,
    world: MpWorld,
    result_conn,
    trace_dir: str | None,
) -> None:
    """Rank body wrapper executed inside the forked worker."""
    from repro.ops import lazy as _ops_lazy

    counters = PerfCounters()
    if trace_dir is not None:
        # a fresh ring: the parent's pre-fork events must not be re-exported
        # from every worker
        _trace.enable(_trace.Tracer())
    trc = _trace.ACTIVE
    if trc is not None:
        trc.set_rank(rank)
    comm = SimComm(
        _WorldState(
            size=world.size,
            transport=world.transport,
            failed=world.transport.failed,
        ),
        rank,
        counters,
    )
    code = 0
    try:
        with counters_scope(counters):
            result = fn(comm, *args, *extra)
            # same observation point as the thread executor: loops queued
            # lazily by the rank body must land inside the worker
            _ops_lazy.flush_point("rank_return")
        payload: dict[str, Any] = {"ok": True, "result": result}
    except BaseException as exc:  # noqa: BLE001 - shipped to the supervisor
        _ops_lazy.abandon()
        # flag first so peers fail fast even while we serialise the report
        world.transport.failed.add(rank)
        payload = {"ok": False, "error": exc}
        code = 1
    payload["counters"] = counters
    payload["pid"] = os.getpid()
    if trace_dir is not None and trc is not None:
        path = Path(trace_dir) / f"trace-rank{rank:03d}.jsonl"
        try:
            from repro.telemetry.export import write_jsonl

            Path(trace_dir).mkdir(parents=True, exist_ok=True)
            write_jsonl(path, trc.events(), pid=os.getpid())
        except Exception:  # noqa: BLE001 - tracing must never kill a rank
            pass
    try:
        result_conn.send(payload)
    except Exception:  # noqa: BLE001 - unpicklable result/exception
        try:
            fallback = dict(payload)
            if payload["ok"]:
                fallback["ok"] = False
                fallback["error"] = ReproError(
                    f"rank {rank}: return value is not picklable "
                    f"({type(payload['result']).__name__})"
                )
                fallback.pop("result", None)
            else:
                fallback["error"] = ReproError(repr(payload["error"]))
            result_conn.send(fallback)
            code = 1
        except Exception:  # noqa: BLE001 - give up; sentinel reports the death
            code = 1
    sys.exit(code)


def run_spmd_mp(
    nranks: int,
    fn: Callable[..., Any],
    *args: Any,
    world: MpWorld | None = None,
    rank_args: Sequence[tuple] | None = None,
    shared_dats: Sequence[Any] | None = None,
    trace_dir: str | None = None,
    on_start: Callable[[list[int]], None] | None = None,
) -> list[Any]:
    """Run ``fn(comm, *args)`` on every rank, each in its own process.

    Same contract as :func:`repro.simmpi.executor.run_spmd` — per-rank
    return values in rank order, root-cause error selection — with three
    extras: ``shared_dats`` moves the listed dats onto shared-memory
    segments for the duration of the run (workers' writes become visible to
    the parent; the dats come back on private storage holding the final
    values), ``trace_dir`` makes each worker export its telemetry ring to
    ``trace-rank<NNN>.jsonl`` (default: ``REPRO_MP_TRACE_DIR``), and
    ``on_start`` receives the worker pids once all ranks are forked.

    Every rank runs in a forked worker even for ``nranks == 1`` — the
    executor's job is to exercise the real path, not to optimise it away.

    Per-rank :class:`PerfCounters` are shipped back and merged into
    ``world.counters``; for an auto-created world the aggregate is also
    folded into the caller's active counter scope so a subsequent
    ``timing_report()`` covers the whole multi-process run.
    """
    if _mp.get_start_method(allow_none=False) != "fork" and not hasattr(os, "fork"):
        raise ReproError("run_spmd_mp requires a fork-capable platform")
    auto_world = world is None
    if world is None:
        world = MpWorld(nranks)
    elif world.size != nranks:
        raise ValueError("world size does not match nranks")
    if world._used:
        raise ReproError("MpWorld is single-use; build a fresh world per run")
    world._used = True
    if trace_dir is None:
        trace_dir = get_config().mp_trace_dir

    # queued lazy loops belong to the parent program: land them before the
    # children inherit (and would re-execute) the queue
    from repro.ops import lazy as _ops_lazy

    _ops_lazy.flush_point("mp_fork")

    arena: DatArena | None = None
    if shared_dats:
        arena = DatArena()
        arena.share_all(shared_dats)

    ctx = _mp.get_context("fork")
    readers: list[Any] = []
    procs: list[Any] = []
    try:
        writers: list[Any] = []
        for rank in range(nranks):
            r, w = ctx.Pipe(duplex=False)
            readers.append(r)
            writers.append(w)
        for rank in range(nranks):
            extra = tuple(rank_args[rank]) if rank_args is not None else ()
            proc = ctx.Process(
                target=_child_main,
                args=(rank, fn, args, extra, world, writers[rank], trace_dir),
                name=f"repro-mp-rank-{rank}",
                daemon=True,
            )
            procs.append(proc)
        for proc in procs:
            proc.start()
        for w in writers:
            w.close()  # children hold the write ends now
        world.pids = [p.pid for p in procs]
        if on_start is not None:
            on_start(list(world.pids))

        results, errors = _supervise(world, procs, readers)
    finally:
        for p in procs:
            if p.is_alive():
                p.terminate()
        for p in procs:
            if p.pid is not None:
                p.join(timeout=5.0)
        for r in readers:
            try:
                r.close()
            except OSError:
                pass
        world.transport.close()
        world.pids = [None] * nranks
        if arena is not None:
            arena.release()

    if auto_world:
        active_counters().merge(world.total_counters())

    if errors:
        organic = [
            e for e in errors
            if not isinstance(e[1], (RankFailedError, WorkerDiedError))
        ]
        died = [e for e in errors if isinstance(e[1], WorkerDiedError)]
        rank, exc = sorted(organic or died or errors, key=lambda e: e[0])[0]
        raise RuntimeError(f"rank {rank} failed: {exc!r}") from exc
    return results


def _supervise(
    world: MpWorld, procs: list, readers: list
) -> tuple[list[Any], list[tuple[int, BaseException]]]:
    """Wait for every rank to report or die; detect and flag real deaths."""
    nranks = world.size
    results: list[Any] = [None] * nranks
    errors: list[tuple[int, BaseException]] = []
    pending = set(range(nranks))
    reader_rank = {id(r): rank for rank, r in enumerate(readers)}
    sentinel_rank = {p.sentinel: rank for rank, p in enumerate(procs)}
    reported: set[int] = set()

    while pending:
        waitees = [readers[r] for r in pending if r not in reported]
        waitees += [procs[r].sentinel for r in pending]
        ready = _mpc.wait(waitees, timeout=world.transport._poll())
        for obj in ready:
            rank = reader_rank.get(id(obj))
            if rank is not None:
                try:
                    payload = obj.recv()
                except (EOFError, OSError):
                    # died between flagging and reporting: sentinel handles it
                    reported.add(rank)
                    continue
                reported.add(rank)
                pending.discard(rank)
                world.counters[rank].merge(payload.get("counters") or PerfCounters())
                if payload["ok"]:
                    results[rank] = payload["result"]
                else:
                    errors.append((rank, payload["error"]))
                continue
            rank = sentinel_rank.get(obj)
            if rank is None or rank not in pending:
                continue
            # the process is gone; give a raced-in result one chance to land
            try:
                if readers[rank].poll(0):
                    continue  # next loop iteration recv()s it
            except (EOFError, OSError):
                pass
            pending.discard(rank)
            procs[rank].join(timeout=1.0)
            exitcode = procs[rank].exitcode
            world.transport.failed.add(rank)
            errors.append((
                rank,
                WorkerDiedError(
                    f"rank {rank}: worker process died without reporting "
                    f"(exitcode {exitcode})",
                    rank=rank,
                    exitcode=exitcode,
                ),
            ))
        # release peers blocked on a dead rank's full pipes
        for dead in world.transport.failed:
            world.transport.drain_dead(dead)
    return results, errors
