"""Shared-memory Dat storage for multi-process worlds.

Moves a dat's backing array onto a ``multiprocessing.shared_memory``
segment so worker processes (which inherit the dat object over fork) write
where the parent can see.  Kernels, execplans, lazy tiling and the native
backend are oblivious: they only ever see a NumPy array, which here happens
to view a shared segment.

Ownership and lifetime rules (documented in DESIGN.md):

* The **parent** creates every segment, adopts it into the dat, and is the
  only process that ever calls ``unlink``.  Workers inherit the mapping
  over fork and simply exit; they never unlink.
* A segment stays alive (and the dat's storage valid) until the arena's
  :meth:`DatArena.release`, which rebinds the dat to a **private copy** of
  the current shared contents before closing the segment — so dats remain
  usable after the arena is gone and nothing dangles.
* Segments and dats are 1:1.  Two ranks never share a dat object (the
  decomposition layer builds per-rank locals), so there is exactly one
  writer per segment during a run.
"""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np


def snapshot(dat) -> np.ndarray:
    """Private copy of a dat's full storage (ops padded / op2 element array)."""
    return np.array(dat.data, copy=True)


def restore(dat, snap: np.ndarray) -> None:
    """Write a snapshot back into the dat's current storage, in place."""
    dat.data[...] = snap


class DatArena:
    """Owns the shared-memory segments backing a set of dats.

    Context-manager friendly::

        with DatArena() as arena:
            arena.share_all(all_rank_local_dats)
            run_spmd_mp(nranks, body, world=world)
        # dats are back on private storage, final values preserved
    """

    def __init__(self):
        self._entries: list[tuple[object, shared_memory.SharedMemory]] = []
        self._released = False

    def share(self, dat) -> np.ndarray:
        """Move ``dat`` onto a fresh shared segment, preserving its values."""
        arr = np.asarray(dat.data)
        seg = shared_memory.SharedMemory(create=True, size=max(1, arr.nbytes))
        view: np.ndarray = np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)
        view[...] = arr
        dat.adopt_storage(view)
        self._entries.append((dat, seg))
        return view

    def share_all(self, dats) -> None:
        for dat in dats:
            self.share(dat)

    @property
    def nbytes(self) -> int:
        return sum(seg.size for _, seg in self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def release(self) -> None:
        """Rebind every dat to a private copy and destroy the segments.

        Idempotent.  The copy carries whatever the workers last wrote, so
        the parent keeps the final field values.
        """
        if self._released:
            return
        self._released = True
        for dat, seg in self._entries:
            dat.adopt_storage(np.array(dat.data, copy=True))
            try:
                seg.close()
            except BufferError:
                # an execplan guard or user view still references the shared
                # buffer; the mapping lives until that reference drops, but
                # unlink below still reclaims the segment at process exit
                pass
            try:
                seg.unlink()
            except FileNotFoundError:
                pass
        self._entries.clear()

    def __enter__(self) -> "DatArena":
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def __del__(self):
        try:
            self.release()
        except Exception:
            pass
