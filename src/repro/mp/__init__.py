"""True multi-process SPMD execution.

``repro.mp`` runs each simulated MPI rank in a real forked worker process:

* :func:`run_spmd_mp` — drop-in alternative to
  :func:`repro.simmpi.run_spmd`; same rank-function contract, same error
  semantics, real OS-level parallelism.  The deterministic in-process
  executor remains the verification oracle: results must be (and are
  tested to be) bitwise identical across the two.
* :class:`MpWorld` — the multi-process world handle (counters, failed
  ranks, worker pids, ``kill`` for resilience tests).
* :class:`~repro.mp.transport.ProcessTransport` — SIGKILL-safe
  per-ordered-pair pipe fabric implementing the simmpi transport protocol.
* :class:`~repro.mp.shm.DatArena` — moves Dat storage onto
  ``multiprocessing.shared_memory`` segments so worker writes are visible
  to the parent.
* :func:`run_resilient_spmd_mp` — checkpoint-restart over real worker
  deaths (SIGKILL a live rank; recover bitwise-identically).
"""

from repro.mp.executor import MpWorld, run_spmd_mp
from repro.mp.resilient import run_resilient_spmd_mp
from repro.mp.shm import DatArena, restore, snapshot
from repro.mp.transport import FailedFlags, ProcessTransport

__all__ = [
    "MpWorld",
    "run_spmd_mp",
    "run_resilient_spmd_mp",
    "DatArena",
    "snapshot",
    "restore",
    "FailedFlags",
    "ProcessTransport",
]
