"""Checkpoint stores: where saved datasets and global values live."""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.common.errors import CheckpointError
from repro.telemetry import tracer as _trace


class MemoryStore:
    """In-memory checkpoint store (tests, single-process runs)."""

    def __init__(self) -> None:
        self.datasets: dict[str, np.ndarray] = {}
        self.globals: dict[str, list[tuple[int, np.ndarray]]] = {}
        self.entry_index: int | None = None
        self.dropped: list[str] = []

    def save_dataset(self, name: str, values: np.ndarray) -> None:
        self.datasets[name] = np.array(values, copy=True)

    def drop_dataset(self, name: str) -> None:
        if name not in self.dropped:
            self.dropped.append(name)

    def record_global(self, name: str, loop_index: int, value: np.ndarray) -> None:
        self.globals.setdefault(name, []).append((loop_index, np.array(value, copy=True)))

    def set_entry(self, loop_index: int) -> None:
        self.entry_index = loop_index

    @property
    def saved_units(self) -> int:
        """Total components saved (the figure's cost metric)."""
        return sum(int(v.shape[-1]) if v.ndim > 1 else 1 for v in self.datasets.values())

    @property
    def saved_bytes(self) -> int:
        return sum(v.nbytes for v in self.datasets.values())

    def global_at(self, name: str, loop_index: int) -> np.ndarray | None:
        """Latest recorded value of a global at or before ``loop_index``."""
        best = None
        for idx, val in self.globals.get(name, []):
            if idx <= loop_index:
                best = val
        return best


def round_path(
    ckpt_dir: str | Path, rank: int, round_no: int, *, job_id: str | None = None
) -> Path:
    """Canonical path of one rank's checkpoint round, optionally job-scoped.

    Without a ``job_id`` this is the historical single-run layout
    (``ckpt-r000-n0000.npz``).  With one, rounds are namespaced
    (``ckpt-j<job>-r000-n0000.npz``) so concurrent or preempted jobs sharing
    a checkpoint directory can never collide — the serving layer runs many
    jobs against one FileStore tree.
    """
    prefix = f"ckpt-j{job_id}-" if job_id is not None else "ckpt-"
    return Path(ckpt_dir) / f"{prefix}r{rank:03d}-n{round_no:04d}.npz"


def round_glob(ckpt_dir: str | Path, *, job_id: str | None = None):
    """All round files in ``ckpt_dir`` belonging to one namespace."""
    prefix = f"ckpt-j{job_id}-" if job_id is not None else "ckpt-"
    for p in Path(ckpt_dir).glob(f"{prefix}r*-n*.npz"):
        # the un-namespaced glob must not swallow namespaced files
        if job_id is None and p.name.startswith("ckpt-j"):
            continue
        yield p


def latest_common_round(
    ckpt_dir: str | Path, nranks: int, *, job_id: str | None = None
) -> tuple[int, int] | None:
    """Newest round flushed by every rank, as (round_no, entry_index).

    Rounds whose per-rank entry indices disagree (a crash or preemption
    interleaved two rounds) are skipped in favour of an older consistent
    one; torn files likewise fall back.  Returns None when no round is
    complete across all ranks — recovery then starts from scratch.
    """
    rounds: set[int] = set()
    for p in round_glob(ckpt_dir, job_id=job_id):
        rounds.add(int(p.stem.split("-n")[1]))
    for round_no in sorted(rounds, reverse=True):
        paths = [round_path(ckpt_dir, r, round_no, job_id=job_id) for r in range(nranks)]
        if not all(p.exists() for p in paths):
            continue
        entries = []
        try:
            for p in paths:
                entries.append(FileStore.load(p).entry_index)
        except Exception:
            continue  # torn file: fall back to an older round
        if len(set(entries)) == 1:
            return round_no, entries[0]
    return None


class FileStore(MemoryStore):
    """Checkpoint store persisted to an npz file (the HDF5 stand-in)."""

    def __init__(self, path: str | Path):
        super().__init__()
        self.path = Path(path)

    def flush(self) -> None:
        """Write the checkpoint to disk (atomically: tmp file + rename)."""
        if self.entry_index is None:
            raise CheckpointError("no checkpoint entry recorded; nothing to flush")
        trc = _trace.ACTIVE
        span = None
        if trc is not None:
            span = trc.begin(
                "checkpoint_save", "checkpoint",
                datasets=len(self.datasets), bytes=self.saved_bytes,
                entry=self.entry_index,
            )
        try:
            payload: dict[str, np.ndarray] = {
                f"dat/{k}": v for k, v in self.datasets.items()
            }
            for name, series in self.globals.items():
                for idx, val in series:
                    payload[f"gbl/{name}/{idx}"] = val
            payload["entry"] = np.asarray([self.entry_index], dtype=np.int64)
            # fixed-width strings, not object dtype: loadable without pickle
            payload["dropped"] = np.asarray(self.dropped, dtype=np.str_)
            tmp = self.path.with_name(self.path.name + ".tmp")
            with open(tmp, "wb") as fh:
                np.savez(fh, **payload)
            os.replace(tmp, self.path)
        finally:
            if span is not None:
                trc.end(span)

    @classmethod
    def load(cls, path: str | Path) -> "FileStore":
        """Read a checkpoint back from disk."""
        store = cls(path)
        with np.load(Path(path)) as npz:
            store.entry_index = int(npz["entry"][0])
            store.dropped = [str(d) for d in npz["dropped"]]
            for key in npz.files:
                if key.startswith("dat/"):
                    store.datasets[key[4:]] = npz[key]
                elif key.startswith("gbl/"):
                    _, name, idx = key.split("/")
                    store.globals.setdefault(name, []).append((int(idx), npz[key]))
        for series in store.globals.values():
            series.sort(key=lambda t: t[0])
        return store
