"""Checkpointing driven by the access-execute description (paper Section VI).

Because every loop declares how it accesses every dataset, the library can
"reason about the state of all the datasets at any particular point during
execution": datasets that are immediately overwritten need not be saved.
This package provides

* :mod:`repro.checkpoint.analysis` — the Figure-8 decision table: for every
  potential entry point in a loop chain, which datasets get saved, dropped
  or deferred, and how many units of data the checkpoint costs;
* :mod:`repro.checkpoint.speculative` — periodic-sequence detection: when
  the kernel sequence repeats, wait for the cheapest entry point instead of
  checkpointing immediately;
* :mod:`repro.checkpoint.manager` — the runtime: a loop observer that
  triggers checkpoints, saves datasets lazily as their fate is decided,
  records reduction/global values, and fast-forwards on recovery (loops are
  skipped, only global-argument values are replayed, until the checkpoint
  location is reached and state is restored);
* :mod:`repro.checkpoint.store` — in-memory and npz-file checkpoint stores.
"""

from repro.checkpoint.analysis import (
    ChainLoop,
    DatasetFate,
    decision_table,
    units_saved_if_entering,
    chain_from_events,
)
from repro.checkpoint.speculative import detect_period, best_entry_points
from repro.checkpoint.manager import CheckpointManager, RecoveryReplayer
from repro.checkpoint.store import (
    FileStore,
    MemoryStore,
    latest_common_round,
    round_glob,
    round_path,
)

__all__ = [
    "ChainLoop",
    "DatasetFate",
    "decision_table",
    "units_saved_if_entering",
    "chain_from_events",
    "detect_period",
    "best_entry_points",
    "CheckpointManager",
    "latest_common_round",
    "round_glob",
    "round_path",
    "RecoveryReplayer",
    "MemoryStore",
    "FileStore",
]
