"""Speculative checkpoint placement: periodic-sequence detection.

"OP2 can apply the 'speculative' algorithm and recognise that there is
likely a periodic execution because the sequence of kernels 1-9 repeats,
thus it can wait with entering checkpointing mode until either save_soln or
update are reached" (paper Section VI).
"""

from __future__ import annotations

from repro.checkpoint.analysis import ChainLoop, units_saved_if_entering


def detect_period(names: list[str], *, min_repeats: int = 2) -> int | None:
    """Length of the shortest repeating prefix period of ``names``.

    Returns None when no period shorter than the sequence repeats at least
    ``min_repeats`` times.  Trailing partial periods are allowed (the chain
    may have been cut mid-iteration).
    """
    n = len(names)
    for p in range(1, n // min_repeats + 1):
        if all(names[i] == names[i % p] for i in range(n)):
            if n >= p * min_repeats:
                return p
    return None


def best_entry_points(chain: list[ChainLoop], *, periodic: bool = True) -> list[int]:
    """Entry indices (within one period) minimising the checkpoint size."""
    names = [c.name for c in chain]
    period = detect_period(names) or len(chain)
    units = [
        units_saved_if_entering(chain, i, periodic=periodic) for i in range(period)
    ]
    lo = min(units)
    return [i for i, u in enumerate(units) if u == lo]


def should_defer(
    chain: list[ChainLoop], current: int, *, periodic: bool = True
) -> bool:
    """True if a cheaper entry point is coming up within one period.

    The speculative trigger defers checkpoint entry while the upcoming
    period contains a strictly cheaper location.
    """
    best = best_entry_points(chain, periodic=periodic)
    names = [c.name for c in chain]
    period = detect_period(names) or len(chain)
    return (current % period) not in best
