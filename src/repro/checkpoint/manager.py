"""Checkpoint runtime: trigger, lazy saving, speculation and recovery.

The manager is a loop observer.  After :meth:`CheckpointManager.trigger`
(or automatically every ``frequency`` loops — "the user only needs to
specify the frequency of checkpoints, the rest can be done automatically"),
it enters checkpointing mode at the next loop — or, in speculative mode,
waits for the cheapest entry point of the detected periodic kernel
sequence.  While in checkpointing mode each dataset's fate is decided at
its first access: pure WRITE → dropped, anything that observes the old
value → saved immediately.  Global/reduction values are recorded after
every loop that writes them, so a recovery replay can fast-forward.

Recovery (:class:`RecoveryReplayer`): re-run the application with the
replayer installed; every loop before the checkpoint entry is skipped
(``event.skip``) with recorded global values replayed, then the saved
datasets are restored and normal execution resumes.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.checkpoint.analysis import ChainAccess, ChainLoop
from repro.checkpoint.speculative import detect_period, should_defer
from repro.checkpoint.store import MemoryStore
from repro.common.access import Access
from repro.common.errors import CheckpointError
from repro.common.profiling import LoopEvent, add_loop_observer, remove_loop_observer
from repro.telemetry import tracer as _trace


def _set_value(ref: Any, value: np.ndarray) -> None:
    """Restore a recorded value into a Global/Reduction/Dat reference."""
    if hasattr(ref, "data") and isinstance(getattr(ref, "data"), np.ndarray):
        ref.data[...] = np.asarray(value).reshape(ref.data.shape)
    elif hasattr(ref, "value"):
        ref.value = float(np.asarray(value).reshape(-1)[0])
    else:
        raise CheckpointError(f"cannot restore into {ref!r}")


def _get_value(ref: Any) -> np.ndarray:
    if hasattr(ref, "data") and isinstance(getattr(ref, "data"), np.ndarray):
        return np.array(ref.data, copy=True)
    if hasattr(ref, "value"):
        return np.asarray([ref.value], dtype=np.float64)
    raise CheckpointError(f"cannot read value of {ref!r}")


class CheckpointManager:
    """Observes the loop chain and writes one checkpoint when triggered."""

    OBSERVING = "observing"
    ARMED = "armed"
    SAVING = "saving"
    COMPLETE = "complete"

    def __init__(
        self,
        store: MemoryStore | None = None,
        *,
        frequency: int | None = None,
        speculative: bool = False,
        on_complete: Any = None,
        job_id: str | None = None,
    ):
        self.store = store if store is not None else MemoryStore()
        self.frequency = frequency
        self.speculative = speculative
        #: called with the manager when a checkpoint round reaches COMPLETE;
        #: typically flushes the store and calls :meth:`restart`
        self.on_complete = on_complete
        #: namespace for on-disk rounds: a process running several jobs
        #: (concurrently, or a preempted job alongside its successor) gives
        #: each one a distinct job_id so their FileStore rounds cannot
        #: collide (see :func:`repro.checkpoint.store.round_path`)
        self.job_id = job_id
        self.state = self.OBSERVING
        self.loop_index = 0
        self.history: list[ChainLoop] = []
        #: dataset name -> fate decided while saving
        self.decided: dict[str, str] = {}
        self._installed = False
        self._installed_local = False
        self._last_global_refs: list[tuple[str, Any]] = []
        self._unmodified_at_entry: set[str] = set()

    # -- lifecycle ------------------------------------------------------------

    def install(self, *, local: bool = False) -> "CheckpointManager":
        if not self._installed:
            add_loop_observer(self._on_loop, local=local)
            self._installed = True
            self._installed_local = local
        return self

    def remove(self) -> None:
        if self._installed:
            remove_loop_observer(self._on_loop, local=self._installed_local)
            self._installed = False

    def __enter__(self) -> "CheckpointManager":
        return self.install()

    def __exit__(self, *exc) -> None:
        self.finalize()
        self.remove()

    def trigger(self) -> None:
        """Request a checkpoint at the next (or next-cheapest) loop."""
        # a snapshot decision is a data observation: loops queued by the
        # lazy runtime (possibly before this manager was installed) must
        # land before their state can be saved
        from repro.ops import lazy as _lazy

        _lazy.flush_point("checkpoint_trigger")
        if self.state == self.OBSERVING:
            self.state = self.ARMED

    # -- observation ------------------------------------------------------------

    def _flush_globals(self) -> None:
        """Record post-execution values of the previous loop's globals."""
        for name, ref in self._last_global_refs:
            self.store.record_global(name, self.loop_index - 1, _get_value(ref))
        self._last_global_refs = []

    def _on_loop(self, event: LoopEvent) -> None:
        self._flush_globals()
        chain_loop = ChainLoop(
            event.name,
            [ChainAccess(a.name, a.dim, a.access, a.is_global) for a in event.args],
        )
        self.history.append(chain_loop)

        due = self.state == self.ARMED or (
            self.state == self.OBSERVING
            and self.frequency is not None
            and self.loop_index > 0
            and self.loop_index % self.frequency == 0
        )
        if due:
            if event.skip:
                # a recovery replay is fast-forwarding this loop: live data is
                # stale, so hold the trigger until execution actually resumes
                self.state = self.ARMED
            else:
                self._maybe_enter()

        if self.state == self.SAVING and not event.skip:
            self._decide(event)

        # queue globals written by this loop for post-execution recording
        # (skipped loops don't execute, so their refs hold replayed values
        # already recorded in the recovery store — nothing new to capture)
        if not event.skip:
            for a in event.args:
                if a.is_global and a.access.writes:
                    self._last_global_refs.append((a.name, a.data_ref))

        self.loop_index += 1

    def _maybe_enter(self) -> None:
        if self.speculative and len(self.history) >= 4:
            names = [c.name for c in self.history[:-1]]
            if detect_period(names) is not None and should_defer(
                self.history[:-1], len(self.history) - 1
            ):
                self.state = self.ARMED  # keep waiting for a cheaper loop
                return
        self.state = self.SAVING
        self.store.set_entry(self.loop_index)
        trc = _trace.ACTIVE
        if trc is not None:
            attrs = {"loop_index": self.loop_index}
            if self.job_id is not None:
                attrs["job"] = self.job_id
            trc.instant("checkpoint_enter", "checkpoint", **attrs)
        # datasets never written before the entry point still hold their
        # initial (input-file) values at recovery fast-forward time, so they
        # need no saving regardless of what happens later
        self._unmodified_at_entry = {
            a.dataset
            for loop in self.history[:-1]
            for a in loop.accesses
            if not a.is_global
        } - self._modified_in_history(upto=len(self.history) - 1)

    def _modified_in_history(self, upto: int | None = None) -> set[str]:
        loops = self.history if upto is None else self.history[:upto]
        return {
            a.dataset
            for loop in loops
            for a in loop.accesses
            if not a.is_global and a.access.writes
        }

    def _decide(self, event: LoopEvent) -> None:
        for a in event.args:
            if a.is_global or a.name in self.decided:
                continue
            if a.name in self._unmodified_at_entry:
                # never modified before the entry point: still holds its
                # initial (input-file) value, restorable without saving
                # ("bounds and x were never modified, they are not saved")
                self.decided[a.name] = "never_saved"
                self.store.drop_dataset(a.name)
            elif a.access is Access.WRITE:
                self.decided[a.name] = "dropped"
                self.store.drop_dataset(a.name)
            else:
                self.decided[a.name] = "saved"
                self.store.save_dataset(a.name, _get_value(a.data_ref))
        if self._all_decided():
            self.state = self.COMPLETE
            trc = _trace.ACTIVE
            if trc is not None:
                fates = list(self.decided.values())
                trc.instant(
                    "checkpoint_complete", "checkpoint",
                    saved=fates.count("saved"),
                    dropped=len(fates) - fates.count("saved"),
                )
            if self.on_complete is not None:
                self.on_complete(self)

    def _all_decided(self) -> bool:
        # complete once every dataset seen in the history is decided
        seen = {
            a.dataset
            for loop in self.history
            for a in loop.accesses
            if not a.is_global
        }
        return seen.issubset(self.decided.keys())

    def finalize(self) -> None:
        """Flush trailing global records (call after the run finishes)."""
        from repro.ops import lazy as _lazy

        _lazy.flush_point("checkpoint_finalize")
        self._flush_globals()

    def restart(self, store: MemoryStore | None = None) -> "CheckpointManager":
        """Begin a fresh checkpoint round into ``store`` (rolling checkpoints).

        The loop index and access history stay absolute — a later round's
        entry point means the same loop on every deterministic rank — and the
        recorded global series is carried forward so the new round can replay
        globals across the whole run, not just since the last round.
        """
        new = store if store is not None else MemoryStore()
        for name, series in self.store.globals.items():
            have = {idx for idx, _ in new.globals.get(name, [])}
            for idx, val in series:
                if idx not in have:
                    new.record_global(name, idx, val)
            new.globals[name].sort(key=lambda t: t[0])
        self.store = new
        self.decided = {}
        self._unmodified_at_entry = set()
        self.state = self.OBSERVING
        return self


class RecoveryReplayer:
    """Fast-forwards a re-run to a checkpoint, then restores and resumes."""

    def __init__(
        self,
        store: MemoryStore,
        datasets: dict[str, Any],
        globals_: dict[str, Any] | None = None,
    ):
        if store.entry_index is None:
            raise CheckpointError("store holds no checkpoint entry")
        self.store = store
        self.datasets = datasets
        self.globals_ = globals_ or {}
        self.loop_index = 0
        self.restored = False
        self._installed = False
        self._installed_local = False

    def install(self, *, local: bool = False) -> "RecoveryReplayer":
        if not self._installed:
            add_loop_observer(self._on_loop, local=local)
            self._installed = True
            self._installed_local = local
        return self

    def remove(self) -> None:
        if self._installed:
            remove_loop_observer(self._on_loop, local=self._installed_local)
            self._installed = False

    def __enter__(self) -> "RecoveryReplayer":
        return self.install()

    def __exit__(self, *exc) -> None:
        self.remove()

    def _on_loop(self, event: LoopEvent) -> None:
        entry = self.store.entry_index
        if self.loop_index < entry:
            event.skip = True
            # replay recorded global values: "only set the value of
            # op_arg_gbl arguments"
            for a in event.args:
                if a.is_global and a.access.writes:
                    val = self.store.global_at(a.name, self.loop_index)
                    if val is not None:
                        _set_value(a.data_ref, val)
        elif not self.restored:
            self._restore()
        self.loop_index += 1

    def _restore(self) -> None:
        trc = _trace.ACTIVE
        span = None
        if trc is not None:
            span = trc.begin(
                "checkpoint_restore", "checkpoint",
                entry=self.store.entry_index, datasets=len(self.store.datasets),
            )
        try:
            for name, values in self.store.datasets.items():
                ref = self.datasets.get(name)
                if ref is None:
                    raise CheckpointError(f"saved dataset {name!r} has no live counterpart")
                _set_value(ref, values)
            entry = self.store.entry_index
            for name, ref in self.globals_.items():
                val = self.store.global_at(name, entry - 1)
                if val is not None:
                    _set_value(ref, val)
        finally:
            if span is not None:
                trc.end(span)
        self.restored = True
