"""The Figure-8 decision analysis.

Given a loop chain (sequence of loops with per-dataset access modes), decide
for each potential checkpoint entry point:

* which datasets must be **saved** — their first access at or after the
  entry point observes the old value (READ, RW, or INC, since an increment's
  result depends on the prior contents);
* which are **dropped** — first access is a pure WRITE, so the value is
  regenerated before anyone reads it;
* which are **never saved** — never modified during the chain at all
  (inputs like coordinates and bounds, restorable from the original files);
* globals/reductions are excluded from the units count — their values are
  recorded "whenever [the producing loop] has executed".

The chain is treated as periodic (the paper's speculative analysis detects
the period), so datasets whose next access lies in the following iteration
are still classified; with a non-periodic finite chain, unreached datasets
are reported as pending ("unknown yet" in the figure).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.common.access import Access
from repro.common.profiling import LoopEvent


@dataclass(frozen=True)
class ChainAccess:
    """One dataset access inside one loop of the chain."""

    dataset: str
    dim: int
    access: Access
    is_global: bool = False


@dataclass
class ChainLoop:
    """One loop of the chain: its name and dataset accesses."""

    name: str
    accesses: list[ChainAccess] = field(default_factory=list)

    def access_of(self, dataset: str) -> ChainAccess | None:
        for a in self.accesses:
            if a.dataset == dataset:
                return a
        return None


class DatasetFate(enum.Enum):
    """Classification of one dataset for one checkpoint entry point."""

    SAVED = "saved"
    DROPPED = "dropped"
    NEVER_SAVED = "never_saved"  # not modified anywhere in the chain
    GLOBAL = "global"  # reduction value, recorded separately
    PENDING = "pending"  # no access observed before the chain ended


def chain_from_events(events: list[LoopEvent]) -> list[ChainLoop]:
    """Build a chain description from recorded loop events."""
    chain = []
    for ev in events:
        accesses = [
            ChainAccess(a.name, a.dim, a.access, a.is_global) for a in ev.args
        ]
        chain.append(ChainLoop(ev.name, accesses))
    return chain


def datasets_in_chain(chain: list[ChainLoop]) -> dict[str, ChainAccess]:
    """All distinct datasets (first occurrence), name -> representative access."""
    out: dict[str, ChainAccess] = {}
    for loop in chain:
        for a in loop.accesses:
            out.setdefault(a.dataset, a)
    return out


def _modified_datasets(chain: list[ChainLoop]) -> set[str]:
    return {
        a.dataset
        for loop in chain
        for a in loop.accesses
        if not a.is_global and a.access.writes
    }


def classify_entry(
    chain: list[ChainLoop], entry: int, *, periodic: bool = True
) -> dict[str, DatasetFate]:
    """Classify every dataset for a checkpoint entered right before loop ``entry``."""
    datasets = datasets_in_chain(chain)
    modified = _modified_datasets(chain)
    n = len(chain)
    fates: dict[str, DatasetFate] = {}
    for name, rep in datasets.items():
        if rep.is_global:
            fates[name] = DatasetFate.GLOBAL
            continue
        if name not in modified:
            fates[name] = DatasetFate.NEVER_SAVED
            continue
        horizon = n if periodic else n - entry
        fate = DatasetFate.PENDING
        for k in range(horizon):
            loop = chain[(entry + k) % n]
            acc = loop.access_of(name)
            if acc is None:
                continue
            if acc.access is Access.WRITE:
                fate = DatasetFate.DROPPED
            else:  # READ / RW / INC observe the old value
                fate = DatasetFate.SAVED
            break
        fates[name] = fate
    return fates


def units_saved_if_entering(
    chain: list[ChainLoop], entry: int, *, periodic: bool = True
) -> int:
    """The figure's "units of data saved" column for one entry point.

    A unit is one component of one dataset (the dataset's ``dim``); pending
    datasets are counted conservatively as saved.
    """
    datasets = datasets_in_chain(chain)
    fates = classify_entry(chain, entry, periodic=periodic)
    return sum(
        datasets[name].dim
        for name, fate in fates.items()
        if fate in (DatasetFate.SAVED, DatasetFate.PENDING)
    )


@dataclass
class DecisionRow:
    """One row of the Figure-8 table."""

    index: int
    loop: str
    accesses: dict[str, str]  # dataset -> R/W/I/RW short code
    units: int


def decision_table(chain: list[ChainLoop], *, periodic: bool = True) -> list[DecisionRow]:
    """The full Figure-8 table: per loop, accesses and units-if-entering-here."""
    rows = []
    for i, loop in enumerate(chain):
        accesses = {a.dataset: a.access.short for a in loop.accesses}
        rows.append(
            DecisionRow(
                index=i + 1,
                loop=loop.name,
                accesses=accesses,
                units=units_saved_if_entering(chain, i, periodic=periodic),
            )
        )
    return rows


def format_table(chain: list[ChainLoop], *, periodic: bool = True) -> str:
    """Render the decision table as text (the benchmark prints this)."""
    datasets = list(datasets_in_chain(chain))
    rows = decision_table(chain, periodic=periodic)
    header = f"{'#':>3} {'loop':<12}" + "".join(f"{d:>10}" for d in datasets) + f"{'units':>8}"
    lines = [header, "-" * len(header)]
    for r in rows:
        cells = "".join(f"{r.accesses.get(d, ''):>10}" for d in datasets)
        lines.append(f"{r.index:>3} {r.loop:<12}{cells}{r.units:>8}")
    return "\n".join(lines)
