"""Package version, kept in sync with ``pyproject.toml``."""

__version__ = "0.1.0"
