"""Single-node runtime prediction across platforms and programming models.

A :class:`PlatformConfig` is (machine, programming model): the same machine
appears with and without vectorisation (Fig 2's "MPI" vs "MPI vectorized"),
and hybrid MPI+OpenMP pays a NUMA/locality factor relative to pure MPI —
the effect the paper measures when "the use of hybrid MPI+OpenMP does not
improve performance on a single node over MPI".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine.gpu import GpuExecutionModel
from repro.machine.roofline import RooflineModel
from repro.machine.spec import MachineSpec
from repro.perfmodel.loopmodel import LoopCharacter


@dataclass(frozen=True)
class PlatformConfig:
    """One bar of a Fig-2/Fig-3/Fig-5 style chart."""

    label: str
    machine: MachineSpec
    #: generated code uses the vector units
    vectorised: bool = True
    #: multiplicative slowdown for the programming model itself
    #: (>1: e.g. hybrid MPI+OpenMP NUMA effects, unoptimised ports;
    #:  <1: e.g. OPS's NUMA-aware OpenMP being faster than the original)
    model_factor: float = 1.0
    #: execute as a GPU (occupancy/colour/underfill corrections apply)
    gpu: bool = False


@dataclass
class PredictionRow:
    """Per-loop prediction: Table I's time and bandwidth columns."""

    loop: str
    seconds: float
    bandwidth_gbs: float


def predict_loop(cfg: PlatformConfig, ch: LoopCharacter) -> PredictionRow:
    """Predict one loop's total runtime (all invocations) on a platform."""
    if cfg.gpu:
        model = GpuExecutionModel(cfg.machine)
        per_inv = model.loop_seconds_shaped(ch.traffic, ch.gpu_shape())
    else:
        model = RooflineModel(cfg.machine, vectorised=cfg.vectorised)
        per_inv = model.loop_seconds(ch.traffic)
    per_inv *= cfg.model_factor
    total = per_inv * ch.traffic.invocations
    bw = model.effective_bytes(ch.traffic) / per_inv / 1e9 if per_inv > 0 else 0.0
    return PredictionRow(loop=ch.traffic.name, seconds=total, bandwidth_gbs=bw)


def predict_chain(
    cfg: PlatformConfig, characters: dict[str, LoopCharacter]
) -> tuple[float, list[PredictionRow]]:
    """Predict a whole application: total seconds plus per-loop rows."""
    rows = [predict_loop(cfg, ch) for ch in characters.values()]
    return sum(r.seconds for r in rows), rows


def standard_cpu_configs(machine: MachineSpec) -> list[PlatformConfig]:
    """The Fig-2 CPU programming-model ladder for one machine."""
    return [
        PlatformConfig("MPI", machine, vectorised=False),
        PlatformConfig("MPI vectorized", machine, vectorised=True),
        # hybrid pays a small NUMA/locality penalty vs pure MPI's
        # first-touch-partitioned memory (paper Section IV observation)
        PlatformConfig("MPI+OpenMP", machine, vectorised=False, model_factor=1.05),
        PlatformConfig("MPI+OpenMP vectorized", machine, vectorised=True, model_factor=1.05),
    ]
