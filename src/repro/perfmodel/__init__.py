"""Performance prediction: measured traffic -> paper-platform runtimes.

The pipeline for every evaluation figure is:

1. run the real application on the simulated substrate, collecting exact
   per-loop byte/flop counts and message volumes (:mod:`repro.common.counters`,
   :mod:`repro.simmpi`),
2. characterise each loop (:mod:`repro.perfmodel.loopmodel`),
3. convert to seconds on a catalogued machine with the roofline/GPU models
   (:mod:`repro.perfmodel.predict`),
4. extend to clusters with the scaling model (:mod:`repro.perfmodel.scaling`).

Nothing here hard-codes the paper's reported numbers; the calibrated inputs
are the published machine parameters in :mod:`repro.machine.catalog`.
"""

from repro.perfmodel.loopmodel import LoopCharacter, characterise, characterise_run
from repro.perfmodel.predict import PlatformConfig, predict_loop, predict_chain, PredictionRow
from repro.perfmodel.scaling import ScalingModel, ScalingPoint

__all__ = [
    "LoopCharacter",
    "characterise",
    "characterise_run",
    "PlatformConfig",
    "predict_loop",
    "predict_chain",
    "PredictionRow",
    "ScalingModel",
    "ScalingPoint",
]
