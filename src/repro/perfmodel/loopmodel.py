"""Loop characterisation: measured counters -> model inputs."""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.counters import LoopRecord, PerfCounters
from repro.machine.gpu import GpuLoopShape
from repro.machine.roofline import LoopTraffic


@dataclass
class LoopCharacter:
    """Everything the predictors need to know about one loop."""

    traffic: LoopTraffic
    #: thread-block colours (1 for direct loops); measured from the plan
    colours: int = 1
    #: bytes of live state per element (GPU occupancy input)
    state_bytes: int = 64
    #: elements per invocation (GPU utilisation input)
    elements: int = 1

    def gpu_shape(self) -> GpuLoopShape:
        return GpuLoopShape(
            colours=self.colours,
            state_bytes=self.state_bytes,
            elements=self.elements,
        )


def characterise(
    rec: LoopRecord,
    *,
    vectorisable: bool = True,
    divergence: float = 0.0,
    state_bytes: int | None = None,
) -> LoopCharacter:
    """Build a :class:`LoopCharacter` from one measured loop record.

    ``state_bytes`` defaults to half the loop's per-element traffic (roughly
    the operands live at once) — a loop that moves many bytes per element
    also keeps many live (the Hydra effect the paper describes: "moves many
    times more data per grid point ... the GPU kernels achieve lower
    occupancy").
    """
    traffic = LoopTraffic.from_record(rec, vectorisable=vectorisable, divergence=divergence)
    per_inv_elems = rec.iterations // max(rec.invocations, 1)
    if state_bytes is None:
        per_elem_bytes = rec.bytes_moved / max(rec.iterations, 1)
        state_bytes = int(per_elem_bytes / 2)
    return LoopCharacter(
        traffic=traffic,
        colours=max(rec.colours, 1),
        state_bytes=state_bytes,
        elements=max(per_inv_elems, 1),
    )


def characterise_run(
    counters: PerfCounters,
    *,
    kernel_info: dict[str, dict] | None = None,
) -> dict[str, LoopCharacter]:
    """Characterise every loop of a run.

    ``kernel_info`` optionally supplies per-kernel overrides:
    ``{"res_calc": {"vectorisable": False, "divergence": 0.3}}``.
    """
    info = kernel_info or {}
    out: dict[str, LoopCharacter] = {}
    for name, rec in counters.loops.items():
        kw = info.get(name, {})
        out[name] = characterise(rec, **kw)
    return out
