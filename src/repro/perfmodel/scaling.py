"""Strong- and weak-scaling prediction (Figs 4 and 6).

Node time comes from the roofline/GPU models applied to the per-node share
of the problem; communication time comes from the interconnect model fed
with halo volumes that shrink as surface-to-volume when strong scaling:

    halo elements per rank  ~  c * (elements per rank)^((d-1)/d)

The constant ``c`` and the neighbour count are *measured* from a real
partitioned run on the simulated MPI substrate, then extrapolated — the
same calibration the paper's analytic models use.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.machine.gpu import GpuExecutionModel, GpuLoopShape
from repro.machine.network import NetworkModel
from repro.machine.roofline import RooflineModel
from repro.machine.spec import InterconnectSpec, MachineSpec
from repro.perfmodel.loopmodel import LoopCharacter


@dataclass
class ScalingPoint:
    """One point of a scaling curve."""

    nodes: int
    compute_seconds: float
    comm_seconds: float

    @property
    def seconds(self) -> float:
        return self.compute_seconds + self.comm_seconds

    @property
    def comm_fraction(self) -> float:
        t = self.seconds
        return self.comm_seconds / t if t > 0 else 0.0


class ScalingModel:
    """Predicts an application's scaling curves on one cluster."""

    def __init__(
        self,
        machine: MachineSpec,
        net: InterconnectSpec,
        *,
        dim: int = 2,
        gpu: bool = False,
        vectorised: bool = True,
        neighbours: int | None = None,
        halo_coeff: float = 2.0,
        bytes_per_halo_elem: float = 64.0,
        exchanges_per_step: int = 2,
        reductions_per_step: int = 1,
    ):
        self.machine = machine
        self.net = NetworkModel(net, gpu_buffers=gpu)
        self.dim = dim
        self.gpu = gpu
        self.vectorised = vectorised
        #: face-adjacent neighbour ranks (2*dim for structured grids)
        self.neighbours = neighbours if neighbours is not None else 2 * dim
        #: halo elements per rank = halo_coeff * n_local^((d-1)/d)
        self.halo_coeff = halo_coeff
        self.bytes_per_halo_elem = bytes_per_halo_elem
        self.exchanges_per_step = exchanges_per_step
        self.reductions_per_step = reductions_per_step

    @classmethod
    def calibrate_halo(
        cls, measured_halo_elems: float, local_elems: float, dim: int
    ) -> float:
        """Back out ``halo_coeff`` from one measured partitioned run."""
        surface = local_elems ** ((dim - 1) / dim)
        return measured_halo_elems / surface if surface > 0 else 0.0

    # -- node compute time ---------------------------------------------------------

    def _node_seconds(
        self, characters: dict[str, LoopCharacter], share: float
    ) -> float:
        """Chain time for a rank executing ``share`` of each loop's elements."""
        total = 0.0
        for ch in characters.values():
            t = ch.traffic
            scaled = type(t)(
                name=t.name,
                bytes_direct=t.bytes_direct * share,
                bytes_indirect=t.bytes_indirect * share,
                flops=t.flops * share,
                vectorisable=t.vectorisable,
                divergence=t.divergence,
                invocations=t.invocations,
            )
            if self.gpu:
                model = GpuExecutionModel(self.machine)
                shape = GpuLoopShape(
                    colours=ch.colours,
                    state_bytes=ch.state_bytes,
                    elements=max(int(ch.elements * share), 1),
                )
                per_inv = model.loop_seconds_shaped(scaled, shape)
            else:
                model = RooflineModel(self.machine, vectorised=self.vectorised)
                per_inv = model.loop_seconds(scaled)
            total += per_inv * t.invocations
        return total

    # -- communication time -----------------------------------------------------------

    def _comm_seconds(self, local_elems: float, nodes: int, steps: int) -> float:
        if nodes <= 1:
            return 0.0
        halo_elems = self.halo_coeff * local_elems ** ((self.dim - 1) / self.dim)
        halo_bytes = halo_elems * self.bytes_per_halo_elem
        per_exchange = self.net.exchange_seconds(self.neighbours, halo_bytes)
        per_reduce = self.net.allreduce_seconds(nodes)
        return steps * (
            self.exchanges_per_step * per_exchange
            + self.reductions_per_step * per_reduce
        )

    # -- public curves -----------------------------------------------------------------

    def strong(
        self,
        characters: dict[str, LoopCharacter],
        total_elements: int,
        nodes_list: list[int],
        *,
        steps: int = 1,
    ) -> list[ScalingPoint]:
        """Fixed total problem, growing node counts."""
        out = []
        for nodes in nodes_list:
            share = 1.0 / nodes
            local = total_elements / nodes
            out.append(
                ScalingPoint(
                    nodes=nodes,
                    compute_seconds=self._node_seconds(characters, share),
                    comm_seconds=self._comm_seconds(local, nodes, steps),
                )
            )
        return out

    def weak(
        self,
        characters: dict[str, LoopCharacter],
        elements_per_node: int,
        nodes_list: list[int],
        *,
        steps: int = 1,
    ) -> list[ScalingPoint]:
        """Fixed per-node problem, growing node counts.

        ``characters`` must describe the *single-node* run (share=1);
        compute time is constant, communication grows only through the
        log(P) reduction term — the paper's near-flat weak-scaling curves.
        """
        out = []
        for nodes in nodes_list:
            out.append(
                ScalingPoint(
                    nodes=nodes,
                    compute_seconds=self._node_seconds(characters, 1.0),
                    comm_seconds=self._comm_seconds(elements_per_node, nodes, steps),
                )
            )
        return out

    @staticmethod
    def parallel_efficiency(points: list[ScalingPoint], *, weak: bool = False) -> list[float]:
        """Efficiency per point relative to the first point."""
        if not points:
            return []
        t0, n0 = points[0].seconds, points[0].nodes
        out = []
        for p in points:
            if weak:
                out.append(t0 / p.seconds if p.seconds > 0 else 0.0)
            else:
                ideal = t0 * n0 / p.nodes
                out.append(ideal / p.seconds if p.seconds > 0 else 0.0)
        return out
