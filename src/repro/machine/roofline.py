"""Roofline-style time prediction for a parallel loop on a machine.

The model is the one the paper itself uses to reason about Table I: a loop's
runtime is the maximum of its memory time (bytes / achievable bandwidth) and
its compute time (flops / achievable flop rate), where "achievable" is
degraded by the loop's access character:

* indirect (gather/scatter) traffic is divided by the machine's
  ``gather_efficiency``,
* unvectorisable or divergent kernels only reach ``divergence_efficiency``
  of peak (and scalar_gflops when not vectorised),
* each invocation pays the machine's launch overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.counters import LoopRecord
from repro.machine.spec import MachineSpec

_GB = 1e9


@dataclass(frozen=True)
class LoopTraffic:
    """Traffic characterisation of one loop, per invocation.

    Usually derived from a measured :class:`LoopRecord` via
    :meth:`from_record`, but benchmarks may also construct it analytically.
    """

    name: str
    bytes_direct: float
    bytes_indirect: float
    flops: float
    vectorisable: bool = True
    #: branch-divergence / irregularity factor in [0, 1]; 0 = fully regular
    divergence: float = 0.0
    invocations: int = 1
    #: unique-location portion of the indirect bytes (defaults to all of
    #: them: no cache reuse assumed unless measured)
    bytes_indirect_unique: float | None = None

    @classmethod
    def from_record(
        cls,
        rec: LoopRecord,
        *,
        vectorisable: bool = True,
        divergence: float = 0.0,
    ) -> "LoopTraffic":
        """Build traffic numbers from a measured loop record."""
        indirect = float(rec.indirect_reads + rec.indirect_writes)
        unique = float(rec.indirect_reads_unique + rec.indirect_writes_unique)
        direct = float(max(rec.bytes_moved - indirect, 0.0))
        inv = max(rec.invocations, 1)
        return cls(
            name=rec.name,
            bytes_direct=direct / inv,
            bytes_indirect=indirect / inv,
            flops=float(rec.flops) / inv,
            vectorisable=vectorisable,
            divergence=divergence,
            invocations=inv,
            bytes_indirect_unique=(unique / inv) if indirect else None,
        )

    @property
    def bytes_total(self) -> float:
        return self.bytes_direct + self.bytes_indirect


class RooflineModel:
    """Predicts loop and loop-chain runtimes on a :class:`MachineSpec`."""

    def __init__(self, machine: MachineSpec, *, vectorised: bool = True):
        self.machine = machine
        #: whether generated code for this platform uses the vector units
        self.vectorised = vectorised

    # -- single loop ---------------------------------------------------------

    def memory_seconds(self, loop: LoopTraffic) -> float:
        """Time to move the loop's traffic through main memory, one invocation.

        Re-referenced indirect bytes are served from cache at the machine's
        ``cache_reuse`` rate; only the remainder pays the DRAM trip, at the
        degraded gather bandwidth.
        """
        m = self.machine
        direct_t = loop.bytes_direct / (m.stream_bw_gbs * _GB)
        unique = (
            loop.bytes_indirect
            if loop.bytes_indirect_unique is None
            else loop.bytes_indirect_unique
        )
        rereferenced = max(loop.bytes_indirect - unique, 0.0)
        effective = unique + rereferenced * (1.0 - m.cache_reuse)
        indirect_bw = m.stream_bw_gbs * m.gather_efficiency
        indirect_t = effective / (indirect_bw * _GB)
        return direct_t + indirect_t

    def compute_seconds(self, loop: LoopTraffic) -> float:
        """Time for the loop's arithmetic, one invocation."""
        m = self.machine
        if self.vectorised and loop.vectorisable:
            rate = m.peak_gflops
        else:
            rate = m.scalar_gflops
        if loop.divergence > 0:
            eff = 1.0 - loop.divergence * (1.0 - m.divergence_efficiency)
            rate *= eff
        return loop.flops / (rate * _GB)

    def loop_seconds(self, loop: LoopTraffic) -> float:
        """Roofline time per invocation, including launch overhead."""
        body = max(self.memory_seconds(loop), self.compute_seconds(loop))
        return body + self.machine.launch_overhead_us * 1e-6

    def loop_total_seconds(self, loop: LoopTraffic) -> float:
        """Total time for all recorded invocations of the loop."""
        return self.loop_seconds(loop) * loop.invocations

    def effective_bytes(self, loop: LoopTraffic) -> float:
        """DRAM bytes actually moved: direct + unique + uncached re-references."""
        m = self.machine
        unique = (
            loop.bytes_indirect
            if loop.bytes_indirect_unique is None
            else loop.bytes_indirect_unique
        )
        rereferenced = max(loop.bytes_indirect - unique, 0.0)
        return loop.bytes_direct + unique + rereferenced * (1.0 - m.cache_reuse)

    def achieved_bandwidth_gbs(self, loop: LoopTraffic) -> float:
        """Effective GB/s the loop sustains under the model (Table I column)."""
        secs = self.loop_seconds(loop)
        if secs <= 0:
            return 0.0
        return self.effective_bytes(loop) / secs / _GB

    # -- loop chains ----------------------------------------------------------

    def chain_seconds(self, loops: list[LoopTraffic]) -> float:
        """Total runtime of a whole application loop chain."""
        return sum(self.loop_total_seconds(loop) for loop in loops)
