"""Interconnect model: time for halo exchanges and reductions.

Inputs are *measured* message counts and byte volumes from the simulated MPI
layer (:mod:`repro.simmpi`); the model turns them into seconds on a
catalogued interconnect using the standard latency + size/bandwidth form,
plus a log(P) tree factor for collectives.
"""

from __future__ import annotations

import math

from repro.machine.spec import InterconnectSpec

_GB = 1e9


class NetworkModel:
    """Predicts communication time on an :class:`InterconnectSpec`."""

    def __init__(self, net: InterconnectSpec, *, gpu_buffers: bool = False):
        self.net = net
        self.gpu_buffers = gpu_buffers

    def _per_message_latency(self) -> float:
        lat = self.net.latency_us
        if self.gpu_buffers:
            lat += self.net.gpu_staging_us
        return lat * 1e-6

    def message_seconds(self, nbytes: float) -> float:
        """Time for one point-to-point message."""
        return self._per_message_latency() + nbytes / (self.net.bandwidth_gbs * _GB)

    def exchange_seconds(self, nmessages: int, total_bytes: float) -> float:
        """Time for one halo exchange phase on the critical rank.

        Messages to distinct neighbours overlap on the NIC, so the cost is
        one latency per message serialised on injection plus the byte volume
        through one link.
        """
        if nmessages <= 0:
            return 0.0
        return (
            nmessages * self._per_message_latency()
            + total_bytes / (self.net.bandwidth_gbs * _GB)
        )

    def allreduce_seconds(self, nranks: int, nbytes: float = 8.0) -> float:
        """Tree allreduce: 2*log2(P) latency-dominated steps."""
        if nranks <= 1:
            return 0.0
        steps = 2.0 * math.ceil(math.log2(nranks))
        return steps * self.message_seconds(nbytes)
