"""Catalog of the machines used in the paper's evaluation.

All parameters are published figures for the parts (STREAM-class achievable
bandwidth, peak DP GFLOP/s); the behavioural coefficients
(``gather_efficiency``, ``divergence_efficiency``) are calibrated once
against the paper's Table I bandwidth discussion — e.g. res_calc dropping to
~25 GB/s on the Phi — and then reused unchanged for every experiment.
"""

from __future__ import annotations

from repro.machine.spec import InterconnectSpec, MachineSpec

# -- single-node processors (Figs 2, 3, 5; Table I) ---------------------------

#: dual-socket Ivy Bridge node used for Airfoil (Fig 2, Table I)
XEON_E5_2697V2 = MachineSpec(
    name="Xeon E5-2697 v2 (2x12c)",
    kind="cpu",
    cores=24,
    stream_bw_gbs=85.0,
    peak_gflops=518.0,
    scalar_gflops=130.0,
    vector_width=4,
    gather_efficiency=0.85,
    cache_reuse=1.0,
    divergence_efficiency=0.9,
    llc_mib=2 * 30.0,
    launch_overhead_us=2.0,
)

#: dual-socket Sandy Bridge node used for Hydra single-node runs (Fig 3)
XEON_E5_2640 = MachineSpec(
    name="Xeon E5-2640 (2x6c)",
    kind="cpu",
    cores=12,
    stream_bw_gbs=55.0,
    peak_gflops=240.0,
    scalar_gflops=60.0,
    vector_width=4,
    gather_efficiency=0.85,
    cache_reuse=1.0,
    divergence_efficiency=0.9,
    llc_mib=2 * 15.0,
    launch_overhead_us=2.0,
)

#: Knights Corner coprocessor (Fig 2, Table I).  Wide vectors make gather /
#: scatter very costly: indirect loops fall far below STREAM bandwidth.
XEON_PHI_5110P = MachineSpec(
    name="Xeon Phi 5110P",
    kind="manycore",
    cores=60,
    stream_bw_gbs=110.0,
    peak_gflops=1010.0,
    scalar_gflops=60.0,
    vector_width=8,
    gather_efficiency=0.25,
    cache_reuse=0.85,
    divergence_efficiency=0.5,
    llc_mib=30.0,
    launch_overhead_us=10.0,
)

#: NVIDIA K40 (Figs 2, 3, 5; Table I)
NVIDIA_K40 = MachineSpec(
    name="NVIDIA K40",
    kind="gpu",
    cores=2880,
    stream_bw_gbs=235.0,
    peak_gflops=1430.0,
    scalar_gflops=1430.0,
    vector_width=32,
    gather_efficiency=0.3,
    cache_reuse=0.95,
    divergence_efficiency=0.6,
    llc_mib=1.5,
    launch_overhead_us=8.0,
)

#: NVIDIA K20X as in Titan's XK7 nodes (Fig 6)
NVIDIA_K20X = MachineSpec(
    name="NVIDIA K20X",
    kind="gpu",
    cores=2688,
    stream_bw_gbs=200.0,
    peak_gflops=1310.0,
    scalar_gflops=1310.0,
    vector_width=32,
    gather_efficiency=0.3,
    cache_reuse=0.95,
    divergence_efficiency=0.6,
    llc_mib=1.5,
    launch_overhead_us=8.0,
)

#: NVIDIA K20m in the Jade cluster (Hydra GPU scaling, Fig 4)
NVIDIA_K20M = MachineSpec(
    name="NVIDIA K20m",
    kind="gpu",
    cores=2496,
    stream_bw_gbs=175.0,
    peak_gflops=1170.0,
    scalar_gflops=1170.0,
    vector_width=32,
    gather_efficiency=0.3,
    cache_reuse=0.95,
    divergence_efficiency=0.6,
    llc_mib=1.25,
    launch_overhead_us=8.0,
)

#: NVIDIA M2090 in the Emerald cluster (Airfoil GPU scaling, Fig 4)
NVIDIA_M2090 = MachineSpec(
    name="NVIDIA M2090",
    kind="gpu",
    cores=512,
    stream_bw_gbs=140.0,
    peak_gflops=665.0,
    scalar_gflops=665.0,
    vector_width=32,
    gather_efficiency=0.3,
    cache_reuse=0.85,
    divergence_efficiency=0.6,
    llc_mib=0.75,
    launch_overhead_us=10.0,
)

#: HECToR phase-3 Cray XE6 node: dual AMD Interlagos 16-core (Fig 4)
HECTOR_XE6_NODE = MachineSpec(
    name="HECToR XE6 node (2x16c Interlagos)",
    kind="cpu",
    cores=32,
    stream_bw_gbs=70.0,
    peak_gflops=295.0,
    scalar_gflops=74.0,
    vector_width=4,
    gather_efficiency=0.8,
    cache_reuse=0.95,
    divergence_efficiency=0.9,
    llc_mib=2 * 16.0,
    launch_overhead_us=2.0,
)

#: Titan XK7 CPU side: one AMD Interlagos 16-core per node (Fig 6)
TITAN_XK7_CPU = MachineSpec(
    name="Titan XK7 CPU (16c Interlagos)",
    kind="cpu",
    cores=16,
    stream_bw_gbs=35.0,
    peak_gflops=147.0,
    scalar_gflops=37.0,
    vector_width=4,
    gather_efficiency=0.8,
    cache_reuse=0.95,
    divergence_efficiency=0.9,
    llc_mib=16.0,
    launch_overhead_us=2.0,
)

# -- interconnects -------------------------------------------------------------

#: Cray Gemini (HECToR XE6 / Titan XK7)
GEMINI = InterconnectSpec(name="Cray Gemini", latency_us=1.5, bandwidth_gbs=5.0)

#: QDR InfiniBand (Emerald / Jade GPU clusters); GPU buffers staged via host
QDR_IB = InterconnectSpec(
    name="QDR InfiniBand", latency_us=2.0, bandwidth_gbs=3.2, gpu_staging_us=15.0
)


CATALOG: dict[str, MachineSpec] = {
    spec.name: spec
    for spec in (
        XEON_E5_2697V2,
        XEON_E5_2640,
        XEON_PHI_5110P,
        NVIDIA_K40,
        NVIDIA_K20X,
        NVIDIA_K20M,
        NVIDIA_M2090,
        HECTOR_XE6_NODE,
        TITAN_XK7_CPU,
    )
}


def get_machine(name: str) -> MachineSpec:
    """Look a machine up by its catalog name."""
    try:
        return CATALOG[name]
    except KeyError:
        raise KeyError(
            f"unknown machine {name!r}; available: {sorted(CATALOG)}"
        ) from None
