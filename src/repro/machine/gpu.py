"""GPU execution model refinements on top of the roofline.

Captures the paper's qualitative GPU observations:

* colored (indirect-increment) execution serialises colours inside a thread
  block, costing a factor that grows with the number of colours;
* kernels with many bytes of state per thread (Hydra-like) achieve lower
  occupancy, degrading achievable bandwidth;
* small per-GPU workloads cannot fill the device, which is why GPU strong
  scaling trails off much faster than CPU (Figs 4 and 6).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.roofline import LoopTraffic, RooflineModel
from repro.machine.spec import MachineSpec


@dataclass(frozen=True)
class GpuLoopShape:
    """Extra GPU-relevant shape of a loop."""

    #: thread-block colours needed for indirect increments (1 = none)
    colours: int = 1
    #: bytes of live state per element (registers/shared-memory pressure)
    state_bytes: int = 64
    #: elements executed per launch (workload size on this device)
    elements: int = 1_000_000


class GpuExecutionModel(RooflineModel):
    """Roofline plus occupancy/colouring/underfill corrections."""

    #: elements needed to fill the device to full bandwidth efficiency
    #: (several hundred per core: enough warps in flight to cover DRAM
    #: latency — a K40 needs ~3/4M elements before streaming saturates)
    SATURATION_ELEMENTS_PER_CORE = 256

    #: register/shared-state budget per thread before occupancy degrades
    STATE_BUDGET_BYTES = 160

    def __init__(self, machine: MachineSpec):
        if not machine.is_gpu:
            raise ValueError(f"{machine.name} is not a GPU")
        super().__init__(machine, vectorised=True)

    def occupancy(self, shape: GpuLoopShape) -> float:
        """Occupancy factor in (0, 1] from per-thread state pressure."""
        if shape.state_bytes <= self.STATE_BUDGET_BYTES:
            return 1.0
        return max(self.STATE_BUDGET_BYTES / shape.state_bytes, 0.25)

    def utilisation(self, shape: GpuLoopShape) -> float:
        """Device-fill factor in (0, 1] for a given per-launch workload."""
        saturation = self.machine.cores * self.SATURATION_ELEMENTS_PER_CORE
        if shape.elements >= saturation:
            return 1.0
        return max(shape.elements / saturation, 0.02)

    def colour_penalty(self, shape: GpuLoopShape) -> float:
        """Multiplier >= 1 for colour-serialised execution within blocks."""
        if shape.colours <= 1:
            return 1.0
        # each extra colour serialises a fraction of the block's work
        return 1.0 + 0.08 * (shape.colours - 1)

    def loop_seconds_shaped(self, loop: LoopTraffic, shape: GpuLoopShape) -> float:
        """Per-invocation time including occupancy/underfill/colour effects."""
        base = max(self.memory_seconds(loop), self.compute_seconds(loop))
        eff = self.occupancy(shape) * self.utilisation(shape)
        body = base * self.colour_penalty(shape) / eff
        return body + self.machine.launch_overhead_us * 1e-6
