"""Machine catalog and analytic performance models.

The paper's evaluation runs on hardware we do not have (Xeon E5-2697v2,
Xeon Phi 5110P, NVIDIA K40, HECToR XE6 nodes, Titan XK7 nodes, M2090/K20m
GPU clusters).  This package holds their published parameters and the
roofline-style models that convert *measured* per-loop byte/flop counts
(from :mod:`repro.common.counters`) into predicted runtimes, so the shape of
every figure can be regenerated.
"""

from repro.machine.spec import MachineSpec, InterconnectSpec
from repro.machine.catalog import (
    CATALOG,
    get_machine,
    XEON_E5_2697V2,
    XEON_E5_2640,
    XEON_PHI_5110P,
    NVIDIA_K40,
    NVIDIA_K20X,
    NVIDIA_K20M,
    NVIDIA_M2090,
    HECTOR_XE6_NODE,
    TITAN_XK7_CPU,
)
from repro.machine.roofline import RooflineModel, LoopTraffic
from repro.machine.gpu import GpuExecutionModel
from repro.machine.network import NetworkModel

__all__ = [
    "MachineSpec",
    "InterconnectSpec",
    "CATALOG",
    "get_machine",
    "XEON_E5_2697V2",
    "XEON_E5_2640",
    "XEON_PHI_5110P",
    "NVIDIA_K40",
    "NVIDIA_K20X",
    "NVIDIA_K20M",
    "NVIDIA_M2090",
    "HECTOR_XE6_NODE",
    "TITAN_XK7_CPU",
    "RooflineModel",
    "LoopTraffic",
    "GpuExecutionModel",
    "NetworkModel",
]
