"""Hardware specification dataclasses."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MachineSpec:
    """Published parameters of one processor (CPU socket pair, GPU or Phi).

    Bandwidth figures are *achievable* STREAM-class numbers, not theoretical
    peaks, because the roofline model divides real traffic by them.
    """

    name: str
    kind: str  # "cpu", "gpu" or "manycore"
    cores: int
    #: achievable main-memory bandwidth, GB/s
    stream_bw_gbs: float
    #: peak double-precision GFLOP/s (vectorised)
    peak_gflops: float
    #: scalar (non-vectorised) double-precision GFLOP/s
    scalar_gflops: float
    #: double-precision vector width in lanes (1 = scalar ISA)
    vector_width: int = 1
    #: effective bandwidth multiplier for gather/scatter (indirect) access;
    #: 1.0 = indirections are free, smaller = costlier.  CPUs with big caches
    #: tolerate indirection well; wide-vector machines (Phi) and GPUs without
    #: staging suffer.
    gather_efficiency: float = 1.0
    #: fraction of *re-referenced* indirect bytes served from cache rather
    #: than DRAM (a renumbered mesh re-reads each cell's data from cache for
    #: its ~4 incident edges).  1.0 = only unique bytes reach memory.
    cache_reuse: float = 1.0
    #: fraction of peak usable when the kernel has heavy branch divergence
    #: (GPUs) or unvectorisable bodies (wide-vector CPUs)
    divergence_efficiency: float = 1.0
    #: last-level cache per socket, MiB (locality model input)
    llc_mib: float = 0.0
    #: per-kernel-launch / per-loop fixed overhead, microseconds
    launch_overhead_us: float = 0.0

    @property
    def is_gpu(self) -> bool:
        return self.kind == "gpu"


@dataclass(frozen=True)
class InterconnectSpec:
    """Network parameters for a cluster."""

    name: str
    #: per-message latency, microseconds
    latency_us: float
    #: per-link bandwidth, GB/s
    bandwidth_gbs: float
    #: extra latency for GPU buffers (device-host staging), microseconds
    gpu_staging_us: float = 0.0
