"""Code generators: one module per target language/style."""

from repro.translator.codegen.cuda_c import generate_cuda, MemoryStrategy
from repro.translator.codegen.python_host import generate_python_module
from repro.translator.codegen.openmp_c import generate_openmp_c
from repro.translator.codegen.opencl_c import generate_opencl_kernel, generate_opencl_host

__all__ = [
    "generate_cuda",
    "MemoryStrategy",
    "generate_python_module",
    "generate_openmp_c",
    "generate_opencl_kernel",
    "generate_opencl_host",
]

from repro.translator.codegen.mpi_c import generate_mpi_host, communication_plan

__all__ += ["generate_mpi_host", "communication_plan"]
