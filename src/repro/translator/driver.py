"""Translator driver: application file in, implementation files out.

Implements the paper's Fig 1 build flow: parse the application, then for
every parallel loop and every requested target emit one implementation file
into the output directory (``<loop>_<target>.py`` / ``.cu`` / ``.c``), plus
a manifest describing what was generated.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.common.errors import TranslatorError
from repro.translator.codegen.cuda_c import CudaDatSpec, MemoryStrategy, generate_cuda
from repro.translator.codegen.mpi_c import generate_mpi_host
from repro.translator.codegen.opencl_c import generate_opencl_host, generate_opencl_kernel
from repro.translator.codegen.openmp_c import generate_openmp_c
from repro.translator.codegen.python_host import generate_python_module
from repro.translator.frontend import LoopSite, parse_app_file

_TARGETS = ("python", "openmp", "cuda", "opencl", "mpi")


@dataclass
class TranslationResult:
    """What one translator run produced."""

    sites: list[LoopSite]
    files: list[Path] = field(default_factory=list)

    @property
    def loops(self) -> list[str]:
        return [s.kernel for s in self.sites]


def _default_dats(site: LoopSite) -> list[CudaDatSpec]:
    """Without live dat objects, assume dim-1 doubles for the CUDA text."""
    return [CudaDatSpec(name=f"arg{i}", dim=1) for i in range(len(site.args))]


def lint_gate(app_path: str | Path, baseline: str | Path | None = None) -> None:
    """Refuse translation when the static analyser finds errors.

    Runs both lint levels over the application and raises
    :class:`TranslatorError` listing every non-baselined error-severity
    finding (mis-declared descriptors would be baked into the generated
    halo/colouring/checkpoint logic).  Unliftable call sites (OPL900) are
    also fatal in strict mode: a loop the frontend cannot see would be
    silently missing from the generated schedule.
    """
    from repro.lint.baseline import apply_baseline, load_baseline
    from repro.lint.cli import lint_path
    from repro.lint.diagnostics import Severity

    result = lint_path(Path(app_path))
    if baseline is not None:
        apply_baseline(result, load_baseline(baseline))
    fatal = [
        d for d in result.active(Severity.WARNING)
        if d.severity is Severity.ERROR or d.code == "OPL900"
    ]
    if fatal:
        listing = "\n".join(f"  {d.format(with_hint=False)}" for d in fatal)
        raise TranslatorError(
            f"strict mode: {len(fatal)} lint finding(s) block translation "
            f"of {app_path}:\n{listing}"
        )


def _collect_certificates(app_path: str | Path) -> dict:
    """Kernel certificates for the manifest, best-effort.

    A kernel whose certificate is not ``translatable`` keeps the
    interpreted reference path; native codegen must consult this section
    before claiming a loop.  Lint failures degrade to an empty section —
    the manifest documents proofs, it does not gate generation here
    (``strict=True`` already gates on findings).
    """
    from repro.lint.cli import lint_path

    try:
        result = lint_path(Path(app_path))
    except Exception:
        return {}
    return {
        name: cert.to_dict()
        for name, cert in sorted(result.certificates.items())
    }


def translate_app(
    app_path: str | Path,
    out_dir: str | Path,
    targets: tuple[str, ...] = _TARGETS,
    cuda_strategy: MemoryStrategy = MemoryStrategy.NOSOA,
    strict: bool = False,
    baseline: str | Path | None = None,
) -> TranslationResult:
    """Translate one application file for the requested targets.

    With ``strict=True`` the static analyser runs first and any
    non-baselined error-severity finding aborts codegen."""
    for t in targets:
        if t not in _TARGETS:
            raise TranslatorError(f"unknown target {t!r}; available: {_TARGETS}")

    if strict:
        lint_gate(app_path, baseline)

    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    sites = parse_app_file(app_path)
    result = TranslationResult(sites=sites)

    for site in sites:
        stem = f"{site.kernel}".replace(".", "_")
        if "python" in targets:
            p = out / f"{stem}_kernel.py"
            p.write_text(generate_python_module(site))
            result.files.append(p)
        if "openmp" in targets:
            p = out / f"{stem}_omp.c"
            p.write_text(generate_openmp_c(site))
            result.files.append(p)
        if "cuda" in targets:
            p = out / f"{stem}_kernel.cu"
            p.write_text(generate_cuda(site, _default_dats(site), cuda_strategy))
            result.files.append(p)
        if "mpi" in targets:
            p = out / f"{stem}_mpi.c"
            p.write_text(generate_mpi_host(site))
            result.files.append(p)
        if "opencl" in targets:
            p = out / f"{stem}_kernel.cl"
            p.write_text(generate_opencl_kernel(site, _default_dats(site), cuda_strategy))
            result.files.append(p)
            p = out / f"{stem}_opencl_host.c"
            p.write_text(generate_opencl_host(site))
            result.files.append(p)

    certificates = _collect_certificates(app_path)

    manifest = {
        "application": str(app_path),
        "targets": list(targets),
        "certificates": certificates,
        "loops": [
            {
                "kernel": s.kernel,
                "iterset": s.iterset,
                "line": s.lineno,
                "api": s.api,
                "args": [
                    {"dat": a.dat, "access": a.access, "map": a.map, "idx": a.idx}
                    for a in s.args
                ],
            }
            for s in sites
        ],
        "files": [str(f) for f in result.files],
    }
    mpath = out / "translation_manifest.json"
    mpath.write_text(json.dumps(manifest, indent=2))
    result.files.append(mpath)
    return result
