"""``python -m repro.translator``: source-to-source translation CLI.

Mirrors the paper's Fig 1 build step.  ``--lint`` (or ``--strict``) runs
the :mod:`repro.lint` static analyser first and refuses to generate code
when it reports non-baselined error-severity findings or unliftable loop
call sites.
"""

from __future__ import annotations

import argparse
import sys

from repro.common.errors import TranslatorError
from repro.translator.codegen.cuda_c import MemoryStrategy
from repro.translator.driver import _TARGETS, translate_app


def main(argv: list[str] | None = None) -> int:
    p = argparse.ArgumentParser(
        prog="python -m repro.translator",
        description="Translate an application file into per-loop "
                    "implementation files.",
    )
    p.add_argument("app", help="application source file (.py)")
    p.add_argument("out", help="output directory for generated files")
    p.add_argument("-t", "--target", action="append", choices=_TARGETS,
                   metavar="TARGET", dest="targets",
                   help=f"generate only these targets (default: all of "
                        f"{', '.join(_TARGETS)})")
    p.add_argument("--cuda-strategy",
                   choices=[m.name.lower() for m in MemoryStrategy],
                   default=MemoryStrategy.NOSOA.name.lower(),
                   help="CUDA global-memory layout strategy")
    p.add_argument("--lint", "--strict", action="store_true", dest="strict",
                   help="run the repro.lint static analyser first and "
                        "refuse codegen on error-severity findings")
    p.add_argument("--baseline", metavar="FILE",
                   help="lint baseline file (used with --lint)")
    args = p.parse_args(argv)

    try:
        result = translate_app(
            args.app,
            args.out,
            targets=tuple(args.targets) if args.targets else _TARGETS,
            cuda_strategy=MemoryStrategy[args.cuda_strategy.upper()],
            strict=args.strict,
            baseline=args.baseline,
        )
    except TranslatorError as exc:
        print(f"repro.translator: {exc}", file=sys.stderr)
        return 1
    print(
        f"translated {len(result.sites)} loop(s) into "
        f"{len(result.files)} file(s) under {args.out}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
