"""Source-to-source translation (paper Section II-B, Fig 1).

OP2's and OPS's translators are Python programs that parse the high-level
application and emit per-loop, per-target implementation files; this package
is that translator:

* :mod:`repro.translator.kernelvec` — transforms an elementwise user kernel
  (scalar indexing, math calls, ternaries) into a vectorised kernel over
  gathered arrays.  This is the generator behind every array backend.
* :mod:`repro.translator.frontend` — finds ``par_loop`` call sites in an
  application source file and lifts them into a loop IR.
* :mod:`repro.translator.codegen` — emits human-readable target code from
  the IR: executable Python modules, and CUDA-C text demonstrating the
  AoS / SoA / staged memory strategies of paper Fig 7.
"""

from repro.translator.kernelvec import vectorise_kernel, GeneratedKernel
from repro.translator.frontend import parse_app_source, LoopSite
from repro.translator.driver import translate_app

__all__ = [
    "vectorise_kernel",
    "GeneratedKernel",
    "parse_app_source",
    "LoopSite",
    "translate_app",
]
