"""Translator frontend: find parallel-loop call sites in application source.

Mirrors the paper's Fig 1 flow: the application, written against the
high-level API, "is then parsed by a python source-to-source translator".
We walk the application module's AST and lift every ``par_loop(...)`` /
``op2.par_loop(...)`` / ``ops.par_loop(...)`` call into a :class:`LoopSite`
record: the kernel name, the iteration space expression and one
:class:`ArgSite` per argument with its dat/map/index/access text.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.common.errors import TranslatorError

_ACCESS_NAMES = {"READ", "WRITE", "RW", "INC", "MIN", "MAX"}


@dataclass
class ArgSite:
    """One argument of a lifted loop call, as source text fragments."""

    dat: str
    access: str
    map: str | None = None
    idx: str | None = None
    is_global: bool = False

    @property
    def is_indirect(self) -> bool:
        return self.map is not None


@dataclass
class LoopSite:
    """One ``par_loop`` call site lifted from the application."""

    kernel: str
    iterset: str
    args: list[ArgSite] = field(default_factory=list)
    lineno: int = 0
    api: str = "op2"  # "op2" or "ops"

    @property
    def has_indirection(self) -> bool:
        return any(a.is_indirect for a in self.args)


def _access_of(node: ast.expr) -> str | None:
    """Extract an access-mode name from e.g. ``op2.READ`` or ``READ``."""
    if isinstance(node, ast.Attribute) and node.attr in _ACCESS_NAMES:
        return node.attr
    if isinstance(node, ast.Name) and node.id in _ACCESS_NAMES:
        return node.id
    return None


def _parse_arg(node: ast.expr) -> ArgSite | None:
    """Parse one loop argument expression: ``dat(ACCESS[, map, idx])``."""
    if not isinstance(node, ast.Call):
        return None
    dat_txt = ast.unparse(node.func)
    if not node.args:
        return None
    access = _access_of(node.args[0])
    if access is None:
        return None
    map_txt = idx_txt = None
    if len(node.args) >= 2:
        map_txt = ast.unparse(node.args[1])
    if len(node.args) >= 3:
        idx_txt = ast.unparse(node.args[2])
    return ArgSite(dat=dat_txt, access=access, map=map_txt, idx=idx_txt)


def _is_par_loop(call: ast.Call) -> str | None:
    """Return 'op2'/'ops' if the call is a parallel loop, else None."""
    f = call.func
    if isinstance(f, ast.Attribute) and f.attr == "par_loop":
        if isinstance(f.value, ast.Name) and f.value.id in ("op2", "ops"):
            return f.value.id
        return "op2"
    if isinstance(f, ast.Name) and f.id in ("par_loop", "op_par_loop", "ops_par_loop"):
        return "ops" if f.id.startswith("ops") else "op2"
    return None


def parse_app_source(source: str, filename: str = "<app>") -> list[LoopSite]:
    """Lift every parallel-loop call site from application source text."""
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        raise TranslatorError(f"cannot parse application {filename}: {exc}") from exc

    sites: list[LoopSite] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        api = _is_par_loop(node)
        if api is None:
            continue
        if len(node.args) < 2:
            raise TranslatorError(
                f"{filename}:{node.lineno}: par_loop needs a kernel and an iteration set"
            )
        kernel_txt = ast.unparse(node.args[0])
        iterset_txt = ast.unparse(node.args[1])
        site = LoopSite(
            kernel=kernel_txt,
            iterset=iterset_txt,
            lineno=node.lineno,
            api=api,
        )
        for arg_node in node.args[2:]:
            arg = _parse_arg(arg_node)
            if arg is not None:
                site.args.append(arg)
        sites.append(site)
    return sites


def parse_app_file(path: str | Path) -> list[LoopSite]:
    """Lift loop sites from an application file on disk."""
    p = Path(path)
    return parse_app_source(p.read_text(), filename=str(p))
