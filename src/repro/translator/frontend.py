"""Translator frontend: find parallel-loop call sites in application source.

Mirrors the paper's Fig 1 flow: the application, written against the
high-level API, "is then parsed by a python source-to-source translator".
We walk the application module's AST and lift every ``par_loop(...)`` /
``op2.par_loop(...)`` / ``ops.par_loop(...)`` call into a :class:`LoopSite`
record: the kernel name, the iteration space expression and one
:class:`ArgSite` per argument with its dat/map/index/access text.

Beyond the basic form, the lifter understands the idioms the bundled apps
actually use:

* module aliases (``import repro.op2 as o2``; ``from repro import ops as o``),
* keyword arguments (``kernel=``, ``iterset=``, ``name=``, ``backend=``),
* the distributed call shape ``rm.par_loop(comm, kernel, ...)`` (the
  leading communicator is skipped),
* OPS calls ``ops.par_loop(kernel, block, ranges, *descriptors)`` — the
  range expression is lifted into :attr:`LoopSite.ranges`,
* *loop wrappers*: a method whose body forwards its ``*args`` to a
  ``par_loop`` (CloverLeaf's ``self._loop``) is detected and its call
  sites are lifted as loops themselves,
* non-descriptor positional arguments (OPS reduction handles) are kept as
  raw text in :attr:`LoopSite.raw_args` for the static analyser.

Call sites that *look* like parallel loops but cannot be lifted (starred
argument lists, ``**kwargs``, missing operands) are no longer silently
dropped from the chain: :func:`parse_app_full` records them as
:class:`UnliftableSite` entries (diagnostic code OPL900), and the strict
translation path turns them into :class:`TranslatorError`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.common.errors import TranslatorError

_ACCESS_NAMES = {"READ", "WRITE", "RW", "INC", "MIN", "MAX"}

#: names accepted as a bare par_loop call
_BARE_LOOP_NAMES = {"par_loop": "op2", "op_par_loop": "op2", "ops_par_loop": "ops"}


@dataclass
class ArgSite:
    """One argument of a lifted loop call, as source text fragments."""

    dat: str
    access: str
    map: str | None = None
    idx: str | None = None
    is_global: bool = False
    stencil: str | None = None  # OPS: declared stencil expression text
    lineno: int = 0

    @property
    def is_indirect(self) -> bool:
        return self.map is not None


@dataclass
class RawArg:
    """One descriptor-position argument, parsed when possible.

    ``arg`` is ``None`` for expressions that are not ``dat(ACCESS, ...)``
    descriptors — bare reduction handles, misplaced operands — which the
    static analyser resolves (or reports) with module context the frontend
    does not have.
    """

    text: str
    lineno: int
    arg: ArgSite | None = None


@dataclass
class LoopSite:
    """One ``par_loop`` call site lifted from the application."""

    kernel: str
    iterset: str
    args: list[ArgSite] = field(default_factory=list)
    lineno: int = 0
    api: str = "op2"  # "op2" or "ops"
    ranges: str | None = None  # OPS: iteration-range expression text
    name_hint: str | None = None  # the name= keyword, when a string literal
    enclosing: str = "<module>"  # dotted path of the containing function
    in_loop: bool = False  # lexically inside a for/while
    raw_args: list[RawArg] = field(default_factory=list)

    @property
    def has_indirection(self) -> bool:
        return any(a.is_indirect for a in self.args)

    @property
    def display_name(self) -> str:
        return self.name_hint or self.kernel


@dataclass
class UnliftableSite:
    """A par_loop-shaped call the frontend could not lift (OPL900)."""

    lineno: int
    reason: str
    enclosing: str = "<module>"
    code: str = "OPL900"


@dataclass
class ParseResult:
    """Everything one frontend pass found in an application module."""

    sites: list[LoopSite] = field(default_factory=list)
    unliftable: list[UnliftableSite] = field(default_factory=list)
    filename: str = "<app>"


def _access_of(node: ast.expr) -> str | None:
    """Extract an access-mode name from e.g. ``op2.READ`` or ``READ``."""
    if isinstance(node, ast.Attribute) and node.attr in _ACCESS_NAMES:
        return node.attr
    if isinstance(node, ast.Name) and node.id in _ACCESS_NAMES:
        return node.id
    return None


def _parse_arg(node: ast.expr, api: str = "op2") -> ArgSite | None:
    """Parse one loop argument expression: ``dat(ACCESS[, map, idx])``."""
    if not isinstance(node, ast.Call):
        return None
    dat_txt = ast.unparse(node.func)
    if not node.args:
        return None
    access = _access_of(node.args[0])
    if access is None:
        return None
    map_txt = idx_txt = stencil_txt = None
    if len(node.args) >= 2:
        map_txt = ast.unparse(node.args[1])
        if api == "ops":
            stencil_txt = map_txt
    if len(node.args) >= 3:
        idx_txt = ast.unparse(node.args[2])
    return ArgSite(
        dat=dat_txt, access=access, map=map_txt, idx=idx_txt,
        stencil=stencil_txt, lineno=getattr(node, "lineno", 0),
    )


def module_aliases(tree: ast.AST) -> dict[str, str]:
    """Local names that refer to the op2/ops API modules.

    Maps e.g. ``{"o2": "op2"}`` for ``import repro.op2 as o2`` and
    ``{"o": "ops"}`` for ``from repro import ops as o``; the canonical
    spellings are always present.
    """
    aliases = {"op2": "op2", "ops": "ops", "repro.op2": "op2", "repro.ops": "ops"}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                if a.name in ("repro.op2", "repro.ops"):
                    short = a.name.rsplit(".", 1)[-1]
                    aliases[a.asname or a.name] = short
        elif isinstance(node, ast.ImportFrom):
            if (node.module or "") == "repro":
                for a in node.names:
                    if a.name in ("op2", "ops"):
                        aliases[a.asname or a.name] = a.name
    return aliases


def _classify_par_loop(
    call: ast.Call, aliases: dict[str, str]
) -> tuple[str | None, bool]:
    """(api, known) if the call is a parallel loop, else (None, False).

    ``known`` is True when the api came from a recognised module alias
    rather than the generic ``<anything>.par_loop`` fallback.
    """
    f = call.func
    if isinstance(f, ast.Attribute) and f.attr == "par_loop":
        base = ast.unparse(f.value)
        if base in aliases:
            return aliases[base], True
        return "op2", False
    if isinstance(f, ast.Name) and f.id in _BARE_LOOP_NAMES:
        return _BARE_LOOP_NAMES[f.id], True
    return None, False


def _is_comm_like(node: ast.expr) -> bool:
    """True for the leading communicator of distributed par_loop forms."""
    txt = ast.unparse(node)
    return txt == "comm" or txt.endswith(".comm")


@dataclass
class _Wrapper:
    """A detected loop-forwarding method (e.g. CloverLeaf's ``_loop``).

    ``roles`` maps a role name ("kernel", "iterset", "ranges") to the
    call-site positional index of the wrapper parameter carrying it;
    ``fixed`` maps a role to a constant source text the wrapper supplies
    itself (e.g. the block ``self.st.block``).  Descriptors start at
    ``desc_start``.
    """

    name: str
    api: str
    api_known: bool
    roles: dict[str, int] = field(default_factory=dict)
    fixed: dict[str, str] = field(default_factory=dict)
    desc_start: int = 0


def _role_names(api: str) -> list[str]:
    return ["kernel", "iterset"] if api == "op2" else ["kernel", "iterset", "ranges"]


def _detect_wrappers(
    tree: ast.AST, aliases: dict[str, str]
) -> tuple[dict[str, _Wrapper], set[int]]:
    """Find functions that forward ``*args`` into a par_loop call.

    Returns the wrappers by name plus the AST ids of their internal
    forwarding calls (excluded from direct lifting).
    """
    wrappers: dict[str, _Wrapper] = {}
    internal: set[int] = set()
    for fn in ast.walk(tree):
        if not isinstance(fn, ast.FunctionDef) or fn.args.vararg is None:
            continue
        vararg = fn.args.vararg.arg
        for call in ast.walk(fn):
            if not isinstance(call, ast.Call):
                continue
            api, known = _classify_par_loop(call, aliases)
            if api is None:
                continue
            if not any(
                isinstance(a, ast.Starred)
                and isinstance(a.value, ast.Name)
                and a.value.id == vararg
                for a in call.args
            ):
                continue
            internal.add(id(call))
            pos = [a for a in call.args if not isinstance(a, ast.Starred)]
            if pos and _is_comm_like(pos[0]):
                pos = pos[1:]
            params = [a.arg for a in fn.args.posonlyargs + fn.args.args]
            if params and params[0] == "self":
                params = params[1:]
            w = _Wrapper(name=fn.name, api=api, api_known=known,
                         desc_start=len(params))
            for role, node in zip(_role_names(api), pos):
                if isinstance(node, ast.Name) and node.id in params:
                    w.roles[role] = params.index(node.id)
                else:
                    w.fixed[role] = ast.unparse(node)
            prev = wrappers.get(fn.name)
            # an api-known definition wins over a generic override
            if prev is None or (known and not prev.api_known):
                wrappers[fn.name] = w
    return wrappers, internal


def _is_wrapper_call(call: ast.Call, wrappers: dict[str, _Wrapper]) -> _Wrapper | None:
    f = call.func
    if isinstance(f, ast.Attribute) and f.attr in wrappers:
        return wrappers[f.attr]
    if isinstance(f, ast.Name) and f.id in wrappers:
        return wrappers[f.id]
    return None


def _lift_call(
    call: ast.Call,
    api: str,
    enclosing: str,
    in_loop: bool,
    result: ParseResult,
) -> None:
    """Lift one direct par_loop call into a LoopSite (or an OPL900 record)."""
    kw = {k.arg: k.value for k in call.keywords if k.arg is not None}
    if any(k.arg is None for k in call.keywords):
        result.unliftable.append(UnliftableSite(
            call.lineno, "par_loop called with **kwargs; argument list is "
            "not statically known", enclosing))
        return
    pos = list(call.args)
    if pos and not isinstance(pos[0], ast.Starred) and _is_comm_like(pos[0]):
        pos = pos[1:]

    roles = _role_names(api)
    operands: dict[str, ast.expr] = {}
    for i, role in enumerate(roles):
        if i < len(pos):
            operands[role] = pos[i]
        elif role in kw:
            operands[role] = kw[role]
        elif role == "iterset" and api == "ops" and "block" in kw:
            operands[role] = kw["block"]
    missing = [r for r in roles if r not in operands]
    if missing:
        raise TranslatorError(
            f"{result.filename}:{call.lineno}: par_loop needs a kernel and "
            f"an iteration set (missing: {', '.join(missing)})"
        )
    starred = [r for r, n in operands.items() if isinstance(n, ast.Starred)]
    if starred:
        result.unliftable.append(UnliftableSite(
            call.lineno,
            f"par_loop {', '.join(starred)} operand is a starred expression",
            enclosing))
        return

    descriptors = pos[len(roles):]
    if any(isinstance(a, ast.Starred) for a in descriptors):
        result.unliftable.append(UnliftableSite(
            call.lineno, "par_loop argument list is forwarded with *args; "
            "descriptors are not statically known", enclosing))
        return

    name_hint = None
    if "name" in kw and isinstance(kw["name"], ast.Constant) \
            and isinstance(kw["name"].value, str):
        name_hint = kw["name"].value

    site = LoopSite(
        kernel=ast.unparse(operands["kernel"]),
        iterset=ast.unparse(operands["iterset"]),
        lineno=call.lineno,
        api=api,
        ranges=ast.unparse(operands["ranges"]) if "ranges" in operands else None,
        name_hint=name_hint,
        enclosing=enclosing,
        in_loop=in_loop,
    )
    for node in descriptors:
        arg = _parse_arg(node, api)
        site.raw_args.append(RawArg(ast.unparse(node), getattr(node, "lineno", call.lineno), arg))
        if arg is not None:
            site.args.append(arg)
    result.sites.append(site)


def _lift_wrapper_call(
    call: ast.Call,
    w: _Wrapper,
    enclosing: str,
    in_loop: bool,
    result: ParseResult,
) -> None:
    """Lift a call through a detected loop wrapper."""
    kw = {k.arg: k.value for k in call.keywords if k.arg is not None}
    pos = list(call.args)
    if any(isinstance(a, ast.Starred) for a in pos):
        result.unliftable.append(UnliftableSite(
            call.lineno,
            f"loop wrapper {w.name!r} called with a starred argument list; "
            "kernel and descriptors are not statically known", enclosing))
        return

    operands: dict[str, str] = dict(w.fixed)
    for role, idx in w.roles.items():
        if idx < len(pos):
            operands[role] = ast.unparse(pos[idx])
    roles = _role_names(w.api)
    if any(r not in operands for r in ("kernel", "iterset")):
        result.unliftable.append(UnliftableSite(
            call.lineno, f"loop wrapper {w.name!r} call is missing operands",
            enclosing))
        return

    name_hint = None
    if "name" in kw and isinstance(kw["name"], ast.Constant) \
            and isinstance(kw["name"].value, str):
        name_hint = kw["name"].value

    site = LoopSite(
        kernel=operands["kernel"],
        iterset=operands["iterset"],
        lineno=call.lineno,
        api=w.api,
        ranges=operands.get("ranges") if "ranges" in roles else None,
        name_hint=name_hint,
        enclosing=enclosing,
        in_loop=in_loop,
    )
    for node in pos[w.desc_start:]:
        arg = _parse_arg(node, w.api)
        site.raw_args.append(RawArg(ast.unparse(node), getattr(node, "lineno", call.lineno), arg))
        if arg is not None:
            site.args.append(arg)
    result.sites.append(site)


class _SiteCollector(ast.NodeVisitor):
    """Walks a module recording loop sites with their enclosing function."""

    def __init__(self, aliases, wrappers, internal, result):
        self.aliases = aliases
        self.wrappers = wrappers
        self.internal = internal
        self.result = result
        self.stack: list[str] = []
        self.loop_depth = 0

    @property
    def enclosing(self) -> str:
        return ".".join(self.stack) if self.stack else "<module>"

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.stack.append(node.name)
        outer = self.loop_depth
        self.loop_depth = 0
        self.generic_visit(node)
        self.loop_depth = outer
        self.stack.pop()

    def _visit_function(self, node) -> None:
        self.stack.append(node.name)
        outer = self.loop_depth
        self.loop_depth = 0
        self.generic_visit(node)
        self.loop_depth = outer
        self.stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_For(self, node: ast.For) -> None:
        self.loop_depth += 1
        self.generic_visit(node)
        self.loop_depth -= 1

    def visit_While(self, node: ast.While) -> None:
        self.loop_depth += 1
        self.generic_visit(node)
        self.loop_depth -= 1

    def visit_Call(self, node: ast.Call) -> None:
        if id(node) not in self.internal:
            api, _known = _classify_par_loop(node, self.aliases)
            if api is not None:
                _lift_call(node, api, self.enclosing, self.loop_depth > 0, self.result)
            else:
                w = _is_wrapper_call(node, self.wrappers)
                if w is not None:
                    _lift_wrapper_call(node, w, self.enclosing,
                                       self.loop_depth > 0, self.result)
        self.generic_visit(node)


def parse_app_full(source: str, filename: str = "<app>") -> ParseResult:
    """Lift every parallel-loop call site, keeping unliftable-site records."""
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        raise TranslatorError(f"cannot parse application {filename}: {exc}") from exc
    result = ParseResult(filename=filename)
    aliases = module_aliases(tree)
    wrappers, internal = _detect_wrappers(tree, aliases)
    _SiteCollector(aliases, wrappers, internal, result).visit(tree)
    result.sites.sort(key=lambda s: s.lineno)
    result.unliftable.sort(key=lambda s: s.lineno)
    return result


def parse_app_source(source: str, filename: str = "<app>") -> list[LoopSite]:
    """Lift every parallel-loop call site from application source text."""
    return parse_app_full(source, filename=filename).sites


def parse_app_file(path: str | Path) -> list[LoopSite]:
    """Lift loop sites from an application file on disk."""
    p = Path(path)
    return parse_app_source(p.read_text(), filename=str(p))


def parse_app_file_full(path: str | Path) -> ParseResult:
    """Like :func:`parse_app_file`, with unliftable-site records."""
    p = Path(path)
    return parse_app_full(p.read_text(), filename=str(p))
