"""Elementwise-to-vectorised kernel translation.

The user writes kernels from "the perspective of a single-threaded
implementation" (paper Section II-A): scalar component indexing, ``math``
calls, ternary expressions.  This module parses that function's AST and
generates a vectorised variant where every parameter subscript ``p[i]``
becomes a column access ``p[:, i]``, scalar math becomes NumPy ufuncs and
ternaries become ``np.where`` — the same structural rewrite OP2's code
generator performs when emitting vectorisable C.

Restrictions mirror the paper's: *no branching statements in user
functions* (Section IV notes the vector-intrinsics path "does not allow
branching"); use conditional expressions instead.  Violations raise
:class:`~repro.common.errors.TranslatorError` with the offending construct.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.common.errors import TranslatorError

#: scalar-call -> NumPy ufunc rewrites
_CALL_MAP = {
    "sqrt": "sqrt",
    "fabs": "abs",
    "abs": "abs",
    "exp": "exp",
    "log": "log",
    "sin": "sin",
    "cos": "cos",
    "pow": "power",
    "copysign": "copysign",
    "floor": "floor",
    "ceil": "ceil",
    "atan2": "arctan2",
    "tanh": "tanh",
}

#: variadic scalar reductions -> binary NumPy ufuncs (nested when >2 args)
_VARIADIC_MAP = {"min": "minimum", "max": "maximum"}

_ALLOWED_STMTS = (
    ast.Assign,
    ast.AugAssign,
    ast.AnnAssign,
    ast.Expr,
    ast.For,
    ast.Pass,
)


@dataclass
class GeneratedKernel:
    """A generated vectorised kernel: the callable and its source text."""

    name: str
    func: Callable
    source: str


def _np_attr(fname: str) -> ast.Attribute:
    return ast.Attribute(value=ast.Name(id="np", ctx=ast.Load()), attr=fname, ctx=ast.Load())


class _Vectoriser(ast.NodeTransformer):
    """Rewrites one kernel function body."""

    def __init__(self, params: set[str], kernel_name: str):
        self.params = params
        self.kernel_name = kernel_name
        self.loop_vars: set[str] = set()

    def _err(self, node: ast.AST, msg: str) -> TranslatorError:
        line = getattr(node, "lineno", "?")
        return TranslatorError(f"kernel {self.kernel_name!r} line {line}: {msg}")

    # -- subscripts -----------------------------------------------------------

    def visit_Subscript(self, node: ast.Subscript):
        self.generic_visit(node)
        if isinstance(node.value, ast.Name) and node.value.id in self.params:
            new_slice = ast.Tuple(
                elts=[ast.Slice(lower=None, upper=None, step=None), node.slice],
                ctx=ast.Load(),
            )
            return ast.Subscript(value=node.value, slice=new_slice, ctx=node.ctx)
        return node

    # -- parameter misuse -------------------------------------------------------

    def visit_Name(self, node: ast.Name):
        return node

    # -- calls ------------------------------------------------------------------

    def visit_Call(self, node: ast.Call):
        self.generic_visit(node)
        fname = None
        if isinstance(node.func, ast.Name):
            fname = node.func.id
        elif isinstance(node.func, ast.Attribute) and isinstance(node.func.value, ast.Name):
            if node.func.value.id in ("math", "np", "numpy"):
                fname = node.func.attr
        if fname is None:
            raise self._err(node, "only math.* / builtin math calls are allowed in kernels")
        if fname in ("range", "float", "int"):
            # loop bounds and scalar casts of loop-invariant values pass through
            return node
        if fname in _VARIADIC_MAP:
            ufunc = _VARIADIC_MAP[fname]
            if len(node.args) < 2:
                raise self._err(node, f"{fname}() in kernels needs >= 2 arguments")
            expr = node.args[0]
            for nxt in node.args[1:]:
                expr = ast.Call(func=_np_attr(ufunc), args=[expr, nxt], keywords=[])
            return expr
        if fname in _CALL_MAP:
            return ast.Call(func=_np_attr(_CALL_MAP[fname]), args=node.args, keywords=[])
        raise self._err(node, f"call to {fname!r} is not supported in kernels")

    # -- control flow -------------------------------------------------------------

    def visit_IfExp(self, node: ast.IfExp):
        self.generic_visit(node)
        return ast.Call(
            func=_np_attr("where"),
            args=[node.test, node.body, node.orelse],
            keywords=[],
        )

    def visit_If(self, node: ast.If):
        raise self._err(
            node,
            "branching statements are not allowed in user kernels "
            "(use a conditional expression `a if c else b`)",
        )

    def visit_While(self, node: ast.While):
        raise self._err(node, "while loops are not allowed in user kernels")

    def visit_Return(self, node: ast.Return):
        if node.value is not None:
            raise self._err(node, "kernels must not return values")
        return node

    def visit_For(self, node: ast.For):
        if not (
            isinstance(node.iter, ast.Call)
            and isinstance(node.iter.func, ast.Name)
            and node.iter.func.id == "range"
        ):
            raise self._err(node, "for loops must iterate over range(...)")
        if not isinstance(node.target, ast.Name):
            raise self._err(node, "for loop targets must be simple names")
        self.loop_vars.add(node.target.id)
        self.generic_visit(node)
        return node


def _check_statements(body: list[ast.stmt], name: str) -> None:
    for stmt in body:
        if isinstance(stmt, (ast.If, ast.While, ast.Return, ast.For)):
            continue  # handled (or rejected) by the transformer
        if not isinstance(stmt, _ALLOWED_STMTS):
            raise TranslatorError(
                f"kernel {name!r}: statement {type(stmt).__name__} is not supported"
            )


def vectorise_kernel(func: Callable, name: str | None = None) -> GeneratedKernel:
    """Generate the vectorised variant of an elementwise kernel.

    The returned callable has the same signature but expects each argument
    as a 2-D ``(n, dim)`` array and processes all ``n`` elements at once.
    """
    name = name or func.__name__
    try:
        src = textwrap.dedent(inspect.getsource(func))
    except (OSError, TypeError) as exc:
        raise TranslatorError(f"cannot retrieve source of kernel {name!r}: {exc}") from exc

    tree = ast.parse(src)
    fdef = tree.body[0]
    if not isinstance(fdef, ast.FunctionDef):
        # lambdas and nested constructs are not part of the API
        raise TranslatorError(
            f"kernel {name!r} must be a plain function (def ...), got "
            f"{type(fdef).__name__}; pass vec_func explicitly instead"
        )

    params = {a.arg for a in fdef.args.args}
    _check_statements(fdef.body, name)

    vec = _Vectoriser(params, name)
    new_fdef = vec.visit(fdef)
    new_fdef.name = f"{name}_vec"
    new_fdef.decorator_list = []
    module = ast.Module(body=[new_fdef], type_ignores=[])
    ast.fix_missing_locations(module)

    source = ast.unparse(module)
    namespace = dict(func.__globals__)
    namespace["np"] = np
    code = compile(module, filename=f"<generated:{name}_vec>", mode="exec")
    exec(code, namespace)  # noqa: S102 - generated from our own AST
    return GeneratedKernel(name=f"{name}_vec", func=namespace[new_fdef.name], source=source)
