"""OP2 sets: the index spaces of an unstructured mesh."""

from __future__ import annotations

import itertools

from repro.common.errors import APIError
from repro.common.tokens import next_token

_ids = itertools.count()


class Set:
    """A collection of mesh entities (vertices, edges, cells, ...).

    Under MPI the local portion of a set is laid out as
    ``[owned | exec halo | nonexec halo]``: ``size`` counts owned elements
    only, ``exec_size`` additionally counts halo elements that must be
    *executed over* (because they increment into owned data), and
    ``total_size`` includes halo elements that are only ever read.
    """

    def __init__(self, size: int, name: str | None = None, *, halo_exec: int = 0, halo_nonexec: int = 0):
        if size < 0 or halo_exec < 0 or halo_nonexec < 0:
            raise APIError("set sizes must be non-negative")
        self.size = int(size)
        self._halo_exec = int(halo_exec)
        self._halo_nonexec = int(halo_nonexec)
        self.name = name if name is not None else f"set_{next(_ids)}"
        #: process-unique identity for cache keys (never reused, unlike id())
        self.token = next_token()

    @property
    def exec_size(self) -> int:
        """Owned plus exec-halo size (iteration extent for INC-into-owned loops)."""
        return self.size + self._halo_exec

    @property
    def total_size(self) -> int:
        """Full local extent including all halo elements (dat allocation size)."""
        return self.size + self._halo_exec + self._halo_nonexec

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:
        if self.total_size != self.size:
            return (
                f"Set({self.name!r}, size={self.size}, "
                f"exec={self._halo_exec}, nonexec={self._halo_nonexec})"
            )
        return f"Set({self.name!r}, size={self.size})"
