"""Loop arguments: the access-execute descriptors of a parallel loop."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.access import Access, validate_argument_access
from repro.common.errors import APIError
from repro.op2.dat import Dat, Global
from repro.op2.map import Map
from repro.op2.set import Set


@dataclass
class Arg:
    """One argument of an ``op_par_loop``.

    Either a dat argument (``dat`` set; direct when ``map`` is None, indirect
    through ``map[idx]`` otherwise) or a global argument (``glob`` set).
    """

    access: Access
    dat: Optional[Dat] = None
    map: Optional[Map] = None
    idx: Optional[int] = None
    glob: Optional[Global] = None

    @classmethod
    def from_dat(cls, dat: Dat, access: Access, map_: Map | None, idx: int | None) -> "Arg":
        if map_ is not None:
            if idx is None:
                raise APIError(f"indirect arg on {dat.name} needs an index into the map")
            if not (0 <= idx < map_.arity):
                raise APIError(
                    f"map index {idx} out of range for arity-{map_.arity} map {map_.name}"
                )
            if map_.to_set is not dat.set:
                raise APIError(
                    f"map {map_.name} targets set {map_.to_set.name}, "
                    f"but dat {dat.name} lives on {dat.set.name}"
                )
        elif idx is not None:
            raise APIError("direct args take no map index")
        # declaration-time contract check: previously only *direct* MIN/MAX
        # args were rejected here, so an indirect one failed late (or not
        # at all, on backends that never combine per-element "reductions")
        validate_argument_access(
            access, is_global=False, dat=dat.name if dat is not None else None
        )
        return cls(access=access, dat=dat, map=map_, idx=idx)

    @classmethod
    def from_global(cls, glob: Global, access: Access) -> "Arg":
        if access is Access.RW:
            raise APIError("globals cannot be OP_RW; use INC/MIN/MAX or READ")
        return cls(access=access, glob=glob)

    # -- classification ------------------------------------------------------

    @property
    def is_global(self) -> bool:
        return self.glob is not None

    @property
    def is_direct(self) -> bool:
        return self.dat is not None and self.map is None

    @property
    def is_indirect(self) -> bool:
        return self.dat is not None and self.map is not None

    @property
    def creates_race(self) -> bool:
        """True if concurrent elements may write the same location."""
        return self.is_indirect and self.access.writes

    def validate_against(self, iterset: Set) -> None:
        """Check the arg is executable over ``iterset``."""
        if self.is_global:
            return
        if self.is_direct:
            if self.dat.set is not iterset:
                raise APIError(
                    f"direct arg {self.dat.name} lives on {self.dat.set.name}, "
                    f"loop iterates over {iterset.name}"
                )
        else:
            if self.map.from_set is not iterset:
                raise APIError(
                    f"map {self.map.name} maps from {self.map.from_set.name}, "
                    f"loop iterates over {iterset.name}"
                )

    def describe(self) -> str:
        """Human-readable descriptor for diagnostics and generated code."""
        if self.is_global:
            return f"gbl:{self.glob.name}({self.access.short})"
        if self.is_direct:
            return f"{self.dat.name}({self.access.short})"
        return f"{self.dat.name}[{self.map.name}:{self.idx}]({self.access.short})"
