"""Dataset I/O: the HDF5-like store (npz-backed offline).

OP2/OPS "have support for parallel I/O using HDF5" and provide "API calls
to dump entire datasets to disk, even in a distributed memory environment"
(paper Sections II-B/II-C).  h5py is unavailable offline, so the same API
shape is provided over ``numpy.savez``: declare sets/maps/dats from a file,
dump dats back (gathering owned parts under MPI).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.common.errors import APIError
from repro.op2.dat import Dat
from repro.op2.map import Map
from repro.op2.set import Set


def write_mesh(path: str | Path, sets: dict[str, Set], maps: dict[str, Map], dats: dict[str, Dat]) -> None:
    """Serialise a whole mesh (sets, maps, dats) into one npz file."""
    payload: dict[str, np.ndarray] = {}
    for name, s in sets.items():
        payload[f"set/{name}"] = np.asarray([s.size], dtype=np.int64)
    for name, m in maps.items():
        payload[f"map/{name}/values"] = m.values
        payload[f"map/{name}/meta"] = np.asarray(
            [_set_index(sets, m.from_set), _set_index(sets, m.to_set), m.arity],
            dtype=np.int64,
        )
    for name, d in dats.items():
        payload[f"dat/{name}/data"] = d.data
        payload[f"dat/{name}/meta"] = np.asarray([_set_index(sets, d.set), d.dim], dtype=np.int64)
    payload["set_names"] = np.asarray(sorted(sets), dtype=object)
    np.savez(Path(path), **payload, allow_pickle=True)


def _set_index(sets: dict[str, Set], s: Set) -> int:
    for i, name in enumerate(sorted(sets)):
        if sets[name] is s:
            return i
    raise APIError(f"set {s.name} not in the declared set dictionary")


def read_mesh(path: str | Path) -> tuple[dict[str, Set], dict[str, Map], dict[str, Dat]]:
    """Load a mesh written by :func:`write_mesh`."""
    with np.load(Path(path), allow_pickle=True) as npz:
        set_names = [str(n) for n in npz["set_names"]]
        sets: dict[str, Set] = {}
        for name in set_names:
            size = int(npz[f"set/{name}"][0])
            sets[name] = Set(size, name)
        ordered = [sets[n] for n in sorted(sets)]
        maps: dict[str, Map] = {}
        dats: dict[str, Dat] = {}
        for key in npz.files:
            if key.startswith("map/") and key.endswith("/values"):
                name = key.split("/")[1]
                meta = npz[f"map/{name}/meta"]
                maps[name] = Map(
                    ordered[int(meta[0])], ordered[int(meta[1])], int(meta[2]),
                    npz[key], name,
                )
            elif key.startswith("dat/") and key.endswith("/data"):
                name = key.split("/")[1]
                meta = npz[f"dat/{name}/meta"]
                dats[name] = Dat(
                    ordered[int(meta[0])], int(meta[1]), npz[key], name=name
                )
        return sets, maps, dats


def dump_dat(path: str | Path, dat: Dat) -> None:
    """Dump one dat's owned values to disk (debug/consistency API)."""
    np.savez(Path(path), data=dat.data[: dat.set.size], dim=np.asarray([dat.dim]))


def load_dat_values(path: str | Path) -> np.ndarray:
    """Read values previously dumped with :func:`dump_dat`."""
    with np.load(Path(path)) as npz:
        return npz["data"]
