"""Array-of-Structures <-> Structure-of-Arrays conversion.

The paper deploys "automatic conversion from an Array of Structures data
layout to Structure of Arrays through the code generator" for GPUs (Fig 7's
SOA strategy).  A :class:`~repro.op2.dat.Dat` stores ``(n, dim)`` rows; the
SoA transform stores component-major ``(dim, n)`` flattened, with the access
stride recorded so generated code indexes ``data[c*stride + e]``.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import APIError
from repro.op2.dat import Dat


def to_soa(dat: Dat) -> np.ndarray:
    """Return the dat's values in SoA layout: flat ``dim * stride`` array.

    The stride equals the set's total size, so component ``c`` of element
    ``e`` sits at ``c * stride + e`` — exactly the ``OP_ACC`` SOA macro of
    paper Fig 7.
    """
    return np.ascontiguousarray(dat.data.T).reshape(-1)


def to_aos(flat: np.ndarray, n: int, dim: int) -> np.ndarray:
    """Inverse of :func:`to_soa`: rebuild the ``(n, dim)`` row layout."""
    if flat.shape != (n * dim,):
        raise APIError(f"flat SoA array has shape {flat.shape}, expected ({n * dim},)")
    return np.ascontiguousarray(flat.reshape(dim, n).T)


def soa_stride(dat: Dat) -> int:
    """The SOA access stride (elements between consecutive components)."""
    return dat.data.shape[0]


def soa_index(element: int, component: int, stride: int) -> int:
    """Flat index of (element, component) in SoA layout (OP_ACC(x) = x*stride)."""
    return component * stride + element


def aos_index(element: int, component: int, dim: int) -> int:
    """Flat index of (element, component) in AoS layout."""
    return element * dim + component
