"""Compiled loop executors: the op2 hot path, specialised once per loop site.

The paper's central performance argument (Sections II-IV, following the
"Active Libraries" compile-once philosophy) is that everything derivable
from a loop's access descriptors — validation, colouring, gather columns,
buffer shapes, scatter schedules — can be computed on the *first* execution
and amortised over every later one.  The interpreted path in
:mod:`repro.op2.parloop` re-derives all of it per call; this module caches
it in a :class:`CompiledLoop`:

* the validated descriptor list and the prebuilt loop event,
* per-subset gather index arrays (the whole range for ``vec``, one subset
  per block colour for ``openmp``),
* a buffer arena — gather/INC/global buffers allocated once and reused
  while the underlying shapes still match,
* an **INC scatter plan**: a cached stable-sort permutation plus segment
  boundaries, so indirect increments run as a handful of vectorised
  segment-reduction rounds instead of ``np.add.at``.  Round ``k`` adds the
  ``k``-th contribution of every still-active segment, so each target
  accumulates in occurrence order — bitwise identical to ``np.add.at``
  (a pure ``np.add.reduceat`` scatter is faster still, but its pairwise
  SIMD association is numpy-build-dependent and would break the repo's
  bitwise-parity guarantees).  Tiny or degenerate scatters stay on
  ``np.add.at``,
* the loop's exact traffic/flop accounting, folded into the counters as
  precomputed constants.

Compiled loops live in a bounded LRU registry keyed by *stable* monotonic
tokens (kernel, iteration set, per-arg dat/map/idx/access, ``n``), never by
``id()``.  Entries are invalidated when a dat's storage shape/dtype or a
map's values array changes, and dropped wholesale by
:func:`clear_plan_cache`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Sequence

import numpy as np

from repro.common.access import Access
from repro.common.config import get_config
from repro.common.counters import LoopRecord, PerfCounters, Timer
from repro.common.profiling import (
    LoopEvent,
    active_counters,
    notify_loop,
    observers_active,
)
from repro.telemetry import tracer as _trace
from repro.op2 import plan as colour_plan
from repro.op2.args import Arg
from repro.op2.kernel import Kernel
from repro.op2.set import Set

__all__ = [
    "CompiledLoop",
    "lookup",
    "clear_plan_cache",
    "plan_cache_stats",
    "set_plan_cache_capacity",
]

#: backends the compiled path covers; ``seq`` deliberately stays the
#: untouched interpreted semantic baseline, ``cuda`` keeps its staged
#: two-level commit schedule
FAST_BACKENDS = frozenset({"vec", "openmp"})

# -- gather/scatter opcodes ----------------------------------------------------

_G_GLOBAL_READ = 0
_G_GLOBAL_INC = 1
_G_GLOBAL_MINMAX = 2
_G_VIEW_SLICE = 3
_G_TAKE = 4  # direct or indirect gather into an arena buffer
_G_WRITE_BUF = 5  # uninitialised output buffer (direct WRITE over a subset)
_G_INC_BUF = 6  # zeroed increment buffer

_S_NONE = 0
_S_GLOBAL_INC = 1
_S_GLOBAL_MIN = 2
_S_GLOBAL_MAX = 3
_S_ASSIGN = 4  # dat.data[idx] = buf (direct subset or indirect WRITE/RW)
_S_INC_SEGMENTS = 5
_S_INC_ADD_AT = 6


class _SubsetExec:
    """One executed subset (the full range, or one block colour)."""

    __slots__ = ("n", "gathers", "scatters")

    def __init__(self, n: int, gathers: list, scatters: list):
        self.n = n
        self.gathers = gathers
        self.scatters = scatters

    def run(self, vec_func) -> None:
        buffers = []
        for op in self.gathers:
            mode = op[0]
            if mode == _G_VIEW_SLICE:
                buffers.append(op[1].data[op[2]])
            elif mode == _G_TAKE:
                _, dat, idx, buf = op
                np.take(dat.data, idx, axis=0, out=buf, mode="clip")
                buffers.append(buf)
            elif mode == _G_INC_BUF:
                op[1].fill(0.0)
                buffers.append(op[1])
            elif mode == _G_GLOBAL_READ:
                _, glob, shape = op
                buffers.append(np.broadcast_to(glob.data, shape))
            elif mode == _G_GLOBAL_INC:
                op[1].fill(0.0)
                buffers.append(op[1])
            elif mode == _G_GLOBAL_MINMAX:
                _, glob, buf = op
                np.copyto(buf, glob.data)
                buffers.append(buf)
            else:  # _G_WRITE_BUF
                buffers.append(op[1])

        vec_func(*buffers)

        for op, buf in zip(self.scatters, buffers):
            mode = op[0]
            if mode == _S_NONE:
                continue
            if mode == _S_INC_SEGMENTS:
                _, dat, perm, targets, rounds, sorted_buf, acc_buf, contrib_buf = op
                np.take(buf, perm, axis=0, out=sorted_buf)
                np.take(dat.data, targets, axis=0, out=acc_buf)
                for n_k, src in rounds:
                    contrib = contrib_buf[:n_k]
                    np.take(sorted_buf, src, axis=0, out=contrib)
                    acc = acc_buf[:n_k]
                    np.add(acc, contrib, out=acc)
                dat.data[targets] = acc_buf
            elif mode == _S_INC_ADD_AT:
                np.add.at(op[1].data, op[2], buf)
            elif mode == _S_ASSIGN:
                op[1].data[op[2]] = buf
            elif mode == _S_GLOBAL_INC:
                op[1].data += buf.sum(axis=0)
            elif mode == _S_GLOBAL_MIN:
                g = op[1]
                g.data[:] = np.minimum(g.data, buf.min(axis=0))
            else:  # _S_GLOBAL_MAX
                g = op[1]
                g.data[:] = np.maximum(g.data, buf.max(axis=0))


#: a scatter where one target receives more than this many contributions
#: degenerates to one round per contribution; ``np.add.at`` is better there
_MAX_SEGMENT_ROUNDS = 64


def _segment_scatter(dat, cols: np.ndarray, dim: int, dtype) -> tuple:
    """Build the segment-reduction INC scatter plan for one gather column.

    Contributions are stable-sorted by target once; round ``k`` then adds,
    in a single vectorised operation, the ``k``-th contribution of every
    segment that still has one.  Each target therefore accumulates
    ``((old + c1) + c2) + ...`` in occurrence order — exactly
    ``np.add.at``'s float association, making the compiled scatter bitwise
    identical to the interpreted one.  Segments are laid out in descending
    count order so every round works on a contiguous prefix of the
    accumulator.
    """
    m = cols.shape[0]
    perm = np.argsort(cols, kind="stable")
    sorted_cols = cols[perm]
    targets, starts = np.unique(sorted_cols, return_index=True)
    counts = np.diff(np.append(starts, m))
    max_count = int(counts.max())
    if max_count > _MAX_SEGMENT_ROUNDS:
        return (_S_INC_ADD_AT, dat, cols)
    order = np.argsort(-counts, kind="stable")
    targets_r = targets[order]
    starts_r = starts[order]
    counts_r = counts[order]
    rounds = []
    for k in range(max_count):
        n_k = int(np.count_nonzero(counts_r > k))
        rounds.append((n_k, starts_r[:n_k] + k))
    t = targets.shape[0]
    sorted_buf = np.empty((m, dim), dtype=dtype)
    acc_buf = np.empty((t, dim), dtype=dtype)
    contrib_buf = np.empty((t, dim), dtype=dtype)
    return (_S_INC_SEGMENTS, dat, perm, targets_r, rounds, sorted_buf, acc_buf, contrib_buf)


def _compile_subset(args: Sequence[Arg], idx, m: int) -> _SubsetExec:
    """Specialise gather/scatter ops for ``args`` over one subset."""
    scatter_min = get_config().execplan_scatter_min
    is_slice = isinstance(idx, slice)
    gathers: list = []
    scatters: list = []
    for arg in args:
        if arg.is_global:
            g = arg.glob
            if arg.access is Access.READ:
                gathers.append((_G_GLOBAL_READ, g, (m, g.dim)))
                scatters.append((_S_NONE,))
            elif arg.access is Access.INC:
                gathers.append((_G_GLOBAL_INC, np.zeros((m, g.dim), dtype=g.dtype)))
                scatters.append((_S_GLOBAL_INC, g))
            else:
                gathers.append((_G_GLOBAL_MINMAX, g, np.empty((m, g.dim), dtype=g.dtype)))
                scatters.append(
                    (_S_GLOBAL_MIN, g) if arg.access is Access.MIN else (_S_GLOBAL_MAX, g)
                )
            continue

        dat = arg.dat
        if arg.is_direct:
            if is_slice:
                # writes land through the view: no scatter needed
                gathers.append((_G_VIEW_SLICE, dat, idx))
                scatters.append((_S_NONE,))
            else:
                buf = np.empty((m, dat.dim), dtype=dat.dtype)
                if arg.access is Access.WRITE:
                    gathers.append((_G_WRITE_BUF, buf))
                else:
                    gathers.append((_G_TAKE, dat, idx, buf))
                scatters.append((_S_ASSIGN, dat, idx) if arg.access.writes else (_S_NONE,))
            continue

        cols = np.ascontiguousarray(arg.map.values[idx, arg.idx])
        buf = np.empty((m, dat.dim), dtype=dat.dtype)
        if arg.access is Access.INC:
            gathers.append((_G_INC_BUF, buf))
            if m >= scatter_min:
                scatters.append(_segment_scatter(dat, cols, dat.dim, dat.dtype))
            else:
                scatters.append((_S_INC_ADD_AT, dat, cols))
        else:
            gathers.append((_G_TAKE, dat, cols, buf))
            scatters.append((_S_ASSIGN, dat, cols) if arg.access.writes else (_S_NONE,))
    return _SubsetExec(m, gathers, scatters)


class CompiledLoop:
    """Everything re-derivable from one loop signature, computed once."""

    def __init__(self, kernel: Kernel, iterset: Set, args: list[Arg], backend: str, n: int):
        from repro.op2 import parloop as _parloop  # deferred: parloop imports us

        self.kernel = kernel
        self.iterset = iterset
        self.args = args  # strong refs keep dats/maps alive while cached
        self.backend = backend
        self.n = n

        # (a) full validation, exactly as the interpreted path performs it
        _parloop.validate_loop_args(kernel, iterset, args)

        # (b) the prebuilt event and the written-dat list (halo staleness)
        self.event: LoopEvent = _parloop._event_for(kernel, args)
        # span attributes are part of the plan too: formatting descriptors
        # per call would dominate a traced fast path
        self.trace_attrs = {
            "kernel": kernel.name,
            "set": iterset.name,
            "backend": backend,
            "n": n,
            "descriptors": _parloop.describe_args(args),
            "compiled": True,
        }
        self.written_dats = []
        for arg in args:
            if arg.dat is not None and arg.access.writes:
                if not any(d is arg.dat for d in self.written_dats):
                    self.written_dats.append(arg.dat)

        # (c) execution schedule: one sweep for vec, one subset per block
        # colour for openmp (direct loops need no plan on either backend)
        racing = any(arg.creates_race for arg in args)
        if backend == "openmp" and racing and n > 0:
            plan = colour_plan.build_plan(iterset, args, n_elements=n)
            self.colours = plan.n_block_colours
            self.subsets = []
            for colour in range(plan.n_block_colours):
                elems = plan.elements_of_colour(colour)
                if elems.size:
                    self.subsets.append(_compile_subset(args, elems, elems.size))
        else:
            self.colours = 1
            self.subsets = [_compile_subset(args, slice(0, n), n)] if n > 0 else []

        # (d) accounting constants: the interpreted path's exact counter
        # arithmetic, run once against a scratch register
        scratch = PerfCounters()
        _parloop._account(kernel, n, args, scratch, self.colours)
        self.acct: LoopRecord = scratch.loops[kernel.name]

        # guards: cheap per-call staleness checks (shape/dtype of every dat,
        # identity of every map's values array)
        dat_guards: dict[int, tuple] = {}
        map_guards: dict[int, tuple] = {}
        for arg in args:
            if arg.dat is not None:
                dat_guards[arg.dat.token] = (arg.dat, arg.dat.data.shape, arg.dat.data.dtype)
            if arg.map is not None:
                map_guards[arg.map.token] = (arg.map, arg.map.values)
        self._dat_guards = list(dat_guards.values())
        self._map_guards = list(map_guards.values())

        # (e) native tier: a compiled C kernel under the same plan.  The
        # plan's own guards track shape/dtype only, so the native loop keeps
        # its own storage-identity guards (checked per call in execute).
        from repro.native import plan as _native  # deferred: optional tier

        self.native = _native.try_compile_op2(kernel, args, backend, n, kernel.name)
        if self.native is not None:
            self.trace_attrs["native"] = True

    def still_valid(self) -> bool:
        """True while the shapes/arrays the plan was built from are unchanged."""
        for dat, shape, dtype in self._dat_guards:
            if dat.data.shape != shape or dat.data.dtype != dtype:
                return False
        for map_, values in self._map_guards:
            if map_.values is not values:
                return False
        return True

    def execute(self) -> None:
        """Replay the plan: notify, run every subset, account, mark halos."""
        if observers_active():
            event = self.event
            event.skip = False
            notify_loop(event)
            if event.skip:
                # recovery fast-forward: same contract as the interpreted path
                for dat in self.written_dats:
                    dat.halo_dirty = True
                return

        counters = active_counters()
        rec = counters.loop(self.kernel.name)
        nat = self.native
        if nat is not None and not nat.still_valid():
            # a dat/global rebound its storage under the baked addresses:
            # permanently drop this plan's native tier (the plan itself is
            # still valid — its views go through dat.data, not addresses)
            from repro.native import plan as _native

            self.native = nat = None
            self.trace_attrs.pop("native", None)
            _native._fallback("op2", self.kernel.name, "storage rebound")
        trc = _trace.ACTIVE
        span = trc.begin("par_loop", "op2", **self.trace_attrs) if trc is not None else None
        try:
            with Timer(rec):
                if nat is not None:
                    counters.record_native_call()
                    nat.execute()
                else:
                    vec_func = self.kernel.vec_func
                    for subset in self.subsets:
                        subset.run(vec_func)
        finally:
            if span is not None:
                trc.end(span)
        rec.merge(self.acct)

        for dat in self.written_dats:
            dat.halo_dirty = True


# -- registry -----------------------------------------------------------------

_registry: OrderedDict[tuple, CompiledLoop] = OrderedDict()
_lock = threading.Lock()
_stats = {"hits": 0, "misses": 0, "invalidations": 0, "evictions": 0}


def _signature(kernel: Kernel, iterset: Set, args: tuple, backend: str, n: int) -> tuple:
    parts: list = [kernel.token, iterset.token, backend, n]
    for a in args:
        if a.glob is not None:
            parts.append(("g", a.glob.token, a.access))
        elif a.map is None:
            parts.append(("d", a.dat.token, a.access))
        else:
            parts.append(("i", a.dat.token, a.map.token, a.idx, a.access))
    return tuple(parts)


def lookup(
    kernel: Kernel, iterset: Set, args: tuple, backend: str, n: int
) -> CompiledLoop | None:
    """Fetch (or compile) the plan for this loop site; None -> take the slow path.

    Returns None only when a signature cannot even be formed (malformed
    arguments) so the interpreted path can raise its usual diagnostics.
    Compilation itself runs the full interpreted-path validation and lets
    any :class:`~repro.common.errors.APIError` propagate.
    """
    from repro.lint.abstract import certify_callable

    if certify_callable(kernel).rng:
        # the kernel draws random numbers: its output is not a pure
        # function of the signature, so a replayed plan is not a replay
        return None

    try:
        key = _signature(kernel, iterset, args, backend, n)
    except (AttributeError, TypeError):
        return None

    counters = active_counters()
    trc = _trace.ACTIVE
    with _lock:
        compiled = _registry.get(key)
        if compiled is not None:
            if compiled.still_valid():
                _registry.move_to_end(key)
                _stats["hits"] += 1
                counters.record_plan_hit()
                return compiled
            del _registry[key]
            _stats["invalidations"] += 1
            counters.record_plan_invalidation()
            if trc is not None:
                trc.instant(
                    "plan_invalidation", "plan", kernel=kernel.name, backend=backend
                )

    # compile outside the lock: colouring/argsort can be expensive and the
    # simulated MPI ranks compile distinct per-rank signatures concurrently
    compiled = CompiledLoop(kernel, iterset, list(args), backend, n)
    with _lock:
        _registry[key] = compiled
        _stats["misses"] += 1
        counters.record_plan_miss()
        if trc is not None:
            trc.instant("plan_miss", "plan", kernel=kernel.name, backend=backend, n=n)
        limit = get_config().execplan_cache_size
        while len(_registry) > limit:
            _, evicted = _registry.popitem(last=False)
            _stats["evictions"] += 1
            counters.record_plan_eviction()
            if trc is not None:
                trc.instant("plan_eviction", "plan", kernel=evicted.kernel.name)
    return compiled


def clear_plan_cache() -> None:
    """Drop every compiled loop, colouring plan and unique-count entry."""
    from repro.op2 import parloop as _parloop

    with _lock:
        _registry.clear()
    colour_plan.clear_plan_cache()
    _parloop._unique_count_cache.clear()


def set_plan_cache_capacity(limit: int) -> None:
    """Resize the per-process plan LRU (persistently; evicts down to fit).

    The default capacity is 512 compiled loops (``Config.execplan_cache_size``,
    overridable at startup with ``REPRO_EXECPLAN_CACHE_SIZE``); the serving
    layer calls this so one process can hold every tenant's warm plans.
    """
    if limit < 1:
        raise ValueError("plan cache capacity must be >= 1")
    from repro.common.config import configure

    configure(execplan_cache_size=limit)
    with _lock:
        while len(_registry) > limit:
            _registry.popitem(last=False)
            _stats["evictions"] += 1


def plan_cache_stats() -> dict[str, int]:
    """Process-lifetime registry statistics (tests and diagnostics)."""
    with _lock:
        return {"size": len(_registry), **_stats}
