"""OP2-style active library for unstructured-mesh computations.

The abstraction (paper Section II-A): a mesh is

1. a number of :class:`Set` s (vertices, edges, cells...),
2. :class:`Map` pings between sets (e.g. edge -> its two vertices),
3. :class:`Dat` a defined on sets (coordinates, flow variables...).

Computation is a sequence of parallel loops (:func:`par_loop`) over a set,
applying a user kernel to every element, accessing data either directly on
the iteration set or through at most one level of indirection, with declared
access modes.  The library derives race-avoidance colouring, partitioning,
halo exchanges and reductions from those declarations.

>>> from repro import op2
>>> nodes = op2.Set(4, "nodes")
>>> edges = op2.Set(3, "edges")
>>> e2n = op2.Map(edges, nodes, 2, [[0, 1], [1, 2], [2, 3]], "e2n")
>>> x = op2.Dat(nodes, 1, [1.0, 2.0, 3.0, 4.0], name="x")
>>> s = op2.Dat(edges, 1, [0.0, 0.0, 0.0], name="s")
>>> k = op2.Kernel(lambda a, b, out: out.__setitem__(0, a[0] + b[0]), "sum")
>>> op2.par_loop(k, edges,
...              x(op2.READ, e2n, 0), x(op2.READ, e2n, 1), s(op2.WRITE))
>>> list(s.data[:, 0])
[3.0, 5.0, 7.0]
"""

from repro.common.access import Access

# OP2-flavoured access aliases
READ = Access.READ
WRITE = Access.WRITE
RW = Access.RW
INC = Access.INC
MIN = Access.MIN
MAX = Access.MAX

from repro.op2.set import Set
from repro.op2.map import Map, IDENTITY
from repro.op2.dat import Dat, Global, Const
from repro.op2.args import Arg
from repro.op2.kernel import Kernel
from repro.op2.parloop import par_loop, loop_chain_record, set_default_backend
from repro.op2.plan import Plan, build_plan
from repro.op2.execplan import CompiledLoop, clear_plan_cache, plan_cache_stats, set_plan_cache_capacity
from repro.op2.partition import partition_set, PartitionResult
from repro.op2.renumber import renumber_mesh, locality_score
from repro.op2.halo import PartitionedMesh, RankMesh, build_partitioned_mesh
from repro.op2.soa import to_soa, to_aos

__all__ = [
    "READ",
    "WRITE",
    "RW",
    "INC",
    "MIN",
    "MAX",
    "Set",
    "Map",
    "IDENTITY",
    "Dat",
    "Global",
    "Const",
    "Arg",
    "Kernel",
    "par_loop",
    "loop_chain_record",
    "set_default_backend",
    "Plan",
    "build_plan",
    "CompiledLoop",
    "clear_plan_cache",
    "plan_cache_stats",
    "set_plan_cache_capacity",
    "partition_set",
    "PartitionResult",
    "renumber_mesh",
    "locality_score",
    "PartitionedMesh",
    "RankMesh",
    "build_partitioned_mesh",
    "to_soa",
    "to_aos",
]
