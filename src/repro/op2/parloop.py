"""``op_par_loop``: the single entry point for computation over a set.

Dispatches to a backend (``seq``, ``vec``, ``openmp``, ``cuda``) selected
per call or process-wide; distributed-memory execution wraps rank-local
``par_loop`` calls via :class:`repro.op2.halo.PartitionedMesh`.

Every execution:

* validates the arguments against the iteration set,
* notifies loop observers (the checkpointing subsystem records the loop
  chain through this hook),
* accounts data movement and arithmetic into the active counters.
"""

from __future__ import annotations

import numpy as np

from repro.common.access import validate_argument_access
from repro.common.config import get_config
from repro.common.counters import PerfCounters, Timer
from repro.common.errors import APIError, DescriptorViolation
from repro.common.profiling import (
    ArgEvent,
    LoopEvent,
    active_counters,
    add_loop_observer,
    counters_scope,
    loop_chain_record,
    notify_loop,
    observers_active,
    remove_loop_observer,
)
from repro.telemetry import tracer as _trace
from repro.op2 import execplan
from repro.ops import lazy as _ops_lazy
from repro.op2.args import Arg
# the backend table is resolved once at import: the per-call `from ... import
# BACKENDS` used to run on every single loop invocation
from repro.op2.backends import BACKENDS
from repro.op2.kernel import Kernel
from repro.op2.set import Set

__all__ = [
    "par_loop",
    "set_default_backend",
    "get_default_backend",
    "active_counters",
    "counters_scope",
    "loop_chain_record",
    "add_loop_observer",
    "remove_loop_observer",
    "LoopEvent",
    "ArgEvent",
]

_default_backend = "vec"


def set_default_backend(name: str) -> None:
    """Set the process-wide default backend for :func:`par_loop`."""
    if name not in BACKENDS:
        raise APIError(f"unknown backend {name!r}; available: {sorted(BACKENDS)}")
    global _default_backend
    _default_backend = name


def get_default_backend() -> str:
    return _default_backend


def _event_for(kernel: Kernel, args: list[Arg]) -> LoopEvent:
    evs = []
    for a in args:
        if a.is_global:
            evs.append(
                ArgEvent(a.glob.name, a.access, a.glob.dim, is_global=True, data_ref=a.glob)
            )
        else:
            evs.append(
                ArgEvent(a.dat.name, a.access, a.dat.dim, indirect=a.is_indirect, data_ref=a.dat)
            )
    return LoopEvent(kernel.name, evs, api="op2")


def describe_args(args: list[Arg]) -> str:
    """Compact descriptor summary for trace spans: ``dat:access[:i|:g]``."""
    parts = []
    for a in args:
        if a.is_global:
            parts.append(f"{a.glob.name}:{a.access.value}:g")
        elif a.is_indirect:
            parts.append(f"{a.dat.name}:{a.access.value}:i")
        else:
            parts.append(f"{a.dat.name}:{a.access.value}")
    return ",".join(parts)


#: keyed on (map token, idx) pairs plus n — tokens, not id(), so a count
#: cached for a collected Map can never be served to a new Map reusing its
#: address
_unique_count_cache: dict[tuple, int] = {}


def _unique_union(columns_key: tuple, columns, n: int) -> int:
    """Distinct targets referenced by a group of map columns (cached)."""
    key = (columns_key, n)
    count = _unique_count_cache.get(key)
    if count is None:
        stacked = np.concatenate([c[:n] for c in columns])
        count = int(np.unique(stacked).size)
        _unique_count_cache[key] = count
    return count


def _account(kernel: Kernel, n: int, args: list[Arg], counters: PerfCounters, colours: int) -> None:
    rec = counters.loop(kernel.name)
    rec.invocations += 1
    rec.iterations += n
    rec.flops += kernel.flops_per_elem * n
    rec.colours = max(rec.colours, colours)
    # group indirect args by dat: the same dat referenced through several
    # map slots (e.g. the four corner nodes of a cell) is loaded from DRAM
    # once and re-referenced from cache
    groups: dict[int, dict] = {}
    for arg in args:
        if arg.is_global:
            continue
        nbytes = n * arg.dat.nbytes_per_elem
        if arg.access.reads:
            rec.bytes_read += nbytes
            if arg.is_indirect:
                rec.indirect_reads += nbytes
        if arg.access.writes:
            rec.bytes_written += nbytes
            if arg.is_indirect:
                rec.indirect_writes += nbytes
        if arg.is_indirect:
            g = groups.setdefault(
                arg.dat.token,
                {"dat": arg.dat, "cols": [], "key": [], "reads": False, "writes": False},
            )
            g["cols"].append(arg.map.column(arg.idx))
            g["key"].append((arg.map.token, arg.idx))
            g["reads"] = g["reads"] or arg.access.reads
            g["writes"] = g["writes"] or arg.access.writes
    for g in groups.values():
        unique = _unique_union(tuple(g["key"]), g["cols"], n)
        unique_bytes = unique * g["dat"].nbytes_per_elem
        if g["reads"]:
            rec.indirect_reads_unique += unique_bytes
        if g["writes"]:
            rec.indirect_writes_unique += unique_bytes


def validate_loop_args(kernel: Kernel, iterset: Set, arg_list: list[Arg]) -> None:
    """Full argument validation, shared by the interpreted and compiled paths."""
    if not isinstance(kernel, Kernel):
        raise APIError("first argument must be an op2.Kernel")
    for i, arg in enumerate(arg_list):
        if not isinstance(arg, Arg):
            raise APIError(f"loop arguments must be built from dats/globals, got {arg!r}")
        arg.validate_against(iterset)
        # re-check the declaration contract with the loop name attached
        # (catches Arg objects constructed outside Dat.__call__)
        validate_argument_access(
            arg.access, is_global=arg.is_global,
            dat=arg.dat.name if arg.dat is not None else None,
            loop=kernel.name, arg_index=i,
        )


def par_loop(
    kernel: Kernel,
    iterset: Set,
    *args: Arg,
    backend: str | None = None,
    n_elements: int | None = None,
) -> None:
    """Execute ``kernel`` over every element of ``iterset``.

    ``n_elements`` restricts execution to the first N elements (used by the
    distributed runtime to iterate owned extents only).

    On the ``vec`` and ``openmp`` backends the first invocation of a loop
    signature compiles a :class:`repro.op2.execplan.CompiledLoop`; later
    invocations replay it (validation, gather columns, buffers and the INC
    scatter schedule are all amortised).  ``verify_descriptors`` bypasses
    the compiled path so the sanitizer always sees raw execution, and
    ``seq`` remains the untouched interpreted reference.

    op2 loops stay eager, but a mixed-API program may have OPS loops
    queued by the lazy runtime; they precede this loop in program order,
    so drain them first (the op2-aware queue hook).
    """
    if _ops_lazy.ACTIVE:
        _ops_lazy.flush_point("op2_par_loop")
    cfg = get_config()
    name = backend if backend is not None else _default_backend
    if (
        cfg.use_execplan
        and name in execplan.FAST_BACKENDS
        and not cfg.verify_descriptors
        and isinstance(kernel, Kernel)
        and isinstance(iterset, Set)
    ):
        n = iterset.size if n_elements is None else min(n_elements, iterset.total_size)
        compiled = execplan.lookup(kernel, iterset, args, name, n)
        if compiled is not None:
            compiled.execute()
            return

    arg_list = list(args)
    validate_loop_args(kernel, iterset, arg_list)

    try:
        impl = BACKENDS[name]
    except KeyError:
        raise APIError(f"unknown backend {name!r}; available: {sorted(BACKENDS)}") from None

    n = iterset.size if n_elements is None else min(n_elements, iterset.total_size)

    # only build the LoopEvent (and its per-arg descriptor list) when an
    # observer is actually listening — nothing else can set event.skip
    if observers_active():
        event = _event_for(kernel, arg_list)
        notify_loop(event)
        if event.skip:
            # recovery fast-forward: no computation, observers have already
            # restored any recorded global-argument values.  Halo staleness
            # must still advance as if the loop ran, or a distributed
            # replay's exchange schedule diverges from the original run's
            for arg in arg_list:
                if arg.dat is not None and arg.access.writes:
                    arg.dat.halo_dirty = True
            return

    trc = _trace.ACTIVE
    counters = active_counters()
    rec = counters.loop(kernel.name)
    span = None
    if trc is not None:
        span = trc.begin(
            "par_loop", "op2",
            kernel=kernel.name, set=iterset.name, backend=name, n=n,
            descriptors=describe_args(arg_list),
        )
    try:
        with Timer(rec):
            if cfg.verify_descriptors:
                from repro.verify.sanitizer import sanitized_execute

                colours, shadow_runs = sanitized_execute(impl, kernel, iterset, arg_list, n)
                counters.record_sanitized_loop(shadow_runs)
            else:
                colours = impl(kernel, iterset, arg_list, n)
    except DescriptorViolation as err:
        if trc is not None:
            trc.instant(
                "verify_violation", "verify",
                loop=err.loop, kind=err.kind, arg_index=err.arg_index,
            )
        raise
    finally:
        if span is not None:
            trc.end(span)
    _account(kernel, n, arg_list, counters, colours)

    # any dat written by this loop has stale halo copies on other ranks
    for arg in arg_list:
        if arg.dat is not None and arg.access.writes:
            arg.dat.halo_dirty = True
