"""OP2 C-style API aliases.

The paper's applications are written against the C/Fortran OP2 API
(``op_decl_set``, ``op_decl_map``, ``op_decl_dat``, ``op_arg_dat``,
``op_par_loop``).  These aliases let ported code keep that shape::

    cells = op_decl_set(ncell, "cells")
    e2c   = op_decl_map(edges, cells, 2, conn, "edge2cell")
    q     = op_decl_dat(cells, 4, "double", values, "q")
    op_par_loop(kernel, "res_calc", edges,
                op_arg_dat(q, 0, e2c, 4, "double", OP_READ),
                op_arg_gbl(rms, 1, "double", OP_INC))

The ``dim``/``"double"`` arguments are accepted (and validated where
meaningful) for source compatibility.
"""

from __future__ import annotations

import numpy as np

from repro.common.access import Access, OP_INC, OP_MAX, OP_MIN, OP_READ, OP_RW, OP_WRITE
from repro.common.errors import APIError
from repro.op2.args import Arg
from repro.op2.dat import Dat, Global
from repro.op2.kernel import Kernel
from repro.op2.map import Map
from repro.op2.parloop import par_loop
from repro.op2.set import Set

#: C API's "no indirection" sentinel
OP_ID = None
#: C API's index value for identity access
OP_NONE = -2

_DTYPES = {"double": np.float64, "float": np.float32, "int": np.int64, "real(8)": np.float64}


def op_decl_set(size: int, name: str) -> Set:
    return Set(size, name)


def op_decl_map(from_set: Set, to_set: Set, dim: int, values, name: str) -> Map:
    return Map(from_set, to_set, dim, values, name)


def op_decl_dat(set_: Set, dim: int, typ: str, data, name: str) -> Dat:
    dtype = _DTYPES.get(typ)
    if dtype is None:
        raise APIError(f"unknown OP2 type string {typ!r}")
    return Dat(set_, dim, data, dtype=dtype, name=name)


def op_decl_gbl(data, dim: int, typ: str, name: str = "gbl") -> Global:
    dtype = _DTYPES.get(typ)
    if dtype is None:
        raise APIError(f"unknown OP2 type string {typ!r}")
    return Global(dim, data, dtype=dtype, name=name)


def op_arg_dat(dat: Dat, idx: int, map_: Map | None, dim: int, typ: str, acc: Access) -> Arg:
    """The C API's argument builder; ``idx``/``map`` of -1/OP_ID mean direct."""
    if dim != dat.dim:
        raise APIError(f"op_arg_dat: dim {dim} != dat {dat.name}'s dim {dat.dim}")
    if map_ is None or idx in (-1, OP_NONE):
        return Arg.from_dat(dat, acc, None, None)
    return Arg.from_dat(dat, acc, map_, idx)


def op_arg_gbl(glob: Global, dim: int, typ: str, acc: Access) -> Arg:
    if dim != glob.dim:
        raise APIError(f"op_arg_gbl: dim {dim} != global's dim {glob.dim}")
    return Arg.from_global(glob, acc)


def op_par_loop(kernel, name: str, iterset: Set, *args: Arg, backend: str | None = None) -> None:
    """C-style loop call: user function first, loop name second."""
    k = kernel if isinstance(kernel, Kernel) else Kernel(kernel, name)
    par_loop(k, iterset, *args, backend=backend)


__all__ = [
    "OP_ID",
    "OP_NONE",
    "OP_READ",
    "OP_WRITE",
    "OP_RW",
    "OP_INC",
    "OP_MIN",
    "OP_MAX",
    "op_decl_set",
    "op_decl_map",
    "op_decl_dat",
    "op_decl_gbl",
    "op_arg_dat",
    "op_arg_gbl",
    "op_par_loop",
]
