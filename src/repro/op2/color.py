"""Greedy colouring used by the execution plans.

OP2 handles shared-memory races with two levels of colouring (paper
Section II-B): the iteration set is broken into mini-blocks which are
coloured so no two same-coloured blocks update a common indirect element
(block level = OpenMP threads / CUDA thread blocks), and inside a block the
elements are coloured again (thread level = staged register/shared-memory
increments written colour by colour).
"""

from __future__ import annotations

import numpy as np


def _densify(targets: np.ndarray) -> tuple[np.ndarray, int]:
    """Relabel target ids as 0..k-1, preserving the conflict structure.

    The per-round ``used`` scratch array is sized by the largest target id;
    without this remap, a handful of elements targeting sparse/huge ids
    (e.g. 64-bit hashes used as location keys) would allocate a bool array
    of that magnitude every round.
    """
    uniq, inverse = np.unique(targets, return_inverse=True)
    return inverse.reshape(targets.shape), int(uniq.size)


def colour_elements(targets: np.ndarray, n_elements: int) -> tuple[np.ndarray, int]:
    """Greedy first-fit colouring of elements sharing indirect targets.

    ``targets`` is an ``(n_elements, k)`` int array: the indirect locations
    each element writes/increments.  Returns ``(colour per element,
    n_colours)`` such that two elements with a common target never share a
    colour.
    """
    if n_elements == 0:
        return np.zeros(0, dtype=np.int32), 0
    if targets.size == 0:
        return np.zeros(n_elements, dtype=np.int32), 1

    targets = np.asarray(targets, dtype=np.int64).reshape(n_elements, -1)
    targets, max_target = _densify(targets)
    colours = np.full(n_elements, -1, dtype=np.int32)
    # last colour used on each target location, per colouring round
    ncolours = 0
    work = np.arange(n_elements)
    while work.size:
        used = np.zeros(max_target, dtype=bool)
        still: list[int] = []
        for e in work:
            tgt = targets[e]
            if used[tgt].any():
                still.append(e)
            else:
                colours[e] = ncolours
                used[tgt] = True
        ncolours += 1
        work = np.asarray(still, dtype=np.int64)
    return colours, ncolours


def colour_blocks(
    block_of_element: np.ndarray,
    targets: np.ndarray,
    n_blocks: int,
) -> tuple[np.ndarray, int]:
    """Greedy colouring of mini-blocks sharing indirect targets.

    ``block_of_element[e]`` is the block id of element ``e``; ``targets`` as
    in :func:`colour_elements`.  Two blocks conflict when any of their
    elements write a common location.
    """
    if n_blocks == 0:
        return np.zeros(0, dtype=np.int32), 0
    if targets.size == 0:
        return np.zeros(n_blocks, dtype=np.int32), 1

    n_elements = block_of_element.shape[0]
    targets = np.asarray(targets, dtype=np.int64).reshape(n_elements, -1)
    targets, max_target = _densify(targets)
    # build, per block, the set of written locations
    block_targets: list[np.ndarray] = []
    order = np.argsort(block_of_element, kind="stable")
    sorted_blocks = block_of_element[order]
    boundaries = np.searchsorted(sorted_blocks, np.arange(n_blocks + 1))
    for b in range(n_blocks):
        elems = order[boundaries[b] : boundaries[b + 1]]
        block_targets.append(np.unique(targets[elems]))

    colours = np.full(n_blocks, -1, dtype=np.int32)
    ncolours = 0
    work = list(range(n_blocks))
    while work:
        used = np.zeros(max_target, dtype=bool)
        still: list[int] = []
        for b in work:
            tgt = block_targets[b]
            if tgt.size and used[tgt].any():
                still.append(b)
            else:
                colours[b] = ncolours
                if tgt.size:
                    used[tgt] = True
        ncolours += 1
        work = still
    return colours, ncolours


def verify_colouring(
    colours: np.ndarray, targets: np.ndarray, n_elements: int
) -> bool:
    """Check no two same-coloured elements share a target (test helper)."""
    targets = np.asarray(targets, dtype=np.int64).reshape(n_elements, -1)
    for c in np.unique(colours):
        elems = np.nonzero(colours == c)[0]
        tgt = targets[elems].reshape(-1)
        if np.unique(tgt).size != tgt.size:
            return False
    return True
