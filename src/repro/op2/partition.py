"""Mesh partitioning across MPI ranks.

The paper credits "state-of-the-art partitioners, such as PT-Scotch or
ParMetis" for part of Hydra's 30% single-node improvement.  Offline we
provide four partitioners with the same interface:

* ``block``    — contiguous index blocks (OP2's trivial default),
* ``rcb``      — recursive coordinate bisection (geometric, quality),
* ``greedy``   — BFS region growing over the element adjacency graph,
* ``spectral`` — recursive spectral (Fiedler-vector) bisection, the
  eigen-based stand-in for the PT-Scotch/ParMetis class.

Quality is measured by :func:`edge_cut`, which the scaling model consumes:
better partitions → fewer halo bytes → flatter strong-scaling curves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import PartitionError
from repro.op2.map import Map


@dataclass
class PartitionResult:
    """Assignment of each element of a set to a rank."""

    assignment: np.ndarray
    nparts: int
    method: str

    def part_sizes(self) -> np.ndarray:
        return np.bincount(self.assignment, minlength=self.nparts)

    def imbalance(self) -> float:
        """max/mean part size; 1.0 = perfectly balanced."""
        sizes = self.part_sizes()
        mean = sizes.mean()
        return float(sizes.max() / mean) if mean > 0 else 1.0


def partition_block(n: int, nparts: int) -> np.ndarray:
    """Contiguous equal-size blocks."""
    return (np.arange(n, dtype=np.int64) * nparts) // max(n, 1)


def partition_rcb(coords: np.ndarray, nparts: int) -> np.ndarray:
    """Recursive coordinate bisection on element coordinates.

    Splits along the widest axis at the median, recursing until ``nparts``
    parts exist.  ``nparts`` need not be a power of two: children receive
    proportional shares.
    """
    coords = np.asarray(coords, dtype=np.float64)
    if coords.ndim == 1:
        coords = coords.reshape(-1, 1)
    n = coords.shape[0]
    assignment = np.zeros(n, dtype=np.int64)

    def recurse(idx: np.ndarray, parts: int, base: int) -> None:
        if parts <= 1 or idx.size == 0:
            assignment[idx] = base
            return
        left_parts = parts // 2
        right_parts = parts - left_parts
        sub = coords[idx]
        axis = int(np.argmax(sub.max(axis=0) - sub.min(axis=0)))
        order = np.argsort(sub[:, axis], kind="stable")
        split = (idx.size * left_parts) // parts
        recurse(idx[order[:split]], left_parts, base)
        recurse(idx[order[split:]], right_parts, base + left_parts)

    recurse(np.arange(n, dtype=np.int64), nparts, 0)
    return assignment


def element_adjacency(map_: Map) -> list[np.ndarray]:
    """Element-to-element adjacency: elements sharing a map target.

    Returns, for each source element, the array of neighbouring source
    elements (sharing at least one target; self excluded).
    """
    n = map_.from_set.total_size
    # bucket source elements by target
    targets = map_.values
    flat_src = np.repeat(np.arange(n, dtype=np.int64), map_.arity)
    flat_tgt = targets.reshape(-1)
    order = np.argsort(flat_tgt, kind="stable")
    sorted_tgt = flat_tgt[order]
    sorted_src = flat_src[order]
    boundaries = np.nonzero(np.diff(sorted_tgt))[0] + 1
    groups = np.split(sorted_src, boundaries)

    adj: list[set[int]] = [set() for _ in range(n)]
    for grp in groups:
        if grp.size < 2:
            continue
        members = grp.tolist()
        for e in members:
            adj[e].update(members)
    return [np.asarray(sorted(s - {i}), dtype=np.int64) for i, s in enumerate(adj)]


def partition_greedy(adjacency: list[np.ndarray], nparts: int) -> np.ndarray:
    """BFS region growing: grow ``nparts`` connected regions of equal size."""
    n = len(adjacency)
    target = -np.ones(n, dtype=np.int64)
    quota = [(n + p) // nparts for p in range(nparts)]  # sizes sum to n
    next_seed = 0
    for p in range(nparts):
        # seed at the lowest unassigned element
        while next_seed < n and target[next_seed] >= 0:
            next_seed += 1
        if next_seed >= n:
            break
        frontier = [next_seed]
        count = 0
        while frontier and count < quota[p]:
            e = frontier.pop(0)
            if target[e] >= 0:
                continue
            target[e] = p
            count += 1
            for nb in adjacency[e]:
                if target[nb] < 0:
                    frontier.append(int(nb))
    # leftovers (disconnected pieces): round-robin to the smallest parts
    leftover = np.nonzero(target < 0)[0]
    if leftover.size:
        sizes = np.bincount(target[target >= 0], minlength=nparts)
        for e in leftover:
            p = int(np.argmin(sizes))
            target[e] = p
            sizes[p] += 1
    return target


def edge_cut(map_: Map, assignment: np.ndarray) -> int:
    """Number of map entries crossing a partition boundary.

    Uses a derived target-set assignment (owner = min source rank); this is
    the byte-volume proxy for halo exchanges.
    """
    tgt_owner = derive_partition(map_, assignment)
    src_owner = assignment[: map_.from_set.total_size]
    crossing = tgt_owner[map_.values] != src_owner[:, None]
    return int(crossing.sum())


def derive_partition(map_: Map, from_assignment: np.ndarray) -> np.ndarray:
    """Assign target-set elements to the minimum rank of their sources.

    Targets never referenced by the map go to rank 0.
    """
    nt = map_.to_set.total_size
    owner = np.full(nt, np.iinfo(np.int64).max, dtype=np.int64)
    flat_tgt = map_.values.reshape(-1)
    flat_rank = np.repeat(from_assignment[: map_.from_set.total_size], map_.arity)
    np.minimum.at(owner, flat_tgt, flat_rank)
    owner[owner == np.iinfo(np.int64).max] = 0
    return owner


def derive_source_partition(map_: Map, to_assignment: np.ndarray) -> np.ndarray:
    """Assign source-set elements to the minimum rank of their targets."""
    return to_assignment[map_.values].min(axis=1)


def partition_set(
    n: int,
    nparts: int,
    method: str = "block",
    *,
    coords: np.ndarray | None = None,
    map_: Map | None = None,
) -> PartitionResult:
    """Partition ``n`` elements into ``nparts`` with the chosen method."""
    if nparts < 1:
        raise PartitionError("nparts must be >= 1")
    if nparts > max(n, 1):
        raise PartitionError(f"cannot split {n} elements into {nparts} parts")
    if method == "block":
        assignment = partition_block(n, nparts)
    elif method == "rcb":
        if coords is None:
            raise PartitionError("rcb partitioning needs element coordinates")
        if coords.shape[0] != n:
            raise PartitionError("coords length must match element count")
        assignment = partition_rcb(coords, nparts)
    elif method == "greedy":
        if map_ is None:
            raise PartitionError("greedy partitioning needs a map for adjacency")
        assignment = partition_greedy(element_adjacency(map_), nparts)[:n]
    elif method == "spectral":
        if map_ is None:
            raise PartitionError("spectral partitioning needs a map for adjacency")
        assignment = partition_spectral(map_, nparts)[:n]
    else:
        raise PartitionError(f"unknown partition method {method!r}")
    return PartitionResult(assignment=assignment, nparts=nparts, method=method)


def _fiedler_split(adj, idx: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Split one subdomain in two along the Fiedler vector's median.

    ``adj`` is the global symmetric adjacency (scipy CSR); ``idx`` the
    element ids of the subdomain.  Falls back to an index split for
    degenerate subgraphs.
    """
    import scipy.sparse as sp
    import scipy.sparse.linalg as spla

    n = idx.size
    if n <= 2:
        half = n // 2
        return idx[:half], idx[half:]
    sub = adj[idx][:, idx].asfptype()
    degrees = np.asarray(sub.sum(axis=1)).reshape(-1)
    lap = sp.diags(degrees) - sub
    try:
        if n < 64:
            vals, vecs = np.linalg.eigh(lap.toarray())
            fiedler = vecs[:, 1]
        else:
            # shift-invert around 0 finds the smallest eigenpairs quickly
            vals, vecs = spla.eigsh(lap.tocsc(), k=2, sigma=-1e-8, which="LM")
            order = np.argsort(vals)
            fiedler = vecs[:, order[1]]
    except Exception:
        half = n // 2
        return idx[:half], idx[half:]
    cut = np.median(fiedler)
    left = fiedler <= cut
    # guard against empty sides (constant Fiedler vector on disconnected graphs)
    if left.all() or not left.any():
        order = np.argsort(fiedler, kind="stable")
        half = n // 2
        return idx[order[:half]], idx[order[half:]]
    return idx[left], idx[~left]


def partition_spectral(map_: Map, nparts: int) -> np.ndarray:
    """Recursive spectral bisection over the element adjacency graph.

    The small stand-in for the eigen-based multilevel partitioners
    (PT-Scotch / ParMetis) the paper credits for OP2's partition quality.
    Proportional splits support non-power-of-two part counts.
    """
    import scipy.sparse as sp

    n = map_.from_set.total_size
    # element adjacency matrix: elements sharing a map target
    flat_src = np.repeat(np.arange(n, dtype=np.int64), map_.arity)
    flat_tgt = map_.values.reshape(-1)
    incidence = sp.coo_matrix(
        (np.ones(flat_src.size), (flat_src, flat_tgt)),
        shape=(n, map_.to_set.total_size),
    ).tocsr()
    adj = (incidence @ incidence.T).tocsr()
    adj.setdiag(0)
    adj.eliminate_zeros()
    adj.data[:] = 1.0

    assignment = np.zeros(n, dtype=np.int64)

    def recurse(idx: np.ndarray, parts: int, base: int) -> None:
        if parts <= 1 or idx.size == 0:
            assignment[idx] = base
            return
        left_parts = parts // 2
        left, right = _fiedler_split(adj, idx)
        # rebalance the split to the target proportion
        want_left = (idx.size * left_parts) // parts
        if left.size != want_left:
            merged = np.concatenate([left, right])
            left, right = merged[:want_left], merged[want_left:]
        recurse(left, left_parts, base)
        recurse(right, parts - left_parts, base + left_parts)

    recurse(np.arange(n, dtype=np.int64), nparts, 0)
    return assignment
