"""OP2 data: dats on sets, global reduction variables and constants."""

from __future__ import annotations

import numpy as np

from repro.common.access import Access
from repro.common.errors import APIError
from repro.common.tokens import next_token
from repro.op2.map import Map
from repro.op2.set import Set


class Dat:
    """Data defined on a :class:`Set`, ``dim`` components per element.

    Storage is AoS (row per element) by default; see :mod:`repro.op2.soa`
    for the Structure-of-Arrays transform used by the GPU backend.

    Calling a dat builds a loop argument::

        x(op2.READ, edge2node, 0)   # x at the first node of each edge
        q(op2.RW)                   # direct access on the iteration set
    """

    def __init__(self, set_: Set, dim: int, data=None, *, dtype=np.float64, name: str | None = None):
        if dim < 1:
            raise APIError("dat dim must be >= 1")
        self.set = set_
        self.dim = int(dim)
        self.name = name if name is not None else f"dat_{set_.name}"
        shape = (set_.total_size, self.dim)
        if data is None:
            self.data = np.zeros(shape, dtype=dtype)
        else:
            arr = np.asarray(data, dtype=dtype)
            if arr.ndim == 1:
                arr = arr.reshape(-1, self.dim) if self.dim > 1 else arr.reshape(-1, 1)
            if arr.shape != shape:
                raise APIError(
                    f"dat {self.name}: data shape {arr.shape} != {shape}"
                )
            self.data = arr.copy()
        self.dtype = self.data.dtype
        #: dirty-halo flag: set when owned data changes, cleared on exchange
        self.halo_dirty = True
        #: process-unique identity for cache keys (never reused, unlike id())
        self.token = next_token()
        #: physical storage layout: "aos" (row per element) or "soa"
        #: (component-major).  ``data`` is always the logical (n, dim) view;
        #: under SoA it is a transposed view of the component-major storage,
        #: so every backend runs unchanged on either layout (the executable
        #: counterpart of the generated-code strategies in paper Fig 7).
        self.layout = "aos"

    def convert_to_soa(self) -> None:
        """Switch physical storage to Structure-of-Arrays (component-major)."""
        if self.layout == "soa":
            return
        storage = np.ascontiguousarray(self.data.T)
        self.data = storage.T  # logical (n, dim) view over SoA storage
        self.layout = "soa"

    def convert_to_aos(self) -> None:
        """Switch physical storage back to Array-of-Structures (row-major)."""
        if self.layout == "aos":
            return
        self.data = np.ascontiguousarray(self.data)
        self.layout = "aos"

    @property
    def nbytes_per_elem(self) -> int:
        return self.dim * self.data.dtype.itemsize

    def __call__(self, access: Access, map_: Map | None = None, idx: int | None = None):
        from repro.op2.args import Arg  # cycle: args needs Dat for typing

        return Arg.from_dat(self, access, map_, idx)

    def adopt_storage(self, array: np.ndarray) -> None:
        """Rebind the element storage to an externally owned buffer.

        Used by :mod:`repro.mp.shm` to move a dat onto a shared-memory
        segment (and back off it).  SoA dats are refused: their ``data``
        is a transposed view and rebinding it would silently change the
        physical layout.
        """
        if self.layout != "aos":
            raise APIError(f"dat {self.name}: cannot adopt storage under SoA layout")
        arr = np.asarray(array)
        if arr.shape != self.data.shape or arr.dtype != self.data.dtype:
            raise APIError(
                f"dat {self.name}: adopted storage {arr.shape}/{arr.dtype} != "
                f"{self.data.shape}/{self.data.dtype}"
            )
        self.data = arr

    def duplicate(self, name: str | None = None) -> "Dat":
        """Deep copy (same set/dim), e.g. for reference comparisons."""
        return Dat(self.set, self.dim, self.data.copy(), dtype=self.dtype,
                   name=name or f"{self.name}_copy")

    def norm(self) -> float:
        """L2 norm over owned entries; convergence checks in the apps."""
        owned = self.data[: self.set.size]
        return float(np.sqrt(np.sum(owned * owned)))

    def __repr__(self) -> str:
        return f"Dat({self.name!r}, set={self.set.name}, dim={self.dim}, dtype={self.dtype})"


class Global:
    """A global (reduction) variable: ``op_arg_gbl`` in OP2.

    Under MPI the per-rank partial values are combined with an allreduce
    whose operator is taken from the access mode (INC -> sum, MIN/MAX).
    """

    def __init__(self, dim: int, data=None, *, dtype=np.float64, name: str | None = None):
        if dim < 1:
            raise APIError("global dim must be >= 1")
        self.dim = int(dim)
        self.name = name if name is not None else "gbl"
        if data is None:
            self.data = np.zeros(self.dim, dtype=dtype)
        else:
            arr = np.atleast_1d(np.asarray(data, dtype=dtype)).astype(dtype)
            if arr.shape != (self.dim,):
                raise APIError(f"global {self.name}: shape {arr.shape} != ({self.dim},)")
            self.data = arr.copy()
        self.dtype = self.data.dtype
        #: process-unique identity for cache keys (never reused, unlike id())
        self.token = next_token()

    def __call__(self, access: Access):
        from repro.op2.args import Arg

        return Arg.from_global(self, access)

    @property
    def value(self) -> float:
        """Scalar convenience accessor (dim-1 globals)."""
        if self.dim != 1:
            raise APIError("value only defined for dim-1 globals")
        return float(self.data[0])

    def __repr__(self) -> str:
        return f"Global({self.name!r}, dim={self.dim}, data={self.data!r})"


class Const:
    """A read-only constant visible to kernels (op_decl_const)."""

    def __init__(self, dim: int, data, *, dtype=np.float64, name: str | None = None):
        self.dim = int(dim)
        arr = np.atleast_1d(np.asarray(data, dtype=dtype))
        if arr.shape != (self.dim,):
            raise APIError(f"const: shape {arr.shape} != ({self.dim},)")
        self._data = arr
        self._data.setflags(write=False)
        self.name = name if name is not None else "const"

    @property
    def data(self) -> np.ndarray:
        return self._data

    @property
    def value(self) -> float:
        if self.dim != 1:
            raise APIError("value only defined for dim-1 consts")
        return float(self._data[0])

    def __repr__(self) -> str:
        return f"Const({self.name!r}, data={self._data!r})"
