"""Distributed-memory execution: partitioned meshes and halo exchanges.

OP2 "automatically perform[s] partitioning across processes and use[s]
standard halo exchanges, exchanging halo messages on-demand based on the
type of access and the stencils" (paper Section II-B).  This module builds,
from a *global* mesh plus a rank assignment per set, one local mesh per
rank: owned elements first, halo (off-rank but referenced) elements after,
with per-neighbour send/receive index lists.

Execution follows owner-compute:

* each rank iterates only its owned elements,
* indirect READ/RW arguments trigger an on-demand forward halo exchange
  when the dat's halo copies are stale,
* indirect INC arguments accumulate into halo copies which are then pushed
  back and summed on the owner (reverse exchange),
* global reductions are combined with a deterministic allreduce.

Simplification vs. real OP2: there is a single halo class (no separate
exec/nonexec levels) and indirect OP_WRITE/OP_RW across partition
boundaries is unsupported — the proxy applications, like most OP2 codes,
use OP_INC for cross-element writes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.access import Access
from repro.common.errors import APIError
from repro.op2.args import Arg
from repro.op2.dat import Dat, Global
from repro.op2.kernel import Kernel
from repro.op2.map import Map
from repro.op2.parloop import par_loop
from repro.op2.partition import derive_partition, derive_source_partition
from repro.op2.set import Set
from repro.simmpi.comm import SimComm
from repro.telemetry import tracer as _trace

_HALO_TAG = 11
_REVERSE_TAG = 13
_GATHER_TAG = 17


@dataclass
class _SetLayout:
    """Per-rank layout of one global set."""

    local_set: Set
    owned_ids: np.ndarray  # global ids of owned elements, ascending
    halo_ids: np.ndarray  # global ids of halo elements, grouped by owner
    #: neighbour rank -> local indices of owned elements to send
    send: dict[int, np.ndarray] = field(default_factory=dict)
    #: neighbour rank -> local indices of halo elements to receive into
    recv: dict[int, np.ndarray] = field(default_factory=dict)

    @property
    def n_owned(self) -> int:
        return self.owned_ids.shape[0]


class RankMesh:
    """One rank's view of the partitioned mesh.

    Translates global Set/Map/Dat/Global handles into their local
    counterparts; :meth:`par_loop` accepts loop arguments built from the
    *global* objects so application code is identical to the serial path.
    """

    def __init__(self, rank: int):
        self.rank = rank
        self.layouts: dict[int, _SetLayout] = {}  # id(global Set) -> layout
        self.sets: dict[int, Set] = {}
        self.maps: dict[int, Map] = {}
        self.dats: dict[int, Dat] = {}
        self.globals: dict[int, Global] = {}

    # -- handle translation ----------------------------------------------------

    def local_set(self, s: Set) -> Set:
        return self.sets[id(s)]

    def local_map(self, m: Map) -> Map:
        return self.maps[id(m)]

    def local_dat(self, d: Dat) -> Dat:
        return self.dats[id(d)]

    def local_global(self, g: Global) -> Global:
        return self.globals[id(g)]

    def _layout_of(self, s: Set) -> _SetLayout:
        return self.layouts[id(s)]

    def _translate(self, arg: Arg) -> Arg:
        """Map an arg's global handles to local ones (local handles pass through)."""
        if arg.is_global:
            glob = self.globals.get(id(arg.glob), arg.glob)
            return Arg(access=arg.access, glob=glob)
        dat = self.dats.get(id(arg.dat), arg.dat)
        map_ = None
        if arg.map is not None:
            map_ = self.maps.get(id(arg.map), arg.map)
        return Arg(access=arg.access, dat=dat, map=map_, idx=arg.idx)

    # -- halo exchanges -----------------------------------------------------------

    def halo_exchange(self, comm: SimComm, gdat: Dat) -> None:
        """Forward exchange: refresh this dat's halo copies from owners."""
        ldat = self.local_dat(gdat)
        layout = self._layout_of(gdat.set)
        trc = _trace.ACTIVE
        span = None
        if trc is not None:
            span = trc.begin("halo_exchange", "halo", dat=gdat.name, direction="forward")
        try:
            nbytes = 0
            for p, idx in layout.send.items():
                comm.send(ldat.data[idx], p, _HALO_TAG)
                nbytes += idx.size * ldat.nbytes_per_elem
            for p, idx in sorted(layout.recv.items()):
                ldat.data[idx] = comm.recv(p, _HALO_TAG)
            comm.counters.record_halo_exchange(len(layout.send), nbytes)
        finally:
            if span is not None:
                span.attrs["bytes"] = nbytes
                trc.end(span)
        ldat.halo_dirty = False

    def reverse_halo_exchange(self, comm: SimComm, gdat: Dat) -> None:
        """Reverse exchange: push halo increments back and sum on the owner."""
        ldat = self.local_dat(gdat)
        layout = self._layout_of(gdat.set)
        trc = _trace.ACTIVE
        span = None
        if trc is not None:
            span = trc.begin("halo_exchange", "halo", dat=gdat.name, direction="reverse")
        try:
            nbytes = 0
            for p, idx in layout.recv.items():
                comm.send(ldat.data[idx], p, _REVERSE_TAG)
                nbytes += idx.size * ldat.nbytes_per_elem
            for p, idx in sorted(layout.send.items()):
                contribution = comm.recv(p, _REVERSE_TAG)
                np.add.at(ldat.data, idx, contribution)
            comm.counters.record_halo_exchange(len(layout.recv), nbytes)
        finally:
            if span is not None:
                span.attrs["bytes"] = nbytes
                trc.end(span)
        ldat.halo_dirty = True

    # -- distributed loop -----------------------------------------------------------

    def par_loop(
        self,
        comm: SimComm,
        kernel: Kernel,
        giterset: Set,
        *gargs: Arg,
        backend: str = "vec",
    ) -> None:
        """Execute one distributed parallel loop (SPMD collective call)."""
        largs = [self._translate(a) for a in gargs]
        layout = self._layout_of(giterset)

        inc_dats: list[Dat] = []
        gbl_start: dict[int, np.ndarray] = {}
        for garg, larg in zip(gargs, largs):
            if larg.is_global:
                if larg.access.is_reduction:
                    gbl_start[id(larg.glob)] = larg.glob.data.copy()
                continue
            if larg.is_indirect:
                if larg.access in (Access.READ, Access.RW):
                    if larg.dat.halo_dirty:
                        self.halo_exchange(comm, garg.dat)
                elif larg.access is Access.INC:
                    if not any(d is garg.dat for d in inc_dats):
                        # stale halo copies must not receive old contributions
                        larg.dat.data[layout_halo_slice(self._layout_of(garg.dat.set))] = 0
                        inc_dats.append(garg.dat)
                else:
                    raise APIError(
                        "indirect OP_WRITE/OP_RW across partitions is unsupported; "
                        "use OP_INC (see module docstring)"
                    )

        par_loop(
            kernel,
            self.local_set(giterset),
            *largs,
            backend=backend,
            n_elements=layout.n_owned,
        )

        for gdat in inc_dats:
            self.reverse_halo_exchange(comm, gdat)

        for larg in largs:
            if larg.is_global and larg.access.is_reduction:
                g = larg.glob
                start = gbl_start[id(g)]
                if larg.access is Access.INC:
                    delta = g.data - start
                    total = start + comm.allreduce(delta, op="sum")
                elif larg.access is Access.MIN:
                    total = comm.allreduce(g.data, op="min")
                else:
                    total = comm.allreduce(g.data, op="max")
                g.data[:] = total

    # -- gather for validation ---------------------------------------------------------

    def gather_dat(self, comm: SimComm, gdat: Dat) -> np.ndarray:
        """Collect the dat's owned values from all ranks into the global order."""
        ldat = self.local_dat(gdat)
        layout = self._layout_of(gdat.set)
        payload = (layout.owned_ids, ldat.data[: layout.n_owned].copy())
        gathered = comm.gather(payload, root=0)
        if comm.rank == 0:
            total = comm.allreduce(layout.n_owned, op="sum")
            out = np.zeros((total, ldat.dim), dtype=ldat.dtype)
            for ids, values in gathered:
                out[ids] = values
        else:
            _ = comm.allreduce(layout.n_owned, op="sum")
            out = None
        return comm.bcast(out, root=0)


def layout_halo_slice(layout: _SetLayout) -> slice:
    """The halo region of a local dat (everything after the owned block)."""
    return slice(layout.n_owned, layout.n_owned + layout.halo_ids.shape[0])


class PartitionedMesh:
    """Builds per-rank :class:`RankMesh` es from a global mesh + assignments."""

    def __init__(
        self,
        nranks: int,
        assignments: dict[Set, np.ndarray],
        maps: list[Map],
        dats: list[Dat],
        globals_: list[Global] | None = None,
    ):
        self.nranks = nranks
        self.assignments = {id(s): np.asarray(a, dtype=np.int64) for s, a in assignments.items()}
        self._sets = {id(s): s for s in assignments}
        for s, a in assignments.items():
            if a.shape[0] != s.total_size:
                raise APIError(f"assignment for {s.name} has wrong length")
            if a.size and (a.min() < 0 or a.max() >= nranks):
                raise APIError(f"assignment for {s.name} names ranks outside [0, {nranks})")
        self.maps = maps
        self.dats = dats
        self.globals_ = list(globals_ or [])
        for m in maps:
            for s in (m.from_set, m.to_set):
                if id(s) not in self.assignments:
                    raise APIError(f"no assignment given for set {s.name} used by map {m.name}")
        for d in dats:
            if id(d.set) not in self.assignments:
                raise APIError(f"no assignment given for set {d.set.name} of dat {d.name}")
        self.rank_meshes = [self._build_rank(r) for r in range(nranks)]

    # -- construction ------------------------------------------------------------

    @classmethod
    def from_primary(
        cls,
        nranks: int,
        primary: Set,
        primary_assignment: np.ndarray,
        maps: list[Map],
        dats: list[Dat],
        globals_: list[Global] | None = None,
    ) -> "PartitionedMesh":
        """Derive every other set's assignment from the primary set's.

        Propagates ownership through the maps (targets to the min rank of
        their sources; sources to the min rank of their targets) until all
        sets used by maps/dats are covered.
        """
        assignments: dict[Set, np.ndarray] = {primary: np.asarray(primary_assignment)}
        pending = True
        while pending:
            pending = False
            for m in maps:
                if m.from_set in assignments and m.to_set not in assignments:
                    assignments[m.to_set] = derive_partition(m, assignments[m.from_set])
                    pending = True
                elif m.to_set in assignments and m.from_set not in assignments:
                    assignments[m.from_set] = derive_source_partition(m, assignments[m.to_set])
                    pending = True
        for d in dats:
            if d.set not in assignments:
                raise APIError(
                    f"set {d.set.name} is unreachable from the primary set via maps; "
                    "pass its assignment explicitly"
                )
        return cls(nranks, assignments, maps, dats, globals_)

    def _build_rank(self, rank: int) -> RankMesh:
        rm = RankMesh(rank)

        # 1. per-set layouts: owned ids, halo ids (entries referenced through
        #    maps whose sources this rank owns but whose targets it does not)
        halo_needed: dict[int, set[int]] = {sid: set() for sid in self.assignments}
        for m in self.maps:
            src_assign = self.assignments[id(m.from_set)]
            owned_rows = np.nonzero(src_assign == rank)[0]
            tgt_assign = self.assignments[id(m.to_set)]
            referenced = np.unique(m.values[owned_rows])
            off_rank = referenced[tgt_assign[referenced] != rank]
            halo_needed[id(m.to_set)].update(off_rank.tolist())

        for sid, gset in self._sets.items():
            assign = self.assignments[sid]
            owned = np.nonzero(assign == rank)[0].astype(np.int64)
            halo_list = sorted(halo_needed[sid], key=lambda g: (int(assign[g]), g))
            halo = np.asarray(halo_list, dtype=np.int64)
            lset = Set(owned.shape[0], f"{gset.name}@{rank}", halo_nonexec=halo.shape[0])
            rm.layouts[sid] = _SetLayout(local_set=lset, owned_ids=owned, halo_ids=halo)
            rm.sets[sid] = lset

        # 2. local maps (rows for owned source elements only)
        for m in self.maps:
            src_layout = rm.layouts[id(m.from_set)]
            tgt_layout = rm.layouts[id(m.to_set)]
            lookup = _local_lookup(
                self._sets[id(m.to_set)].total_size, tgt_layout
            )
            lvals = lookup[m.values[src_layout.owned_ids]]
            # halo rows of the source set have no map data on this rank; the
            # local map covers owned rows only, matching owner-compute
            lmap = Map(
                src_layout.local_set,
                tgt_layout.local_set,
                m.arity,
                np.vstack([lvals, np.zeros((src_layout.halo_ids.shape[0], m.arity), dtype=np.int64)])
                if src_layout.halo_ids.size
                else lvals,
                f"{m.name}@{rank}",
            )
            rm.maps[id(m)] = lmap

        # 3. local dats (owned block then halo block)
        for d in self.dats:
            layout = rm.layouts[id(d.set)]
            ids = np.concatenate([layout.owned_ids, layout.halo_ids])
            ldat = Dat(
                layout.local_set,
                d.dim,
                d.data[ids] if ids.size else np.zeros((0, d.dim), dtype=d.dtype),
                dtype=d.dtype,
                name=f"{d.name}@{rank}",
            )
            rm.dats[id(d)] = ldat

        # 4. local globals (private copy per rank)
        for g in self.globals_:
            rm.globals[id(g)] = Global(g.dim, g.data.copy(), dtype=g.dtype, name=f"{g.name}@{rank}")

        return rm

    def finalise_exchanges(self) -> None:
        """Fill in send/recv index lists (needs all rank layouts built)."""
        for sid, gset in self._sets.items():
            assign = self.assignments[sid]
            # position of each global id within its owner's owned list
            owner_pos = np.zeros(gset.total_size, dtype=np.int64)
            for r in range(self.nranks):
                owned = self.rank_meshes[r].layouts[sid].owned_ids
                owner_pos[owned] = np.arange(owned.shape[0], dtype=np.int64)
            for r in range(self.nranks):
                layout = self.rank_meshes[r].layouts[sid]
                halo = layout.halo_ids
                if halo.size == 0:
                    continue
                owners = assign[halo]
                for p in np.unique(owners):
                    mask = owners == p
                    # receiver side: local halo indices on rank r
                    local_halo_idx = layout.n_owned + np.nonzero(mask)[0]
                    layout.recv[int(p)] = local_halo_idx.astype(np.int64)
                    # sender side: local owned indices on rank p, same order
                    sender_layout = self.rank_meshes[int(p)].layouts[sid]
                    sender_layout.send[r] = owner_pos[halo[mask]]

    def local(self, rank: int) -> RankMesh:
        return self.rank_meshes[rank]


def _local_lookup(global_size: int, layout: _SetLayout) -> np.ndarray:
    """global id -> local index (owned block then halo block); -1 elsewhere."""
    lookup = np.full(global_size, -1, dtype=np.int64)
    lookup[layout.owned_ids] = np.arange(layout.n_owned, dtype=np.int64)
    lookup[layout.halo_ids] = layout.n_owned + np.arange(
        layout.halo_ids.shape[0], dtype=np.int64
    )
    return lookup


def build_partitioned_mesh(
    nranks: int,
    primary: Set,
    primary_assignment: np.ndarray,
    maps: list[Map],
    dats: list[Dat],
    globals_: list[Global] | None = None,
) -> PartitionedMesh:
    """Convenience: derive assignments, build rank meshes, wire exchanges."""
    pm = PartitionedMesh.from_primary(
        nranks, primary, primary_assignment, maps, dats, globals_
    )
    pm.finalise_exchanges()
    return pm


def dump_dat_distributed(comm: SimComm, rm: "RankMesh", gdat: Dat, path) -> None:
    """Dump a dat to disk from a distributed run (rank 0 writes).

    The paper (Section II-C): "there are API calls to dump entire datasets
    to disk, even in a distributed memory environment" — owned values are
    gathered into global ordering and written once.
    """
    import numpy as np

    values = rm.gather_dat(comm, gdat)
    if comm.rank == 0:
        np.savez(path, data=values, dim=np.asarray([gdat.dim]))
    comm.barrier()
