"""Mesh renumbering for locality.

The paper lists "automatic mesh reordering to improve locality" among the
OP2 optimisations behind Hydra's 30% single-node gain.  We implement
reverse Cuthill-McKee over the target-set connectivity (via scipy's
csgraph) and propagate the permutation consistently through dats and maps.

:func:`locality_score` quantifies the gain: the mean index distance between
a map's targets, a direct proxy for cache-line reuse during gathers.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import reverse_cuthill_mckee

from repro.common.errors import APIError
from repro.op2.dat import Dat
from repro.op2.map import Map


def target_adjacency_matrix(map_: Map) -> sp.csr_matrix:
    """Symmetric adjacency of the map's target set (targets co-referenced)."""
    nt = map_.to_set.total_size
    rows: list[np.ndarray] = []
    cols: list[np.ndarray] = []
    vals = map_.values
    for i in range(map_.arity):
        for j in range(map_.arity):
            if i == j:
                continue
            rows.append(vals[:, i])
            cols.append(vals[:, j])
    if not rows:
        return sp.csr_matrix((nt, nt))
    r = np.concatenate(rows)
    c = np.concatenate(cols)
    data = np.ones(r.shape[0], dtype=np.int8)
    adj = sp.coo_matrix((data, (r, c)), shape=(nt, nt)).tocsr()
    adj.data[:] = 1
    return adj


def rcm_permutation(map_: Map) -> np.ndarray:
    """RCM ordering of the map's target set: ``perm[new] = old``."""
    adj = target_adjacency_matrix(map_)
    return np.asarray(reverse_cuthill_mckee(adj, symmetric_mode=True), dtype=np.int64)


def apply_permutation(
    perm: np.ndarray,
    dats: list[Dat],
    maps_to_targets: list[Map],
) -> None:
    """Renumber a set in place: permute its dats, rewrite referencing maps.

    ``perm[new] = old``; dats listed must live on the renumbered set, maps
    listed must *target* it.
    """
    n = perm.shape[0]
    inverse = np.empty(n, dtype=np.int64)
    inverse[perm] = np.arange(n, dtype=np.int64)
    for dat in dats:
        if dat.data.shape[0] != n:
            raise APIError(f"dat {dat.name} does not live on the renumbered set")
        dat.data[:] = dat.data[perm]
    for m in maps_to_targets:
        if m.to_set.total_size != n:
            raise APIError(f"map {m.name} does not target the renumbered set")
        m.values[:] = inverse[m.values]


def renumber_mesh(map_: Map, dats: list[Dat], other_maps: list[Map] | None = None) -> np.ndarray:
    """RCM-renumber the target set of ``map_``; returns the permutation used.

    ``dats`` are the datasets on the target set; ``other_maps`` are any
    additional maps also targeting it (all must be rewritten together).
    """
    perm = rcm_permutation(map_)
    maps = [map_] + list(other_maps or [])
    apply_permutation(perm, dats, maps)
    return perm


def locality_score(map_: Map) -> float:
    """Mean absolute index distance between consecutive targets of each element.

    Lower is better: gathered cache lines are reused when a map's targets
    are close in memory.
    """
    vals = map_.values
    if map_.arity < 2 or vals.shape[0] == 0:
        return 0.0
    diffs = np.abs(np.diff(vals.astype(np.int64), axis=1))
    return float(diffs.mean())


def bandwidth(map_: Map) -> int:
    """Max index spread within one element's targets (matrix-bandwidth-like)."""
    vals = map_.values
    if vals.shape[0] == 0:
        return 0
    return int((vals.max(axis=1) - vals.min(axis=1)).max())
