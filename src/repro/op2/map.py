"""OP2 maps: fixed-arity indirections between sets."""

from __future__ import annotations

import numpy as np

from repro.common.errors import APIError
from repro.common.tokens import next_token
from repro.op2.set import Set

#: sentinel for "direct" (identity) access on the iteration set
IDENTITY = None


class Map:
    """A mapping from each element of ``from_set`` to ``arity`` elements of ``to_set``.

    e.g. ``edges -> vertices`` with arity 2, or ``cells -> vertices`` with
    arity 4 for quads.  Values are validated to lie inside the target set.
    """

    def __init__(self, from_set: Set, to_set: Set, arity: int, values, name: str | None = None):
        if arity < 1:
            raise APIError("map arity must be >= 1")
        self.from_set = from_set
        self.to_set = to_set
        self.arity = int(arity)
        vals = np.asarray(values, dtype=np.int64)
        if vals.ndim == 1:
            vals = vals.reshape(-1, self.arity)
        if vals.shape != (from_set.total_size, self.arity):
            raise APIError(
                f"map {name or '?'}: values shape {vals.shape} != "
                f"({from_set.total_size}, {self.arity})"
            )
        if vals.size and (vals.min() < 0 or vals.max() >= to_set.total_size):
            raise APIError(
                f"map {name or '?'}: entries must lie in [0, {to_set.total_size})"
            )
        self.values = vals
        self.name = name if name is not None else f"map_{from_set.name}_{to_set.name}"
        #: process-unique identity for cache keys (never reused, unlike id())
        self.token = next_token()

    def __getitem__(self, idx) -> np.ndarray:
        return self.values[idx]

    def column(self, idx: int) -> np.ndarray:
        """The idx-th target of every source element (shape: from_set total)."""
        return self.values[:, idx]

    def adjacency_pairs(self) -> np.ndarray:
        """All (source, target) pairs, shape (total*arity, 2); analysis helper."""
        n = self.values.shape[0]
        src = np.repeat(np.arange(n, dtype=np.int64), self.arity)
        return np.stack([src, self.values.reshape(-1)], axis=1)

    def __repr__(self) -> str:
        return (
            f"Map({self.name!r}, {self.from_set.name}->{self.to_set.name}, "
            f"arity={self.arity})"
        )
