"""User kernels.

An OP2 kernel is written once, elementwise, from the perspective of a
single-threaded program (paper Section II-A).  Each dat argument arrives as
a 1-D view of length ``dim``; the kernel reads and writes components by
index::

    def update(qold, q, res, adt, rms):
        for n in range(4):
            delta = adt[0] * res[n]
            q[n] = qold[n] - delta
            res[n] = 0.0
            rms[0] += delta * delta

The production backends do not call this function per element: the
translator (:mod:`repro.translator.kernelvec`) generates a vectorised
variant operating on whole gathered arrays, exactly like OP2's code
generator emits specialised C.  The generated source is human-readable and
kept on the kernel for inspection.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.common.tokens import next_token


class Kernel:
    """A named elementwise user function plus its generated vector form.

    ``flops_per_elem`` feeds the performance counters; it is the arithmetic
    cost of one element's work (the apps state theirs explicitly, mirroring
    how the paper reasons about loop arithmetic intensity).
    """

    def __init__(
        self,
        func: Callable,
        name: str | None = None,
        *,
        flops_per_elem: int = 0,
        vec_func: Optional[Callable] = None,
        vectorisable: bool = True,
        divergence: float = 0.0,
    ):
        self.func = func
        self.name = name if name is not None else getattr(func, "__name__", "kernel")
        self.flops_per_elem = int(flops_per_elem)
        self._vec_func = vec_func
        self._vec_source: str | None = None
        #: whether the loop body vectorises on CPUs (perf model input)
        self.vectorisable = vectorisable
        #: branch-divergence factor in [0, 1] (perf model input)
        self.divergence = float(divergence)
        #: process-unique identity for cache keys (never reused, unlike id())
        self.token = next_token()

    @property
    def vec_func(self) -> Callable:
        """The vectorised kernel, generating it on first use."""
        if self._vec_func is None:
            from repro.translator.kernelvec import vectorise_kernel

            generated = vectorise_kernel(self.func, name=self.name)
            self._vec_func = generated.func
            self._vec_source = generated.source
        return self._vec_func

    @property
    def vec_source(self) -> str | None:
        """Source text of the generated vectorised kernel (None if hand-given)."""
        if self._vec_func is None:
            _ = self.vec_func  # trigger generation
        return self._vec_source

    def __call__(self, *args) -> None:
        self.func(*args)

    def __repr__(self) -> str:
        return f"Kernel({self.name!r}, flops={self.flops_per_elem})"
