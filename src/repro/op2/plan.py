"""Execution plans: OP2's two-level colouring, built at run time per loop.

A plan is constructed for any loop with potential race conflicts (indirect
WRITE/RW/INC args) and cached, keyed by the loop's structure.  It contains:

* a partition of the iteration set into mini-blocks of ``block_size``,
* a block colouring (same-coloured blocks run concurrently on OpenMP
  threads / CUDA thread blocks),
* an element colouring within each block (CUDA stages increments in
  registers and writes them colour by colour).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.config import get_config
from repro.op2 import color as colouring
from repro.op2.args import Arg
from repro.op2.set import Set

_plan_cache: dict[tuple, "Plan"] = {}


@dataclass
class Plan:
    """Colouring execution plan for one (loop shape, block size) pair."""

    n_elements: int
    block_size: int
    #: block id per element
    block_of: np.ndarray
    n_blocks: int
    #: colour per block
    block_colour: np.ndarray
    n_block_colours: int
    #: colour per element (within-block level)
    elem_colour: np.ndarray
    n_elem_colours: int

    def blocks_of_colour(self, colour: int) -> np.ndarray:
        """Block ids with the given colour."""
        return np.nonzero(self.block_colour == colour)[0]

    def elements_of_block(self, block: int) -> np.ndarray:
        """Element ids in the given mini-block (contiguous ranges)."""
        lo = block * self.block_size
        hi = min(lo + self.block_size, self.n_elements)
        return np.arange(lo, hi)

    def elements_of_colour(self, colour: int) -> np.ndarray:
        """All elements in blocks of the given colour."""
        parts = [self.elements_of_block(b) for b in self.blocks_of_colour(colour)]
        if not parts:
            return np.zeros(0, dtype=np.int64)
        return np.concatenate(parts)


def _race_targets(args: list[Arg], n: int) -> np.ndarray:
    """Stack the indirect-write target columns, disambiguated across dats.

    Conflicts only arise within the same dat, so each racing dat's target
    indices are offset into a private range before stacking.
    """
    cols: list[np.ndarray] = []
    offsets: dict[int, int] = {}
    next_offset = 0
    for arg in args:
        if not arg.creates_race:
            continue
        key = id(arg.dat)
        if key not in offsets:
            offsets[key] = next_offset
            next_offset += arg.dat.set.total_size
        col = arg.map.column(arg.idx)[:n] + offsets[key]
        cols.append(col)
    if not cols:
        return np.zeros((n, 0), dtype=np.int64)
    return np.stack(cols, axis=1)


def plan_key(iterset: Set, args: list[Arg], block_size: int, n: int) -> tuple:
    """Cache key: iteration structure, racing maps/indices, block size.

    Keys use the objects' monotonic ``token``s, not ``id()``: a plan cached
    for a garbage-collected Map must not be served to a new Map that happens
    to reuse its address.
    """
    parts: list = [iterset.token, n, block_size]
    for arg in args:
        if arg.creates_race:
            parts.append((arg.map.token, arg.idx, arg.dat.token))
    return tuple(parts)


def build_plan(
    iterset: Set,
    args: list[Arg],
    *,
    block_size: int | None = None,
    n_elements: int | None = None,
) -> Plan:
    """Build (or fetch from cache) the plan for a loop over ``iterset``."""
    if block_size is None:
        block_size = get_config().plan_block_size
    n = iterset.size if n_elements is None else n_elements
    key = plan_key(iterset, args, block_size, n)
    cached = _plan_cache.get(key)
    if cached is not None:
        return cached

    targets = _race_targets(args, n)
    block_of = np.arange(n, dtype=np.int64) // block_size
    n_blocks = int(block_of[-1]) + 1 if n else 0

    block_colour, n_block_colours = colouring.colour_blocks(block_of, targets, n_blocks)
    elem_colour, n_elem_colours = _colour_within_blocks(block_of, targets, n, block_size)

    plan = Plan(
        n_elements=n,
        block_size=block_size,
        block_of=block_of,
        n_blocks=n_blocks,
        block_colour=block_colour,
        n_block_colours=n_block_colours,
        elem_colour=elem_colour,
        n_elem_colours=n_elem_colours,
    )
    _plan_cache[key] = plan
    return plan


def _colour_within_blocks(
    block_of: np.ndarray, targets: np.ndarray, n: int, block_size: int
) -> tuple[np.ndarray, int]:
    """Element colouring performed independently inside every mini-block."""
    if n == 0:
        return np.zeros(0, dtype=np.int32), 0
    if targets.size == 0:
        return np.zeros(n, dtype=np.int32), 1
    elem_colour = np.zeros(n, dtype=np.int32)
    overall = 0
    for lo in range(0, n, block_size):
        hi = min(lo + block_size, n)
        local, ncol = colouring.colour_elements(targets[lo:hi], hi - lo)
        elem_colour[lo:hi] = local
        overall = max(overall, ncol)
    return elem_colour, overall


def clear_plan_cache() -> None:
    """Drop all cached plans (tests / reconfiguration)."""
    _plan_cache.clear()
