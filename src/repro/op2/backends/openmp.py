"""OpenMP-style backend: block-coloured execution.

The iteration set is split into mini-blocks which are coloured so that no
two same-coloured blocks update a common indirect location (paper Section
II-B); blocks of one colour are then executed together — in real OP2 by
different OpenMP threads, here as one vectorised sweep over the colour's
elements, which preserves the memory-access structure and the colour count
the performance model consumes.
"""

from __future__ import annotations

from typing import Sequence

from repro.op2.args import Arg
from repro.op2.backends.base import execute_subset
from repro.op2.kernel import Kernel
from repro.op2.plan import build_plan
from repro.op2.set import Set


def execute_openmp(kernel: Kernel, iterset: Set, args: Sequence[Arg], n: int) -> int:
    """Run the loop colour by colour; returns the number of block colours."""
    arg_list = list(args)
    if not any(arg.creates_race for arg in arg_list):
        # direct loops need no plan: one parallel sweep
        execute_subset(kernel, arg_list, slice(0, n), n)
        return 1

    plan = build_plan(iterset, arg_list, n_elements=n)
    for colour in range(plan.n_block_colours):
        elems = plan.elements_of_colour(colour)
        execute_subset(kernel, arg_list, elems, elems.size)
    return plan.n_block_colours
