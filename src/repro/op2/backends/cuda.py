"""CUDA-style backend: two-level coloured execution with staged increments.

Emulates the generated CUDA target's semantics (paper Section II-B and
Fig 7): thread blocks are coloured at the outer level; inside a block,
elements are coloured again and increments are staged — intermediate results
live in "registers" (the gathered buffers) and are committed to main memory
colour by colour.  The within-block colour sweep is what makes the commit
order deterministic on real hardware; here it exercises the same plan
structure and records the colour counts the GPU performance model needs.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.common.config import get_config
from repro.op2.args import Arg
from repro.op2.backends.base import execute_subset
from repro.op2.kernel import Kernel
from repro.op2.plan import build_plan
from repro.op2.set import Set


def execute_cuda(kernel: Kernel, iterset: Set, args: Sequence[Arg], n: int) -> int:
    """Run the loop with two-level colouring; returns block colours used."""
    arg_list = list(args)
    if not any(arg.creates_race for arg in arg_list):
        execute_subset(kernel, arg_list, slice(0, n), n)
        return 1

    block_size = get_config().cuda_block_size
    plan = build_plan(iterset, arg_list, block_size=block_size, n_elements=n)
    for colour in range(plan.n_block_colours):
        elems = plan.elements_of_colour(colour)
        if elems.size == 0:
            continue
        # staged commit: inside the launched blocks, elements write their
        # increments colour by colour
        elem_colours = plan.elem_colour[elems]
        for ec in range(plan.n_elem_colours):
            subset = elems[elem_colours == ec]
            execute_subset(kernel, arg_list, subset, subset.size)
    return plan.n_block_colours
