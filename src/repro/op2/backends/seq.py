"""Sequential reference backend.

Calls the elementwise user function once per element with direct views into
the dats — a human-readable simple loop nest "recommended for debugging
purposes" (paper Section II-C).  Slow, but the semantic baseline every other
backend is tested against.
"""

from __future__ import annotations

from typing import Sequence

from repro.common.access import Access
from repro.op2.args import Arg
from repro.op2.kernel import Kernel
from repro.op2.set import Set


def execute_seq(kernel: Kernel, iterset: Set, args: Sequence[Arg], n: int) -> int:
    """Run the loop elementwise; returns the colour count (always 1)."""
    for e in range(n):
        views = []
        for arg in args:
            if arg.is_global:
                views.append(arg.glob.data)
            elif arg.is_direct:
                views.append(arg.dat.data[e])
            else:
                views.append(arg.dat.data[arg.map.values[e, arg.idx]])
        kernel.func(*views)
    return 1
