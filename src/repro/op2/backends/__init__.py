"""OP2 execution backends.

Each backend is a callable ``(kernel, iterset, args, n) -> n_colours`` that
executes the loop body over the first ``n`` elements.  They mirror the
paper's generated-code targets:

* ``seq``     — single-threaded reference; per-element calls of the user
  function, recommended for debugging (paper Section II-C),
* ``vec``     — vectorised execution over gathered arrays (the
  auto-vectorised CPU target); the production backend here,
* ``openmp``  — block-coloured execution: same-coloured mini-blocks are
  race-free and could run on distinct threads,
* ``cuda``    — two-level coloured execution with staged increments,
  emulating the CUDA target's semantics.

Distributed memory (MPI) composes with all of these through
:class:`repro.op2.halo.PartitionedMesh`.
"""

from repro.op2.backends.seq import execute_seq
from repro.op2.backends.vec import execute_vec
from repro.op2.backends.openmp import execute_openmp
from repro.op2.backends.cuda import execute_cuda

BACKENDS = {
    "seq": execute_seq,
    "vec": execute_vec,
    "openmp": execute_openmp,
    "cuda": execute_cuda,
}

__all__ = ["BACKENDS", "execute_seq", "execute_vec", "execute_openmp", "execute_cuda"]
