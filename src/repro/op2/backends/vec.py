"""Vectorised CPU backend.

One gather / vector-kernel / scatter pass over the whole iteration range —
the analogue of the auto-vectorised CPU code OP2 generates.  Race conflicts
on OP_INC arguments are handled by ``np.add.at`` accumulation, which is
order-independent up to floating-point association, like coloured execution.
"""

from __future__ import annotations

from typing import Sequence

from repro.op2.args import Arg
from repro.op2.backends.base import execute_subset
from repro.op2.kernel import Kernel
from repro.op2.set import Set


def execute_vec(kernel: Kernel, iterset: Set, args: Sequence[Arg], n: int) -> int:
    """Run the loop in one vectorised sweep; colour count is 1."""
    execute_subset(kernel, args, slice(0, n), n)
    return 1
