"""Gather / compute / scatter machinery shared by the array backends.

The vectorised backends execute a loop in three phases, exactly like the
generated code in the paper: gather the indirect operands into contiguous
buffers, apply the vectorised kernel to whole arrays, and scatter results
back (with ``np.add.at`` providing the coloured-increment semantics for
OP_INC arguments — duplicates accumulate correctly).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.common.access import Access
from repro.op2.args import Arg
from repro.op2.kernel import Kernel

IndexLike = slice | np.ndarray


def _gather(arg: Arg, idx: IndexLike, n: int) -> np.ndarray:
    """Build the kernel input buffer for one argument over ``idx`` elements."""
    if arg.is_global:
        g = arg.glob
        if arg.access is Access.READ:
            return np.broadcast_to(g.data, (n, g.dim))
        if arg.access is Access.INC:
            return np.zeros((n, g.dim), dtype=g.dtype)
        # MIN/MAX start from the current value so the kernel can fold into it
        return np.tile(g.data, (n, 1))

    dat = arg.dat
    if arg.is_direct:
        if arg.access is Access.WRITE and not isinstance(idx, slice):
            # fancy indexing copies: hand the kernel a clean output buffer
            return np.empty((n, dat.dim), dtype=dat.dtype)
        # slice -> writable view (writes land in place); fancy -> copy,
        # scattered back afterwards
        return dat.data[idx]

    cols = arg.map.values[idx, arg.idx]
    if arg.access is Access.INC:
        return np.zeros((n, dat.dim), dtype=dat.dtype)
    return dat.data[cols]


def _scatter(arg: Arg, buf: np.ndarray, idx: IndexLike) -> None:
    """Write one argument's buffer back after the kernel ran."""
    if arg.is_global:
        g = arg.glob
        if arg.access is Access.INC:
            g.data += buf.sum(axis=0)
        elif arg.access is Access.MIN:
            g.data[:] = np.minimum(g.data, buf.min(axis=0))
        elif arg.access is Access.MAX:
            g.data[:] = np.maximum(g.data, buf.max(axis=0))
        return

    if not arg.access.writes:
        return
    dat = arg.dat
    if arg.is_direct:
        if isinstance(idx, slice):
            return  # wrote through the view already
        dat.data[idx] = buf
        return

    cols = arg.map.values[idx, arg.idx]
    if arg.access is Access.INC:
        np.add.at(dat.data, cols, buf)
    else:  # WRITE / RW through a map
        dat.data[cols] = buf


def execute_subset(kernel: Kernel, args: Sequence[Arg], idx: IndexLike, n: int) -> None:
    """Gather -> vectorised kernel -> scatter over the ``idx`` elements."""
    if n == 0:
        return
    buffers = [_gather(arg, idx, n) for arg in args]
    kernel.vec_func(*buffers)
    for arg, buf in zip(args, buffers):
        _scatter(arg, buf, idx)
