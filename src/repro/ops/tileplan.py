"""Cross-loop tile scheduling for lazy execution.

Pure planning layer: given an ordered chain of loop descriptors
(:class:`LoopSpec`), partition it into fusable groups, build each group's
dependence graph with :func:`repro.lint.dataflow.build_dependence_graph`,
and compute a *skewed* tile schedule in the style of "Loop Tiling in
Large-Scale Stencil Codes at Run-time with OPS" (arXiv:1704.00693).

The legality argument, in one paragraph: all writes hit the centre point
(enforced at kernel-declaration time), so every cross-loop dependence
reaches at most ``e_d`` points in dimension ``d``, where ``e_d`` is the
maximum absolute read-stencil offset over the group's dependence edges.
A group of ``m`` loops shares one grid of tile cuts per dimension; loop
``l`` (0-based program order) uses the cuts shifted *up* by
``s_l = (m-1-l) * e_d`` and clamped into its own iteration range.  For a
dependence from loop ``i`` to loop ``j > i`` through offset ``|c| <= e_d``
the shifts satisfy ``s_i >= s_j + e_d``, which forces the source point's
tile index to be <= the destination point's tile index in every dimension;
executing tiles in lexicographic grid order (loops in program order inside
each tile) therefore runs every source before — or in the same tile but
earlier than — its destination.  Clamping the shifted cuts to each loop's
own ``[lo, hi)`` keeps the per-loop partition exact (every point exactly
once) and cannot reorder a dependence across tiles, because a clamped cut
only matters for points outside the other loop's reachable range.

This module never executes anything and never imports the runtime; it is
shared by :mod:`repro.ops.lazy` and directly exercised by the hypothesis
property suite.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Hashable, Sequence

from repro.lint.dataflow import (
    AccessRecord,
    DependenceGraph,
    build_dependence_graph,
)

__all__ = [
    "LoopSpec",
    "TileEntry",
    "GroupSchedule",
    "ChainSchedule",
    "build_tile_schedule",
    "DEFAULT_TILE",
]

#: default per-dimension tile width when the caller does not pin one;
#: matches ops.tiling.DEFAULT_TILE so intra-loop and cross-loop tiling
#: agree on granularity
DEFAULT_TILE = 64


@dataclass(frozen=True)
class LoopSpec:
    """One queued loop as the scheduler sees it.

    ``fusable`` is decided by the caller: loops carrying order-sensitive
    side effects (``inc`` reductions, verification shadows, non-Block
    iteration spaces) must come in as ``False`` and become singleton
    groups executed whole.
    """

    ranges: tuple[tuple[int, int], ...]
    accesses: tuple[AccessRecord, ...]
    fusable: bool = True
    block_id: Hashable = None


@dataclass(frozen=True)
class TileEntry:
    """One loop's slice of one tile: execute ``ranges`` of group loop ``loop``."""

    loop: int
    ranges: tuple[tuple[int, int], ...]


@dataclass
class GroupSchedule:
    """Schedule for one contiguous run of chain loops.

    ``fused`` groups carry a tile list (lexicographic grid order, entries
    in program order within each tile); unfused groups execute their
    single loop whole and have no tiles.
    """

    loops: tuple[int, ...]
    fused: bool
    skew: tuple[int, ...] = ()
    tiles: list[list[TileEntry]] = field(default_factory=list)
    graph: DependenceGraph | None = None

    @property
    def n_tiles(self) -> int:
        return len(self.tiles)


@dataclass
class ChainSchedule:
    n_loops: int
    groups: list[GroupSchedule] = field(default_factory=list)

    @property
    def fused_loops(self) -> int:
        return sum(len(g.loops) for g in self.groups if g.fused)

    @property
    def fused_tiles(self) -> int:
        return sum(g.n_tiles for g in self.groups if g.fused)


def _group_chain(specs: Sequence[LoopSpec], max_group: int) -> list[list[int]]:
    """Split the chain into maximal runs of mutually fusable loops."""
    groups: list[list[int]] = []
    for i, spec in enumerate(specs):
        start_new = True
        if groups and spec.fusable:
            prev = specs[groups[-1][-1]]
            start_new = (
                not prev.fusable
                or len(groups[-1]) >= max_group
                or prev.block_id != spec.block_id
                or len(prev.ranges) != len(spec.ranges)
            )
        if start_new:
            groups.append([i])
        else:
            groups[-1].append(i)
    return groups


def _cut_grid(
    specs: Sequence[LoopSpec], tile_shape: Sequence[int], skew: Sequence[int]
) -> list[list[int]]:
    """Shared per-dimension cut positions covering the group's bounding box."""
    ndim = len(specs[0].ranges)
    m = len(specs)
    cuts: list[list[int]] = []
    for d in range(ndim):
        lo = min(s.ranges[d][0] for s in specs)
        hi = max(s.ranges[d][1] for s in specs)
        step = max(1, int(tile_shape[d]))
        # the last cut must stay >= every loop's upper bound even after the
        # largest downward-effective shift; padding by the full skew span is
        # enough because shifts are in [0, (m-1)*e_d]
        top = hi + (m - 1) * skew[d]
        grid = list(range(lo, top, step)) + [top]
        cuts.append(grid)
    return cuts


def _loop_tile_ranges(
    spec: LoopSpec, cuts: list[list[int]], shift: Sequence[int],
    coord: Sequence[int],
) -> tuple[tuple[int, int], ...] | None:
    """Loop ``spec``'s slice of tile ``coord``; None when empty."""
    out = []
    for d, k in enumerate(coord):
        lo, hi = spec.ranges[d]
        grid = cuts[d]
        a = lo if k == 0 else min(max(grid[k] + shift[d], lo), hi)
        b = hi if k == len(grid) - 2 else min(max(grid[k + 1] + shift[d], lo), hi)
        if b <= a:
            return None
        out.append((a, b))
    return tuple(out)


def build_tile_schedule(
    specs: Sequence[LoopSpec],
    tile_shape: Sequence[int] | None = None,
    max_group: int = 16,
) -> ChainSchedule:
    """Plan the whole chain: group, skew, and cut into tiles.

    Groups of one loop (or groups whose iteration spaces are degenerate)
    come back unfused; the executor runs those whole, in order, which is
    exactly eager semantics.
    """
    schedule = ChainSchedule(n_loops=len(specs))
    for members in _group_chain(list(specs), max_group):
        group_specs = [specs[i] for i in members]
        if len(members) < 2:
            schedule.groups.append(
                GroupSchedule(loops=tuple(members), fused=False)
            )
            continue
        ndim = len(group_specs[0].ranges)
        graph = build_dependence_graph([s.accesses for s in group_specs])
        skew = graph.max_extent(ndim)
        if tile_shape:
            shape = tuple(tile_shape)
            if len(shape) != ndim:
                shape = (shape + (DEFAULT_TILE,) * ndim)[:ndim]
        else:
            # adaptive default: DEFAULT_TILE on production-sized extents,
            # a half split on small ones, so fusion still engages on the
            # modest meshes the test suite runs
            extents = [
                max(s.ranges[d][1] for s in group_specs)
                - min(s.ranges[d][0] for s in group_specs)
                for d in range(ndim)
            ]
            shape = tuple(
                DEFAULT_TILE if e >= 2 * DEFAULT_TILE else max(4, -(-e // 2))
                for e in extents
            )
        cuts = _cut_grid(group_specs, shape, skew)
        m = len(group_specs)
        shifts = [
            tuple((m - 1 - l) * skew[d] for d in range(ndim))
            for l in range(m)
        ]
        tiles: list[list[TileEntry]] = []
        grid_counts = [len(g) - 1 for g in cuts]
        for coord in itertools.product(*(range(n) for n in grid_counts)):
            entries = []
            for l, spec in enumerate(group_specs):
                ranges = _loop_tile_ranges(spec, cuts, shifts[l], coord)
                if ranges is not None:
                    entries.append(TileEntry(loop=l, ranges=ranges))
            if entries:
                tiles.append(entries)
        if len(tiles) <= 1:
            # a single tile is just the whole chain run in program order;
            # fusing buys nothing, so fall back to per-loop execution and
            # keep the fused-tile counters honest
            for i in members:
                schedule.groups.append(GroupSchedule(loops=(i,), fused=False))
            continue
        schedule.groups.append(
            GroupSchedule(
                loops=tuple(members),
                fused=True,
                skew=skew,
                tiles=tiles,
                graph=graph,
            )
        )
    return schedule
