"""``ops_par_loop``: parallel loops over index ranges of a block.

Backends:

* ``seq`` — per-point execution with scalar accessors (debugging reference),
* ``vec`` — one sweep with whole-range array accessors (production; the
  analogue of OPS's generated vectorised CPU code),
* ``tiled`` — the vec sweep split into cache-sized tiles (the locality
  optimisation of paper Section VI; also what the OpenMP/CUDA targets look
  like structurally, since centre-point writes need no colouring).

Stencil checking (config ``check_stencils`` or ``check=True``) validates
every access against the declared stencils, reproducing OPS's consistency
machinery described in Section II-C.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.common.access import Access, validate_argument_access
from repro.common.config import get_config
from repro.common.counters import PerfCounters, Timer
from repro.common.errors import APIError, DescriptorViolation
from repro.common.profiling import (
    ArgEvent,
    LoopEvent,
    active_counters,
    notify_loop,
    observers_active,
)
from repro.telemetry import tracer as _trace
from repro.ops import execplan
from repro.ops import lazy as _lazy
from repro.ops.accessor import PointAccessor, RangeAccessor
from repro.ops.block import Block
from repro.ops.dat import Dat
from repro.ops.reduction import Reduction
from repro.ops.stencil import Stencil
from repro.ops.tiling import tiled_ranges

_default_backend = "vec"


@dataclass
class DatArg:
    """One dat argument of an ``ops_par_loop``."""

    dat: Dat
    access: Access
    stencil: Stencil


LoopArg = DatArg | Reduction


def set_default_backend(name: str) -> None:
    """Set the process-wide default backend for OPS loops."""
    if name not in ("seq", "vec", "tiled"):
        raise APIError(f"unknown OPS backend {name!r}; available: seq, vec, tiled")
    global _default_backend
    _default_backend = name


def get_default_backend() -> str:
    return _default_backend


def _validate(
    block: Block,
    ranges: Sequence[tuple[int, int]],
    args: Sequence[LoopArg],
    loop: str | None = None,
) -> None:
    if len(ranges) != block.ndim:
        raise APIError(f"loop over {block.name} needs {block.ndim} ranges, got {len(ranges)}")
    for lo, hi in ranges:
        if hi < lo:
            raise APIError(f"empty/negative range [{lo}, {hi})")
    for i, arg in enumerate(args):
        if isinstance(arg, Reduction):
            continue
        if not isinstance(arg, DatArg):
            raise APIError(f"loop arguments must be dat args or reductions, got {arg!r}")
        if arg.dat.block is not block:
            raise APIError(
                f"dat {arg.dat.name} lives on block {arg.dat.block.name}, "
                f"loop is over {block.name}"
            )
        # re-check the declaration contract with the loop name attached
        # (catches DatArg objects constructed outside Dat.__call__)
        validate_argument_access(
            arg.access, is_global=False, dat=arg.dat.name,
            loop=loop, arg_index=i,
        )


def _npoints(ranges: Sequence[tuple[int, int]]) -> int:
    n = 1
    for lo, hi in ranges:
        n *= max(hi - lo, 0)
    return n


def _account(
    name: str,
    ranges: Sequence[tuple[int, int]],
    args: Sequence[LoopArg],
    counters: PerfCounters,
    flops_per_point: int,
    tiles: int,
) -> None:
    n = _npoints(ranges)
    rec = counters.loop(name)
    rec.invocations += 1
    rec.iterations += n
    rec.flops += flops_per_point * n
    rec.colours = max(rec.colours, tiles)
    for i, arg in enumerate(args):
        if isinstance(arg, Reduction):
            continue
        # dtype attribute, not ``data.dtype``: the storage property is a
        # lazy-flush observation point and accounting must never trigger one
        item = arg.dat.dtype.itemsize
        if arg.access.reads:
            # every stencil point is a load, but the neighbour loads are
            # re-references of values streamed once: they are recorded as
            # indirect traffic with zero unique volume, so the roofline
            # charges DRAM for one stream and cache for the rest
            rec.bytes_read += n * item * len(arg.stencil.points)
            if len(arg.stencil.points) > 1:
                rec.indirect_reads += n * item * (len(arg.stencil.points) - 1)
        if arg.access.writes:
            rec.bytes_written += n * item


def _event_for(name: str, args: Sequence[LoopArg]) -> LoopEvent:
    evs = []
    for a in args:
        if isinstance(a, Reduction):
            evs.append(ArgEvent(a.name, a.access, 1, is_global=True, data_ref=a))
        else:
            evs.append(ArgEvent(a.dat.name, a.access, 1, data_ref=a.dat))
    return LoopEvent(name, evs, api="ops")


def describe_args(args: Sequence[LoopArg]) -> str:
    """Compact descriptor summary for trace spans: ``dat:access[:g]``."""
    parts = []
    for a in args:
        if isinstance(a, Reduction):
            parts.append(f"{a.name}:{a.access.value}:g")
        else:
            parts.append(f"{a.dat.name}:{a.access.value}")
    return ",".join(parts)


def _run_vec(
    kernel: Callable,
    ranges: list[tuple[int, int]],
    args: Sequence[LoopArg],
    check: bool,
    guard_loop: str | None = None,
) -> None:
    accessors = []
    for i, arg in enumerate(args):
        if isinstance(arg, Reduction):
            accessors.append(arg)
        else:
            guard = (guard_loop, i) if guard_loop is not None else None
            accessors.append(
                RangeAccessor(arg.dat, arg.access, arg.stencil, ranges, check, guard)
            )
    kernel(*accessors)


def _run_seq(
    kernel: Callable,
    ranges: list[tuple[int, int]],
    args: Sequence[LoopArg],
    check: bool,
    guard_loop: str | None = None,
) -> None:
    accessors = []
    for i, arg in enumerate(args):
        if isinstance(arg, Reduction):
            accessors.append(arg)
        else:
            guard = (guard_loop, i) if guard_loop is not None else None
            accessors.append(
                PointAccessor(arg.dat, arg.access, arg.stencil, check, guard)
            )
    spans = [range(lo, hi) for lo, hi in ranges]
    # last dimension fastest, matching generated C loop nests
    for point in itertools.product(*spans):
        for acc in accessors:
            if isinstance(acc, PointAccessor):
                acc.bind(point)
        kernel(*accessors)


def par_loop(
    kernel: Callable,
    block: Block,
    ranges: Sequence[tuple[int, int] | list[int]],
    *args: LoopArg,
    backend: str | None = None,
    name: str | None = None,
    flops_per_point: int = 0,
    check: bool | None = None,
    tile_shape: tuple[int, ...] | None = None,
) -> None:
    """Execute ``kernel`` on every grid point of ``ranges`` within ``block``.

    ``ranges`` uses interior coordinates, ``[(lo, hi), ...]`` per dimension,
    half-open.  Negative coordinates reach into the halo (boundary-condition
    loops do this, within each dat's ``halo_depth``).

    On the ``vec`` and ``tiled`` backends the first invocation of a loop
    signature compiles a :class:`repro.ops.execplan.CompiledOpsLoop`; later
    invocations replay it (validation, region views, tile decomposition and
    accounting are all amortised).  Stencil checking and
    ``verify_descriptors`` bypass the compiled path so the checkers always
    see raw execution, and ``seq`` remains the interpreted reference.

    Under ``configure(lazy=True)`` (``REPRO_LAZY=1``) the loop does not
    execute here: it is validated and appended to the calling thread's
    queue (:mod:`repro.ops.lazy`), to run — possibly fused with its
    neighbours into skewed cross-loop tiles — at the next data
    observation.  Loops the queue cannot take (``seq`` backend, stencil
    checking, descriptor verification, active loop observers) first drain
    the queue, preserving program order, then execute eagerly.
    """
    ranges_t = [tuple(int(c) for c in r) for r in ranges]
    loop_name = name or getattr(kernel, "__name__", "ops_loop")
    cfg = get_config()
    do_check = cfg.check_stencils if check is None else check
    chosen = backend if backend is not None else _default_backend
    if cfg.lazy or _lazy.ACTIVE:
        if (
            cfg.lazy
            and not do_check
            and not cfg.verify_descriptors
            and not observers_active()
            and _lazy.enqueue(
                kernel, block, ranges_t, args, chosen, loop_name,
                flops_per_point, tile_shape,
            )
        ):
            return
        # this loop runs eagerly; anything still queued precedes it in
        # program order and must land first
        _lazy.flush_point("eager_par_loop")
    _execute_loop(
        kernel, block, ranges_t, args, chosen, loop_name, flops_per_point,
        do_check, tile_shape,
    )


def _execute_loop(
    kernel: Callable,
    block: Block,
    ranges_t: Sequence[tuple[int, int]],
    args: Sequence[LoopArg],
    chosen: str,
    loop_name: str,
    flops_per_point: int,
    do_check: bool,
    tile_shape: tuple[int, ...] | None,
) -> None:
    """Eager execution of one loop (the dispatch target of lazy flushes too)."""
    cfg = get_config()
    if (
        cfg.use_execplan
        and chosen in execplan.FAST_BACKENDS
        and not do_check
        and not cfg.verify_descriptors
        and isinstance(block, Block)
    ):
        compiled = execplan.lookup(
            kernel, block, ranges_t, args, chosen, loop_name, flops_per_point, tile_shape
        )
        if compiled is not None:
            compiled.execute(args)
            return
    _validate(block, ranges_t, args, loop_name)

    # only build the LoopEvent (and its per-arg descriptor list) when an
    # observer is actually listening — nothing else can set event.skip
    if observers_active():
        event = _event_for(loop_name, args)
        notify_loop(event)
        if event.skip:
            # recovery fast-forward: no computation, observers have already
            # restored any recorded reduction values.  Halo staleness must
            # still advance as if the loop ran, or a distributed replay's
            # exchange schedule diverges from the original run's
            for arg in args:
                if isinstance(arg, DatArg) and arg.access.writes:
                    arg.dat.halo_dirty = True
            return

    trc = _trace.ACTIVE
    counters = active_counters()
    rec = counters.loop(loop_name)
    tiles = 1
    sanitize = cfg.verify_descriptors
    guard_loop = loop_name if sanitize else None
    if sanitize:
        from repro.verify.sanitizer import ops_post_check, ops_snapshot

        do_check = True
        snaps = ops_snapshot(args)
    span = None
    if trc is not None:
        span = trc.begin(
            "par_loop", "ops",
            kernel=loop_name, block=block.name, backend=chosen,
            n=_npoints(ranges_t), descriptors=describe_args(args),
        )
    try:
        with Timer(rec):
            if chosen == "seq":
                _run_seq(kernel, ranges_t, args, do_check, guard_loop)
            elif chosen == "vec":
                _run_vec(kernel, ranges_t, args, do_check, guard_loop)
            elif chosen == "tiled":
                tile_list = tiled_ranges(ranges_t, tile_shape)
                tiles = len(tile_list)
                for tile in tile_list:
                    _run_vec(kernel, tile, args, do_check, guard_loop)
            else:
                raise APIError(f"unknown OPS backend {chosen!r}; available: seq, vec, tiled")
            if sanitize:
                ops_post_check(loop_name, ranges_t, args, snaps)
                counters.record_sanitized_loop()
    except DescriptorViolation as err:
        if trc is not None:
            trc.instant(
                "verify_violation", "verify",
                loop=err.loop, kind=err.kind, arg_index=err.arg_index,
            )
        raise
    finally:
        if span is not None:
            trc.end(span)
    _account(loop_name, ranges_t, args, counters, flops_per_point, tiles)

    for arg in args:
        if isinstance(arg, DatArg) and arg.access.writes:
            arg.dat.halo_dirty = True
