"""OPS blocks: dimensional containers for structured datasets."""

from __future__ import annotations

import itertools

from repro.common.errors import APIError
from repro.common.tokens import next_token

_ids = itertools.count()


class Block:
    """A structured block with a dimensionality but no particular size.

    Datasets defined on the same block may have different extents (cell
    data, face data, multigrid levels), exactly as the paper describes.
    """

    def __init__(self, ndim: int, name: str | None = None):
        if ndim < 1 or ndim > 3:
            raise APIError("blocks must be 1-, 2- or 3-dimensional")
        self.ndim = int(ndim)
        self.name = name if name is not None else f"block_{next(_ids)}"
        #: process-unique identity for cache keys (never reused, unlike id())
        self.token = next_token()
        self.dats: list = []  # populated by Dat construction

    def register(self, dat) -> None:
        self.dats.append(dat)

    def __repr__(self) -> str:
        return f"Block({self.name!r}, ndim={self.ndim})"
