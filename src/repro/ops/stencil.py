"""OPS stencils: declared access patterns for dat arguments."""

from __future__ import annotations

from repro.common.errors import APIError


class Stencil:
    """A declared set of relative offsets a kernel may access.

    The runtime can verify every actual access against the declaration
    (paper Section II-C: "OPS can automatically check whether the used
    stencils match the declared ones").
    """

    def __init__(self, ndim: int, points, name: str | None = None):
        self.ndim = int(ndim)
        pts = []
        for p in points:
            t = tuple(int(c) for c in (p if isinstance(p, (tuple, list)) else (p,)))
            if len(t) != ndim:
                raise APIError(f"stencil point {t} is not {ndim}-dimensional")
            pts.append(t)
        if not pts:
            raise APIError("stencils need at least one point")
        self.points = tuple(dict.fromkeys(pts))  # dedup, keep order
        self.name = name if name is not None else f"S{ndim}D_{len(self.points)}PT"

    def __contains__(self, offset: tuple[int, ...]) -> bool:
        return tuple(offset) in self.points

    @property
    def extent(self) -> tuple[tuple[int, int], ...]:
        """Per-dimension (min, max) offset; determines required halo depth."""
        return tuple(
            (min(p[d] for p in self.points), max(p[d] for p in self.points))
            for d in range(self.ndim)
        )

    @property
    def max_depth(self) -> int:
        """Largest absolute offset in any dimension."""
        return max(max(abs(lo), abs(hi)) for lo, hi in self.extent)

    def writes_only_centre(self) -> bool:
        return self.points == ((0,) * self.ndim,)

    def __repr__(self) -> str:
        return f"Stencil({self.name!r}, {list(self.points)})"


#: common pre-defined stencils, named like OPS's headers
S1D_0 = Stencil(1, [(0,)], "S1D_0")
S1D_3PT = Stencil(1, [(-1,), (0,), (1,)], "S1D_3PT")
S2D_00 = Stencil(2, [(0, 0)], "S2D_00")
S2D_5PT = Stencil(2, [(0, 0), (1, 0), (-1, 0), (0, 1), (0, -1)], "S2D_5PT")
