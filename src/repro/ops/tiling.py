"""Loop tiling (cache blocking) for structured loops.

"Locality on CPUs can be improved using techniques such as cache blocking"
(paper Section VI).  :func:`tiled_ranges` splits an N-D iteration range
into tiles sized to keep a working set within the last-level cache; the
``tiled`` backend executes them in order.
"""

from __future__ import annotations

from repro.common.errors import APIError

#: default tile edge per dimension (doubles; ~64KiB 2-D working set/field)
DEFAULT_TILE = 64


def tiled_ranges(
    ranges: list[tuple[int, int]],
    tile_shape: tuple[int, ...] | None = None,
) -> list[list[tuple[int, int]]]:
    """Split ``ranges`` into a list of tile ranges, row-major order.

    ``tile_shape`` gives the tile edge per dimension (default
    :data:`DEFAULT_TILE` in every dimension).
    """
    ndim = len(ranges)
    if tile_shape is None:
        tile_shape = (DEFAULT_TILE,) * ndim
    if len(tile_shape) != ndim:
        raise APIError(f"tile shape {tile_shape} does not match {ndim} dimensions")
    if any(t < 1 for t in tile_shape):
        raise APIError("tile edges must be positive")

    def split(lo: int, hi: int, t: int) -> list[tuple[int, int]]:
        return [(a, min(a + t, hi)) for a in range(lo, hi, t)] or [(lo, hi)]

    per_dim = [split(lo, hi, t) for (lo, hi), t in zip(ranges, tile_shape)]
    tiles: list[list[tuple[int, int]]] = [[]]
    for options in per_dim:
        tiles = [prefix + [opt] for prefix in tiles for opt in options]
    return tiles


def tile_working_set_bytes(tile_shape: tuple[int, ...], n_fields: int, itemsize: int = 8) -> int:
    """Bytes touched by one tile across all fields (cache-fit estimation)."""
    pts = 1
    for t in tile_shape:
        pts *= t
    return pts * n_fields * itemsize


def choose_tile_shape(
    ranges: list[tuple[int, int]],
    n_fields: int,
    cache_bytes: int,
    itemsize: int = 8,
) -> tuple[int, ...]:
    """Pick a tile shape whose working set fits in ``cache_bytes``.

    Shrinks the slowest-varying dimension first, mirroring how OPS tiles
    structured sweeps.
    """
    shape = [hi - lo for lo, hi in ranges]
    d = 0
    while tile_working_set_bytes(tuple(shape), n_fields, itemsize) > cache_bytes:
        if shape[d] <= 8:
            d = (d + 1) % len(shape)
            if all(s <= 8 for s in shape):
                break
            continue
        shape[d] = max(shape[d] // 2, 8)
    return tuple(shape)
