"""Global reductions for OPS loops (the ``ops_arg_reduce`` analogue).

Kernels receive a reduction *handle* and fold values into it explicitly::

    def field_summary(vol_frac, mass, vol):
        cell = vol_frac[0, 0] * cell_volume
        vol.inc(cell)
        mass.inc(cell * density[0, 0])

The same kernel works on both backends: the sequential backend passes
scalars to ``inc``/``min``/``max``; the vectorised backend passes whole
arrays, which the handle reduces with the matching NumPy reduction.  Under
MPI the per-rank partials are combined with an allreduce by the decomposed
runtime.
"""

from __future__ import annotations

import numpy as np

from repro.common.access import Access
from repro.common.errors import APIError
from repro.ops import lazy as _lazy


class Reduction:
    """A scalar reduction target with a fixed combining operation."""

    def __init__(self, kind: str = "inc", initial: float | None = None, name: str | None = None):
        if kind not in ("inc", "min", "max"):
            raise APIError("reduction kind must be 'inc', 'min' or 'max'")
        self.kind = kind
        self.name = name if name is not None else f"red_{kind}"
        if initial is None:
            initial = {"inc": 0.0, "min": np.inf, "max": -np.inf}[kind]
        # a brand-new handle cannot be referenced by any queued loop, so
        # the initial assignment bypasses the observation hook
        self._value = float(initial)

    @property
    def value(self) -> float:
        """The reduction result — a lazy-execution observation point.

        Reading (or externally assigning) the value forces queued loops to
        land first, so ``dt = dt_min.value`` after a queued timestep loop
        can never see a stale partial.  Kernel-side folds during a flush
        re-enter through the same property but the flush guard makes that
        a no-op.
        """
        if _lazy.ACTIVE:
            _lazy.flush_point("reduction_value")
        return self._value

    @value.setter
    def value(self, v: float) -> None:
        if _lazy.ACTIVE:
            _lazy.flush_point("reduction_value_set")
        self._value = v

    # -- kernel-facing fold operations ---------------------------------------

    def inc(self, v) -> None:
        if self.kind != "inc":
            raise APIError(f"reduction {self.name} is {self.kind!r}, not 'inc'")
        self.value += float(np.sum(v))

    def min(self, v) -> None:
        if self.kind != "min":
            raise APIError(f"reduction {self.name} is {self.kind!r}, not 'min'")
        self.value = min(self.value, float(np.min(v)))

    def max(self, v) -> None:
        if self.kind != "max":
            raise APIError(f"reduction {self.name} is {self.kind!r}, not 'max'")
        self.value = max(self.value, float(np.max(v)))

    # -- runtime-facing -----------------------------------------------------------

    @property
    def access(self) -> Access:
        return {"inc": Access.INC, "min": Access.MIN, "max": Access.MAX}[self.kind]

    def combine_across(self, comm) -> None:
        """Allreduce this reduction's value over a communicator (MPI runtime)."""
        op = {"inc": "sum", "min": "min", "max": "max"}[self.kind]
        self.value = float(comm.allreduce(self.value, op=op))

    def reset(self, initial: float | None = None) -> None:
        if initial is None:
            initial = {"inc": 0.0, "min": np.inf, "max": -np.inf}[self.kind]
        self.value = float(initial)

    def __repr__(self) -> str:
        return f"Reduction({self.name!r}, kind={self.kind!r}, value={self.value})"
