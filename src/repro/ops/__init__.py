"""OPS-style active library for multi-block structured-mesh computations.

The abstraction (paper Section II-A): a collection of :class:`Block` s,
each with a number of dimensions but no particular size; :class:`Dat` asets
defined on blocks, each with its own size and halo depth; explicit
:class:`Halo` definitions between dats on different blocks; and
computations expressed as parallel loops over index ranges of one block,
accessing dats through declared :class:`Stencil` s.

Kernels are written once, from a single-threaded perspective, indexing
their accessors by stencil offset::

    def heat_step(u, unew):
        unew[0, 0] = 0.25 * (u[1, 0] + u[-1, 0] + u[0, 1] + u[0, -1])

and run unchanged on every backend: the sequential backend hands the kernel
scalar point accessors, the vectorised backend hands it whole shifted array
views — the same specialisation OPS's code generator performs.  Writes are
restricted to the centre point (offset 0), which is what makes structured
loops race-free without colouring.

Global reductions use explicit reduction handles (``r.inc(v)`` /
``r.min(v)`` / ``r.max(v)``), the analogue of ``ops_arg_reduce``.
"""

from repro.common.access import Access

READ = Access.READ
WRITE = Access.WRITE
RW = Access.RW
INC = Access.INC
MIN = Access.MIN
MAX = Access.MAX

from repro.ops.block import Block
from repro.ops.dat import Dat
from repro.ops.stencil import Stencil, S2D_00, S2D_5PT, S1D_0, S1D_3PT
from repro.ops.reduction import Reduction
from repro.ops.parloop import par_loop, set_default_backend
from repro.ops.execplan import CompiledOpsLoop, clear_plan_cache, plan_cache_stats, set_plan_cache_capacity
from repro.ops.halo import Halo, HaloGroup
from repro.ops.decomp import DecomposedBlock
from repro.ops.tiling import tiled_ranges
from repro.ops.fusion import LoopChain
from repro.ops.lazy import (
    chain_cache_stats,
    clear_chain_cache,
    flush as lazy_flush,
    lazy_scope,
    queued_loops,
)
from repro.ops.tileplan import build_tile_schedule

__all__ = [
    "READ",
    "WRITE",
    "RW",
    "INC",
    "MIN",
    "MAX",
    "Block",
    "Dat",
    "Stencil",
    "S2D_00",
    "S2D_5PT",
    "S1D_0",
    "S1D_3PT",
    "Reduction",
    "par_loop",
    "set_default_backend",
    "CompiledOpsLoop",
    "clear_plan_cache",
    "plan_cache_stats",
    "set_plan_cache_capacity",
    "Halo",
    "HaloGroup",
    "DecomposedBlock",
    "tiled_ranges",
    "LoopChain",
    "build_tile_schedule",
    "chain_cache_stats",
    "clear_chain_cache",
    "lazy_flush",
    "lazy_scope",
    "queued_loops",
]
