"""Lazy execution with cross-loop tiling (loop fusion).

Section VI discusses locality optimisations ("cache blocking") and notes
the reference CUDA CloverLeaf "uses loop fusion in some places".  OPS's
own later development made this a headline feature: queue the loop chain,
analyse dependencies from the access-execute descriptions, and execute a
*group* of loops tile by tile so a tile's data is still in cache when the
next loop touches it.

Legality here is decided conservatively from the declared stencils: two
consecutive loops may stay in one fused group as long as no loop reads,
through a non-centre stencil point, a dat written earlier in the group
(centre-to-centre producer/consumer pairs are safe because each tile's
points are produced before they are consumed within the same tile).
A non-centre read of a group-written dat, or an inter-loop dependency
through a Reduction consumed by control flow, flushes the group.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.common.errors import APIError
from repro.ops.block import Block
from repro.ops.parloop import DatArg, LoopArg, par_loop
from repro.ops.reduction import Reduction
from repro.ops.tiling import tiled_ranges


@dataclass
class QueuedLoop:
    """One deferred ``ops_par_loop``."""

    kernel: Callable
    block: Block
    ranges: list[tuple[int, int]]
    args: tuple[LoopArg, ...]
    name: str
    flops_per_point: int = 0


@dataclass
class FusionGroup:
    """A run of consecutive loops legal to execute tile-by-tile."""

    loops: list[QueuedLoop] = field(default_factory=list)

    def bounding_ranges(self) -> list[tuple[int, int]]:
        ndim = self.loops[0].block.ndim
        lo = [min(l.ranges[d][0] for l in self.loops) for d in range(ndim)]
        hi = [max(l.ranges[d][1] for l in self.loops) for d in range(ndim)]
        return list(zip(lo, hi))


def _intersect(a: Sequence[tuple[int, int]], b: Sequence[tuple[int, int]]):
    out = []
    for (alo, ahi), (blo, bhi) in zip(a, b):
        lo, hi = max(alo, blo), min(ahi, bhi)
        if hi <= lo:
            return None
        out.append((lo, hi))
    return out


def _breaks_group(loop: QueuedLoop, written: set[int], read_wide: set[int]) -> bool:
    """True if this loop cannot join the current group.

    Illegal within a tile-fused group:

    * RAW through a stencil — reading, at a non-centre offset, a dat some
      earlier group member writes (the neighbouring value may belong to a
      tile not yet produced);
    * WAR through a stencil — writing a dat an earlier member reads with a
      non-centre stencil (this tile's write clobbers a neighbour value a
      later tile's read still needs).

    Centre-to-centre dependencies are safe: within one tile the loops run
    in program order over the same points.
    """
    for arg in loop.args:
        if isinstance(arg, Reduction):
            continue
        if arg.access.reads and id(arg.dat) in written:
            if not arg.stencil.writes_only_centre():
                return True
        if arg.access.writes and id(arg.dat) in read_wide:
            return True
    return False


class LoopChain:
    """Queue of OPS loops executed with cross-loop tiling.

    >>> chain = LoopChain(tile_shape=(32, 32))
    >>> chain.add(k1, block, ranges, a(ops.READ), b(ops.WRITE))
    >>> chain.add(k2, block, ranges, b(ops.READ), c(ops.WRITE))
    >>> stats = chain.execute()

    Results are identical to executing the loops eagerly in order; the
    benefit is cache locality (and, on real hardware, fewer kernel
    launches) — ``stats`` reports the grouping achieved.
    """

    def __init__(self, tile_shape: tuple[int, ...] | None = None):
        self.tile_shape = tile_shape
        self.queued: list[QueuedLoop] = []

    def add(
        self,
        kernel: Callable,
        block: Block,
        ranges,
        *args: LoopArg,
        name: str | None = None,
        flops_per_point: int = 0,
    ) -> None:
        """Queue one loop (same signature as ``ops.par_loop``)."""
        if self.queued and self.queued[0].block is not block:
            raise APIError("a loop chain fuses loops on a single block")
        self.queued.append(
            QueuedLoop(
                kernel=kernel,
                block=block,
                ranges=[tuple(int(c) for c in r) for r in ranges],
                args=args,
                name=name or getattr(kernel, "__name__", "ops_loop"),
                flops_per_point=flops_per_point,
            )
        )

    # -- grouping ----------------------------------------------------------------

    def build_groups(self) -> list[FusionGroup]:
        """Split the queue into maximal legal fusion groups."""
        groups: list[FusionGroup] = []
        current = FusionGroup()
        written: set[int] = set()
        read_wide: set[int] = set()
        for loop in self.queued:
            if current.loops and _breaks_group(loop, written, read_wide):
                groups.append(current)
                current = FusionGroup()
                written = set()
                read_wide = set()
            current.loops.append(loop)
            for arg in loop.args:
                if not isinstance(arg, DatArg):
                    continue
                if arg.access.writes:
                    written.add(id(arg.dat))
                if arg.access.reads and not arg.stencil.writes_only_centre():
                    read_wide.add(id(arg.dat))
        if current.loops:
            groups.append(current)
        return groups

    # -- execution -----------------------------------------------------------------

    def execute(self, backend: str = "vec") -> dict:
        """Run the whole queued chain; returns fusion statistics."""
        groups = self.build_groups()
        tiles_executed = 0
        for group in groups:
            if len(group.loops) == 1 or self.tile_shape is None:
                for loop in group.loops:
                    par_loop(
                        loop.kernel, loop.block, loop.ranges, *loop.args,
                        backend=backend, name=loop.name,
                        flops_per_point=loop.flops_per_point,
                    )
                continue
            bounding = group.bounding_ranges()
            for tile in tiled_ranges(bounding, self.tile_shape):
                tiles_executed += 1
                for loop in group.loops:
                    sub = _intersect(loop.ranges, tile)
                    if sub is None:
                        continue
                    par_loop(
                        loop.kernel, loop.block, sub, *loop.args,
                        backend=backend, name=loop.name,
                        flops_per_point=loop.flops_per_point,
                    )
        stats = {
            "loops": len(self.queued),
            "groups": len(groups),
            "largest_group": max((len(g.loops) for g in groups), default=0),
            "tiles": tiles_executed,
        }
        self.queued = []
        return stats
