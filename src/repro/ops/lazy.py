"""Lazy par_loop queueing with cross-loop tiled execution.

The runtime half of ROADMAP item 1 ("Loop Tiling in Large-Scale Stencil
Codes at Run-time with OPS", arXiv:1704.00693).  With ``configure(lazy=
True)`` (or ``REPRO_LAZY=1``) an ``ops.par_loop`` call does not execute:
it validates, appends a :class:`QueuedLoop` to the calling thread's queue,
and returns.  The queue drains at the first *observation point* — any
``Dat.data`` access, any ``Reduction.value`` read or write, a halo
exchange, a checkpoint save, ``timing_report``, an ``op2.par_loop`` in a
mixed-API program, or an explicit :func:`flush` — at which moment:

1. the chain's dependence graph is built from the recorded access
   descriptors (:func:`repro.lint.dataflow.build_dependence_graph`, the
   same analysis the static linter runs over source),
2. :func:`repro.ops.tileplan.build_tile_schedule` fuses runs of
   compatible loops and cuts them into skewed cross-loop tiles,
3. each tile executes through the normal dispatch
   (:func:`repro.ops.parloop._execute_loop`), so the ``execplan`` compiled
   path caches one plan per (loop, tile) and replays it every timestep.

Schedules are cached in a bounded LRU keyed by the chain's structural
signature — per loop: kernel code identity, block/dat tokens, ranges,
access modes and stencil points.  Closure *values* are deliberately
excluded (unlike ``execplan``'s plan keys): the schedule depends only on
the descriptors, so a kernel factory that bakes a fresh ``dt`` every step
still hits.  A replaced dat draws a new token and misses, which is the
invalidation path.

Exactness rules (what may fuse):

* ``vec``/``tiled`` loops over a real :class:`~repro.ops.block.Block`
  fuse; ``seq`` is the interpreted reference semantics and stays whole;
* loops folding an ``inc`` reduction never fuse — float addition is not
  associative, and tiling would reorder the partial sums (``min``/``max``
  are exact under any partition and do fuse);
* when loop observers are installed (checkpointing, ``LoopTrace``), loops
  don't queue, and installing an observer is itself an observation point
  that drains the installer's queue first (eager execution would have run
  those loops before the observer existed); a queue that still finds
  observers active at flush time — a global observer installed from
  another thread — replays every loop whole in program order instead of
  fusing, so each observer sees per-loop events in eager order.

Failure semantics: a kernel error (or injected fault) during a flush
propagates at the observation point, not the original call site; the rest
of that queue is dropped, exactly as if the program had crashed mid-chain.
Recovery paths re-execute from the last checkpoint, which re-enqueues the
lost tail.
"""

from __future__ import annotations

import contextlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.common.config import get_config
from repro.common.profiling import active_counters, observers_active
from repro.lint.dataflow import AccessRecord
from repro.ops.tileplan import ChainSchedule, LoopSpec, build_tile_schedule
from repro.telemetry import tracer as _trace

__all__ = [
    "ACTIVE",
    "QueuedLoop",
    "enqueue",
    "flush",
    "flush_point",
    "abandon",
    "queued_loops",
    "lazy_scope",
    "chain_cache_stats",
    "clear_chain_cache",
]

#: total loops currently queued across all threads.  Read (unlocked — an
#: int load is atomic) by every flush hook as the zero-cost "is lazy even
#: in play" gate: when 0 a ``Dat.data`` access pays one module-attribute
#: check and nothing else.  Mutated only through :func:`_active_add`:
#: ``ACTIVE += 1`` is a read-modify-write, and a lost update between
#: concurrent simmpi rank threads could drive the count to 0 with loops
#: still queued, silently disabling every flush gate.
ACTIVE = 0

_active_lock = threading.Lock()


def _active_add(n: int) -> None:
    global ACTIVE
    with _active_lock:
        ACTIVE += n


class _ThreadState(threading.local):
    """Per-thread queue: simulated MPI ranks are threads, and every
    cross-rank data movement (send buffers, gathers, halo strips) is read
    on the owning rank's thread, so a thread only ever needs to flush its
    own queue."""

    queue: list
    flushing: bool

    def __init__(self):
        self.queue = []
        self.flushing = False


_state = _ThreadState()


@dataclass
class QueuedLoop:
    """One deferred ``par_loop`` invocation, plus its scheduling metadata."""

    kernel: Callable
    block: object
    ranges: list
    args: tuple
    backend: str
    name: str
    flops_per_point: int
    tile_shape: tuple | None
    sig: tuple
    spec: LoopSpec
    #: (dat token, itemsize) per distinct dat argument — the bytes-saved model
    dat_items: tuple


def _kernel_code_id(kernel: Callable):
    """Kernel identity for the chain cache: the *code*, not the closure.

    Two closures of one factory (``make_pdv(dt)`` each step) share a code
    object and therefore a schedule; schedule legality depends only on the
    declared descriptors, never on captured values.
    """
    code = getattr(kernel, "__code__", None)
    if code is None:
        return ("obj", getattr(kernel, "__name__", repr(type(kernel))))
    return (code.co_filename, code.co_firstlineno, code.co_name)


def _read_extent(cert, i: int, declared: tuple) -> tuple:
    """Read offsets for descriptor position ``i``: certified when proven.

    The tile planner skews by read extents; the declared stencil is the
    conservative (and halo-legality) bound, and the analyzer's proven
    extent — when the lowering was complete and the offsets bounded —
    replaces it, tightened to the declared set.  Rank-mismatched proofs
    (a kernel indexing fewer dims than the block) keep the declaration.
    """
    if not cert.complete or i >= len(cert.params):
        return declared
    proven = cert.reads_of(cert.params[i])
    if proven is None:
        return declared
    ranks = {len(p) for p in declared}
    if any(len(p) not in ranks for p in proven):
        return declared
    return tuple(p for p in declared if p in set(proven))


def enqueue(
    kernel: Callable,
    block,
    ranges: list,
    args: Sequence,
    backend: str,
    name: str,
    flops_per_point: int,
    tile_shape: tuple | None,
) -> bool:
    """Queue one loop; False means the caller must execute it eagerly.

    Only ``vec``/``tiled`` loops queue: ``seq`` is the per-point
    interpreted reference and unknown backends must raise eagerly with
    their usual diagnostics.  Validation runs here so malformed loops
    still fail at the call site, not at some distant flush.
    """
    from repro.lint.abstract import certify_callable
    from repro.ops.parloop import DatArg, _validate
    from repro.ops.reduction import Reduction

    if backend not in ("vec", "tiled"):
        return False
    _validate(block, ranges, args, name)

    cert = certify_callable(kernel)
    fusable = not cert.rng  # reordering loops would reorder the RNG stream
    merged: dict = {}  # dat token -> [reads, writes, offsets set, itemsize]
    sig_args = []
    for i, a in enumerate(args):
        if isinstance(a, Reduction):
            if a.kind == "inc":
                # float sums are order-sensitive; tiling would reorder them
                fusable = False
            sig_args.append(("r", a.kind))
            continue
        assert isinstance(a, DatArg)
        tok = a.dat.token
        points = tuple(tuple(p) for p in a.stencil.points)
        rec = merged.get(tok)
        if rec is None:
            rec = merged[tok] = [False, False, set(), a.dat.dtype.itemsize]
        rec[0] = rec[0] or a.access.reads
        rec[1] = rec[1] or a.access.writes
        if a.access.reads:
            rec[2].update(_read_extent(cert, i, points))
        sig_args.append(("d", tok, a.access.value, points))

    accesses = tuple(
        AccessRecord(ref=tok, reads=r, writes=w, offsets=tuple(sorted(offs)))
        for tok, (r, w, offs, _item) in merged.items()
    )
    ranges_key = tuple(tuple(r) for r in ranges)
    spec = LoopSpec(
        ranges=ranges_key,
        accesses=accesses,
        fusable=fusable,
        block_id=block.token,
    )
    sig = (
        _kernel_code_id(kernel),
        block.token,
        ranges_key,
        backend,
        tile_shape,
        fusable,
        tuple(sig_args),
    )
    item = QueuedLoop(
        kernel=kernel,
        block=block,
        ranges=ranges,
        args=tuple(args),
        backend=backend,
        name=name,
        flops_per_point=flops_per_point,
        tile_shape=tile_shape,
        sig=sig,
        spec=spec,
        dat_items=tuple((tok, rec[3]) for tok, rec in merged.items()),
    )

    # eager execution sets halo_dirty after running; queueing must mark it
    # *now* so a distributed runtime's on-demand exchange check (which runs
    # before the next loop is even queued) still sees the pending write
    for a in args:
        if isinstance(a, DatArg) and a.access.writes:
            a.dat.halo_dirty = True

    st = _state
    st.queue.append(item)
    _active_add(1)
    if len(st.queue) >= get_config().lazy_queue_limit:
        flush("queue_limit")
    return True


def flush_point(reason: str = "observe") -> None:
    """Drain the calling thread's queue if it has one (observation hook).

    This is the function behind every transparent flush trigger; it is
    safe (and cheap) to call from hot paths — re-entrant calls during a
    flush, and calls from threads with empty queues, return immediately.
    """
    if ACTIVE:
        st = _state
        if st.queue and not st.flushing:
            flush(reason)


def flush(reason: str = "explicit") -> None:
    """Execute and clear the calling thread's queued loops, in order."""
    st = _state
    if st.flushing or not st.queue:
        return
    queue = st.queue
    st.queue = []
    _active_add(-len(queue))
    st.flushing = True
    try:
        _run_queue(queue, reason)
    finally:
        st.flushing = False


def abandon() -> None:
    """Drop the calling thread's queue without executing (dead-rank cleanup).

    Used by the simulated-MPI runtime when a rank thread is torn down by an
    injected failure: its queued tail must not execute (the eager program
    would have crashed before reaching it) and must not leak into the
    global ``ACTIVE`` count.
    """
    st = _state
    n = len(st.queue)
    if n:
        st.queue = []
        _active_add(-n)


def queued_loops() -> int:
    """Number of loops queued on the calling thread (tests/diagnostics)."""
    return len(_state.queue)


@contextlib.contextmanager
def lazy_scope(**overrides):
    """Run a block under ``lazy=True``, flushing on exit.

    >>> with lazy_scope(lazy_tile=(32, 32)):
    ...     app.step()
    """
    from repro.common.config import swap

    with swap(lazy=True, **overrides):
        try:
            yield
        finally:
            flush("scope_exit")


# -- chain-schedule cache -----------------------------------------------------

_chains: OrderedDict[tuple, tuple[ChainSchedule, tuple]] = OrderedDict()
_chain_lock = threading.Lock()
_chain_stats = {"hits": 0, "misses": 0, "evictions": 0}


def _group_bytes_saved(queue: list, loops: tuple) -> int:
    """Modelled DRAM traffic a fused group avoids, relative to eager.

    Eager execution streams every touched dat from memory once per loop;
    a fused tile's working set stays cache-resident across the group, so a
    dat touched by ``k`` loops of the group is streamed once instead of
    ``k`` times.  Each re-touch after the first saves one full stream of
    that loop's iteration footprint.
    """
    seen: set = set()
    saved = 0
    for li in loops:
        q = queue[li]
        n = 1
        for lo, hi in q.ranges:
            n *= max(hi - lo, 0)
        for tok, itemsize in q.dat_items:
            if tok in seen:
                saved += n * itemsize
            else:
                seen.add(tok)
    return saved


def _schedule_for(queue: list) -> tuple[ChainSchedule, tuple]:
    cfg = get_config()
    key = (
        tuple(q.sig for q in queue),
        tuple(cfg.lazy_tile) if cfg.lazy_tile else None,
        cfg.lazy_max_group,
    )
    counters = active_counters()
    with _chain_lock:
        cached = _chains.get(key)
        if cached is not None:
            _chains.move_to_end(key)
            _chain_stats["hits"] += 1
            counters.record_chain_hit()
            return cached

    schedule = build_tile_schedule(
        [q.spec for q in queue],
        tile_shape=cfg.lazy_tile,
        max_group=cfg.lazy_max_group,
    )
    group_saved = tuple(
        _group_bytes_saved(queue, g.loops) if g.fused else 0
        for g in schedule.groups
    )
    trc = _trace.ACTIVE
    with _chain_lock:
        _chains[key] = (schedule, group_saved)
        _chain_stats["misses"] += 1
        counters.record_chain_miss()
        if trc is not None:
            trc.instant(
                "chain_miss", "lazy",
                loops=len(queue), groups=len(schedule.groups),
                fused_tiles=schedule.fused_tiles,
            )
        limit = cfg.chain_cache_size
        while len(_chains) > limit:
            _chains.popitem(last=False)
            _chain_stats["evictions"] += 1
    return schedule, group_saved


def chain_cache_stats() -> dict[str, int]:
    """Process-lifetime chain-schedule cache statistics."""
    with _chain_lock:
        return {"size": len(_chains), **_chain_stats}


def clear_chain_cache() -> None:
    """Drop every cached chain schedule (tests / reconfiguration)."""
    with _chain_lock:
        _chains.clear()


# -- flush execution ----------------------------------------------------------


def _execute_whole(q: QueuedLoop) -> None:
    from repro.ops.parloop import _execute_loop

    _execute_loop(
        q.kernel, q.block, q.ranges, q.args, q.backend, q.name,
        q.flops_per_point, False, q.tile_shape,
    )


def _run_queue(queue: list, reason: str) -> None:
    from repro.ops.parloop import _execute_loop

    counters = active_counters()
    counters.record_lazy_flush(len(queue))
    trc = _trace.ACTIVE
    span = (
        trc.begin("lazy_flush", "lazy", reason=reason, loops=len(queue))
        if trc is not None
        else None
    )
    try:
        if observers_active():
            # fallback: an observer installed from *another* thread after
            # these loops queued (installation on this thread would have
            # drained them).  It must see one notify per loop, in program
            # order, with state at each event identical to eager execution
            # — replay whole loops and skip fusion entirely
            for q in queue:
                _execute_whole(q)
            return
        schedule, group_saved = _schedule_for(queue)
        for gi, group in enumerate(schedule.groups):
            if not group.fused:
                _execute_whole(queue[group.loops[0]])
                continue
            counters.record_lazy_group(group.n_tiles, group_saved[gi])
            for t_idx, tile in enumerate(group.tiles):
                tspan = (
                    trc.begin("lazy_tile", "lazy", tile=t_idx, loops=len(tile))
                    if trc is not None
                    else None
                )
                try:
                    for entry in tile:
                        q = queue[group.loops[entry.loop]]
                        _execute_loop(
                            q.kernel, q.block, list(entry.ranges), q.args,
                            "vec", q.name, q.flops_per_point, False, None,
                        )
                finally:
                    if tspan is not None:
                        trc.end(tspan)
    finally:
        if span is not None:
            trc.end(span)
