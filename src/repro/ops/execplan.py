"""Compiled structured-loop executors: the ops hot path, specialised per site.

The structured-mesh analogue of :mod:`repro.op2.execplan` (paper Sections
II-C and VI): everything a loop re-derives per call from its declared
stencils and ranges — range validation, shifted region views, the tile
decomposition, the loop event, traffic accounting — is computed on the
first execution and replayed afterwards.

A :class:`CompiledOpsLoop` holds:

* the validated argument list and the prebuilt loop event,
* one :class:`FastAccessor` per dat argument (per tile on the ``tiled``
  backend): the shifted storage views for every declared stencil offset,
  computed once — the interpreted :class:`~repro.ops.accessor.RangeAccessor`
  re-slices on every ``u[off]`` of every invocation,
* the tile list for ``tiled`` sweeps,
* the loop's exact traffic/flop accounting as precomputed constants.

Reduction handles are *slots*, not captures: apps routinely build a fresh
:class:`~repro.ops.reduction.Reduction` per invocation, so plans key on the
slot's access mode and rebind the caller's handle (accessor position and
event ``data_ref``) on every call.

Plans live in a bounded LRU registry keyed by stable monotonic tokens.
Because the cached views alias a dat's storage array, entries guard on the
identity of every ``dat.data`` and are invalidated when storage is
replaced.  ``seq`` stays the untouched interpreted reference, and stencil
checking / descriptor verification always bypass the compiled path.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Sequence

from repro.common.config import get_config
from repro.common.counters import LoopRecord, PerfCounters, Timer
from repro.common.profiling import (
    LoopEvent,
    active_counters,
    notify_loop,
    observers_active,
)
from repro.common.tokens import kernel_token
from repro.telemetry import tracer as _trace
from repro.ops.block import Block
from repro.ops.dat import Dat
from repro.ops.reduction import Reduction
from repro.ops.tiling import tiled_ranges

__all__ = [
    "CompiledOpsLoop",
    "FastAccessor",
    "lookup",
    "clear_plan_cache",
    "plan_cache_stats",
    "set_plan_cache_capacity",
]

#: backends the compiled path covers; ``seq`` deliberately stays the
#: untouched interpreted semantic baseline
FAST_BACKENDS = frozenset({"vec", "tiled"})


class FastAccessor:
    """Array accessor with the shifted views cached per stencil offset.

    Semantically identical to an unchecked
    :class:`~repro.ops.accessor.RangeAccessor` — it hands the kernel the
    very same ``dat.region(ranges, off)`` views — but the slicing happens
    once at compile time.  Offsets outside the declared stencil (legal when
    checking is off, which is the only time this accessor runs) are sliced
    lazily and cached too.
    """

    __slots__ = ("dat", "ranges", "_views")

    def __init__(self, dat: Dat, ranges: list[tuple[int, int]], points: Sequence[tuple]):
        self.dat = dat
        self.ranges = ranges
        self._views: dict = {}
        for p in points:
            view = dat.region(ranges, p)
            self._views[p] = view
            if len(p) == 1:
                # 1-D kernels index with a bare int: u[1], not u[(1,)]
                self._views[p[0]] = view

    def _view(self, offset):
        view = self._views.get(offset)
        if view is None:
            off = offset if isinstance(offset, tuple) else (int(offset),)
            view = self.dat.region(self.ranges, tuple(int(o) for o in off))
            self._views[offset] = view
        return view

    def __getitem__(self, offset):
        return self._view(offset)

    def __setitem__(self, offset, value) -> None:
        self._view(offset)[...] = value


class CompiledOpsLoop:
    """Everything re-derivable from one structured loop site, computed once."""

    def __init__(
        self,
        kernel: Callable,
        block: Block,
        ranges: list[tuple[int, int]],
        args: Sequence,
        backend: str,
        loop_name: str,
        flops_per_point: int,
        tile_shape: tuple[int, ...] | None,
    ):
        from repro.ops import parloop as _parloop  # deferred: parloop imports us

        # (a) full validation, exactly as the interpreted path performs it
        _parloop._validate(block, ranges, args, loop_name)

        self.kernel = kernel
        self.name = loop_name
        self.args = list(args)  # strong refs keep dats alive while cached

        # (b) the prebuilt event, reduction slots, written-dat list
        self.event: LoopEvent = _parloop._event_for(loop_name, args)
        # span attributes are part of the plan too: formatting descriptors
        # per call would dominate a traced fast path
        self.trace_attrs = {
            "kernel": loop_name,
            "block": block.name,
            "backend": backend,
            "n": _parloop._npoints(ranges),
            "descriptors": _parloop.describe_args(args),
            "compiled": True,
        }
        self.red_slots = [i for i, a in enumerate(args) if isinstance(a, Reduction)]
        self.written_dats = []
        for a in args:
            if isinstance(a, Reduction) or not a.access.writes:
                continue
            if not any(d is a.dat for d in self.written_dats):
                self.written_dats.append(a.dat)

        # (c) tile decomposition and per-tile cached-view accessors
        if backend == "tiled":
            tile_list = tiled_ranges(ranges, tile_shape)
            self.tiles = len(tile_list)
        else:
            tile_list = [ranges]
            self.tiles = 1
        self.tile_accessors: list[list] = []
        for tile in tile_list:
            accs: list = []
            for a in args:
                if isinstance(a, Reduction):
                    accs.append(None)  # slot rebound with the caller's handle
                else:
                    accs.append(FastAccessor(a.dat, tile, tuple(a.stencil.points)))
            self.tile_accessors.append(accs)

        # (d) accounting constants: the interpreted path's exact counter
        # arithmetic, run once against a scratch register
        scratch = PerfCounters()
        _parloop._account(loop_name, ranges, args, scratch, flops_per_point, self.tiles)
        self.acct: LoopRecord = scratch.loops[loop_name]

        # guards: the cached views alias each dat's storage array, so the
        # plan is only valid while every ``dat.data`` is the same ndarray
        guards: dict[int, tuple] = {}
        for a in args:
            if not isinstance(a, Reduction):
                guards[a.dat.token] = (a.dat, a.dat.data)
        self._guards = list(guards.values())

        # (e) native tier: one compiled C kernel per tile, admission-gated.
        # The identity guards above already pin every baked storage address,
        # so a native plan needs no extra invalidation machinery here.
        from repro.native import plan as _native  # deferred: optional tier

        natives: list | None = []
        for tile in tile_list:
            nat = _native.try_compile_ops(kernel, tile, args, loop_name)
            if nat is None:
                natives = None
                break
            natives.append(nat)
        self.natives = natives
        if natives:
            self.trace_attrs["native"] = True

    def still_valid(self) -> bool:
        """True while every dat still owns the storage the views were cut from."""
        for dat, data in self._guards:
            if dat.data is not data:
                return False
        return True

    def execute(self, args: Sequence) -> None:
        """Replay the plan with this call's reduction handles bound in."""
        if observers_active():
            event = self.event
            for i in self.red_slots:
                red = args[i]
                ev = event.args[i]
                ev.name = red.name
                ev.data_ref = red
            event.skip = False
            notify_loop(event)
            if event.skip:
                # recovery fast-forward: same contract as the interpreted path
                for dat in self.written_dats:
                    dat.halo_dirty = True
                return

        counters = active_counters()
        rec = counters.loop(self.name)
        kernel = self.kernel
        red_slots = self.red_slots
        trc = _trace.ACTIVE
        span = trc.begin("par_loop", "ops", **self.trace_attrs) if trc is not None else None
        try:
            with Timer(rec):
                if self.natives:
                    counters.record_native_call()
                    for nat in self.natives:
                        nat.execute(args)
                else:
                    for accs in self.tile_accessors:
                        for i in red_slots:
                            accs[i] = args[i]
                        kernel(*accs)
        finally:
            if span is not None:
                trc.end(span)
        rec.merge(self.acct)

        for dat in self.written_dats:
            dat.halo_dirty = True


# -- registry -----------------------------------------------------------------

_registry: OrderedDict[tuple, CompiledOpsLoop] = OrderedDict()
_lock = threading.Lock()
_stats = {"hits": 0, "misses": 0, "invalidations": 0, "evictions": 0}


def _signature(
    kernel: Callable,
    block: Block,
    ranges: list[tuple[int, int]],
    args: Sequence,
    backend: str,
    loop_name: str,
    flops_per_point: int,
    tile_shape: tuple[int, ...] | None,
) -> tuple:
    parts: list = [
        kernel_token(kernel),
        block.token,
        tuple(ranges),
        backend,
        loop_name,
        flops_per_point,
        tile_shape,
    ]
    for a in args:
        if isinstance(a, Reduction):
            # reductions are rebindable slots: any handle with this access
            # mode replays the same plan
            parts.append(("r", a.access))
        else:
            parts.append(("d", a.dat.token, a.access, tuple(a.stencil.points)))
    return tuple(parts)


def lookup(
    kernel: Callable,
    block: Block,
    ranges: list[tuple[int, int]],
    args: Sequence,
    backend: str,
    loop_name: str,
    flops_per_point: int,
    tile_shape: tuple[int, ...] | None,
) -> CompiledOpsLoop | None:
    """Fetch (or compile) the plan for this loop site; None -> slow path.

    Returns None only when a signature cannot even be formed (malformed
    arguments) so the interpreted path can raise its usual diagnostics.
    Compilation itself runs the full interpreted-path validation and lets
    any :class:`~repro.common.errors.APIError` propagate.
    """
    from repro.lint.abstract import certify_callable

    if certify_callable(kernel).rng:
        # the kernel draws random numbers: its output is not a pure
        # function of the signature, so a replayed plan is not a replay
        return None

    try:
        key = _signature(kernel, block, ranges, args, backend, loop_name, flops_per_point, tile_shape)
    except (AttributeError, TypeError):
        return None

    counters = active_counters()
    trc = _trace.ACTIVE
    with _lock:
        compiled = _registry.get(key)
        if compiled is not None:
            if compiled.still_valid():
                _registry.move_to_end(key)
                _stats["hits"] += 1
                counters.record_plan_hit()
                return compiled
            del _registry[key]
            _stats["invalidations"] += 1
            counters.record_plan_invalidation()
            if trc is not None:
                trc.instant(
                    "plan_invalidation", "plan", kernel=loop_name, backend=backend
                )

    # compile outside the lock: slicing every tile's views can be expensive
    # and simulated MPI ranks compile distinct per-rank signatures concurrently
    compiled = CompiledOpsLoop(
        kernel, block, ranges, args, backend, loop_name, flops_per_point, tile_shape
    )
    with _lock:
        _registry[key] = compiled
        _stats["misses"] += 1
        counters.record_plan_miss()
        if trc is not None:
            trc.instant("plan_miss", "plan", kernel=loop_name, backend=backend)
        limit = get_config().execplan_cache_size
        while len(_registry) > limit:
            _, evicted = _registry.popitem(last=False)
            _stats["evictions"] += 1
            counters.record_plan_eviction()
            if trc is not None:
                trc.instant("plan_eviction", "plan", kernel=evicted.name)
    return compiled


def clear_plan_cache() -> None:
    """Drop every compiled structured loop (tests / reconfiguration)."""
    with _lock:
        _registry.clear()


def set_plan_cache_capacity(limit: int) -> None:
    """Resize the per-process plan LRU (persistently; evicts down to fit).

    Shares ``Config.execplan_cache_size`` with the op2 registry (default 512,
    ``REPRO_EXECPLAN_CACHE_SIZE`` at startup), so sizing either registry
    sizes both.
    """
    if limit < 1:
        raise ValueError("plan cache capacity must be >= 1")
    from repro.common.config import configure

    configure(execplan_cache_size=limit)
    with _lock:
        while len(_registry) > limit:
            _registry.popitem(last=False)
            _stats["evictions"] += 1


def plan_cache_stats() -> dict[str, int]:
    """Process-lifetime registry statistics (tests and diagnostics)."""
    with _lock:
        return {"size": len(_registry), **_stats}
