"""Kernel-side accessors: scalar (sequential) and array (vectorised) views.

A kernel indexes its arguments by stencil offset, ``u[1, 0]``.  The
sequential backend hands it a :class:`PointAccessor` (scalar reads/writes
at one grid point); the vectorised backend hands it a
:class:`RangeAccessor` (whole shifted NumPy views over the iteration
range).  Both validate accesses against the declared stencil and access
mode when stencil checking is enabled, and both record which offsets were
touched, which is how the runtime stencil verifier works.
"""

from __future__ import annotations

import numpy as np

from repro.common.access import Access
from repro.common.errors import DescriptorViolation, StencilMismatchError
from repro.ops.dat import Dat
from repro.ops.stencil import Stencil


def _normalise(offset) -> tuple[int, ...]:
    if isinstance(offset, tuple):
        return tuple(int(o) for o in offset)
    return (int(offset),)


class _BaseAccessor:
    """Shared stencil/access validation and access recording.

    Under the sanitizer (``guard`` set to a ``(loop_name, arg_index)``
    label) violations raise the structured
    :class:`~repro.common.errors.DescriptorViolation` naming the loop and
    argument, and read-only accessors hand out non-writeable views.
    """

    def __init__(
        self,
        dat: Dat,
        access: Access,
        stencil: Stencil,
        check: bool,
        guard: tuple[str, int] | None = None,
    ):
        self.dat = dat
        self.access = access
        self.stencil = stencil
        self.check = check
        self.guard = guard
        self.touched: set[tuple[int, ...]] = set()

    def _raise(self, message: str, kind: str, offset: tuple[int, ...]) -> None:
        if self.guard is not None:
            loop, i = self.guard
            raise DescriptorViolation(
                f"loop {loop!r}, arg {i}: {message}",
                loop=loop, arg_index=i, kind=kind, indices=(offset,),
            )
        raise StencilMismatchError(message)

    def _validate(self, offset: tuple[int, ...], writing: bool) -> None:
        self.touched.add(offset)
        if not self.check:
            return
        if offset not in self.stencil:
            self._raise(
                f"dat {self.dat.name}: access at offset {offset} is outside "
                f"declared stencil {self.stencil.name} {list(self.stencil.points)}",
                "stencil", offset,
            )
        if writing and not self.access.writes:
            self._raise(
                f"dat {self.dat.name}: kernel writes but access mode is "
                f"{self.access.short}",
                "read-arg-written", offset,
            )
        if not writing and not self.access.reads:
            self._raise(
                f"dat {self.dat.name}: kernel reads but access mode is "
                f"{self.access.short} (write-only)",
                "write-reads-old-value", offset,
            )


class PointAccessor(_BaseAccessor):
    """Scalar accessor bound to one grid point (sequential backend)."""

    def __init__(
        self,
        dat: Dat,
        access: Access,
        stencil: Stencil,
        check: bool,
        guard: tuple[str, int] | None = None,
    ):
        super().__init__(dat, access, stencil, check, guard)
        self.point: tuple[int, ...] = (0,) * dat.block.ndim

    def bind(self, point: tuple[int, ...]) -> None:
        self.point = point

    def __getitem__(self, offset) -> float:
        off = _normalise(offset)
        self._validate(off, writing=False)
        idx = self.dat.storage_index(*(p + o for p, o in zip(self.point, off)))
        return self.dat.data[idx]

    def __setitem__(self, offset, value) -> None:
        off = _normalise(offset)
        self._validate(off, writing=True)
        idx = self.dat.storage_index(*(p + o for p, o in zip(self.point, off)))
        self.dat.data[idx] = value


class RangeAccessor(_BaseAccessor):
    """Array accessor over a whole iteration range (vectorised backend)."""

    def __init__(
        self,
        dat: Dat,
        access: Access,
        stencil: Stencil,
        ranges: list[tuple[int, int]],
        check: bool,
        guard: tuple[str, int] | None = None,
    ):
        super().__init__(dat, access, stencil, check, guard)
        self.ranges = ranges

    def __getitem__(self, offset) -> np.ndarray:
        off = _normalise(offset)
        self._validate(off, writing=False)
        view = self.dat.region(self.ranges, off)
        if self.guard is not None and not self.access.writes:
            # READ args get non-writeable views: a kernel mutating one in
            # place (bypassing __setitem__) fails immediately
            view = view.view()
            view.flags.writeable = False
        return view

    def __setitem__(self, offset, value) -> None:
        off = _normalise(offset)
        self._validate(off, writing=True)
        self.dat.region(self.ranges, off)[...] = value
