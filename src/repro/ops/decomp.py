"""Distributed-memory decomposition of structured blocks.

OPS performs "partitioning across processes and ... standard halo
exchanges, exchanging halo messages on-demand based on the type of access
and the stencils" (paper Section II-B).  A :class:`DecomposedBlock` splits
a block's index space over a cartesian process grid; each rank holds local
dats covering its subdomain plus ghost layers, and
:meth:`LocalBlock.par_loop` intersects global loop ranges with the owned
subdomain, exchanging face halos on demand (dimension-by-dimension, so
corner points are filled transitively).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.access import Access
from repro.common.errors import APIError
from repro.ops.block import Block
from repro.ops.dat import Dat
from repro.ops.parloop import DatArg, LoopArg, par_loop
from repro.ops.reduction import Reduction
from repro.simmpi.cart import CartComm, dims_create
from repro.simmpi.comm import SimComm

_EXCH_TAG = 23


@dataclass
class _SubDomain:
    """One rank's share of the global index space."""

    offset: tuple[int, ...]  # global coordinate of local interior origin
    size: tuple[int, ...]


def _split_extents(n: int, parts: int) -> list[tuple[int, int]]:
    """Split [0, n) into ``parts`` near-equal contiguous extents."""
    cuts = [(n * p) // parts for p in range(parts + 1)]
    return [(cuts[p], cuts[p + 1]) for p in range(parts)]


class LocalBlock:
    """One rank's view of a decomposed block."""

    def __init__(self, decomp: "DecomposedBlock", rank: int):
        self.decomp = decomp
        self.rank = rank
        self.sub = decomp.subdomains[rank]
        self.block = Block(decomp.block.ndim, f"{decomp.block.name}@{rank}")
        #: id(global dat) -> local dat
        self.dats: dict[int, Dat] = {}
        for gdat in decomp.dats:
            local_size = tuple(
                self._local_extent(d, gdat) for d in range(self.block.ndim)
            )
            ldat = Dat(
                self.block,
                local_size,
                halo_depth=gdat.halo_depth,
                dtype=gdat.dtype,
                name=f"{gdat.name}@{rank}",
            )
            # initialise from the global dat (including its ghost layers)
            lo = self.sub.offset
            ldat.data[...] = gdat.region(
                [(-gdat.halo_depth + lo[d], lo[d] + local_size[d] + gdat.halo_depth)
                 for d in range(self.block.ndim)]
            )
            self.dats[id(gdat)] = ldat

    def _local_extent(self, d: int, gdat: Dat) -> int:
        """Local interior extent along dimension d for a dat of this size.

        Dats whose global extent differs from the block's nominal size
        (e.g. face data with +1) give their surplus to the last rank.
        """
        nominal_lo, nominal_hi = self.decomp.extents[d][self.decomp.coords(self.rank)[d]]
        extent = nominal_hi - nominal_lo
        surplus = gdat.size[d] - self.decomp.global_size[d]
        if self.decomp.coords(self.rank)[d] == self.decomp.dims[d] - 1:
            extent += surplus
        return extent

    def local_dat(self, gdat: Dat) -> Dat:
        return self.dats[id(gdat)]

    # -- halo exchange ------------------------------------------------------------

    def halo_exchange(self, comm: SimComm, gdat: Dat, depth: int | None = None) -> None:
        """Exchange ghost layers with face neighbours, one dimension at a time."""
        ldat = self.local_dat(gdat)
        if depth is None:
            depth = ldat.halo_depth
        depth = min(depth, ldat.halo_depth)
        cart = CartComm(comm, self.decomp.dims)
        nd = self.block.ndim
        nbytes = 0
        nmsgs = 0
        for d in range(nd):
            lo_nb, hi_nb = cart.shift(d)
            n_local = ldat.size[d]
            # ranges over full storage extent in other dims (so that corner
            # values propagate transitively across the dimension sweeps)
            full = [
                (-ldat.halo_depth, ldat.size[k] + ldat.halo_depth) for k in range(nd)
            ]

            def face(lo: int, hi: int) -> list[tuple[int, int]]:
                r = list(full)
                r[d] = (lo, hi)
                return r

            # send owned strips, receive into ghost strips
            if lo_nb is not None:
                comm.send(np.ascontiguousarray(ldat.region(face(0, depth))), lo_nb, _EXCH_TAG)
                nmsgs += 1
            if hi_nb is not None:
                comm.send(
                    np.ascontiguousarray(ldat.region(face(n_local - depth, n_local))),
                    hi_nb,
                    _EXCH_TAG,
                )
                nmsgs += 1
            if lo_nb is not None:
                ldat.region(face(-depth, 0))[...] = comm.recv(lo_nb, _EXCH_TAG)
            if hi_nb is not None:
                ldat.region(face(n_local, n_local + depth))[...] = comm.recv(hi_nb, _EXCH_TAG)
            for nb in (lo_nb, hi_nb):
                if nb is not None:
                    strip = depth
                    vol = strip
                    for k in range(nd):
                        if k != d:
                            vol *= ldat.size[k] + 2 * ldat.halo_depth
                    nbytes += vol * ldat.data.dtype.itemsize
        comm.counters.record_halo_exchange(nmsgs, nbytes)
        ldat.halo_dirty = False

    # -- distributed loop ------------------------------------------------------------

    def _local_ranges(self, global_ranges: list[tuple[int, int]]) -> list[tuple[int, int]] | None:
        """Intersect global loop ranges with this rank's responsibility.

        Edge ranks also own the global boundary overshoot (negative
        coordinates / beyond-size coordinates used by boundary loops).
        """
        out = []
        for d, (glo, ghi) in enumerate(global_ranges):
            olo, ohi = self.sub.offset[d], self.sub.offset[d] + self.sub.size[d]
            c = self.decomp.coords(self.rank)[d]
            resp_lo = olo if c > 0 else min(olo, glo)
            resp_hi = ohi if c < self.decomp.dims[d] - 1 else max(ohi, ghi)
            lo = max(glo, resp_lo)
            hi = min(ghi, resp_hi)
            if hi <= lo:
                return None
            out.append((lo - olo, hi - olo))
        return out

    def par_loop(
        self,
        comm: SimComm,
        kernel,
        global_ranges,
        *args: LoopArg,
        backend: str = "vec",
        name: str | None = None,
        flops_per_point: int = 0,
    ) -> None:
        """Execute one distributed OPS loop (SPMD collective call).

        Arguments reference the *global* dats; reductions are combined
        across ranks afterwards.
        """
        granges = [tuple(int(c) for c in r) for r in global_ranges]
        largs: list[LoopArg] = []
        red_start: dict[int, float] = {}
        for arg in args:
            if isinstance(arg, Reduction):
                red_start[id(arg)] = arg.value
                largs.append(arg)
                continue
            ldat = self.local_dat(arg.dat)
            if arg.access in (Access.READ, Access.RW) and arg.stencil.max_depth > 0:
                if ldat.halo_dirty:
                    self.halo_exchange(comm, arg.dat, depth=arg.stencil.max_depth)
            largs.append(DatArg(dat=ldat, access=arg.access, stencil=arg.stencil))

        local_ranges = self._local_ranges(granges)
        if local_ranges is not None:
            par_loop(
                kernel,
                self.block,
                local_ranges,
                *largs,
                backend=backend,
                name=name,
                flops_per_point=flops_per_point,
            )

        for arg in args:
            if isinstance(arg, Reduction):
                if arg.kind == "inc":
                    delta = arg.value - red_start[id(arg)]
                    arg.value = red_start[id(arg)] + comm.allreduce(delta, op="sum")
                else:
                    arg.combine_across(comm)

    def gather(self, comm: SimComm, gdat: Dat) -> np.ndarray | None:
        """Collect the dat's interior onto every rank in global layout."""
        ldat = self.local_dat(gdat)
        payload = (self.sub.offset, ldat.size, ldat.interior.copy())
        gathered = comm.gather(payload, root=0)
        out = None
        if comm.rank == 0:
            out = np.zeros(gdat.size, dtype=gdat.dtype)
            for offset, size, values in gathered:
                idx = tuple(slice(o, o + s) for o, s in zip(offset, size))
                out[idx] = values
        return comm.bcast(out, root=0)


class DecomposedBlock:
    """Cartesian decomposition of one block and its dats over N ranks."""

    def __init__(
        self,
        nranks: int,
        block: Block,
        dats: list[Dat],
        *,
        global_size: tuple[int, ...] | None = None,
        dims: list[int] | None = None,
    ):
        self.block = block
        self.dats = list(dats)
        if not self.dats:
            raise APIError("a decomposed block needs at least one dat")
        if global_size is None:
            # nominal size: the elementwise minimum across dats (cell space)
            sizes = np.asarray([d.size for d in self.dats])
            global_size = tuple(int(s) for s in sizes.min(axis=0))
        self.global_size = global_size
        self.nranks = nranks
        self.dims = dims if dims is not None else dims_create(nranks, block.ndim)
        if int(np.prod(self.dims)) != nranks:
            raise APIError(f"dims {self.dims} do not cover {nranks} ranks")
        self.extents = [
            _split_extents(self.global_size[d], self.dims[d]) for d in range(block.ndim)
        ]
        self.subdomains = [self._subdomain(r) for r in range(nranks)]
        self.locals = [LocalBlock(self, r) for r in range(nranks)]

    def coords(self, rank: int) -> list[int]:
        out = []
        for extent in reversed(self.dims):
            out.append(rank % extent)
            rank //= extent
        return list(reversed(out))

    def _subdomain(self, rank: int) -> _SubDomain:
        coords = self.coords(rank)
        offset = []
        size = []
        for d in range(self.block.ndim):
            lo, hi = self.extents[d][coords[d]]
            offset.append(lo)
            size.append(hi - lo)
        return _SubDomain(offset=tuple(offset), size=tuple(size))

    def local(self, rank: int) -> LocalBlock:
        return self.locals[rank]


def dump_dat_distributed(comm: SimComm, lb: LocalBlock, gdat: Dat, path) -> None:
    """Dump an OPS dat's global interior from a decomposed run (rank 0 writes)."""
    values = lb.gather(comm, gdat)
    if comm.rank == 0:
        np.savez(path, data=values)
    comm.barrier()
