"""OPS dats: structured data with halo padding."""

from __future__ import annotations

import numpy as np

from repro.common.access import Access, validate_argument_access
from repro.common.errors import APIError
from repro.common.tokens import next_token
from repro.ops import lazy as _lazy
from repro.ops.block import Block
from repro.ops.stencil import Stencil


class Dat:
    """Data on a structured block, padded with ``halo_depth`` ghost layers.

    Storage shape is ``size + 2*halo_depth`` per dimension; interior index
    ``i`` lives at storage index ``i + halo_depth``.  Different dats on one
    block may have different sizes (cell vs. face vs. vertex data).

    Calling a dat builds a loop argument::

        density(ops.READ, S2D_5PT)
        energy(ops.WRITE)          # defaults to the centre-point stencil
    """

    def __init__(
        self,
        block: Block,
        size,
        *,
        halo_depth: int = 2,
        dtype=np.float64,
        name: str | None = None,
        initial: float | np.ndarray | None = None,
    ):
        self.block = block
        size_t = tuple(int(s) for s in (size if hasattr(size, "__len__") else (size,)))
        if len(size_t) != block.ndim:
            raise APIError(f"dat size {size_t} does not match block ndim {block.ndim}")
        if any(s < 1 for s in size_t):
            raise APIError("dat sizes must be positive")
        if halo_depth < 0:
            raise APIError("halo depth must be non-negative")
        self.size = size_t
        self.halo_depth = int(halo_depth)
        self.name = name if name is not None else f"dat_{block.name}"
        storage = tuple(s + 2 * self.halo_depth for s in size_t)
        self._storage = np.zeros(storage, dtype=dtype)
        if initial is not None:
            if np.isscalar(initial):
                self.interior[...] = initial
            else:
                arr = np.asarray(initial, dtype=dtype)
                if arr.shape != size_t:
                    raise APIError(f"initial data shape {arr.shape} != {size_t}")
                self.interior[...] = arr
        self.dtype = self._storage.dtype
        #: owned data changed since the last halo exchange (MPI runtime flag)
        self.halo_dirty = True
        #: process-unique identity for cache keys (never reused, unlike id())
        self.token = next_token()
        block.register(self)

    @property
    def data(self) -> np.ndarray:
        """The padded storage array.

        Every access is a lazy-execution observation point: loops this dat
        (or any other) is queued on must land before the caller can look at
        or mutate the values.  The guard is one module-attribute check when
        nothing is queued, and re-entrant reads during a flush (accessors,
        plan guards) bypass it.
        """
        if _lazy.ACTIVE:
            _lazy.flush_point("dat_data")
        return self._storage

    @data.setter
    def data(self, array) -> None:
        # replacing the storage invalidates queued loops' eventual views
        # the same way it invalidates compiled plans: flush first
        if _lazy.ACTIVE:
            _lazy.flush_point("dat_data_set")
        self._storage = array

    @property
    def interior(self) -> np.ndarray:
        """Writable view of the interior (non-halo) region."""
        h = self.halo_depth
        idx = tuple(slice(h, h + s) for s in self.size)
        return self.data[idx]

    def storage_index(self, *point: int) -> tuple[int, ...]:
        """Map an interior index to its storage index."""
        return tuple(p + self.halo_depth for p in point)

    def region(self, ranges, offset: tuple[int, ...] = None) -> np.ndarray:
        """View of the storage for interior ``ranges`` shifted by ``offset``.

        ``ranges`` is ``[(lo, hi), ...]`` in interior coordinates; the
        returned view covers ``[lo+off, hi+off)`` per dimension.  Negative
        interior coordinates (into the halo) are legal down to
        ``-halo_depth``.
        """
        if offset is None:
            offset = (0,) * self.block.ndim
        idx = []
        for (lo, hi), off, s in zip(ranges, offset, self.size):
            a = lo + off + self.halo_depth
            b = hi + off + self.halo_depth
            if a < 0 or b > s + 2 * self.halo_depth:
                raise APIError(
                    f"dat {self.name}: range [{lo},{hi}) offset {off} leaves storage "
                    f"(halo depth {self.halo_depth})"
                )
            idx.append(slice(a, b))
        return self.data[tuple(idx)]

    def __call__(self, access: Access, stencil: Stencil | None = None):
        from repro.ops.parloop import DatArg  # import cycle with parloop

        validate_argument_access(access, is_global=False, dat=self.name)
        if stencil is None:
            from repro.ops.stencil import Stencil as _S

            stencil = _S(self.block.ndim, [(0,) * self.block.ndim])
        if stencil.ndim != self.block.ndim:
            raise APIError(
                f"stencil {stencil.name} is {stencil.ndim}-D, dat {self.name} "
                f"is {self.block.ndim}-D"
            )
        if access in (Access.WRITE, Access.RW, Access.INC):
            # writes through non-centre points would race between grid points
            non_centre = [p for p in stencil.points if any(c != 0 for c in p)]
            if non_centre:
                raise APIError(
                    f"dat {self.name}: write access must use the centre-point "
                    f"stencil (got extra points {non_centre})"
                )
        return DatArg(dat=self, access=access, stencil=stencil)

    def copy_from(self, other: "Dat") -> None:
        """Copy another dat's full storage (sizes must match)."""
        if other.data.shape != self.data.shape:
            raise APIError("dat shapes differ")
        self.data[...] = other.data

    def adopt_storage(self, array: np.ndarray) -> None:
        """Rebind the padded storage to an externally owned buffer.

        Used by :mod:`repro.mp.shm` to move a dat onto a shared-memory
        segment (and back off it).  The buffer must match the current
        storage exactly; the caller is responsible for keeping it alive for
        as long as the dat references it.
        """
        arr = np.asarray(array)
        if arr.shape != self._storage.shape or arr.dtype != self._storage.dtype:
            raise APIError(
                f"dat {self.name}: adopted storage {arr.shape}/{arr.dtype} != "
                f"{self._storage.shape}/{self._storage.dtype}"
            )
        self.data = arr  # the setter flushes queued lazy loops first

    def norm(self) -> float:
        """L2 norm of the interior (validation helper)."""
        v = self.interior
        return float(np.sqrt(np.sum(v * v)))

    def __repr__(self) -> str:
        return (
            f"Dat({self.name!r}, block={self.block.name}, size={self.size}, "
            f"halo={self.halo_depth})"
        )
