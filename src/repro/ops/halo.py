"""Inter-block halos: explicit copies between dats on different blocks.

"Halos between datasets defined on different blocks are ... explicitly
defined by the user, including their extent and orientation relative to
each other", and "inter-block halo exchanges are triggered explicitly by
the user and serve as synchronization points" (paper Section II-A).

A :class:`Halo` copies a region of one dat into a region of another (often
the target's ghost layer), with optional axis permutation and flips to
express relative orientation; a :class:`HaloGroup` applies a set of halos
as one exchange.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import APIError
from repro.ops.dat import Dat
from repro.telemetry import tracer as _trace


class Halo:
    """One directed inter-block copy: from_dat[from_ranges] -> to_dat[to_ranges].

    ``transpose`` permutes the source axes before the copy; ``flip`` reverses
    the given (post-transpose) axes.  Region shapes must agree after the
    transform.
    """

    def __init__(
        self,
        from_dat: Dat,
        to_dat: Dat,
        from_ranges,
        to_ranges,
        *,
        transpose: tuple[int, ...] | None = None,
        flip: tuple[bool, ...] | None = None,
    ):
        self.from_dat = from_dat
        self.to_dat = to_dat
        self.from_ranges = [tuple(int(c) for c in r) for r in from_ranges]
        self.to_ranges = [tuple(int(c) for c in r) for r in to_ranges]
        nd_from = from_dat.block.ndim
        nd_to = to_dat.block.ndim
        if len(self.from_ranges) != nd_from or len(self.to_ranges) != nd_to:
            raise APIError("halo ranges must match block dimensionalities")
        self.transpose = transpose
        self.flip = flip

        src_shape = self._shape(self.from_ranges)
        if transpose is not None:
            if sorted(transpose) != list(range(nd_from)):
                raise APIError(f"transpose {transpose} is not a permutation")
            src_shape = tuple(src_shape[a] for a in transpose)
        dst_shape = self._shape(self.to_ranges)
        if src_shape != dst_shape:
            raise APIError(
                f"halo region shapes differ after transform: {src_shape} vs {dst_shape}"
            )

    @staticmethod
    def _shape(ranges) -> tuple[int, ...]:
        return tuple(hi - lo for lo, hi in ranges)

    def apply(self) -> None:
        """Perform the copy."""
        src = self.from_dat.region(self.from_ranges)
        if self.transpose is not None:
            src = np.transpose(src, self.transpose)
        if self.flip is not None:
            for ax, f in enumerate(self.flip):
                if f:
                    src = np.flip(src, axis=ax)
        self.to_dat.region(self.to_ranges)[...] = src
        self.to_dat.halo_dirty = True

    def __repr__(self) -> str:
        return (
            f"Halo({self.from_dat.name}{self.from_ranges} -> "
            f"{self.to_dat.name}{self.to_ranges})"
        )


class HaloGroup:
    """A named set of halos applied together (``ops_halo_transfer``)."""

    def __init__(self, halos: list[Halo], name: str = "halo_group"):
        self.halos = list(halos)
        self.name = name

    def apply(self) -> None:
        trc = _trace.ACTIVE
        if trc is None:
            for h in self.halos:
                h.apply()
            return
        nbytes = sum(
            h.to_dat.region(h.to_ranges).nbytes for h in self.halos
        )
        with trc.span("halo_transfer", "halo", group=self.name,
                      halos=len(self.halos), bytes=nbytes):
            for h in self.halos:
                h.apply()

    def __len__(self) -> int:
        return len(self.halos)
