"""OPS state I/O: the HDF5-like store for structured dats (npz-backed).

Mirrors ``ops_fetch_dat`` / ``ops_decl_dat_hdf5``: save a block's datasets
(including ghost layers, so a run can resume exactly) and restore them into
freshly declared dats.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.common.errors import APIError
from repro.ops.block import Block
from repro.ops.dat import Dat


def save_state(path: str | Path, dats: dict[str, Dat]) -> None:
    """Serialise named dats (full storage incl. halos) into one npz file."""
    payload: dict[str, np.ndarray] = {}
    for name, d in dats.items():
        payload[f"data/{name}"] = d.data
        payload[f"meta/{name}"] = np.asarray(
            list(d.size) + [d.halo_depth], dtype=np.int64
        )
    np.savez(Path(path), **payload)


def load_state(path: str | Path, block: Block) -> dict[str, Dat]:
    """Recreate dats on ``block`` from a state file written by save_state."""
    out: dict[str, Dat] = {}
    with np.load(Path(path)) as npz:
        names = [k.split("/", 1)[1] for k in npz.files if k.startswith("data/")]
        for name in names:
            meta = npz[f"meta/{name}"]
            size = tuple(int(s) for s in meta[:-1])
            halo = int(meta[-1])
            if len(size) != block.ndim:
                raise APIError(
                    f"dat {name!r} is {len(size)}-D, block {block.name} is {block.ndim}-D"
                )
            d = Dat(block, size, halo_depth=halo, name=name)
            d.data[...] = npz[f"data/{name}"]
            out[name] = d
    return out


def restore_into(path: str | Path, dats: dict[str, Dat]) -> None:
    """Restore saved values into existing dats (shapes must match)."""
    with np.load(Path(path)) as npz:
        for name, d in dats.items():
            key = f"data/{name}"
            if key not in npz.files:
                raise APIError(f"state file has no dat named {name!r}")
            saved = npz[key]
            if saved.shape != d.data.shape:
                raise APIError(
                    f"dat {name!r}: saved shape {saved.shape} != live {d.data.shape}"
                )
            d.data[...] = saved
            d.halo_dirty = True
