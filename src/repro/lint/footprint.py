"""Per-argument footprint inference over kernel bodies.

Given a kernel ``FunctionDef``, infer for each parameter how the body
accesses it: read, written, read-before-first-write, unused, additively
updated, folded through a reduction method — and at which constant
stencil offsets.  The result is diffed against the declared descriptors
by :mod:`repro.lint.kernel_checks`.

Event ordering approximates program order by AST visit order (values are
visited before the targets they are assigned to), which matches the
straight-line kernels the DSL encourages; control flow does not reorder
events for the purposes of the first-access rule, mirroring the
first-access classification in ``repro.checkpoint.analysis``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

#: accessor/reduction fold methods the runtime APIs expose on arguments
_FOLD_METHODS = {"inc": "inc", "min": "min", "max": "max"}


@dataclass
class AccessEvent:
    """One access to a kernel parameter inside the body."""

    kind: str  # "load" | "store" | "aug" | "fold"
    order: int
    lineno: int
    offset: tuple[int, ...] | None = None  # constant subscript, if any
    op: str | None = None  # aug: "add"/"sub"/other; fold: method name

    @property
    def is_write(self) -> bool:
        return self.kind in ("store", "aug", "fold")

    @property
    def is_read(self) -> bool:
        # an augmented update observes the old value only through the
        # combining operator, which the reduction machinery handles; it is
        # not a "read" for the first-access / read-before-write rules.
        return self.kind == "load"


@dataclass
class ParamFootprint:
    """Everything the kernel body does with one parameter."""

    name: str
    events: list[AccessEvent] = field(default_factory=list)
    #: the bare name escaped (passed to a call, aliased, returned):
    #: the footprint is a lower bound and most checks must be skipped
    escaped: bool = False
    #: the parameter name was rebound inside the body
    rebound: bool = False

    @property
    def used(self) -> bool:
        return bool(self.events) or self.escaped

    @property
    def opaque(self) -> bool:
        return self.escaped or self.rebound

    @property
    def writes(self) -> list[AccessEvent]:
        return [e for e in self.events if e.is_write]

    @property
    def reads(self) -> list[AccessEvent]:
        return [e for e in self.events if e.is_read]

    @property
    def plain_stores(self) -> list[AccessEvent]:
        return [e for e in self.events if e.kind == "store"]

    @property
    def first_event(self) -> AccessEvent | None:
        return self.events[0] if self.events else None

    @property
    def read_before_write(self) -> bool:
        """A load happens before any write event."""
        for e in self.events:
            if e.is_write:
                return False
            if e.is_read:
                return True
        return False

    def nonadditive_events(self, kind: str) -> list[AccessEvent]:
        """Events incompatible with a declared reduction of ``kind``.

        ``kind`` is "inc" (op2/ops INC), "min" or "max".  An INC argument
        may only be updated via ``+=``/``-=`` or ``.inc(...)``; MIN/MAX
        arguments only via the matching fold method.
        """
        bad = []
        for e in self.events:
            if e.kind == "aug":
                if kind == "inc" and e.op in ("add", "sub"):
                    continue
                bad.append(e)
            elif e.kind == "fold":
                if e.op == kind:
                    continue
                bad.append(e)
            else:  # plain store or load both observe/clobber the value
                bad.append(e)
        return bad

    def constant_offsets(self) -> list[AccessEvent]:
        """Events with a statically-known subscript offset."""
        return [e for e in self.events if e.offset is not None]


def _const_offset(node: ast.expr) -> tuple[int, ...] | None:
    """A subscript expression as a constant offset tuple, if it is one."""

    def comp(n: ast.expr) -> int | None:
        if isinstance(n, ast.Constant) and isinstance(n.value, int) \
                and not isinstance(n.value, bool):
            return n.value
        if isinstance(n, ast.UnaryOp) and isinstance(n.op, ast.USub):
            inner = comp(n.operand)
            return None if inner is None else -inner
        return None

    if isinstance(node, ast.Tuple):
        parts = [comp(e) for e in node.elts]
        if any(p is None for p in parts):
            return None
        return tuple(parts)  # type: ignore[arg-type]
    single = comp(node)
    return None if single is None else (single,)


_AUG_OPS = {ast.Add: "add", ast.Sub: "sub"}


class _FootprintVisitor(ast.NodeVisitor):
    """Collects access events for a set of parameter names."""

    def __init__(self, params: list[str]) -> None:
        self.fp = {p: ParamFootprint(p) for p in params}
        self._order = 0
        self._aug_op: str | None = None

    def _next(self) -> int:
        self._order += 1
        return self._order

    def _param_of(self, node: ast.expr) -> ParamFootprint | None:
        if isinstance(node, ast.Name):
            return self.fp.get(node.id)
        return None

    def _record(self, p: ParamFootprint, kind: str, node: ast.AST,
                offset: tuple[int, ...] | None = None,
                op: str | None = None) -> None:
        p.events.append(AccessEvent(
            kind=kind, order=self._next(),
            lineno=getattr(node, "lineno", 0), offset=offset, op=op,
        ))

    # -- statements ----------------------------------------------------------

    def _try_fold_assign(self, node: ast.Assign) -> bool:
        """Recognise ``p[i] = min(p[i], x)`` / ``max`` as a fold.

        This is the op2 idiom for MIN/MAX reduction contributions (the C
        API's ``*lo = MIN(*lo, x)``); reading it as load-then-store would
        wrongly flag every legal MIN kernel as non-additive."""
        if len(node.targets) != 1:
            return False
        t = node.targets[0]
        if not isinstance(t, ast.Subscript):
            return False
        p = self._param_of(t.value)
        if p is None:
            return False
        v = node.value
        if not (isinstance(v, ast.Call) and isinstance(v.func, ast.Name)
                and v.func.id in ("min", "max")):
            return False
        self_args = [
            a for a in v.args
            if isinstance(a, ast.Subscript) and self._param_of(a.value) is p
        ]
        if not self_args:
            return False
        for a in v.args:  # other operands are ordinary reads
            if a not in self_args:
                self.visit(a)
        self._record(p, "fold", node, _const_offset(t.slice), v.func.id)
        return True

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._try_fold_assign(node):
            return
        self.visit(node.value)  # reads happen before the store
        for t in node.targets:
            self.visit(t)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self.visit(node.value)
        self.visit(node.target)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self.visit(node.value)
        self._aug_op = _AUG_OPS.get(type(node.op), "other")
        self.visit(node.target)
        self._aug_op = None

    # -- expressions ---------------------------------------------------------

    def visit_Subscript(self, node: ast.Subscript) -> None:
        p = self._param_of(node.value)
        if p is None:
            self.generic_visit(node)
            return
        offset = _const_offset(node.slice)
        if isinstance(node.ctx, ast.Store):
            if self._aug_op is not None:
                self._record(p, "aug", node, offset, self._aug_op)
            else:
                self._record(p, "store", node, offset)
        elif isinstance(node.ctx, ast.Del):
            p.escaped = True
        else:
            self._record(p, "load", node, offset)
        if not isinstance(node.slice, (ast.Constant, ast.UnaryOp, ast.Tuple)):
            self.visit(node.slice)  # index expressions may read params too

    def visit_Call(self, node: ast.Call) -> None:
        f = node.func
        if isinstance(f, ast.Attribute):
            p = self._param_of(f.value)
            if p is not None and f.attr in _FOLD_METHODS:
                self._record(p, "fold", node, None, _FOLD_METHODS[f.attr])
                for a in node.args:
                    self.visit(a)
                for k in node.keywords:
                    self.visit(k.value)
                return
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        p = self._param_of(node.value)
        if p is not None:
            # attribute access other than a recognised fold: treat the
            # value as escaping (e.g. ``q.shape``, ``g.value``)
            p.escaped = True
            return
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        p = self.fp.get(node.id)
        if p is None:
            return
        if isinstance(node.ctx, ast.Store):
            p.rebound = True
        else:
            # a bare reference: aliased, returned, or passed along —
            # anything could happen to it
            p.escaped = True

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # nested defs shadow nothing we track in the bundled kernels;
        # analyse their bodies too (closures over the params)
        self.generic_visit(node)


def kernel_params(fn: ast.FunctionDef) -> list[str]:
    """Positional parameter names of a kernel definition."""
    return [a.arg for a in fn.args.posonlyargs + fn.args.args]


def kernel_defaults(fn: ast.FunctionDef) -> int:
    """How many trailing positional parameters have defaults."""
    return len(fn.args.defaults)


def infer_footprints(fn: ast.FunctionDef) -> dict[str, ParamFootprint]:
    """Infer per-parameter footprints for one kernel body."""
    params = kernel_params(fn)
    v = _FootprintVisitor(params)
    for stmt in fn.body:
        v.visit(stmt)
    return v.fp
