"""Per-argument footprint inference over kernel bodies.

Given a kernel ``FunctionDef``, infer for each parameter how the body
accesses it: read, written, read-before-first-write, unused, additively
updated, folded through a reduction method — and at which constant
stencil offsets.  The result is diffed against the declared descriptors
by :mod:`repro.lint.kernel_checks`.

Event ordering approximates program order by AST visit order (values are
visited before the targets they are assigned to), which matches the
straight-line kernels the DSL encourages; control flow does not reorder
events for the purposes of the first-access rule, mirroring the
first-access classification in ``repro.checkpoint.analysis``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

#: accessor/reduction fold methods the runtime APIs expose on arguments
_FOLD_METHODS = {"inc": "inc", "min": "min", "max": "max"}


@dataclass
class AccessEvent:
    """One access to a kernel parameter inside the body."""

    kind: str  # "load" | "store" | "aug" | "fold"
    order: int
    lineno: int
    offset: tuple[int, ...] | None = None  # constant subscript, if any
    op: str | None = None  # aug: "add"/"sub"/other; fold: method name

    @property
    def is_write(self) -> bool:
        return self.kind in ("store", "aug", "fold")

    @property
    def is_read(self) -> bool:
        # an augmented update observes the old value only through the
        # combining operator, which the reduction machinery handles; it is
        # not a "read" for the first-access / read-before-write rules.
        return self.kind == "load"


@dataclass
class ParamFootprint:
    """Everything the kernel body does with one parameter."""

    name: str
    events: list[AccessEvent] = field(default_factory=list)
    #: the bare name escaped (passed to a call, aliased, returned):
    #: the footprint is a lower bound and most checks must be skipped
    escaped: bool = False
    #: the parameter name was rebound inside the body
    rebound: bool = False

    @property
    def used(self) -> bool:
        return bool(self.events) or self.escaped

    @property
    def opaque(self) -> bool:
        return self.escaped or self.rebound

    @property
    def writes(self) -> list[AccessEvent]:
        return [e for e in self.events if e.is_write]

    @property
    def reads(self) -> list[AccessEvent]:
        return [e for e in self.events if e.is_read]

    @property
    def plain_stores(self) -> list[AccessEvent]:
        return [e for e in self.events if e.kind == "store"]

    @property
    def first_event(self) -> AccessEvent | None:
        return self.events[0] if self.events else None

    @property
    def read_before_write(self) -> bool:
        """A load happens before any write event."""
        for e in self.events:
            if e.is_write:
                return False
            if e.is_read:
                return True
        return False

    def nonadditive_events(self, kind: str) -> list[AccessEvent]:
        """Events incompatible with a declared reduction of ``kind``.

        ``kind`` is "inc" (op2/ops INC), "min" or "max".  An INC argument
        may only be updated via ``+=``/``-=`` or ``.inc(...)``; MIN/MAX
        arguments only via the matching fold method.
        """
        bad = []
        for e in self.events:
            if e.kind == "aug":
                if kind == "inc" and e.op in ("add", "sub"):
                    continue
                bad.append(e)
            elif e.kind == "fold":
                if e.op == kind:
                    continue
                bad.append(e)
            else:  # plain store or load both observe/clobber the value
                bad.append(e)
        return bad

    def constant_offsets(self) -> list[AccessEvent]:
        """Events with a statically-known subscript offset."""
        return [e for e in self.events if e.offset is not None]


def _const_offset(node: ast.expr) -> tuple[int, ...] | None:
    """A subscript expression as a constant offset tuple, if it is one."""

    def comp(n: ast.expr) -> int | None:
        if isinstance(n, ast.Constant) and isinstance(n.value, int) \
                and not isinstance(n.value, bool):
            return n.value
        if isinstance(n, ast.UnaryOp) and isinstance(n.op, ast.USub):
            inner = comp(n.operand)
            return None if inner is None else -inner
        return None

    if isinstance(node, ast.Tuple):
        parts = [comp(e) for e in node.elts]
        if any(p is None for p in parts):
            return None
        return tuple(parts)  # type: ignore[arg-type]
    single = comp(node)
    return None if single is None else (single,)


_AUG_OPS = {ast.Add: "add", ast.Sub: "sub"}


def kernel_params(fn: ast.FunctionDef) -> list[str]:
    """Positional parameter names of a kernel definition."""
    return [a.arg for a in fn.args.posonlyargs + fn.args.args]


def kernel_defaults(fn: ast.FunctionDef) -> int:
    """How many trailing positional parameters have defaults."""
    return len(fn.args.defaults)


def infer_footprints(fn: ast.FunctionDef) -> dict[str, ParamFootprint]:
    """Infer per-parameter footprints for one kernel body.

    The footprint is a by-product of IR lowering: the single traversal in
    :func:`repro.lint.ir.lower_kernel` emits the event stream this module
    has always defined, alongside the structured IR the abstract
    interpreter consumes.
    """
    from repro.lint.ir import lower_kernel  # deferred: ir imports our types

    return lower_kernel(fn).footprints
