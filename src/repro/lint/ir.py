"""A small typed stencil IR lowered from kernel-body ASTs.

One lowering pass produces two coupled views of a kernel body:

* the ordered per-parameter **access-event stream** (the exact stream
  :mod:`repro.lint.footprint` has always produced — the lowering visitor
  reproduces ``_FootprintVisitor``'s traversal order verbatim, so the
  OPL001–OPL007 diagnostics built on it stay byte-identical), and
* a **structured statement/expression IR** — straight-line assignments,
  constant-offset subscripts, branches, ``range`` loops and reduction
  folds — which :mod:`repro.lint.abstract` interprets abstractly to
  *prove* per-argument stencil extents, dtypes and purity.

Anything the IR cannot express precisely (``while``, ``try``, nested
function bodies, comprehensions, aliasing) is wrapped in an *opaque*
node that remembers which parameters and locals it may touch, so the
abstract interpreter can degrade to "unbounded" for exactly those names
instead of silently under-approximating.  Soundness is by construction:
every parameter access is either lowered precisely or covered by an
opaque node's ``hidden_params``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.footprint import (
    _AUG_OPS,
    _FOLD_METHODS,
    AccessEvent,
    ParamFootprint,
    _const_offset,
    kernel_defaults,
    kernel_params,
)

__all__ = [
    "KernelIR",
    "lower_kernel",
    # expressions
    "EBin", "ECall", "ECmp", "EConst", "EIf", "ELoad", "EName", "EOpaque",
    "ETuple", "EUn",
    # statements / targets
    "SAssign", "SAug", "SExpr", "SFold", "SFor", "SIf", "SOpaque", "SReturn",
    "TLocal", "TOpaque", "TParam",
]


# -- expression nodes --------------------------------------------------------

@dataclass
class EConst:
    """A literal constant."""

    value: object


@dataclass
class EName:
    """A name read: a kernel parameter, a local, or a free name.

    ``kind`` is ``"param"`` for kernel parameters; ``"name"`` covers both
    body locals and free (closure/global) reads — the abstract
    interpreter tells them apart through its environment.
    """

    name: str
    kind: str


@dataclass
class ELoad:
    """A subscript read of a kernel parameter: ``p[<index>]``."""

    param: str
    index: tuple | None  # per-dimension index expressions, None if opaque
    lineno: int
    syntactic: tuple[int, ...] | None  # _const_offset result, for dedup


@dataclass
class EBin:
    op: str  # "+", "-", "*", "/", "//", "%", "**", "?"
    left: object
    right: object


@dataclass
class EUn:
    op: str  # "-", "+", "not", "~"
    operand: object


@dataclass
class ECmp:
    """A comparison or boolean combination — always bool-valued.

    ``ops`` carries the operator spellings so consumers that need the
    exact operation (native codegen) can reconstruct it: for a chained
    comparison it holds one entry per comparator (``"<"``, ``"=="``, ...,
    ``"?"`` when unknown); for a boolean combination it is ``("and",)``
    or ``("or",)``.  The abstract domains ignore it (comparisons are
    bool-valued either way), so adding the field changes no diagnostic.
    """

    operands: tuple
    ops: tuple = ()


@dataclass
class ECall:
    func: str | None  # dotted callee name when statically known
    args: tuple
    lineno: int


@dataclass
class EIf:
    test: object
    body: object
    orelse: object


@dataclass
class ETuple:
    elts: tuple


@dataclass
class EOpaque:
    """An expression the IR cannot model.

    ``hidden_params`` lists kernel parameters referenced anywhere inside,
    so the abstract interpreter can mark exactly those unbounded.
    """

    reason: str
    hidden_params: tuple[str, ...] = ()


# -- store targets -----------------------------------------------------------

@dataclass
class TParam:
    """A subscript store target on a kernel parameter."""

    param: str
    index: tuple | None
    lineno: int
    syntactic: tuple[int, ...] | None


@dataclass
class TLocal:
    name: str


@dataclass
class TOpaque:
    reason: str
    hidden_params: tuple[str, ...] = ()


# -- statement nodes ---------------------------------------------------------

@dataclass
class SAssign:
    targets: list
    value: object
    lineno: int


@dataclass
class SAug:
    target: object
    op: str
    value: object
    lineno: int


@dataclass
class SFold:
    """A reduction fold: ``p[i] = min(p[i], x)`` or ``p.inc(x)``."""

    param: str
    index: tuple | None
    method: str  # "inc" | "min" | "max"
    args: tuple
    lineno: int
    syntactic: tuple[int, ...] | None


@dataclass
class SIf:
    test: object
    body: list
    orelse: list
    lineno: int


@dataclass
class SFor:
    """A ``for var in range(...)`` loop with lowered bound expressions."""

    var: str
    start: object
    stop: object
    step: object
    body: list
    lineno: int


@dataclass
class SExpr:
    value: object
    lineno: int


@dataclass
class SReturn:
    value: object
    lineno: int


@dataclass
class SOpaque:
    """A statement (or region) the IR cannot model precisely.

    The abstract interpreter treats ``hidden_params`` as unbounded and
    forgets ``killed_locals``; ``body`` keeps any nested statements that
    *were* lowered, for inspection only.
    """

    reason: str
    body: list
    lineno: int
    hidden_params: tuple[str, ...] = ()
    killed_locals: tuple[str, ...] = ()


@dataclass
class KernelIR:
    """The lowered kernel: structured body + the classic event stream."""

    name: str
    params: list[str]
    n_defaults: int
    body: list = field(default_factory=list)
    footprints: dict[str, ParamFootprint] = field(default_factory=dict)
    #: False when any opaque region may touch a parameter — the abstract
    #: domains then degrade to "unbounded" for those parameters
    complete: bool = True
    notes: list[str] = field(default_factory=list)


# -- pure structural lowering (no event side effects) ------------------------

_BINOPS = {
    ast.Add: "+", ast.Sub: "-", ast.Mult: "*", ast.Div: "/",
    ast.FloorDiv: "//", ast.Mod: "%", ast.Pow: "**",
}
_UNOPS = {ast.USub: "-", ast.UAdd: "+", ast.Not: "not", ast.Invert: "~"}
_CMPOPS = {
    ast.Lt: "<", ast.LtE: "<=", ast.Gt: ">", ast.GtE: ">=",
    ast.Eq: "==", ast.NotEq: "!=",
}


def _params_in(node: ast.AST, params: set[str]) -> tuple[str, ...]:
    """Kernel parameters referenced anywhere in a subtree."""
    found = {
        n.id for n in ast.walk(node)
        if isinstance(n, ast.Name) and n.id in params
    }
    return tuple(sorted(found))


def _locals_stored_in(node: ast.AST) -> tuple[str, ...]:
    """Plain names bound (Store context) anywhere in a subtree."""
    found = {
        n.id for n in ast.walk(node)
        if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Store)
    }
    return tuple(sorted(found))


def _dotted_name(node: ast.expr) -> str | None:
    """``math.sqrt`` / ``np.random.rand`` as a dotted string, if static."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted_name(node.value)
        return None if base is None else f"{base}.{node.attr}"
    return None


def _lower_index(node: ast.expr, params: set[str]) -> tuple | None:
    """A subscript slice as per-dimension index expressions."""
    elts = node.elts if isinstance(node, ast.Tuple) else (node,)
    out = []
    for e in elts:
        if isinstance(e, (ast.Slice, ast.Starred)):
            return None
        out.append(_lower_expr(e, params))
    return tuple(out)


def _lower_expr(node: ast.expr, params: set[str]) -> object:
    """Structural expression lowering; never records access events."""
    if isinstance(node, ast.Constant):
        return EConst(node.value)
    if isinstance(node, ast.Name):
        return EName(node.id, "param" if node.id in params else "name")
    if isinstance(node, ast.Subscript):
        if isinstance(node.value, ast.Name) and node.value.id in params:
            return ELoad(
                node.value.id, _lower_index(node.slice, params),
                node.lineno, _const_offset(node.slice),
            )
        return EOpaque("subscript", _params_in(node, params))
    if isinstance(node, ast.BinOp):
        return EBin(
            _BINOPS.get(type(node.op), "?"),
            _lower_expr(node.left, params), _lower_expr(node.right, params),
        )
    if isinstance(node, ast.UnaryOp):
        return EUn(_UNOPS.get(type(node.op), "?"),
                   _lower_expr(node.operand, params))
    if isinstance(node, ast.Compare):
        ops = [_lower_expr(node.left, params)]
        ops.extend(_lower_expr(c, params) for c in node.comparators)
        return ECmp(
            tuple(ops),
            tuple(_CMPOPS.get(type(o), "?") for o in node.ops),
        )
    if isinstance(node, ast.BoolOp):
        return ECmp(
            tuple(_lower_expr(v, params) for v in node.values),
            ("and",) if isinstance(node.op, ast.And) else ("or",),
        )
    if isinstance(node, ast.IfExp):
        return EIf(_lower_expr(node.test, params),
                   _lower_expr(node.body, params),
                   _lower_expr(node.orelse, params))
    if isinstance(node, ast.Tuple):
        return ETuple(tuple(_lower_expr(e, params) for e in node.elts))
    if isinstance(node, ast.Call):
        name = _dotted_name(node.func)
        if name is not None and not node.keywords and not any(
            isinstance(a, ast.Starred) for a in node.args
        ):
            root = name.split(".", 1)[0]
            if root not in params:
                return ECall(
                    name,
                    tuple(_lower_expr(a, params) for a in node.args),
                    node.lineno,
                )
        return EOpaque("call", _params_in(node, params))
    if isinstance(node, ast.Attribute):
        name = _dotted_name(node)
        if name is not None and name.split(".", 1)[0] not in params:
            return EName(name, "name")  # e.g. math.pi, a free dotted read
        return EOpaque("attribute", _params_in(node, params))
    return EOpaque(type(node).__name__, _params_in(node, params))


def _lower_target(node: ast.expr, params: set[str]) -> object:
    if isinstance(node, ast.Name):
        if node.id in params:
            return TOpaque("parameter rebound", (node.id,))
        return TLocal(node.id)
    if isinstance(node, ast.Subscript):
        if isinstance(node.value, ast.Name) and node.value.id in params:
            return TParam(
                node.value.id, _lower_index(node.slice, params),
                node.lineno, _const_offset(node.slice),
            )
        return TOpaque("subscript", _params_in(node, params))
    return TOpaque(type(node).__name__, _params_in(node, params))


def _range_args(node: ast.expr, params: set[str]) -> tuple | None:
    """(start, stop, step) expressions of a ``range(...)`` call."""
    if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id == "range" and not node.keywords):
        return None
    n = len(node.args)
    if n not in (1, 2, 3):
        return None
    lowered = [_lower_expr(a, params) for a in node.args]
    if n == 1:
        return EConst(0), lowered[0], EConst(1)
    if n == 2:
        return lowered[0], lowered[1], EConst(1)
    return lowered[0], lowered[1], lowered[2]


# -- the lowering visitor ----------------------------------------------------

class _LowerVisitor(ast.NodeVisitor):
    """Single traversal producing events *and* structured statements.

    The event-recording logic — which methods visit which children, in
    which order — is carried over verbatim from the historical
    ``_FootprintVisitor``; IR construction only ever *adds* pure
    (side-effect-free) lowering around it, so the event stream and every
    diagnostic derived from it are byte-identical to the pre-IR linter.
    """

    def __init__(self, params: list[str]) -> None:
        self.fp = {p: ParamFootprint(p) for p in params}
        self._params = set(params)
        self._order = 0
        self._aug_op: str | None = None
        self._blocks: list[list] = [[]]
        self.notes: list[str] = []

    # -- event machinery (identical to the classic footprint visitor) -------

    def _next(self) -> int:
        self._order += 1
        return self._order

    def _param_of(self, node: ast.expr) -> ParamFootprint | None:
        if isinstance(node, ast.Name):
            return self.fp.get(node.id)
        return None

    def _record(self, p: ParamFootprint, kind: str, node: ast.AST,
                offset: tuple[int, ...] | None = None,
                op: str | None = None) -> None:
        p.events.append(AccessEvent(
            kind=kind, order=self._next(),
            lineno=getattr(node, "lineno", 0), offset=offset, op=op,
        ))

    # -- IR machinery --------------------------------------------------------

    def _emit(self, stmt: object) -> None:
        self._blocks[-1].append(stmt)

    def _capture(self, stmts: list[ast.stmt]) -> list:
        self._blocks.append([])
        for s in stmts:
            self.visit(s)
        return self._blocks.pop()

    def _capture_generic(self, node: ast.AST) -> list:
        """generic_visit with the emitted statements captured aside."""
        self._blocks.append([])
        super().generic_visit(node)
        return self._blocks.pop()

    def _opaque_stmt(self, node: ast.stmt, reason: str) -> None:
        body = self._capture_generic(node)
        hidden = _params_in(node, self._params)
        self._emit(SOpaque(
            reason, body, getattr(node, "lineno", 0),
            hidden_params=hidden,
            killed_locals=_locals_stored_in(node),
        ))
        if hidden:
            self.notes.append(f"{reason} touches {', '.join(hidden)}")

    def generic_visit(self, node: ast.AST) -> None:
        # statements without a precise lowering become opaque regions;
        # expression traversal is unchanged
        if isinstance(node, ast.stmt):
            self._opaque_stmt(node, type(node).__name__)
            return
        super().generic_visit(node)

    # -- statements ----------------------------------------------------------

    def _try_fold_assign(self, node: ast.Assign) -> bool:
        """Recognise ``p[i] = min(p[i], x)`` / ``max`` as a fold.

        This is the op2 idiom for MIN/MAX reduction contributions (the C
        API's ``*lo = MIN(*lo, x)``); reading it as load-then-store would
        wrongly flag every legal MIN kernel as non-additive."""
        if len(node.targets) != 1:
            return False
        t = node.targets[0]
        if not isinstance(t, ast.Subscript):
            return False
        p = self._param_of(t.value)
        if p is None:
            return False
        v = node.value
        if not (isinstance(v, ast.Call) and isinstance(v.func, ast.Name)
                and v.func.id in ("min", "max")):
            return False
        self_args = [
            a for a in v.args
            if isinstance(a, ast.Subscript) and self._param_of(a.value) is p
        ]
        if not self_args:
            return False
        for a in v.args:  # other operands are ordinary reads
            if a not in self_args:
                self.visit(a)
        self._record(p, "fold", node, _const_offset(t.slice), v.func.id)
        self._emit(SFold(
            p.name, _lower_index(t.slice, self._params), v.func.id,
            tuple(_lower_expr(a, self._params)
                  for a in v.args if a not in self_args),
            node.lineno, _const_offset(t.slice),
        ))
        return True

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._try_fold_assign(node):
            return
        self.visit(node.value)  # reads happen before the store
        for t in node.targets:
            self.visit(t)
        self._emit(SAssign(
            [_lower_target(t, self._params) for t in node.targets],
            _lower_expr(node.value, self._params), node.lineno,
        ))

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self.visit(node.value)
        self.visit(node.target)
        if node.value is not None:
            self._emit(SAssign(
                [_lower_target(node.target, self._params)],
                _lower_expr(node.value, self._params), node.lineno,
            ))

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self.visit(node.value)
        self._aug_op = _AUG_OPS.get(type(node.op), "other")
        self.visit(node.target)
        self._aug_op = None
        self._emit(SAug(
            _lower_target(node.target, self._params),
            _BINOPS.get(type(node.op), "?"),
            _lower_expr(node.value, self._params), node.lineno,
        ))

    def visit_If(self, node: ast.If) -> None:
        self.visit(node.test)  # same child order as generic_visit
        body = self._capture(node.body)
        orelse = self._capture(node.orelse)
        self._emit(SIf(_lower_expr(node.test, self._params),
                       body, orelse, node.lineno))

    def visit_For(self, node: ast.For) -> None:
        self.visit(node.target)  # Store on a param marks it rebound
        self.visit(node.iter)
        body = self._capture(node.body)
        orelse = self._capture(node.orelse)
        rng = _range_args(node.iter, self._params)
        if (rng is not None and isinstance(node.target, ast.Name)
                and not node.orelse):
            self._emit(SFor(node.target.id, *rng, body, node.lineno))
            return
        hidden = _params_in(node, self._params)
        self._emit(SOpaque(
            "non-range for loop", body + orelse, node.lineno,
            hidden_params=hidden,
            killed_locals=_locals_stored_in(node),
        ))
        if hidden:
            self.notes.append(
                f"non-range for loop touches {', '.join(hidden)}")

    def visit_Expr(self, node: ast.Expr) -> None:
        # detect the method-fold statement form before generic traversal
        v = node.value
        fold: SFold | None = None
        if isinstance(v, ast.Call) and isinstance(v.func, ast.Attribute):
            p = self._param_of(v.func.value)
            if p is not None and v.func.attr in _FOLD_METHODS:
                # a method fold touches the handle itself, not a stencil
                # point: an empty index box, not an opaque one
                fold = SFold(
                    p.name, (), _FOLD_METHODS[v.func.attr],
                    tuple(_lower_expr(a, self._params) for a in v.args),
                    node.lineno, None,
                )
        self.visit(node.value)
        if fold is not None:
            self._emit(fold)
        else:
            self._emit(SExpr(_lower_expr(node.value, self._params),
                             node.lineno))

    def visit_Return(self, node: ast.Return) -> None:
        if node.value is not None:
            self.visit(node.value)
            self._emit(SReturn(_lower_expr(node.value, self._params),
                               node.lineno))
        else:
            self._emit(SReturn(EConst(None), node.lineno))

    def visit_Pass(self, node: ast.Pass) -> None:
        pass

    # -- expressions (event recording only — verbatim classic logic) --------

    def visit_Subscript(self, node: ast.Subscript) -> None:
        p = self._param_of(node.value)
        if p is None:
            super().generic_visit(node)
            return
        offset = _const_offset(node.slice)
        if isinstance(node.ctx, ast.Store):
            if self._aug_op is not None:
                self._record(p, "aug", node, offset, self._aug_op)
            else:
                self._record(p, "store", node, offset)
        elif isinstance(node.ctx, ast.Del):
            p.escaped = True
        else:
            self._record(p, "load", node, offset)
        if not isinstance(node.slice, (ast.Constant, ast.UnaryOp, ast.Tuple)):
            self.visit(node.slice)  # index expressions may read params too

    def visit_Call(self, node: ast.Call) -> None:
        f = node.func
        if isinstance(f, ast.Attribute):
            p = self._param_of(f.value)
            if p is not None and f.attr in _FOLD_METHODS:
                self._record(p, "fold", node, None, _FOLD_METHODS[f.attr])
                for a in node.args:
                    self.visit(a)
                for k in node.keywords:
                    self.visit(k.value)
                return
        super().generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        p = self._param_of(node.value)
        if p is not None:
            # attribute access other than a recognised fold: treat the
            # value as escaping (e.g. ``q.shape``, ``g.value``)
            p.escaped = True
            return
        super().generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        p = self.fp.get(node.id)
        if p is None:
            return
        if isinstance(node.ctx, ast.Store):
            p.rebound = True
        else:
            # a bare reference: aliased, returned, or passed along —
            # anything could happen to it
            p.escaped = True

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # nested defs shadow nothing we track in the bundled kernels;
        # analyse their bodies too (closures over the params) but keep
        # the region opaque for the abstract domains
        self._opaque_stmt(node, f"nested function {node.name!r}")


def lower_kernel(fn: ast.FunctionDef) -> KernelIR:
    """Lower one kernel definition into the stencil IR."""
    params = kernel_params(fn)
    v = _LowerVisitor(params)
    for stmt in fn.body:
        v.visit(stmt)
    ir = KernelIR(
        name=fn.name, params=params, n_defaults=kernel_defaults(fn),
        body=v._blocks[0], footprints=v.fp, notes=v.notes,
    )
    ir.complete = not any(
        isinstance(s, SOpaque) and s.hidden_params for s in _walk_stmts(ir.body)
    )
    return ir


def _walk_stmts(body: list):
    """Every statement node, at any nesting depth."""
    for s in body:
        yield s
        for sub in getattr(s, "body", ()) or ():
            if isinstance(sub, (SAssign, SAug, SFold, SIf, SFor, SExpr,
                                SReturn, SOpaque)):
                yield from _walk_stmts([sub])
        for sub in getattr(s, "orelse", ()) or ():
            yield from _walk_stmts([sub])
