"""Abstract interpretation of the kernel IR.

Three coupled domains run over :class:`repro.lint.ir.KernelIR` in a
single walk:

* an **interval domain** on integer-valued locals and subscript indices,
  proving per-parameter access offset sets ("extents") through branches
  and ``range``-loop index arithmetic;
* a **dtype lattice** (bool < intNN < floatNN, with weak Python-literal
  scalars that never widen array dtypes), propagating declared Dat
  dtypes through the body to catch silent narrowing and int/float
  division surprises;
* an **effects/purity analysis** recording every call, free-name read
  and opaque region, and flagging RNG use.

The result is distilled into a :class:`KernelCertificate` — a
machine-readable, cacheable statement of what was *proven* about one
kernel body.  Soundness contract: the proven read/write offset sets
over-approximate every concrete execution's accesses (``None`` means
"could not bound" and must be treated as unbounded); on branch-free,
loop-free bodies with constant offsets the sets are exact.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass, field
from itertools import product

from repro.lint.ir import (
    EBin,
    ECall,
    ECmp,
    EConst,
    EIf,
    ELoad,
    EName,
    EOpaque,
    ETuple,
    EUn,
    KernelIR,
    SAssign,
    SAug,
    SExpr,
    SFold,
    SFor,
    SIf,
    SOpaque,
    SReturn,
    TLocal,
    TOpaque,
    TParam,
    lower_kernel,
)

__all__ = [
    "Interval",
    "KernelAnalysis",
    "KernelCertificate",
    "ParamAbstract",
    "analyze_ir",
    "analyze_kernel",
    "box_points",
    "certificate_from_analysis",
    "certify_callable",
    "clear_certificate_cache",
]

#: cap on enumerating an interval box into explicit offset points
_ENUM_CAP = 128


# -- interval domain ---------------------------------------------------------

@dataclass(frozen=True)
class Interval:
    """A bounded integer interval; ``dense`` claims every integer in
    ``[lo, hi]`` is actually taken (needed for exactness, not soundness)."""

    lo: int
    hi: int
    dense: bool = True

    @property
    def is_point(self) -> bool:
        return self.lo == self.hi


def _iv_add(a, b, sub=False):
    if a is None or b is None:
        return None
    if sub:
        return Interval(a.lo - b.hi, a.hi - b.lo, a.dense and b.dense)
    return Interval(a.lo + b.lo, a.hi + b.hi, a.dense and b.dense)


def _iv_neg(a):
    return None if a is None else Interval(-a.hi, -a.lo, a.dense)


def _iv_mul(a, b):
    if a is None or b is None:
        return None
    prods = [a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi]
    dense = (a.is_point and b.is_point) or (
        (a.dense and b.is_point and abs(b.lo) == 1)
        or (b.dense and a.is_point and abs(a.lo) == 1)
    )
    return Interval(min(prods), max(prods), dense)


def _iv_join(a, b):
    if a is None or b is None:
        return None
    lo, hi = min(a.lo, b.lo), max(a.hi, b.hi)
    overlap = a.dense and b.dense and not (a.hi + 1 < b.lo or b.hi + 1 < a.lo)
    return Interval(lo, hi, overlap)


def _iv_minmax(ivs, use_max):
    if any(v is None for v in ivs) or not ivs:
        return None
    pick = max if use_max else min
    return Interval(pick(v.lo for v in ivs), pick(v.hi for v in ivs),
                    all(v.is_point for v in ivs))


# -- dtype lattice -----------------------------------------------------------

#: weak (Python-literal) scalars: participate in promotion without widening
W_INT = "~int"
W_FLOAT = "~float"

_FLOATS = {"float16": 16, "float32": 32, "float64": 64}
_INTS = {"int8": 8, "int16": 16, "int32": 32, "int64": 64,
         "uint8": 8, "uint16": 16, "uint32": 32, "uint64": 64}


def _kind(dt: str) -> str:
    if dt in (W_FLOAT,) or dt in _FLOATS:
        return "f"
    if dt in (W_INT,) or dt in _INTS:
        return "i"
    if dt == "bool":
        return "b"
    return "?"


def dt_promote(a: str | None, b: str | None) -> str | None:
    """Join two abstract dtypes (NEP-50-style weak-scalar promotion)."""
    if a is None or b is None:
        return None
    if a == b:
        return a
    weak_a, weak_b = a in (W_INT, W_FLOAT), b in (W_INT, W_FLOAT)
    if weak_a and weak_b:
        return W_FLOAT if W_FLOAT in (a, b) else W_INT
    if weak_a or weak_b:
        weak, conc = (a, b) if weak_a else (b, a)
        ck = _kind(conc)
        if ck == "?":
            return None
        if weak == W_INT:
            return "int64" if ck == "b" else conc
        return conc if ck == "f" else "float64"
    try:
        import numpy as np

        return np.promote_types(a, b).name
    except Exception:
        return None


def dt_div(a: str | None, b: str | None) -> str | None:
    """Result dtype of true division."""
    joined = dt_promote(a, b)
    if joined is None:
        return None
    if joined in (W_INT, W_FLOAT):
        # a quotient of Python literals is itself a weak Python float
        return W_FLOAT
    if _kind(joined) in ("i", "b"):
        return "float64"
    return joined if joined in _FLOATS else "float64"


def _narrows(value: str | None, target: str | None) -> bool:
    """Whether storing ``value`` into ``target`` silently loses information."""
    if value is None or target is None or value in (W_INT, W_FLOAT):
        return False
    vk, tk = _kind(value), _kind(target)
    if "?" in (vk, tk):
        return False
    if vk == "f" and tk in ("i", "b"):
        return True
    if vk == tk == "f":
        return _FLOATS[value] > _FLOATS[target]
    if vk == tk == "i":
        return _INTS[value] > _INTS[target]
    return False


# -- call whitelist / effects ------------------------------------------------

_PURE_BUILTINS = {"min", "max", "abs", "float", "int", "bool", "round", "len",
                  "divmod", "pow", "sum", "range"}
_FLOAT_CALLS = {"float", "sum"}


def _classify_call(name: str) -> str:
    """"pure" | "rng" | "unknown" for a dotted callee name."""
    parts = name.split(".")
    if "random" in parts or parts[-1] in ("rand", "randn", "randint",
                                          "normal", "uniform", "choice"):
        return "rng"
    if parts[0] in ("math", "np", "numpy") and len(parts) > 1:
        return "pure"
    if len(parts) == 1 and name in _PURE_BUILTINS:
        return "pure"
    return "unknown"


# -- per-parameter accumulation ----------------------------------------------

@dataclass
class Access:
    """One proven parameter access: an interval box per dimension."""

    box: tuple | None  # tuple[Interval, ...] or None (unbounded)
    kind: str  # "load" | "store" | "aug" | "fold"
    lineno: int
    must: bool
    syntactic: tuple[int, ...] | None
    value_dtype: str | None = None  # for writes: dtype of the stored value
    int_division: bool = False  # value came from int/int true division
    synthetic: bool = False  # the implied read of a read-modify-write

    @property
    def exact(self) -> bool:
        return (self.must and self.box is not None
                and all(iv.dense for iv in self.box))


def box_points(box, cap: int = _ENUM_CAP) -> tuple | None:
    """Enumerate an interval box into explicit offset points.

    ``None`` when the box is unbounded or too large to enumerate.
    """
    if box is None:
        return None
    ranges = []
    total = 1
    for iv in box:
        total *= iv.hi - iv.lo + 1
        if total > cap:
            return None
        ranges.append(range(iv.lo, iv.hi + 1))
    return tuple(product(*ranges))


@dataclass
class ParamAbstract:
    """Everything proven about one kernel parameter."""

    name: str
    reads: list[Access] = field(default_factory=list)
    writes: list[Access] = field(default_factory=list)
    #: reasons the parameter's accesses could not all be bounded
    unbounded: list[str] = field(default_factory=list)

    @property
    def bounded(self) -> bool:
        return not self.unbounded and all(
            a.box is not None for a in self.reads + self.writes
        )

    def _points(self, accs: list[Access]) -> tuple | None:
        pts: set[tuple[int, ...]] = set()
        for a in accs:
            enum = box_points(a.box)
            if enum is None:
                return None
            pts.update(enum)
        return tuple(sorted(pts))

    def read_points(self) -> tuple | None:
        """Proven read offsets (loads, augs and folds observe old values)."""
        if self.unbounded:
            return None
        return self._points([a for a in self.reads + self.writes
                             if a.kind in ("load", "aug", "fold")])

    def write_points(self) -> tuple | None:
        if self.unbounded:
            return None
        return self._points(self.writes)

    def load_points(self) -> tuple | None:
        """Proven offsets of plain loads only."""
        if self.unbounded:
            return None
        return self._points([
            a for a in self.reads if a.kind == "load" and not a.synthetic
        ])

    @property
    def exact(self) -> bool:
        return self.bounded and all(
            a.exact for a in self.reads + self.writes
        )


@dataclass
class KernelAnalysis:
    """Raw abstract-interpretation result over one kernel IR."""

    ir: KernelIR
    params: dict[str, ParamAbstract]
    calls: set[str] = field(default_factory=set)
    unknown_calls: set[str] = field(default_factory=set)
    free_reads: set[str] = field(default_factory=set)
    rng: bool = False
    opaque: list[str] = field(default_factory=list)
    #: declared per-parameter dtypes the dtype lattice was seeded with
    dtypes: dict[str, str | None] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        return self.ir.complete and not self.opaque

    @property
    def pure(self) -> bool:
        return not self.rng and not self.unknown_calls and self.complete


# -- the walker --------------------------------------------------------------

class _State:
    __slots__ = ("iv", "dt", "assigned")

    def __init__(self, iv=None, dt=None, assigned=None):
        self.iv: dict[str, Interval | None] = iv if iv is not None else {}
        self.dt: dict[str, str | None] = dt if dt is not None else {}
        self.assigned: set[str] = assigned if assigned is not None else set()

    def copy(self) -> "_State":
        return _State(dict(self.iv), dict(self.dt), set(self.assigned))


def _merge(pre: _State, a: _State, b: _State) -> _State:
    out = _State(assigned=a.assigned | b.assigned)
    for k in set(a.iv) | set(b.iv):
        out.iv[k] = _iv_join(a.iv[k], b.iv[k]) \
            if k in a.iv and k in b.iv else None
    for k in set(a.dt) | set(b.dt):
        out.dt[k] = dt_promote(a.dt[k], b.dt[k]) \
            if k in a.dt and k in b.dt else None
    return out


class _Walker:
    def __init__(self, ir: KernelIR, dtypes: dict[str, str | None],
                 scalars: frozenset[str] = frozenset()):
        self.ir = ir
        self.res = KernelAnalysis(
            ir=ir, params={p: ParamAbstract(p) for p in ir.params},
        )
        self.dtypes = dtypes
        #: defaulted params not bound to descriptors: plain closure scalars,
        #: so a bare reference is their intended use, not an escape
        self.scalars = scalars

    # -- helpers -------------------------------------------------------------

    def _unbound(self, param: str, reason: str) -> None:
        pa = self.res.params.get(param)
        if pa is not None and reason not in pa.unbounded:
            pa.unbounded.append(reason)

    def _access(self, param: str, kind: str, index, lineno: int, must: bool,
                syntactic, st: _State, value_dtype=None,
                int_division=False) -> None:
        pa = self.res.params[param]
        box = None
        if index is not None:
            ivs = []
            for comp in index:
                iv, _ = self.expr(comp, st, must)
                ivs.append(iv)
            if all(iv is not None for iv in ivs):
                box = tuple(ivs)
        if box is None:
            self._unbound(param, f"unbounded {kind} index at line {lineno}")
        acc = Access(box, kind, lineno, must, syntactic,
                     value_dtype=value_dtype, int_division=int_division)
        (pa.writes if kind in ("store", "aug", "fold") else pa.reads).append(acc)
        if kind in ("aug", "fold"):
            # read-modify-write also observes the old value
            pa.reads.append(Access(box, "load", lineno, must, syntactic,
                                   synthetic=True))

    # -- expressions ---------------------------------------------------------

    def expr(self, e, st: _State, must: bool):
        """Evaluate one expression: (interval, dtype), recording accesses."""
        if isinstance(e, EConst):
            v = e.value
            if isinstance(v, bool):
                return (Interval(int(v), int(v)), "bool")
            if isinstance(v, int):
                return (Interval(v, v), W_INT)
            if isinstance(v, float):
                return (None, W_FLOAT)
            return (None, None)
        if isinstance(e, EName):
            if e.kind == "param":
                if e.name in self.scalars:
                    return (None, None)
                # a bare parameter reference escapes the abstraction
                self._unbound(e.name, "parameter escapes (bare reference)")
                return (None, None)
            if e.name in st.assigned:
                return (st.iv.get(e.name), st.dt.get(e.name))
            self.res.free_reads.add(e.name)
            return (None, None)
        if isinstance(e, ELoad):
            self._access(e.param, "load", e.index, e.lineno, must,
                         e.syntactic, st)
            return (None, self.dtypes.get(e.param))
        if isinstance(e, EBin):
            liv, ldt = self.expr(e.left, st, must)
            riv, rdt = self.expr(e.right, st, must)
            if e.op == "+":
                return (_iv_add(liv, riv), dt_promote(ldt, rdt))
            if e.op == "-":
                return (_iv_add(liv, riv, sub=True), dt_promote(ldt, rdt))
            if e.op == "*":
                return (_iv_mul(liv, riv), dt_promote(ldt, rdt))
            if e.op == "/":
                return (None, dt_div(ldt, rdt))
            if e.op == "//":
                iv = None
                if (liv is not None and riv is not None and riv.is_point
                        and riv.lo > 0):
                    iv = Interval(liv.lo // riv.lo, liv.hi // riv.lo,
                                  dense=liv.dense)
                return (iv, dt_promote(ldt, rdt))
            if e.op == "%":
                iv = None
                if riv is not None and riv.is_point and riv.lo > 0:
                    iv = Interval(0, riv.lo - 1, dense=False)
                return (iv, dt_promote(ldt, rdt))
            return (None, dt_promote(ldt, rdt))
        if isinstance(e, EUn):
            iv, dt = self.expr(e.operand, st, must)
            if e.op == "-":
                return (_iv_neg(iv), dt)
            if e.op == "not":
                return (None, "bool")
            return (iv if e.op == "+" else None, dt)
        if isinstance(e, ECmp):
            for o in e.operands:
                self.expr(o, st, must)
            return (None, "bool")
        if isinstance(e, EIf):
            self.expr(e.test, st, must)
            biv, bdt = self.expr(e.body, st, False)
            oiv, odt = self.expr(e.orelse, st, False)
            return (_iv_join(biv, oiv), dt_promote(bdt, odt))
        if isinstance(e, ETuple):
            for el in e.elts:
                self.expr(el, st, must)
            return (None, None)
        if isinstance(e, ECall):
            results = [self.expr(a, st, must) for a in e.args]
            self.res.calls.add(e.func)
            cls = _classify_call(e.func)
            if cls == "rng":
                self.res.rng = True
            elif cls == "unknown":
                self.res.unknown_calls.add(e.func)
            base = e.func.split(".")[-1]
            if base in ("min", "max") and results:
                return (_iv_minmax([r[0] for r in results], base == "max"),
                        self._fold_dt(results))
            if base == "abs" and len(results) == 1:
                iv, dt = results[0]
                if iv is not None:
                    m = max(abs(iv.lo), abs(iv.hi))
                    iv = Interval(0 if iv.lo <= 0 <= iv.hi
                                  else min(abs(iv.lo), abs(iv.hi)), m,
                                  dense=False)
                return (iv, dt)
            if base == "int":
                return (results[0][0] if results else None, "int64")
            if base == "bool":
                return (None, "bool")
            if base in _FLOAT_CALLS:
                return (None, "float64")
            if e.func.split(".")[0] in ("math",):
                return (None, "float64")
            if e.func.split(".")[0] in ("np", "numpy"):
                dt = self._fold_dt(results)
                if base in ("sqrt", "exp", "log", "sin", "cos", "tan",
                            "fabs", "power", "arctan2", "hypot"):
                    dt = dt_div(dt, dt)  # transcendentals produce floats
                return (None, dt)
            return (None, None)
        if isinstance(e, EOpaque):
            for p in e.hidden_params:
                self._unbound(p, f"opaque expression ({e.reason})")
            if e.hidden_params:
                self.res.opaque.append(f"expression: {e.reason}")
            return (None, None)
        return (None, None)

    def _fold_dt(self, results):
        dt = None
        for _, d in results:
            dt = d if dt is None else dt_promote(dt, d)
        return dt

    # -- statements ----------------------------------------------------------

    def block(self, body: list, st: _State, must: bool) -> _State:
        for s in body:
            st = self.stmt(s, st, must)
        return st

    def stmt(self, s, st: _State, must: bool) -> _State:
        if isinstance(s, SAssign):
            iv, dt = self.expr(s.value, st, must)
            int_div = isinstance(s.value, EBin) and s.value.op == "/" and \
                self._int_operands(s.value, st)
            for t in s.targets:
                self._store(t, iv, dt, st, must, int_div)
            return st
        if isinstance(s, SAug):
            iv, dt = self.expr(s.value, st, must)
            t = s.target
            if isinstance(t, TParam):
                self._access(t.param, "aug", t.index, t.lineno, must,
                             t.syntactic,
                             st, value_dtype=dt)
            elif isinstance(t, TLocal):
                old_iv, old_dt = st.iv.get(t.name), st.dt.get(t.name)
                if s.op == "+":
                    st.iv[t.name] = _iv_add(old_iv, iv)
                elif s.op == "-":
                    st.iv[t.name] = _iv_add(old_iv, iv, sub=True)
                else:
                    st.iv[t.name] = None
                st.dt[t.name] = dt_promote(old_dt, dt) \
                    if s.op != "/" else dt_div(old_dt, dt)
                st.assigned.add(t.name)
            else:
                for p in t.hidden_params:
                    self._unbound(p, f"opaque aug target ({t.reason})")
            return st
        if isinstance(s, SFold):
            for a in s.args:
                self.expr(a, st, must)
            self._access(s.param, "fold", s.index, s.lineno, must,
                         s.syntactic, st)
            return st
        if isinstance(s, SIf):
            self.expr(s.test, st, must)
            a = self.block(s.body, st.copy(), False)
            b = self.block(s.orelse, st.copy(), False)
            return _merge(st, a, b)
        if isinstance(s, SFor):
            return self._for(s, st, must)
        if isinstance(s, (SExpr, SReturn)):
            self.expr(s.value, st, must)
            return st
        if isinstance(s, SOpaque):
            for p in s.hidden_params:
                self._unbound(p, f"opaque region ({s.reason})")
            if s.hidden_params:
                self.res.opaque.append(f"statement: {s.reason}")
            for name in s.killed_locals:
                st.iv[name] = None
                st.dt[name] = None
                st.assigned.add(name)
            return st
        return st

    def _int_operands(self, e: EBin, st: _State) -> bool:
        probe = _Probe(self)
        ldt = probe.dtype(e.left, st)
        rdt = probe.dtype(e.right, st)
        return (ldt is not None and rdt is not None
                and _kind(ldt) in ("i", "b") and _kind(rdt) in ("i", "b"))

    def _store(self, t, iv, dt, st: _State, must: bool,
               int_div: bool) -> None:
        if isinstance(t, TParam):
            self._access(t.param, "store", t.index, t.lineno, must,
                         t.syntactic, st, value_dtype=dt,
                         int_division=int_div)
        elif isinstance(t, TLocal):
            st.iv[t.name] = iv
            st.dt[t.name] = dt
            st.assigned.add(t.name)
        else:
            for p in t.hidden_params:
                self._unbound(p, f"opaque store target ({t.reason})")

    def _for(self, s: SFor, st: _State, must: bool) -> _State:
        probe = _Probe(self)
        start = probe.interval(s.start, st)
        stop = probe.interval(s.stop, st)
        step = probe.interval(s.step, st)
        var_iv = None
        body_must = False
        if (start is not None and stop is not None and step is not None
                and step.is_point and step.lo != 0):
            sv = step.lo
            if sv > 0:
                lo, hi = start.lo, stop.hi - 1
            else:
                lo, hi = stop.lo + 1, start.hi
            if start.is_point and stop.is_point:
                if (sv > 0 and start.lo >= stop.lo) or \
                        (sv < 0 and start.lo <= stop.lo):
                    return st  # provably empty: body never runs
                body_must = must
            if lo <= hi:
                var_iv = Interval(
                    lo, hi,
                    dense=abs(sv) == 1 and start.is_point and stop.is_point,
                )

        # stabilise locals assigned in the body before the recording pass:
        # iterate probe passes to a fixpoint; anything still widening after
        # a few rounds (a genuinely loop-carried value) degrades to TOP
        env = st.copy()
        env.iv[s.var] = var_iv
        env.dt[s.var] = W_INT
        env.assigned.add(s.var)
        converged = False
        for _ in range(4):
            trial = _Probe(self).block(s.body, env.copy(), False)
            merged = env.copy()
            changed = False
            for k in trial.assigned - {s.var}:
                if k in env.assigned:
                    new_iv = _iv_join(env.iv.get(k), trial.iv.get(k))
                    new_dt = dt_promote(env.dt.get(k), trial.dt.get(k))
                else:
                    # first binding flows from this body alone
                    new_iv = trial.iv.get(k)
                    new_dt = trial.dt.get(k)
                if (merged.iv.get(k) != new_iv
                        or merged.dt.get(k) != new_dt
                        or k not in merged.assigned):
                    changed = True
                merged.iv[k] = new_iv
                merged.dt[k] = new_dt
                merged.assigned.add(k)
            env = merged
            if not changed:
                converged = True
                break
        if not converged:
            trial = _Probe(self).block(s.body, env.copy(), False)
            for k in trial.assigned - {s.var}:
                env.iv[k] = None
                env.dt[k] = None
                env.assigned.add(k)

        out = self.block(s.body, env, body_must and var_iv is not None)
        # after the loop the loop var holds its last value; keep the range
        result = st.copy()
        for k in out.assigned:
            result.iv[k] = out.iv.get(k)
            result.dt[k] = out.dt.get(k)
            result.assigned.add(k)
        return result


class _Probe(_Walker):
    """A side-effect-free evaluator sharing the walker's logic.

    Used for look-ahead passes (loop stabilisation, operand dtype
    probing) that must not pollute the accumulated accesses/effects.
    """

    def __init__(self, parent: _Walker):
        self.ir = parent.ir
        self.dtypes = parent.dtypes
        self.scalars = parent.scalars
        self.res = KernelAnalysis(
            ir=parent.ir,
            params={p: ParamAbstract(p) for p in parent.ir.params},
        )

    def interval(self, e, st: _State):
        return self.expr(e, st, False)[0]

    def dtype(self, e, st: _State):
        return self.expr(e, st, False)[1]


# -- public entry points -----------------------------------------------------

def analyze_ir(ir: KernelIR,
               dtypes: dict[str, str | None] | None = None,
               n_bound: int | None = None) -> KernelAnalysis:
    """Run all three abstract domains over one lowered kernel.

    ``n_bound`` is the number of leading parameters bound to loop
    descriptors, when the caller knows it; trailing defaulted parameters
    beyond it are closure scalars (``frac=0.5 * dt``) whose bare
    references are not escapes.  Without it every parameter is treated
    as a dat (conservative).
    """
    scalars: frozenset[str] = frozenset()
    if n_bound is not None and 0 <= n_bound < len(ir.params):
        scalars = frozenset(ir.params[n_bound:])
    w = _Walker(ir, dtypes or {}, scalars)
    w.res.dtypes = dict(dtypes or {})
    st = _State()
    w.block(ir.body, st, True)
    for p, fp in ir.footprints.items():
        if p in scalars:
            continue
        if fp.escaped:
            w._unbound(p, "parameter escapes")
        if fp.rebound:
            w._unbound(p, "parameter rebound")
    return w.res


def analyze_kernel(fn: ast.FunctionDef,
                   dtypes: dict[str, str | None] | None = None
                   ) -> KernelAnalysis:
    """Lower and analyse one kernel definition."""
    return analyze_ir(lower_kernel(fn), dtypes)


# -- the certificate ---------------------------------------------------------

@dataclass(frozen=True)
class KernelCertificate:
    """What the analyzer proved about one kernel body.

    ``read_extents``/``write_extents`` map parameters to proven offset
    point sets (``None`` = could not bound; treat as unbounded).  The
    sets over-approximate every concrete execution; ``exact`` marks
    parameters whose sets are also lower bounds.  ``translatable`` is
    the gate for native codegen: complete lowering, bounded extents,
    whitelisted calls only, no RNG, no escapes.
    """

    kernel: str
    params: tuple[str, ...]
    read_extents: tuple  # ((param, points | None), ...)
    write_extents: tuple
    exact: tuple  # ((param, bool), ...)
    dtypes: tuple  # ((param, dtype | None), ...)
    pure: bool
    rng: bool
    complete: bool
    translatable: bool
    calls: tuple[str, ...] = ()
    free_reads: tuple[str, ...] = ()
    reasons: tuple[str, ...] = ()

    def reads_of(self, param: str) -> tuple | None:
        return dict(self.read_extents).get(param)

    def writes_of(self, param: str) -> tuple | None:
        return dict(self.write_extents).get(param)

    def exact_for(self, param: str) -> bool:
        return dict(self.exact).get(param, False)

    def to_dict(self) -> dict:
        """JSON-ready form (manifests, SARIF properties, caches)."""
        return {
            "kernel": self.kernel,
            "params": list(self.params),
            "read_extents": {
                p: None if pts is None else [list(o) for o in pts]
                for p, pts in self.read_extents
            },
            "write_extents": {
                p: None if pts is None else [list(o) for o in pts]
                for p, pts in self.write_extents
            },
            "exact": dict(self.exact),
            "dtypes": dict(self.dtypes),
            "pure": self.pure,
            "rng": self.rng,
            "complete": self.complete,
            "translatable": self.translatable,
            "calls": sorted(self.calls),
            "free_reads": sorted(self.free_reads),
            "reasons": list(self.reasons),
        }


def certificate_from_analysis(an: KernelAnalysis,
                              name: str | None = None) -> KernelCertificate:
    reads, writes, exact, reasons = [], [], [], list(an.opaque)
    for p in an.ir.params:
        pa = an.params[p]
        reads.append((p, pa.read_points()))
        writes.append((p, pa.write_points()))
        exact.append((p, an.complete and pa.exact))
        reasons.extend(f"{p}: {r}" for r in pa.unbounded)
    if an.rng:
        reasons.append("uses a random-number generator")
    reasons.extend(f"unwhitelisted call: {c}" for c in sorted(an.unknown_calls))
    bounded = all(pts is not None for _, pts in reads) and \
        all(pts is not None for _, pts in writes)
    translatable = an.complete and an.pure and bounded
    return KernelCertificate(
        kernel=name or an.ir.name,
        params=tuple(an.ir.params),
        read_extents=tuple(reads),
        write_extents=tuple(writes),
        exact=tuple(exact),
        dtypes=tuple((p, an.dtypes.get(p)) for p in an.ir.params),
        pure=an.pure,
        rng=an.rng,
        complete=an.complete,
        translatable=translatable,
        calls=tuple(sorted(an.calls)),
        free_reads=tuple(sorted(an.free_reads)),
        reasons=tuple(dict.fromkeys(reasons)),
    )


_CERT_CACHE: dict[object, KernelCertificate] = {}


def clear_certificate_cache() -> None:
    _CERT_CACHE.clear()


def _unverifiable(name: str, reason: str) -> KernelCertificate:
    return KernelCertificate(
        kernel=name, params=(), read_extents=(), write_extents=(),
        exact=(), dtypes=(), pure=False, rng=False, complete=False,
        translatable=False, reasons=(reason,),
    )


def certify_callable(fn) -> KernelCertificate:
    """Certificate for a runtime kernel callable, cached by code object.

    Unwraps :class:`repro.op2.kernel.Kernel` wrappers.  Never raises:
    kernels whose source cannot be recovered (REPL definitions,
    builtins) get an incomplete, untranslatable certificate.
    """
    inner = getattr(fn, "func", None)
    if callable(inner) and hasattr(inner, "__code__"):
        fn = inner
    code = getattr(fn, "__code__", None)
    if code is None:
        return _unverifiable(getattr(fn, "__name__", "<kernel>"),
                             "no source available")
    cert = _CERT_CACHE.get(code)
    if cert is not None:
        return cert
    name = getattr(fn, "__name__", "<kernel>")
    try:
        src = textwrap.dedent(inspect.getsource(fn))
        tree = ast.parse(src)
        fndef = next(n for n in ast.walk(tree)
                     if isinstance(n, ast.FunctionDef))
        cert = certificate_from_analysis(analyze_kernel(fndef), name=name)
    except (OSError, SyntaxError, StopIteration, ValueError):
        cert = _unverifiable(name, "source unavailable or unparsable")
    _CERT_CACHE[code] = cert
    return cert
