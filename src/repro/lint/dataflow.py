"""Reusable loop-chain dependence analysis.

The linter's level-2 pass (:mod:`repro.lint.chain`) and the lazy runtime
(:mod:`repro.ops.lazy`) both need the same question answered: given an
ordered chain of loops, each with declared per-dat access descriptors,
which pairs of loops are connected by a dataflow dependence, and through
which stencil offsets?  This module is the shared, representation-agnostic
answer — the static analyser feeds it events lifted from the AST, the lazy
queue feeds it live :class:`~repro.ops.parloop.DatArg` descriptors, and
both get back the same :class:`DependenceGraph`.

The model matches the OPS/OP2 access-descriptor semantics:

* every access names a dataset ``ref`` (any hashable identity — a
  ``Dat.token`` at runtime, a dat name in the linter);
* reads may go through a stencil (a set of relative ``offsets``);
* writes always target the centre point (the structured-mesh race-freedom
  rule enforced at declaration time), so every dependence's spatial reach
  is determined entirely by the *read* stencils involved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Sequence

__all__ = [
    "AccessRecord",
    "DependenceEdge",
    "DependenceGraph",
    "build_dependence_graph",
]


@dataclass(frozen=True)
class AccessRecord:
    """One loop's merged access to one dataset.

    ``offsets`` are the declared read stencil points (tuples of per-dim
    relative offsets); pure writes carry the centre point only.
    """

    ref: Hashable
    reads: bool
    writes: bool
    offsets: tuple[tuple[int, ...], ...] = ()


@dataclass(frozen=True)
class DependenceEdge:
    """A dataflow dependence from chain position ``src`` to ``dst``.

    ``kind`` is ``"raw"`` (true), ``"war"`` (anti) or ``"waw"`` (output);
    ``offsets`` are the read-stencil points through which the dependence
    reaches (empty for WAW, whose endpoints are both centre writes).
    """

    src: int
    dst: int
    ref: Hashable
    kind: str
    offsets: tuple[tuple[int, ...], ...] = ()


@dataclass
class DependenceGraph:
    """All pairwise dependences over one ordered loop chain."""

    n_loops: int
    edges: list[DependenceEdge] = field(default_factory=list)

    def edges_for(self, ref: Hashable) -> list[DependenceEdge]:
        return [e for e in self.edges if e.ref == ref]

    def predecessors(self, dst: int) -> set[int]:
        return {e.src for e in self.edges if e.dst == dst}

    def has_edge(self, src: int, dst: int) -> bool:
        return any(e.src == src and e.dst == dst for e in self.edges)

    def max_extent(self, ndim: int) -> tuple[int, ...]:
        """Per-dimension maximum |offset| across all dependence edges.

        This is the spatial reach a cross-loop execution reordering (tile
        skewing, sliced execution) must respect; zero in every dimension
        means all dependences are centre-to-centre and any point-preserving
        reordering that keeps program order per point is legal.
        """
        ext = [0] * ndim
        for e in self.edges:
            for off in e.offsets:
                for d, c in enumerate(off):
                    if d < ndim:
                        ext[d] = max(ext[d], abs(int(c)))
        return tuple(ext)


def build_dependence_graph(
    accesses: Sequence[Sequence[AccessRecord]],
) -> DependenceGraph:
    """Build the dependence graph for an ordered chain of loops.

    ``accesses[i]`` lists loop *i*'s per-dataset access records (merged:
    one record per dataset per loop).  For every dataset and every ordered
    pair ``i < j`` the classic three dependences are emitted:

    * RAW — ``i`` writes, ``j`` reads (through ``j``'s read stencil);
    * WAR — ``i`` reads (through ``i``'s stencil), ``j`` writes;
    * WAW — both write (centre-to-centre, no stencil reach).

    Transitively-implied edges are pruned, but only where an explicit
    edge chain *through the same points* already enforces the ordering —
    which is all a point-wise scheduler (tile skewing) guarantees:

    * RAW and WAW link each access back to the **nearest** earlier writer
      only: earlier writers are chained to that writer by their own
      centre-to-centre WAW edges, so the per-point ordering composes.
    * WAR links a writer back to **every** earlier reader up to and
      including the most recent earlier writer.  Read-read pairs create
      no edge, so stopping at the nearest reader would silently drop a
      farther reader's (possibly wider) stencil from the graph — and
      from :meth:`DependenceGraph.max_extent`, under-skewing the tile
      schedule.  Readers before that writer *are* covered: each holds a
      WAR edge to it (emitted by this same rule) and the writer chains
      forward centre-to-centre.
    """
    graph = DependenceGraph(n_loops=len(accesses))
    refs: set[Hashable] = set()
    for per_loop in accesses:
        for rec in per_loop:
            refs.add(rec.ref)

    for ref in refs:
        touched = [
            (i, rec)
            for i, per_loop in enumerate(accesses)
            for rec in per_loop
            if rec.ref == ref
        ]
        # backwards scan per access: RAW/WAW stop at the nearest earlier
        # writer; WAR keeps fanning out to every earlier reader until a
        # writer has been *passed* (readers before it are ordered through
        # that writer's own WAR/WAW edges)
        for jdx, (j, rec_j) in enumerate(touched):
            seen_raw = seen_waw = False
            war_done = not rec_j.writes
            for i, rec_i in reversed(touched[:jdx]):
                if rec_j.reads and rec_i.writes and not seen_raw:
                    graph.edges.append(DependenceEdge(
                        i, j, ref, "raw",
                        tuple(tuple(o) for o in rec_j.offsets),
                    ))
                    seen_raw = True
                if not war_done and rec_i.reads:
                    graph.edges.append(DependenceEdge(
                        i, j, ref, "war",
                        tuple(tuple(o) for o in rec_i.offsets),
                    ))
                if rec_j.writes and rec_i.writes and not seen_waw:
                    graph.edges.append(DependenceEdge(i, j, ref, "waw"))
                    seen_waw = True
                if rec_i.writes:
                    war_done = True
                if (seen_raw or not rec_j.reads) and war_done and (
                    seen_waw or not rec_j.writes
                ):
                    break
    graph.edges.sort(key=lambda e: (e.src, e.dst, str(e.ref), e.kind))
    return graph
