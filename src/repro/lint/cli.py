"""Lint driver and command line.

``python -m repro.lint repro.apps.airfoil.app`` (or a file path) runs both
analysis levels over each named application module and emits a report.

Exit codes: 0 — clean (below the --fail-on threshold); 1 — at least one
non-baselined finding at or above the threshold; 2 — usage or resolution
error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.lint import chain as chain_mod
from repro.lint import kernel_checks
from repro.lint.baseline import (
    BaselineError,
    apply_baseline,
    load_baseline,
    rewrite_baseline,
    unused_entries,
)
from repro.lint.diagnostics import Diagnostic, LintResult, Severity
from repro.lint.emit import EMITTERS, emit_text
from repro.lint.resolve import LintResolutionError, Program, locate_module
from repro.translator.frontend import parse_app_full


def lint_path(path: str | Path, program: Program | None = None) -> LintResult:
    """Run both analysis levels over one application module file."""
    program = program or Program()
    idx = program.index_path(Path(path))
    parsed = parse_app_full(idx.path.read_text(), filename=idx.filename)

    result = LintResult(files=[idx.filename], n_sites=len(parsed.sites))

    for u in parsed.unliftable:
        result.diagnostics.append(Diagnostic(
            u.code,
            f"unliftable parallel-loop call site in {u.enclosing}: {u.reason}",
            idx.filename, u.lineno, loop=u.enclosing,
        ))

    for site in parsed.sites:
        diags, n_kernels, certs = kernel_checks.check_site(program, idx, site)
        result.diagnostics.extend(diags)
        result.n_kernels += n_kernels
        result.certificates.update(certs)

    chains = chain_mod.build_chains(program, idx, parsed.sites)
    result.n_chains = len(chains)
    for c in chains:
        result.diagnostics.extend(chain_mod.check_chain(idx, c))
        result.checkpoint_tables[c.name] = chain_mod.chain_table(c)

    return result


def lint_app(spec: str, program: Program | None = None) -> LintResult:
    """Lint a dotted module name or a file path."""
    return lint_path(locate_module(spec), program)


def lint_many(specs: list[str]) -> LintResult:
    """Lint several app modules, sharing one module index."""
    program = Program()
    total = LintResult()
    for spec in specs:
        total.extend(lint_app(spec, program))
    return total


_FAIL_LEVEL = {
    "error": Severity.ERROR,
    "warning": Severity.WARNING,
    "never": None,
}


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Static kernel/descriptor and loop-chain analysis for "
                    "repro applications.",
    )
    p.add_argument("apps", nargs="+", metavar="APP",
                   help="application module (dotted name or .py path)")
    p.add_argument("-f", "--format", choices=sorted(EMITTERS),
                   default="text", help="report format (default: text)")
    p.add_argument("-o", "--output", metavar="FILE",
                   help="write the report to FILE instead of stdout")
    p.add_argument("--baseline", metavar="FILE",
                   help="JSON baseline of suppressed findings")
    p.add_argument("--update-baseline", action="store_true",
                   help="rewrite the --baseline file, pruning entries that "
                        "no longer match any finding")
    p.add_argument("--fail-on-stale", action="store_true",
                   help="exit non-zero when the baseline contains stale "
                        "suppressions (CI hygiene gate)")
    p.add_argument("--fail-on", choices=sorted(_FAIL_LEVEL), default="error",
                   help="minimum severity that fails the run "
                        "(default: error)")
    p.add_argument("--checkpoint", action="store_true",
                   help="also print the static Figure-8 checkpoint table "
                        "for every loop chain")
    p.add_argument("--no-hints", action="store_true",
                   help="omit fix hints from the text report")
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    try:
        result = lint_many(args.apps)
    except LintResolutionError as exc:
        print(f"repro.lint: {exc}", file=sys.stderr)
        return 2

    if args.update_baseline and not args.baseline:
        print("repro.lint: --update-baseline requires --baseline",
              file=sys.stderr)
        return 2

    stale: list[dict] = []
    if args.baseline:
        try:
            entries = load_baseline(args.baseline)
        except BaselineError as exc:
            print(f"repro.lint: {exc}", file=sys.stderr)
            return 2
        apply_baseline(result, entries)
        stale = unused_entries(result, entries)
        if args.update_baseline:
            kept, pruned = rewrite_baseline(args.baseline, result)
            print(f"repro.lint: rewrote {args.baseline}: {kept} entries "
                  f"kept, {pruned} stale entries pruned", file=sys.stderr)
            stale = []

    if args.format == "text":
        report = emit_text(result, with_hints=not args.no_hints)
    else:
        report = EMITTERS[args.format](result)

    if args.output:
        Path(args.output).write_text(report + "\n")
        print(f"repro.lint: wrote {args.format} report to {args.output}")
    else:
        print(report)

    if args.checkpoint and result.checkpoint_tables:
        for name, table in sorted(result.checkpoint_tables.items()):
            print(f"\ncheckpoint table for chain {name}:")
            print(table)

    for e in stale:
        print(f"repro.lint: stale baseline entry (matched nothing): {e}",
              file=sys.stderr)

    level = _FAIL_LEVEL[args.fail_on]
    if level is not None and result.active(level):
        return 1
    if args.fail_on_stale and stale:
        return 1
    return 0
