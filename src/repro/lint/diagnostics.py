"""Structured diagnostics for the static analyser.

Every finding carries a stable code (OPLxxx), a severity, a location and a
fix hint.  The registry below is the single source of truth for the code
catalogue; the emitters, the SARIF rule table and the DESIGN documentation
all derive from it.

Codes 0xx are kernel/descriptor (level 1) findings, 1xx are loop-chain
dataflow (level 2) findings, and 9xx are lifting failures.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.IntEnum):
    """Finding severity; ERROR findings gate strict translation."""

    NOTE = 0
    WARNING = 1
    ERROR = 2

    @property
    def label(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Rule:
    """One diagnostic code of the catalogue."""

    code: str
    severity: Severity
    summary: str
    hint: str
    #: which paper mechanism a violation would corrupt (halo derivation,
    #: colouring, checkpoint drop list, ...) — documentation + SARIF text
    protects: str


RULES: dict[str, Rule] = {
    r.code: r
    for r in [
        Rule(
            "OPL001", Severity.ERROR,
            "argument declared READ but the kernel assigns to it",
            "change the declared access to WRITE/RW/INC, or remove the "
            "assignment from the kernel body",
            "halo exchange: READ args never mark halos dirty, so a hidden "
            "write silently desynchronises neighbour ranks; colouring: "
            "hidden indirect writes race between same-colour elements",
        ),
        Rule(
            "OPL002", Severity.ERROR,
            "argument declared as a reduction but used non-additively",
            "make the kernel contribution a pure increment (+=/-=) or the "
            "matching reduction fold, or declare the argument RW",
            "colouring and reduction handling: INC contributions are "
            "reordered and privatised per thread/colour; a contribution "
            "that observes the current value is order-dependent",
        ),
        Rule(
            "OPL003", Severity.ERROR,
            "argument declared WRITE but read before the first write",
            "declare the argument RW (the old value is observed), or "
            "initialise it before reading",
            "checkpoint drop list: WRITE-first datasets are dropped from "
            "checkpoints (paper Fig 8); a stale read makes the restarted "
            "run observe uninitialised data",
        ),
        Rule(
            "OPL004", Severity.ERROR,
            "kernel accesses an offset outside the declared stencil",
            "add the offset to the declared stencil (extending halo depth) "
            "or fix the kernel index",
            "halo derivation: OPS sizes halo regions from declared stencil "
            "extents; an undeclared offset reads unexchanged halo cells",
        ),
        Rule(
            "OPL005", Severity.WARNING,
            "declared argument is never accessed by the kernel",
            "drop the argument from the par_loop call (it forces halo "
            "exchanges and checkpoint traffic for data the loop ignores)",
            "halo exchange and checkpoint save set: unused descriptors "
            "inflate both",
        ),
        Rule(
            "OPL006", Severity.ERROR,
            "descriptor count does not match the kernel parameter list",
            "align the par_loop descriptor list with the kernel signature",
            "the access-execute contract: every kernel parameter must have "
            "a descriptor for the planner to reason about it",
        ),
        Rule(
            "OPL007", Severity.ERROR,
            "MIN/MAX access declared for a non-global argument",
            "MIN/MAX are reduction modes; use a Global/Reduction handle, "
            "or READ/WRITE/RW/INC for dats",
            "reduction handling: MIN/MAX results are combined across "
            "threads and ranks; per-element dats have no combine step",
        ),
        Rule(
            "OPL101", Severity.WARNING,
            "dead write: the value is overwritten before any read",
            "drop the write (and weaken the declared access), or move the "
            "consuming loop before the overwrite",
            "checkpoint units and tiling: dead writes inflate the Fig 8 "
            "save set and create false RAW edges that block loop fusion",
        ),
        Rule(
            "OPL102", Severity.NOTE,
            "dataset is read before any write in the chain (carried state)",
            "expected for state carried across iterations; such datasets "
            "are exactly the checkpoint save set",
            "checkpoint save list: first-access-reads datasets must be "
            "saved (paper Fig 8)",
        ),
        Rule(
            "OPL103", Severity.NOTE,
            "redundant halo-freshening: halos are already fresh",
            "the runtime's lazy exchange skips this; a generated MPI "
            "schedule should hoist the exchange out of the loop chain",
            "halo exchange schedule: two exchanges with no interleaving "
            "write move the same bytes twice",
        ),
        Rule(
            "OPL104", Severity.WARNING,
            "static checkpoint classification disagrees with "
            "repro.checkpoint.analysis",
            "report this: the linter's first-access rule and the Fig 8 "
            "analysis must agree on save/drop sets",
            "checkpoint save/drop decision (paper Fig 8)",
        ),
        Rule(
            "OPL201", Severity.ERROR,
            "abstract interpretation proves an access outside the declared "
            "stencil / halo depth",
            "the offending index is computed (loop variable or arithmetic), "
            "so the syntactic check cannot see it; widen the declared "
            "stencil or fix the index computation",
            "halo derivation: a proven out-of-stencil access reads halo "
            "cells the declared extents never exchange — a silent "
            "wrong-answer on rank boundaries",
        ),
        Rule(
            "OPL202", Severity.WARNING,
            "kernel reads a neighbour offset of a dataset it also writes",
            "split the loop (write to a second dataset), or declare the "
            "read through a separate READ argument so the planner orders "
            "the sweep explicitly",
            "tiling and colouring: a same-loop neighbour read of a written "
            "field observes stale or already-updated values depending on "
            "traversal order — the result is schedule-dependent",
        ),
        Rule(
            "OPL203", Severity.NOTE,
            "declared stencil point is provably never accessed",
            "shrink the declared stencil to the proven extent; "
            "over-declaration widens halo exchanges and tile skew for "
            "accesses that never happen",
            "halo exchange volume and tile-skew extents both derive from "
            "declared stencils; unused points cost bandwidth and fusion",
        ),
        Rule(
            "OPL301", Severity.WARNING,
            "store silently narrows the value's dtype",
            "cast explicitly, or widen the destination Dat's dtype; silent "
            "float64->float32 (or float->int) truncation accumulates over "
            "timesteps",
            "bitwise reproducibility across backends: implicit narrowing "
            "is where vectorised and scalar paths first disagree",
        ),
        Rule(
            "OPL302", Severity.WARNING,
            "true division of integer operands feeds an integer store",
            "use // for integer division, or declare the destination Dat "
            "as a float dtype; Python's / always produces a float, which "
            "the store then truncates",
            "dtype discipline: C codegen would compute an integer "
            "division here while Python computes a float — the two "
            "backends silently diverge",
        ),
        Rule(
            "OPL303", Severity.WARNING,
            "subscript dimensionality disagrees with the declared stencil",
            "index the dat with one component per declared stencil "
            "dimension (e.g. q[0, 0] for a 2-D stencil)",
            "halo derivation and tiling reason per dimension; a "
            "rank-mismatched index defeats both",
        ),
        Rule(
            "OPL900", Severity.WARNING,
            "unliftable parallel-loop call site",
            "rewrite the call with explicit descriptors (no *args/**kwargs "
            "and no computed kernel), or baseline it with a justification",
            "every analysis above: a loop the frontend cannot lift is "
            "invisible to halo, colouring and checkpoint reasoning",
        ),
    ]
}


@dataclass
class Diagnostic:
    """One finding, located and attributable."""

    code: str
    message: str
    file: str
    line: int
    severity: Severity | None = None  # defaults to the rule severity
    loop: str | None = None  # kernel text or loop name
    arg: str | None = None  # dat/parameter name
    hint: str | None = None  # defaults to the rule hint
    suppressed: bool = False
    suppression_reason: str | None = None

    def __post_init__(self) -> None:
        rule = RULES.get(self.code)
        if rule is not None:
            if self.severity is None:
                self.severity = rule.severity
            if self.hint is None:
                self.hint = rule.hint
        elif self.severity is None:
            self.severity = Severity.WARNING

    @property
    def location(self) -> str:
        return f"{self.file}:{self.line}"

    def format(self, *, with_hint: bool = True) -> str:
        ctx = ""
        if self.loop or self.arg:
            parts = [p for p in (self.loop, self.arg) if p]
            ctx = f" [{' / '.join(parts)}]"
        text = (
            f"{self.location}: {self.code} {self.severity.label}{ctx}: "
            f"{self.message}"
        )
        if self.suppressed:
            text += f"  (baselined: {self.suppression_reason or 'no reason given'})"
        elif with_hint and self.hint:
            text += f"\n    hint: {self.hint}"
        return text


@dataclass
class LintResult:
    """Everything one lint run produced."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    files: list[str] = field(default_factory=list)
    n_sites: int = 0
    n_chains: int = 0
    n_kernels: int = 0
    checkpoint_tables: dict[str, str] = field(default_factory=dict)
    #: kernel name -> KernelCertificate proven for it (one per analysed body)
    certificates: dict[str, object] = field(default_factory=dict)

    def active(self, at_least: Severity = Severity.NOTE) -> list[Diagnostic]:
        """Non-suppressed findings at or above a severity."""
        return [
            d for d in self.diagnostics
            if not d.suppressed and d.severity >= at_least
        ]

    def counts(self) -> dict[str, int]:
        out = {"error": 0, "warning": 0, "note": 0, "suppressed": 0}
        for d in self.diagnostics:
            if d.suppressed:
                out["suppressed"] += 1
            else:
                out[d.severity.label] += 1
        return out

    def extend(self, other: "LintResult") -> None:
        self.diagnostics.extend(other.diagnostics)
        self.files.extend(other.files)
        self.n_sites += other.n_sites
        self.n_chains += other.n_chains
        self.n_kernels += other.n_kernels
        self.checkpoint_tables.update(other.checkpoint_tables)
        self.certificates.update(other.certificates)
