"""Baseline suppression for known, justified findings.

A baseline file is JSON::

    {
      "version": 1,
      "suppressions": [
        {"code": "OPL900", "module": "cloverleaf/app.py",
         "loop": "*", "reason": "predictor list is data-driven; covered by
         the runtime sanitizer"}
      ]
    }

Entries match on diagnostic code, module (a path suffix, so baselines are
checkout-location independent), and optionally the loop and dat names —
never on line numbers, which churn with every edit.  ``"*"`` (or an
omitted key) matches anything; ``reason`` is required and is carried into
the emitted report so a suppression is never silent.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.common.errors import ReproError
from repro.lint.diagnostics import Diagnostic, LintResult


class BaselineError(ReproError):
    """The baseline file is missing, unparseable, or malformed."""


def load_baseline(path: str | Path) -> list[dict]:
    try:
        data = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
    if not isinstance(data, dict) or not isinstance(data.get("suppressions"), list):
        raise BaselineError(
            f"baseline {path} must be an object with a 'suppressions' list"
        )
    entries = data["suppressions"]
    for i, e in enumerate(entries):
        if not isinstance(e, dict) or not e.get("reason"):
            raise BaselineError(
                f"baseline {path}: suppression #{i} has no 'reason' — every "
                "baselined finding needs a justification"
            )
    return entries


def _field_matches(pattern: str | None, value: str | None) -> bool:
    if pattern is None or pattern == "*":
        return True
    return value is not None and pattern in value


def _module_matches(pattern: str | None, file: str) -> bool:
    if pattern is None or pattern == "*":
        return True
    norm = file.replace("\\", "/")
    return norm.endswith(pattern) or Path(norm).name == pattern


def matches(entry: dict, d: Diagnostic) -> bool:
    return (
        entry.get("code") in (None, "*", d.code)
        and _module_matches(entry.get("module"), d.file)
        and _field_matches(entry.get("loop"), d.loop)
        and _field_matches(entry.get("dat"), d.arg)
    )


def apply_baseline(result: LintResult, entries: list[dict]) -> int:
    """Mark matching diagnostics suppressed; returns how many matched."""
    n = 0
    for d in result.diagnostics:
        for e in entries:
            if matches(e, d):
                d.suppressed = True
                d.suppression_reason = e["reason"]
                n += 1
                break
    return n


def unused_entries(result: LintResult, entries: list[dict]) -> list[dict]:
    """Baseline entries that matched nothing (stale suppressions)."""
    return [
        e for e in entries
        if not any(matches(e, d) for d in result.diagnostics)
    ]


def rewrite_baseline(path: str | Path, result: LintResult) -> tuple[int, int]:
    """Rewrite a baseline file, pruning entries that match nothing.

    A fixed finding leaves its suppression behind; left in place, the
    stale entry would silently swallow the next genuine finding that
    happens to match its pattern.  Returns ``(kept, pruned)`` counts.
    Top-level keys other than ``suppressions`` are preserved verbatim.
    """
    p = Path(path)
    entries = load_baseline(p)
    data = json.loads(p.read_text())
    stale = unused_entries(result, entries)
    kept = [e for e in entries if e not in stale]
    data["suppressions"] = kept
    p.write_text(json.dumps(data, indent=2) + "\n")
    return len(kept), len(stale)
