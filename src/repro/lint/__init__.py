"""Static analysis for the access-execute contract (``repro.lint``).

Two levels, both AST-only (no application code is executed):

* **kernel/descriptor** — per-argument kernel-body footprints diffed
  against the declared ``Access``/stencil descriptors (OPL0xx);
* **loop-chain dataflow** — RAW/WAR/WAW reasoning over the ordered loop
  sites of each enclosing function: dead writes, carried state, halo
  redundancy, checkpoint cross-checks (OPL1xx).

See :mod:`repro.lint.diagnostics` for the full code catalogue and
``python -m repro.lint --help`` for the CLI.
"""

from repro.lint.baseline import apply_baseline, load_baseline
from repro.lint.cli import lint_app, lint_many, lint_path, main
from repro.lint.dataflow import (
    AccessRecord,
    DependenceEdge,
    DependenceGraph,
    build_dependence_graph,
)
from repro.lint.diagnostics import RULES, Diagnostic, LintResult, Rule, Severity

__all__ = [
    "RULES",
    "AccessRecord",
    "DependenceEdge",
    "DependenceGraph",
    "Diagnostic",
    "LintResult",
    "Rule",
    "Severity",
    "apply_baseline",
    "build_dependence_graph",
    "lint_app",
    "lint_many",
    "lint_path",
    "load_baseline",
    "main",
]
