"""Report emitters: human text, machine JSON, and SARIF 2.1.0.

The SARIF output is intentionally minimal but structurally valid: one run,
one tool driver whose rule table is generated from the OPL catalogue, one
result per diagnostic with a physical location, and ``suppressions``
entries for baselined findings so code-scanning UIs show them as such.
"""

from __future__ import annotations

import json

from repro.lint.diagnostics import RULES, Diagnostic, LintResult, Severity

_SARIF_LEVEL = {Severity.NOTE: "note", Severity.WARNING: "warning",
                Severity.ERROR: "error"}


def emit_text(result: LintResult, *, with_hints: bool = True) -> str:
    lines = []
    for d in sorted(result.diagnostics, key=lambda d: (d.file, d.line, d.code)):
        lines.append(d.format(with_hint=with_hints))
    c = result.counts()
    lines.append(
        f"{len(result.files)} file(s), {result.n_sites} loop site(s), "
        f"{result.n_kernels} kernel(s), {result.n_chains} chain(s): "
        f"{c['error']} error(s), {c['warning']} warning(s), "
        f"{c['note']} note(s), {c['suppressed']} baselined"
    )
    return "\n".join(lines)


def _diag_dict(d: Diagnostic) -> dict:
    return {
        "code": d.code,
        "severity": d.severity.label,
        "message": d.message,
        "file": d.file,
        "line": d.line,
        "loop": d.loop,
        "arg": d.arg,
        "hint": d.hint,
        "suppressed": d.suppressed,
        "suppression_reason": d.suppression_reason,
    }


def emit_json(result: LintResult) -> str:
    return json.dumps(
        {
            "version": 1,
            "files": result.files,
            "summary": {
                **result.counts(),
                "sites": result.n_sites,
                "kernels": result.n_kernels,
                "chains": result.n_chains,
            },
            "diagnostics": [
                _diag_dict(d)
                for d in sorted(result.diagnostics,
                                key=lambda d: (d.file, d.line, d.code))
            ],
        },
        indent=2,
    )


def emit_sarif(result: LintResult) -> str:
    rules = [
        {
            "id": r.code,
            "shortDescription": {"text": r.summary},
            "fullDescription": {"text": f"{r.summary}. Protects: {r.protects}"},
            "help": {"text": r.hint},
            "defaultConfiguration": {"level": _SARIF_LEVEL[r.severity]},
        }
        for r in RULES.values()
    ]
    rule_index = {r.code: i for i, r in enumerate(RULES.values())}
    results = []
    for d in sorted(result.diagnostics, key=lambda d: (d.file, d.line, d.code)):
        entry = {
            "ruleId": d.code,
            "level": _SARIF_LEVEL[d.severity],
            "message": {"text": d.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": d.file},
                        "region": {"startLine": max(d.line, 1)},
                    }
                }
            ],
        }
        if d.code in rule_index:
            entry["ruleIndex"] = rule_index[d.code]
        if d.suppressed:
            entry["suppressions"] = [
                {
                    "kind": "external",
                    "justification": d.suppression_reason or "",
                }
            ]
        results.append(entry)
    doc = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.lint",
                        "informationUri":
                            "https://example.invalid/repro-lint",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(doc, indent=2)


EMITTERS = {"text": emit_text, "json": emit_json, "sarif": emit_sarif}
