"""Level 1: diff kernel-body footprints against declared descriptors.

For every lifted :class:`~repro.translator.frontend.LoopSite`, resolve the
kernel expression to its function bodies, infer per-parameter footprints,
align them with the descriptor list, and emit OPL001–OPL007 findings
where the body contradicts the declaration.

Kernel-body findings (OPL001–OPL004) point at the offending line *inside
the kernel*; declaration findings (OPL005–OPL007) point at the descriptor
in the application source.  When a kernel expression resolves to several
candidate bodies (a factory returning one of two closures), only findings
common to every arity-compatible candidate are reported.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path

from repro.lint.abstract import (
    KernelAnalysis,
    _kind,
    _narrows,
    analyze_ir,
    box_points,
    certificate_from_analysis,
)
from repro.lint.diagnostics import Diagnostic
from repro.lint.footprint import (
    ParamFootprint,
    kernel_defaults,
    kernel_params,
)
from repro.lint.ir import lower_kernel
from repro.lint.resolve import ModuleIndex, Program, _call_basename
from repro.translator.frontend import LoopSite, RawArg

#: declared access -> reduction kind for the additivity check
_REDUCTION_KIND = {"INC": "inc", "MIN": "min", "MAX": "max"}


@dataclass
class DeclaredArg:
    """One descriptor position, normalised for checking."""

    raw: RawArg
    access: str | None  # READ/WRITE/RW/INC/MIN/MAX, or None if unknown
    dat: str  # source text of the dat / handle
    is_global: bool
    stencil_text: str | None  # OPS: declared stencil expression


def is_global_expr(idx: ModuleIndex, text: str) -> bool:
    """Whether a dat expression denotes a Global/Reduction handle."""
    if text in idx.globals_ or text in idx.reductions:
        return True
    if text.startswith("self.") and text[len("self."):] in idx.globals_:
        return True
    try:
        expr = ast.parse(text, mode="eval").body
    except SyntaxError:
        return False
    return _call_basename(expr) in ("Global", "local_global", "Reduction")


def declared_args(idx: ModuleIndex, site: LoopSite) -> list[DeclaredArg]:
    """Normalise a site's descriptor positions for checking."""
    out = []
    for raw in site.raw_args:
        if raw.arg is not None:
            a = raw.arg
            out.append(DeclaredArg(
                raw=raw, access=a.access, dat=a.dat,
                is_global=is_global_expr(idx, a.dat),
                stencil_text=a.stencil,
            ))
        else:
            # bare handle (OPS reduction passed without a descriptor call):
            # its declared access is implied by the reduction kind
            kind = idx.reductions.get(raw.text)
            access = {"inc": "INC", "min": "MIN", "max": "MAX"}.get(kind or "")
            out.append(DeclaredArg(
                raw=raw, access=access, dat=raw.text,
                is_global=is_global_expr(idx, raw.text), stencil_text=None,
            ))
    return out


def _offset_ok(
    offset: tuple[int, ...], points: tuple[tuple[int, ...], ...] | None
) -> bool:
    """Whether a constant kernel offset is covered by the declared points.

    ``points`` of ``None`` means the default centre stencil: only the
    all-zero offset is covered.  Offsets whose dimensionality differs
    from every declared point are skipped (treated as covered)."""
    if points is None:
        return all(c == 0 for c in offset)
    same_dim = [p for p in points if len(p) == len(offset)]
    if not same_dim:
        return True
    return offset in same_dim


def _check_candidate(
    program: Program,
    idx: ModuleIndex,
    site: LoopSite,
    decls: list[DeclaredArg],
    fn: ast.FunctionDef,
    fn_idx: ModuleIndex,
) -> tuple[list[Diagnostic], object] | None:
    """Findings plus the kernel certificate for one (site, candidate) pair.

    Returns ``None`` when the candidate's arity cannot match the
    descriptor list (the caller falls back to OPL006 if *no* candidate
    fits)."""
    params = kernel_params(fn)
    n_opt = kernel_defaults(fn)
    if not (len(params) - n_opt <= len(decls) <= len(params)):
        return None

    ir = lower_kernel(fn)
    fps = ir.footprints
    loop = site.display_name
    kfile = fn_idx.filename
    diags: list[Diagnostic] = []

    for d, pname in zip(decls, params):
        fp: ParamFootprint = fps[pname]

        if d.access in ("MIN", "MAX") and not d.is_global:
            diags.append(Diagnostic(
                "OPL007",
                f"argument {d.dat!r} is declared {d.access} but is not a "
                "Global/Reduction handle",
                idx.filename, d.raw.lineno,
                loop=loop, arg=d.dat,
            ))

        if fp.opaque:
            continue  # the body aliases/rebinds it; footprint is partial

        if not fp.used:
            diags.append(Diagnostic(
                "OPL005",
                f"argument {d.dat!r} (kernel parameter {pname!r}) is never "
                "accessed by the kernel body",
                idx.filename, d.raw.lineno, loop=loop, arg=d.dat,
            ))
            continue

        if d.access == "READ" and fp.writes:
            w = fp.writes[0]
            diags.append(Diagnostic(
                "OPL001",
                f"argument {d.dat!r} is declared READ but kernel parameter "
                f"{pname!r} is assigned",
                kfile, w.lineno, loop=loop, arg=d.dat,
            ))

        kind = _REDUCTION_KIND.get(d.access or "")
        if kind is not None:
            bad = fp.nonadditive_events(kind)
            if bad:
                diags.append(Diagnostic(
                    "OPL002",
                    f"argument {d.dat!r} is declared {d.access} but kernel "
                    f"parameter {pname!r} is used non-additively "
                    f"({bad[0].kind}{' .' + bad[0].op + '()' if bad[0].kind == 'fold' else ''})",
                    kfile, bad[0].lineno, loop=loop, arg=d.dat,
                ))

        if d.access == "WRITE" and fp.read_before_write:
            r = fp.reads[0]
            diags.append(Diagnostic(
                "OPL003",
                f"argument {d.dat!r} is declared WRITE but kernel parameter "
                f"{pname!r} is read before the first write",
                kfile, r.lineno, loop=loop, arg=d.dat,
            ))

        if site.api == "ops" and not d.is_global:
            points = program.resolve_stencil(idx, d.stencil_text)
            if d.stencil_text is None or points is not None:
                for e in fp.constant_offsets():
                    if not _offset_ok(e.offset, points):
                        diags.append(Diagnostic(
                            "OPL004",
                            f"kernel parameter {pname!r} accesses offset "
                            f"{e.offset} outside the declared stencil of "
                            f"{d.dat!r}",
                            kfile, e.lineno, loop=loop, arg=d.dat,
                        ))

    dtypes = {}
    for d, pname in zip(decls, params):
        info = program.resolve_dat_info(idx, d.dat)
        dtypes[pname] = info.dtype if info is not None else None
    an = analyze_ir(ir, dtypes, n_bound=len(decls))
    diags.extend(_abstract_checks(program, idx, site, decls, params,
                                  fps, an, kfile, loop))
    cert = certificate_from_analysis(an)
    return diags, cert


def _abstract_checks(
    program: Program,
    idx: ModuleIndex,
    site: LoopSite,
    decls: list[DeclaredArg],
    params: list[str],
    fps: dict[str, ParamFootprint],
    an: KernelAnalysis,
    kfile: str,
    loop: str,
) -> list[Diagnostic]:
    """OPL2xx/OPL3xx findings from the abstract-interpretation result.

    Extent findings (OPL201/203/303) are restricted to accesses the
    syntactic pass could *not* see (non-constant indices) or to facts only
    the interval domain can establish (never-accessed declared points), so
    they never duplicate OPL004; dtype findings (OPL301/302) need the
    dat's declared dtype to resolve statically and stay silent otherwise.
    """
    diags: list[Diagnostic] = []
    for d, pname in zip(decls, params):
        fp = fps[pname]
        if fp.opaque or not fp.used:
            continue
        pa = an.params[pname]
        info = program.resolve_dat_info(idx, d.dat)

        # -- dtype lattice: silent narrowing / integer-division stores ------
        tgt = info.dtype if info is not None else None
        if tgt is not None:
            for a in pa.writes:
                if a.kind != "store":
                    continue
                if a.int_division and _kind(tgt) in ("i", "b"):
                    diags.append(Diagnostic(
                        "OPL302",
                        f"kernel parameter {pname!r} stores the result of a "
                        f"true division of integer operands into integer "
                        f"dat {d.dat!r} ({tgt}): the float result is "
                        "silently truncated",
                        kfile, a.lineno, loop=loop, arg=d.dat,
                    ))
                elif _narrows(a.value_dtype, tgt):
                    diags.append(Diagnostic(
                        "OPL301",
                        f"kernel parameter {pname!r} stores a "
                        f"{a.value_dtype} value into dat {d.dat!r} declared "
                        f"{tgt}: the store silently narrows",
                        kfile, a.lineno, loop=loop, arg=d.dat,
                    ))

        # -- interval domain: stencil extent proofs (OPS structured API) ----
        if site.api != "ops" or d.is_global:
            continue
        points = program.resolve_stencil(idx, d.stencil_text)
        accs = pa.reads + pa.writes

        # OPL303: proven index rank disagrees with the declared stencil
        if points is not None:
            ranks = {len(p) for p in points}
            flagged: set[int] = set()
            for a in accs:
                if a.synthetic:
                    continue
                pts = box_points(a.box)
                if pts is None:
                    continue
                for off in pts:
                    if len(off) not in ranks and a.lineno not in flagged:
                        diags.append(Diagnostic(
                            "OPL303",
                            f"kernel parameter {pname!r} indexes "
                            f"{len(off)} dimension(s) but the declared "
                            f"stencil of {d.dat!r} has "
                            f"{'/'.join(str(r) for r in sorted(ranks))}",
                            kfile, a.lineno, loop=loop, arg=d.dat,
                        ))
                        flagged.add(a.lineno)
                        break

        # OPL201: proven out-of-stencil access at a computed index
        if d.stencil_text is None or points is not None:
            for a in accs:
                if a.syntactic is not None or a.synthetic:
                    continue
                pts = box_points(a.box)
                if pts is None:
                    continue
                bad = [off for off in pts if not _offset_ok(off, points)]
                if bad:
                    diags.append(Diagnostic(
                        "OPL201",
                        f"abstract interpretation proves kernel parameter "
                        f"{pname!r} accesses offset {bad[0]} outside the "
                        f"declared stencil of {d.dat!r}",
                        kfile, a.lineno, loop=loop, arg=d.dat,
                    ))
        elif info is not None and info.halo_depth is not None:
            for a in accs:
                if a.syntactic is not None or a.synthetic or a.box is None:
                    continue
                reach = max((max(abs(iv.lo), abs(iv.hi)) for iv in a.box),
                            default=0)
                if reach > info.halo_depth:
                    diags.append(Diagnostic(
                        "OPL201",
                        f"abstract interpretation proves kernel parameter "
                        f"{pname!r} reaches offset magnitude {reach}, "
                        f"beyond the halo depth {info.halo_depth} of "
                        f"{d.dat!r}",
                        kfile, a.lineno, loop=loop, arg=d.dat,
                    ))

        # OPL202: neighbour read of a dataset this same kernel writes
        if pa.writes:
            for a in pa.reads:
                if a.synthetic:
                    continue
                pts = box_points(a.box)
                if pts is None:
                    continue
                off = next((o for o in pts if any(c != 0 for c in o)), None)
                if off is not None:
                    diags.append(Diagnostic(
                        "OPL202",
                        f"kernel parameter {pname!r} reads neighbour offset "
                        f"{off} of {d.dat!r} while also writing it: the "
                        "value observed depends on traversal order",
                        kfile, a.lineno, loop=loop, arg=d.dat,
                    ))
                    break

        # OPL203: declared stencil points the kernel provably never touches
        if (points is not None and d.stencil_text is not None
                and an.complete and pa.exact and accs):
            accessed: set[tuple[int, ...]] = set()
            for a in accs:
                accessed.update(box_points(a.box) or ())
            ranks_seen = {len(o) for o in accessed}
            unused = [p for p in points
                      if len(p) in ranks_seen and p not in accessed]
            if unused and accessed:
                shown = ", ".join(str(p) for p in unused[:4])
                more = "" if len(unused) <= 4 else f" (+{len(unused) - 4})"
                diags.append(Diagnostic(
                    "OPL203",
                    f"declared stencil of {d.dat!r} includes offset(s) "
                    f"{shown}{more} that kernel parameter {pname!r} "
                    "provably never accesses",
                    idx.filename, d.raw.lineno, loop=loop, arg=d.dat,
                ))
    return diags


def _finding_key(d: Diagnostic) -> tuple:
    return (d.code, d.arg, d.message)


def check_site(
    program: Program, idx: ModuleIndex, site: LoopSite
) -> tuple[list[Diagnostic], int, dict[str, object]]:
    """Level-1 findings for one loop site.

    Returns the findings, the number of kernel bodies analysed (0 when
    the kernel expression could not be resolved statically), and the
    certificates proven for those bodies keyed ``<module>.<kernel>``."""
    decls = declared_args(idx, site)
    candidates = program.resolve_kernel(idx, site.kernel)
    if not candidates:
        return [], 0, {}

    per_candidate: list[list[Diagnostic]] = []
    certs: dict[str, object] = {}
    for fn, fn_idx in candidates:
        res = _check_candidate(program, idx, site, decls, fn, fn_idx)
        if res is not None:
            diags, cert = res
            per_candidate.append(diags)
            kpath = Path(fn_idx.filename)
            certs[f"{kpath.parent.name}.{kpath.stem}.{fn.name}"] = cert

    if not per_candidate:
        # every candidate's arity conflicts with the descriptor list
        arities = sorted({
            f"{len(kernel_params(fn)) - kernel_defaults(fn)}"
            + (f"..{len(kernel_params(fn))}" if kernel_defaults(fn) else "")
            for fn, _ in candidates
        })
        return [Diagnostic(
            "OPL006",
            f"{len(decls)} descriptors passed but kernel {site.kernel!r} "
            f"takes {' or '.join(arities)} parameters",
            idx.filename, site.lineno, loop=site.display_name,
        )], len(candidates), {}

    if len(per_candidate) == 1:
        return per_candidate[0], len(candidates), certs

    # several bodies may run here: keep findings every candidate agrees on
    common = set.intersection(*(
        {_finding_key(d) for d in diags} for diags in per_candidate
    ))
    kept = [d for d in per_candidate[0] if _finding_key(d) in common]
    return kept, len(candidates), certs
