"""Level 1: diff kernel-body footprints against declared descriptors.

For every lifted :class:`~repro.translator.frontend.LoopSite`, resolve the
kernel expression to its function bodies, infer per-parameter footprints,
align them with the descriptor list, and emit OPL001–OPL007 findings
where the body contradicts the declaration.

Kernel-body findings (OPL001–OPL004) point at the offending line *inside
the kernel*; declaration findings (OPL005–OPL007) point at the descriptor
in the application source.  When a kernel expression resolves to several
candidate bodies (a factory returning one of two closures), only findings
common to every arity-compatible candidate are reported.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.lint.diagnostics import Diagnostic
from repro.lint.footprint import (
    ParamFootprint,
    infer_footprints,
    kernel_defaults,
    kernel_params,
)
from repro.lint.resolve import ModuleIndex, Program, _call_basename
from repro.translator.frontend import LoopSite, RawArg

#: declared access -> reduction kind for the additivity check
_REDUCTION_KIND = {"INC": "inc", "MIN": "min", "MAX": "max"}


@dataclass
class DeclaredArg:
    """One descriptor position, normalised for checking."""

    raw: RawArg
    access: str | None  # READ/WRITE/RW/INC/MIN/MAX, or None if unknown
    dat: str  # source text of the dat / handle
    is_global: bool
    stencil_text: str | None  # OPS: declared stencil expression


def is_global_expr(idx: ModuleIndex, text: str) -> bool:
    """Whether a dat expression denotes a Global/Reduction handle."""
    if text in idx.globals_ or text in idx.reductions:
        return True
    if text.startswith("self.") and text[len("self."):] in idx.globals_:
        return True
    try:
        expr = ast.parse(text, mode="eval").body
    except SyntaxError:
        return False
    return _call_basename(expr) in ("Global", "local_global", "Reduction")


def declared_args(idx: ModuleIndex, site: LoopSite) -> list[DeclaredArg]:
    """Normalise a site's descriptor positions for checking."""
    out = []
    for raw in site.raw_args:
        if raw.arg is not None:
            a = raw.arg
            out.append(DeclaredArg(
                raw=raw, access=a.access, dat=a.dat,
                is_global=is_global_expr(idx, a.dat),
                stencil_text=a.stencil,
            ))
        else:
            # bare handle (OPS reduction passed without a descriptor call):
            # its declared access is implied by the reduction kind
            kind = idx.reductions.get(raw.text)
            access = {"inc": "INC", "min": "MIN", "max": "MAX"}.get(kind or "")
            out.append(DeclaredArg(
                raw=raw, access=access, dat=raw.text,
                is_global=is_global_expr(idx, raw.text), stencil_text=None,
            ))
    return out


def _offset_ok(
    offset: tuple[int, ...], points: tuple[tuple[int, ...], ...] | None
) -> bool:
    """Whether a constant kernel offset is covered by the declared points.

    ``points`` of ``None`` means the default centre stencil: only the
    all-zero offset is covered.  Offsets whose dimensionality differs
    from every declared point are skipped (treated as covered)."""
    if points is None:
        return all(c == 0 for c in offset)
    same_dim = [p for p in points if len(p) == len(offset)]
    if not same_dim:
        return True
    return offset in same_dim


def _check_candidate(
    program: Program,
    idx: ModuleIndex,
    site: LoopSite,
    decls: list[DeclaredArg],
    fn: ast.FunctionDef,
    fn_idx: ModuleIndex,
) -> list[Diagnostic] | None:
    """Findings for one (site, kernel-candidate) pair.

    Returns ``None`` when the candidate's arity cannot match the
    descriptor list (the caller falls back to OPL006 if *no* candidate
    fits)."""
    params = kernel_params(fn)
    n_opt = kernel_defaults(fn)
    if not (len(params) - n_opt <= len(decls) <= len(params)):
        return None

    fps = infer_footprints(fn)
    loop = site.display_name
    kfile = fn_idx.filename
    diags: list[Diagnostic] = []

    for d, pname in zip(decls, params):
        fp: ParamFootprint = fps[pname]

        if d.access in ("MIN", "MAX") and not d.is_global:
            diags.append(Diagnostic(
                "OPL007",
                f"argument {d.dat!r} is declared {d.access} but is not a "
                "Global/Reduction handle",
                idx.filename, d.raw.lineno,
                loop=loop, arg=d.dat,
            ))

        if fp.opaque:
            continue  # the body aliases/rebinds it; footprint is partial

        if not fp.used:
            diags.append(Diagnostic(
                "OPL005",
                f"argument {d.dat!r} (kernel parameter {pname!r}) is never "
                "accessed by the kernel body",
                idx.filename, d.raw.lineno, loop=loop, arg=d.dat,
            ))
            continue

        if d.access == "READ" and fp.writes:
            w = fp.writes[0]
            diags.append(Diagnostic(
                "OPL001",
                f"argument {d.dat!r} is declared READ but kernel parameter "
                f"{pname!r} is assigned",
                kfile, w.lineno, loop=loop, arg=d.dat,
            ))

        kind = _REDUCTION_KIND.get(d.access or "")
        if kind is not None:
            bad = fp.nonadditive_events(kind)
            if bad:
                diags.append(Diagnostic(
                    "OPL002",
                    f"argument {d.dat!r} is declared {d.access} but kernel "
                    f"parameter {pname!r} is used non-additively "
                    f"({bad[0].kind}{' .' + bad[0].op + '()' if bad[0].kind == 'fold' else ''})",
                    kfile, bad[0].lineno, loop=loop, arg=d.dat,
                ))

        if d.access == "WRITE" and fp.read_before_write:
            r = fp.reads[0]
            diags.append(Diagnostic(
                "OPL003",
                f"argument {d.dat!r} is declared WRITE but kernel parameter "
                f"{pname!r} is read before the first write",
                kfile, r.lineno, loop=loop, arg=d.dat,
            ))

        if site.api == "ops" and not d.is_global:
            points = program.resolve_stencil(idx, d.stencil_text)
            if d.stencil_text is None or points is not None:
                for e in fp.constant_offsets():
                    if not _offset_ok(e.offset, points):
                        diags.append(Diagnostic(
                            "OPL004",
                            f"kernel parameter {pname!r} accesses offset "
                            f"{e.offset} outside the declared stencil of "
                            f"{d.dat!r}",
                            kfile, e.lineno, loop=loop, arg=d.dat,
                        ))
    return diags


def _finding_key(d: Diagnostic) -> tuple:
    return (d.code, d.arg, d.message)


def check_site(
    program: Program, idx: ModuleIndex, site: LoopSite
) -> tuple[list[Diagnostic], int]:
    """Level-1 findings for one loop site.

    Returns the findings plus the number of kernel bodies analysed (0
    when the kernel expression could not be resolved statically)."""
    decls = declared_args(idx, site)
    candidates = program.resolve_kernel(idx, site.kernel)
    if not candidates:
        return [], 0

    per_candidate: list[list[Diagnostic]] = []
    for fn, fn_idx in candidates:
        diags = _check_candidate(program, idx, site, decls, fn, fn_idx)
        if diags is not None:
            per_candidate.append(diags)

    if not per_candidate:
        # every candidate's arity conflicts with the descriptor list
        arities = sorted({
            f"{len(kernel_params(fn)) - kernel_defaults(fn)}"
            + (f"..{len(kernel_params(fn))}" if kernel_defaults(fn) else "")
            for fn, _ in candidates
        })
        return [Diagnostic(
            "OPL006",
            f"{len(decls)} descriptors passed but kernel {site.kernel!r} "
            f"takes {' or '.join(arities)} parameters",
            idx.filename, site.lineno, loop=site.display_name,
        )], len(candidates)

    if len(per_candidate) == 1:
        return per_candidate[0], len(candidates)

    # several bodies may run here: keep findings every candidate agrees on
    common = set.intersection(*(
        {_finding_key(d) for d in diags} for diags in per_candidate
    ))
    kept = [d for d in per_candidate[0] if _finding_key(d) in common]
    return kept, len(candidates)
