"""Level 2: dataflow over loop chains.

Loop sites lifted from one module are grouped by their enclosing function
into *chains* (program order = source order, matching how the bundled
apps sequence their par_loops).  Over each chain we build per-dat access
event lists and report:

* OPL101 — dead writes: a loop's written value is overwritten by a pure
  WRITE before any loop reads it (linearly, or across chain iterations
  when the chain is periodic);
* OPL102 — carried state: dats whose first access in the chain reads,
  i.e. exactly the checkpoint save set (note-level, informational);
* OPL103 — redundant halo-freshening: two consecutive halo-freshening
  indirect/stencil reads of a dat with no interleaving write (note-level);
* OPL104 — the linter's first-access classification disagrees with
  ``repro.checkpoint.analysis.classify_entry`` (self-consistency guard).

The chain's Figure-8 decision table is also rendered for the
``--checkpoint`` report.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.checkpoint.analysis import (
    ChainAccess,
    ChainLoop,
    DatasetFate,
    classify_entry,
    format_table,
)
from repro.common.access import Access
from repro.lint.dataflow import AccessRecord, build_dependence_graph
from repro.lint.diagnostics import Diagnostic
from repro.lint.kernel_checks import declared_args
from repro.lint.resolve import ModuleIndex, Program
from repro.translator.frontend import LoopSite


@dataclass
class DatEvent:
    """One loop's merged access to one dat."""

    site: LoopSite
    reads: bool
    writes: bool
    inc_only: bool
    halo_read: bool  # an indirect/stencil read that freshens halos
    is_global: bool

    @property
    def pure_write(self) -> bool:
        return self.writes and not self.reads


def _merged_access(ev: DatEvent) -> Access:
    """The event as an Access mode for the checkpoint cross-check."""
    if ev.inc_only:
        return Access.INC
    if ev.reads and ev.writes:
        return Access.RW
    if ev.writes:
        return Access.WRITE
    return Access.READ


def _is_halo_read(
    program: Program, idx: ModuleIndex, site: LoopSite, arg
) -> bool:
    """Whether this read would freshen halos (trigger an exchange)."""
    if not Access[arg.access].reads:
        return False
    if site.api == "op2":
        return arg.map is not None
    points = program.resolve_stencil(idx, arg.stencil)
    if points is None:
        return False  # unknown stencil: don't claim redundancy
    return any(any(c != 0 for c in p) for p in points)


def site_events(
    program: Program, idx: ModuleIndex, site: LoopSite
) -> dict[str, DatEvent]:
    """Per-dat merged access events for one loop site."""
    out: dict[str, DatEvent] = {}
    for d in declared_args(idx, site):
        if d.access is None or d.access not in Access.__members__:
            continue
        acc = Access[d.access]
        ev = out.get(d.dat)
        if ev is None:
            ev = DatEvent(
                site=site, reads=False, writes=False, inc_only=True,
                halo_read=False, is_global=d.is_global,
            )
            out[d.dat] = ev
        ev.reads |= acc.reads
        ev.writes |= acc.writes
        ev.inc_only &= acc is Access.INC
        ev.is_global |= d.is_global
        if d.raw.arg is not None and acc.reads:
            ev.halo_read |= _is_halo_read(program, idx, site, d.raw.arg)
    for ev in out.values():
        if not ev.writes:
            ev.inc_only = False
    return out


@dataclass
class Chain:
    """An ordered loop chain within one enclosing function."""

    name: str
    enclosing: str
    sites: list[LoopSite]
    events: list[dict[str, DatEvent]]  # parallel to sites

    def dat_events(self) -> dict[str, list[DatEvent]]:
        out: dict[str, list[DatEvent]] = {}
        for per_site in self.events:
            for dat, ev in per_site.items():
                out.setdefault(dat, []).append(ev)
        return out

    def access_records(self) -> list[tuple[AccessRecord, ...]]:
        """The chain as :mod:`repro.lint.dataflow` access records.

        The same representation the lazy runtime builds from live loop
        queues — so the static dead-write pass and the runtime tile
        scheduler consume one dependence analysis.
        """
        return [
            tuple(
                AccessRecord(ref=dat, reads=ev.reads, writes=ev.writes)
                for dat, ev in per_site.items()
            )
            for per_site in self.events
        ]

    def to_chain_loops(self) -> list[ChainLoop]:
        loops = []
        for site, per_site in zip(self.sites, self.events):
            accesses = [
                ChainAccess(dat, 1, _merged_access(ev), ev.is_global)
                for dat, ev in per_site.items()
            ]
            loops.append(ChainLoop(site.display_name, accesses))
        return loops


def build_chains(
    program: Program, idx: ModuleIndex, sites: list[LoopSite]
) -> list[Chain]:
    """Group a module's loop sites into chains (>= 2 loops each)."""
    by_fn: dict[str, list[LoopSite]] = {}
    for s in sites:
        by_fn.setdefault(s.enclosing, []).append(s)
    chains = []
    stem = idx.path.stem
    for enclosing, group in by_fn.items():
        if len(group) < 2:
            continue
        group = sorted(group, key=lambda s: s.lineno)
        chains.append(Chain(
            name=f"{stem}.{enclosing}",
            enclosing=enclosing,
            sites=group,
            events=[site_events(program, idx, s) for s in group],
        ))
    return chains


def _linter_fate(events: list[DatEvent]) -> DatasetFate:
    """First-access classification, as the linter derives it."""
    if any(ev.is_global for ev in events):
        return DatasetFate.GLOBAL
    if not any(ev.writes for ev in events):
        return DatasetFate.NEVER_SAVED
    first = events[0]
    if first.pure_write:
        return DatasetFate.DROPPED
    return DatasetFate.SAVED


def check_chain(idx: ModuleIndex, chain: Chain) -> list[Diagnostic]:
    """All level-2 findings for one chain."""
    diags: list[Diagnostic] = []
    fname = idx.filename

    # one dependence graph over the chain doubled back on itself: the
    # second copy's edges model the periodic wrap-around (the same
    # build_dependence_graph the lazy runtime schedules tiles from)
    records = chain.access_records()
    n = len(records)
    graph = build_dependence_graph(records + records)

    for dat, events in chain.dat_events().items():
        if any(ev.is_global for ev in events):
            continue

        # OPL101: dead writes — a WAW edge out of a write that has no RAW
        # edge (nobody reads the value before the next writer lands),
        # linearly within the chain and then across the periodic wrap
        dat_edges = graph.edges_for(dat)
        raw_src = {e.src for e in dat_edges if e.kind == "raw"}
        for e in dat_edges:
            if e.kind != "waw" or e.src >= n or e.src in raw_src:
                continue
            ev = chain.events[e.src][dat]
            if e.dst < n:
                nxt = chain.events[e.dst][dat]
                if nxt.pure_write:
                    diags.append(Diagnostic(
                        "OPL101",
                        f"value of {dat!r} written by "
                        f"{ev.site.display_name!r} is overwritten by "
                        f"{nxt.site.display_name!r} before any loop reads it",
                        fname, ev.site.lineno,
                        loop=ev.site.display_name, arg=dat,
                    ))
            elif len(events) >= 2 and events[0].pure_write:
                # last write of the chain, clobbered by the first loop of
                # the next iteration; a dat touched by a single loop is
                # exempt (it may be the chain's output)
                diags.append(Diagnostic(
                    "OPL101",
                    f"value of {dat!r} written by {ev.site.display_name!r} "
                    f"is overwritten by {events[0].site.display_name!r} in "
                    "the next chain iteration before any loop reads it",
                    fname, ev.site.lineno,
                    loop=ev.site.display_name, arg=dat,
                ))

        # OPL102: carried state = the checkpoint save set
        if events[0].reads and any(ev.writes for ev in events):
            diags.append(Diagnostic(
                "OPL102",
                f"{dat!r} is read by {events[0].site.display_name!r} before "
                f"any write in chain {chain.name!r}: state carried across "
                "iterations (checkpoint save set)",
                fname, events[0].site.lineno,
                loop=events[0].site.display_name, arg=dat,
            ))

        # OPL103: consecutive halo-freshening reads, no write between
        prev_halo: DatEvent | None = None
        for ev in events:
            if ev.halo_read and prev_halo is not None:
                diags.append(Diagnostic(
                    "OPL103",
                    f"halo-freshening read of {dat!r} in "
                    f"{ev.site.display_name!r}: halos are already fresh "
                    f"from {prev_halo.site.display_name!r}",
                    fname, ev.site.lineno,
                    loop=ev.site.display_name, arg=dat,
                ))
            if ev.writes:
                prev_halo = None  # the write re-dirties halos
            elif ev.halo_read:
                prev_halo = ev

    # OPL104: cross-check against the Figure-8 analysis
    loops = chain.to_chain_loops()
    fig8 = classify_entry(loops, 0, periodic=True)
    for dat, events in chain.dat_events().items():
        mine = _linter_fate(events)
        theirs = fig8.get(dat)
        if theirs is DatasetFate.PENDING:
            continue
        if theirs is not None and theirs is not mine:
            diags.append(Diagnostic(
                "OPL104",
                f"linter classifies {dat!r} as {mine.value} for chain "
                f"{chain.name!r} but repro.checkpoint.analysis says "
                f"{theirs.value}",
                fname, chain.sites[0].lineno,
                loop=chain.name, arg=dat,
            ))
    return diags


def chain_table(chain: Chain) -> str:
    """The chain's Figure-8 decision table (checkpoint report)."""
    return format_table(chain.to_chain_loops(), periodic=True)
