"""Whole-program resolution: modules, kernels, stencils, reductions.

The frontend lifts loop sites as *source text*; this module gives that
text meaning without executing application code.  It indexes every module
it is pointed at (imports, assignments, function definitions) and resolves

* kernel expressions to the ``FunctionDef`` bodies they execute —
  following ``op2.Kernel(fn, ...)`` assignments, imports from kernel
  modules, and factory functions returning closures (CloverLeaf's
  ``make_*_kernel`` pattern, disambiguated by arity);
* stencil expressions to their literal point sets;
* bare reduction/global handles to their declared reduction kind.

Everything is AST-only: ``importlib.util.find_spec`` is used to locate
module *files*, never to import application modules.
"""

from __future__ import annotations

import ast
import importlib.util
from dataclasses import dataclass, field
from pathlib import Path

from repro.common.errors import ReproError


class LintResolutionError(ReproError):
    """A module or kernel the analyser needs could not be located."""


def locate_module(spec: str) -> Path:
    """Find the source file for a dotted module name or a path."""
    p = Path(spec)
    if p.suffix == ".py":
        if p.exists():
            return p
        raise LintResolutionError(f"no such file: {spec}")
    try:
        found = importlib.util.find_spec(spec)
    except (ImportError, ValueError, ModuleNotFoundError) as exc:
        raise LintResolutionError(f"cannot locate module {spec!r}: {exc}") from exc
    if found is None or found.origin is None:
        raise LintResolutionError(f"cannot locate module {spec!r}")
    return Path(found.origin)


@dataclass
class ModuleIndex:
    """Static facts about one module, gathered from its AST."""

    path: Path
    tree: ast.Module
    #: local name -> dotted module it refers to (``import x.y as z``)
    mod_imports: dict[str, str] = field(default_factory=dict)
    #: local name -> (module, original name) for ``from m import n [as a]``
    from_imports: dict[str, tuple[str, str]] = field(default_factory=dict)
    #: bare function name -> every def of that name (any nesting level)
    functions: dict[str, list[ast.FunctionDef]] = field(default_factory=dict)
    #: assignment target text -> value expression (last assignment wins)
    assigns: dict[str, ast.expr] = field(default_factory=dict)
    #: handle text -> reduction kind ("inc"/"min"/"max")
    reductions: dict[str, str] = field(default_factory=dict)
    #: texts of names bound to op2.Global(...) / local_global(...) results
    globals_: set[str] = field(default_factory=set)

    @property
    def filename(self) -> str:
        return str(self.path)


def _call_basename(node: ast.expr) -> str | None:
    """The trailing name of a call's callee (``op2.Kernel`` -> ``Kernel``)."""
    if not isinstance(node, ast.Call):
        return None
    f = node.func
    if isinstance(f, ast.Attribute):
        return f.attr
    if isinstance(f, ast.Name):
        return f.id
    return None


def index_module(path: Path) -> ModuleIndex:
    """Parse and index one module file."""
    try:
        tree = ast.parse(path.read_text(), filename=str(path))
    except (OSError, SyntaxError) as exc:
        raise LintResolutionError(f"cannot parse {path}: {exc}") from exc
    idx = ModuleIndex(path=path, tree=tree)
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                idx.mod_imports[a.asname or a.name.split(".")[0]] = (
                    a.name if a.asname else a.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue  # relative imports: not used by the bundled apps
            for a in node.names:
                idx.from_imports[a.asname or a.name] = (node.module, a.name)
        elif isinstance(node, ast.FunctionDef):
            idx.functions.setdefault(node.name, []).append(node)
        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, (ast.Name, ast.Attribute)):
                text = ast.unparse(target)
                idx.assigns[text] = node.value
                callee = _call_basename(node.value)
                if callee == "Reduction":
                    kind = "inc"
                    if node.value.args and isinstance(node.value.args[0], ast.Constant):
                        kind = str(node.value.args[0].value)
                    idx.reductions[text] = kind
                    # ``self.x = ...`` handles are also referenced bare
                    if text.startswith("self."):
                        idx.reductions[text[len("self."):]] = kind
                elif callee in ("Global", "local_global"):
                    idx.globals_.add(text)
    return idx


class Program:
    """A lazily-indexed set of modules reachable from the linted apps."""

    def __init__(self) -> None:
        self._by_path: dict[Path, ModuleIndex] = {}

    def index_path(self, path: Path) -> ModuleIndex:
        path = path.resolve()
        if path not in self._by_path:
            self._by_path[path] = index_module(path)
        return self._by_path[path]

    def index_named(self, dotted: str) -> ModuleIndex:
        return self.index_path(locate_module(dotted))

    # -- kernel resolution ---------------------------------------------------

    def resolve_kernel(
        self, idx: ModuleIndex, kernel_text: str, depth: int = 0
    ) -> list[tuple[ast.FunctionDef, ModuleIndex]]:
        """All function bodies a kernel expression may execute."""
        if depth > 6:
            return []
        try:
            expr = ast.parse(kernel_text, mode="eval").body
        except SyntaxError:
            return []
        return self._resolve_expr(idx, expr, depth)

    def _resolve_expr(
        self, idx: ModuleIndex, expr: ast.expr, depth: int
    ) -> list[tuple[ast.FunctionDef, ModuleIndex]]:
        if isinstance(expr, ast.Name):
            return self._resolve_name(idx, expr.id, depth)
        if isinstance(expr, ast.Attribute):
            base = ast.unparse(expr.value)
            other = self._module_for(idx, base)
            if other is not None:
                return self._resolve_name(other, expr.attr, depth)
            # attribute on an object (self.kernel etc.): try assignment map
            text = ast.unparse(expr)
            if text in idx.assigns:
                return self._resolve_value(idx, idx.assigns[text], depth + 1)
            return []
        if isinstance(expr, ast.Call):
            factories = self._resolve_expr(idx, expr.func, depth + 1)
            out: list[tuple[ast.FunctionDef, ModuleIndex]] = []
            for fn, fidx in factories:
                out.extend((k, fidx) for k in _returned_kernels(fn))
            return out
        return []

    def _resolve_name(
        self, idx: ModuleIndex, name: str, depth: int
    ) -> list[tuple[ast.FunctionDef, ModuleIndex]]:
        if name in idx.functions:
            return [(fn, idx) for fn in idx.functions[name]]
        if name in idx.assigns:
            return self._resolve_value(idx, idx.assigns[name], depth + 1)
        if name in idx.from_imports:
            module, orig = idx.from_imports[name]
            target = self._module_for(idx, name)
            if target is not None:  # ``from pkg import kernels as K``
                return []
            try:
                other = self.index_named(module)
            except LintResolutionError:
                return []
            return self._resolve_name(other, orig, depth + 1)
        return []

    def _resolve_value(
        self, idx: ModuleIndex, value: ast.expr, depth: int
    ) -> list[tuple[ast.FunctionDef, ModuleIndex]]:
        if depth > 6:
            return []
        callee = _call_basename(value)
        if callee == "Kernel" and isinstance(value, ast.Call) and value.args:
            # NAME = op2.Kernel(fn, "name", ...): analyse fn
            return self._resolve_expr(idx, value.args[0], depth + 1)
        if isinstance(value, (ast.Name, ast.Attribute, ast.Call)):
            return self._resolve_expr(idx, value, depth + 1)
        return []

    # -- module references ---------------------------------------------------

    def _module_for(self, idx: ModuleIndex, local_name: str) -> ModuleIndex | None:
        """The ModuleIndex a local name refers to, if it names a module."""
        dotted: str | None = None
        if local_name in idx.mod_imports:
            dotted = idx.mod_imports[local_name]
        elif local_name in idx.from_imports:
            module, orig = idx.from_imports[local_name]
            dotted = f"{module}.{orig}"
        if dotted is None:
            return None
        try:
            return self.index_named(dotted)
        except LintResolutionError:
            return None

    # -- dat metadata resolution ---------------------------------------------

    def resolve_dat_info(
        self, idx: ModuleIndex, dat_text: str
    ) -> "DatInfo | None":
        """Declared dtype/halo depth of a dat expression, if derivable.

        Follows the same assignment/import chain as stencil resolution to
        the ``Dat(...)`` / ``Global(...)`` / ``Reduction(...)`` constructor
        call and reads its keyword arguments; constructor defaults
        (``float64``, halo depth 2) fill the gaps.  ``None`` means the
        constructor could not be located — dtype/extent checks must be
        skipped, never guessed.
        """
        call = self._stencil_value(idx, dat_text, 0)
        if call is None or not isinstance(call, ast.Call):
            return None
        basename = _call_basename(call)
        if basename not in ("Dat", "Global", "Reduction"):
            return None
        dtype: str | None = "float64"
        halo: int | None = 2 if basename == "Dat" else None
        for kw in call.keywords:
            if kw.arg == "dtype":
                dtype = _dtype_name(kw.value)
            elif kw.arg == "halo_depth":
                halo = (kw.value.value
                        if isinstance(kw.value, ast.Constant)
                        and isinstance(kw.value.value, int) else None)
        return DatInfo(dtype=dtype, halo_depth=halo)

    # -- stencil resolution --------------------------------------------------

    def resolve_stencil(
        self, idx: ModuleIndex, stencil_text: str | None, ndim_hint: int | None = None
    ) -> tuple[tuple[int, ...], ...] | None:
        """The literal point set of a stencil expression, if derivable.

        ``None`` means "statically unknown" (checks must be skipped);
        a missing stencil declaration is the centre-point stencil, which
        callers encode by passing ``stencil_text=None`` with a dimension
        hint.
        """
        if stencil_text is None:
            if ndim_hint is None:
                return None
            return ((0,) * ndim_hint,)
        value = self._stencil_value(idx, stencil_text, 0)
        if value is None:
            return None
        return _literal_stencil_points(value)

    def _stencil_value(
        self, idx: ModuleIndex, text: str, depth: int
    ) -> ast.expr | None:
        if depth > 6:
            return None
        try:
            expr = ast.parse(text, mode="eval").body
        except SyntaxError:
            return None
        if isinstance(expr, ast.Call):
            return expr
        if isinstance(expr, ast.Name):
            if expr.id in idx.assigns:
                node = idx.assigns[expr.id]
                if isinstance(node, ast.Call):
                    return node
                return self._stencil_value(idx, ast.unparse(node), depth + 1)
            if expr.id in idx.from_imports:
                module, orig = idx.from_imports[expr.id]
                try:
                    other = self.index_named(module)
                except LintResolutionError:
                    return None
                return self._stencil_value(other, orig, depth + 1)
            return None
        if isinstance(expr, ast.Attribute):
            other = self._module_for(idx, ast.unparse(expr.value))
            if other is not None:
                return self._stencil_value(other, expr.attr, depth + 1)
            text2 = ast.unparse(expr)
            if text2 in idx.assigns:
                node = idx.assigns[text2]
                if isinstance(node, ast.Call):
                    return node
            return None
        return None


@dataclass(frozen=True)
class DatInfo:
    """Statically-resolved dat declaration facts."""

    dtype: str | None
    halo_depth: int | None


_DTYPE_NAMES = {
    "bool", "bool_", "int8", "int16", "int32", "int64", "uint8", "uint16",
    "uint32", "uint64", "float16", "float32", "float64", "complex64",
    "complex128",
}


def _dtype_name(node: ast.expr) -> str | None:
    """``np.float32`` / ``"float32"`` / ``float`` as a dtype name."""
    if isinstance(node, ast.Attribute) and node.attr in _DTYPE_NAMES:
        return "bool" if node.attr == "bool_" else node.attr
    if isinstance(node, ast.Constant) and isinstance(node.value, str) \
            and node.value in _DTYPE_NAMES:
        return node.value
    if isinstance(node, ast.Name):
        return {"float": "float64", "int": "int64", "bool": "bool"}.get(node.id)
    return None


def _returned_kernels(factory: ast.FunctionDef) -> list[ast.FunctionDef]:
    """Nested kernels a factory function may return.

    When return statements name specific nested defs, only those are
    candidates; otherwise every nested def is (conservative).
    """
    nested = [
        n for n in ast.walk(factory)
        if isinstance(n, ast.FunctionDef) and n is not factory
    ]
    if not nested:
        return [factory]  # a plain kernel referenced directly
    by_name = {n.name: n for n in nested}
    returned = [
        by_name[r.value.id]
        for r in ast.walk(factory)
        if isinstance(r, ast.Return)
        and isinstance(r.value, ast.Name)
        and r.value.id in by_name
    ]
    return list(dict.fromkeys(returned)) or nested


def _literal_stencil_points(call: ast.Call) -> tuple[tuple[int, ...], ...] | None:
    """The point tuple of a ``Stencil(ndim, points, ...)`` call node."""
    if _call_basename(call) != "Stencil" or len(call.args) < 2:
        return None
    try:
        raw = ast.literal_eval(call.args[1])
    except (ValueError, SyntaxError):
        return None
    points = []
    for p in raw:
        t = tuple(int(c) for c in (p if isinstance(p, (tuple, list)) else (p,)))
        points.append(t)
    return tuple(dict.fromkeys(points)) if points else None
