"""Figure 5: CloverLeaf, Original vs OPS, across programming models.

Paper bars (exact numbers given in the figure): on dual-socket CPUs —
32 OMP (57.39 vs 45.92), 32 MPI (44.60 vs 45.55), 2OMPx16MPI (44.22 vs
45.82), OpenCL (61.54 vs 63.35); on the K20/K40-class GPU — CUDA (14.14 vs
15.01), OpenCL (16.19 vs 16.27), OpenACC (21.67 vs 19.82).

Expected shape: OPS within ~5% of hand-tuned on CPU configurations, but
~20% FASTER on pure OpenMP (the original's NUMA handling is worse);
within 6% on CUDA (the original fuses some loops); matching or beating
OpenCL and OpenACC.

Evidence produced here:
* measured — the hand-coded NumPy original and the OPS version really run;
  wall-clock times and bit-identical results are compared,
* modelled — measured traffic priced per programming model, with the
  model-level factors the paper attributes to each port (the original's
  OpenMP NUMA penalty, the original CUDA port's loop fusion, OpenCL and
  OpenACC code-quality factors).  These factors are documented as
  qualitative substitutions in EXPERIMENTS.md — no real OpenCL/OpenACC
  runtime exists offline.
"""

import time

import pytest

from _support import characters_for, emit, scale_characters
from repro.apps.cloverleaf import CloverLeafApp, CloverLeafReference
from repro.machine import NVIDIA_K20X, XEON_E5_2697V2
from repro.perfmodel import PlatformConfig, predict_chain

NX = NY = 128
STEPS = 4
#: the paper's CPU problem class: 3840^2 cells
PAPER_CELLS = 3840 * 3840

#: (label, machine, gpu?, original-model factor, OPS-model factor)
#: factors encode the paper's per-port observations; 1.0 = clean port
MODEL_CONFIGS = [
    ("32 OMP", XEON_E5_2697V2, False, 1.25, 1.0),  # original's NUMA problem
    ("32 MPI", XEON_E5_2697V2, False, 1.0, 1.02),
    ("2OMP x 16MPI", XEON_E5_2697V2, False, 1.0, 1.03),
    ("OpenCL (CPU)", XEON_E5_2697V2, False, 1.38, 1.42),  # immature CPU OpenCL
    ("CUDA", NVIDIA_K20X, True, 0.94, 1.0),  # original fuses some loops
    ("OpenCL (GPU)", NVIDIA_K20X, True, 1.14, 1.14),
    ("OpenACC", NVIDIA_K20X, True, 1.52, 1.40),  # OPS beats the original here
]


@pytest.fixture(scope="module")
def clover_chars():
    app = CloverLeafApp(nx=NX, ny=NY)
    chars = characters_for(lambda: app.run(STEPS), {})
    return scale_characters(chars, PAPER_CELLS / (NX * NY))


def test_fig5_original_vs_ops(benchmark, clover_chars):
    # -- measured: both implementations really run --------------------------------
    app = CloverLeafApp(nx=NX, ny=NY)
    ref = CloverLeafReference(NX, NY)
    t0 = time.perf_counter()
    s_ref = ref.run(STEPS)
    t_original = time.perf_counter() - t0
    t0 = time.perf_counter()
    s_ops = app.run(STEPS)
    t_ops = time.perf_counter() - t0
    # identical numerics (the basis of any fair comparison)
    assert s_ops["mass"] == s_ref["mass"]
    assert s_ops["ie"] == s_ref["ie"]

    benchmark.pedantic(lambda: CloverLeafApp(nx=64, ny=64).run(1), rounds=3, iterations=1)

    # -- modelled: the paper's seven config pairs ------------------------------------
    bars = {}
    for label, machine, gpu, f_orig, f_ops in MODEL_CONFIGS:
        orig = predict_chain(
            PlatformConfig(label, machine, gpu=gpu, model_factor=f_orig), clover_chars
        )[0]
        opsd = predict_chain(
            PlatformConfig(label, machine, gpu=gpu, model_factor=f_ops), clover_chars
        )[0]
        bars[label] = (orig, opsd)

    rows = [
        f"measured wall-clock on this host: Original {t_original:.3f}s, "
        f"OPS {t_ops:.3f}s (OPS/Original = {t_ops / t_original:.2f})",
        "",
        f"{'config':<16}{'Original':>12}{'OPS':>12}{'OPS/Orig':>12}",
    ]
    for label, (orig, opsd) in bars.items():
        rows.append(f"{label:<16}{orig:12.2f}{opsd:12.2f}{opsd / orig:12.3f}")
    emit(
        "fig5_cloverleaf_models",
        rows,
        data={
            "measured_seconds": {"original": t_original, "ops": t_ops},
            "predicted_seconds": {
                label: {"original": orig, "ops": opsd} for label, (orig, opsd) in bars.items()
            },
        },
    )

    # paper shapes ----------------------------------------------------------------
    # pure OpenMP: OPS is ~20% FASTER (NUMA)
    orig, opsd = bars["32 OMP"]
    assert opsd < 0.9 * orig
    # MPI and hybrid: OPS within 5%
    for label in ("32 MPI", "2OMP x 16MPI"):
        orig, opsd = bars[label]
        assert opsd <= 1.05 * orig
    # CUDA: OPS within 6% of the (loop-fused) original
    orig, opsd = bars["CUDA"]
    assert opsd <= 1.07 * orig
    # OpenCL: OPS matches; OpenACC: OPS outperforms
    orig, opsd = bars["OpenCL (GPU)"]
    assert abs(opsd - orig) / orig < 0.05
    orig, opsd = bars["OpenACC"]
    assert opsd < orig
    # GPUs beat CPUs by the paper's ~3x class (44.6 -> 14.1)
    assert bars["32 MPI"][1] / bars["CUDA"][1] > 2.0
    # measured substrate: OPS within ~2x of the hand-coded NumPy original
    # (accessor/view overhead; the paper's C-vs-C comparison is the model above)
    assert t_ops / t_original < 2.5
