"""Figure 8: the checkpointing decision table for Airfoil.

Regenerates the figure's table — per loop, the dataset access modes and the
"units of data saved if entering checkpointing mode here" column — both
from the paper's tabulated chain (expected: 8, 12, 13, 13, 8, ...) and from
the *live* loop chain recorded off the actual Airfoil application.  Also
demonstrates the speculative placement (wait for save_soln/update) and
measures the full checkpoint + recovery machinery.
"""

import numpy as np
import pytest

from _support import emit
from repro.apps.airfoil import AirfoilApp
from repro.checkpoint import (
    CheckpointManager,
    MemoryStore,
    RecoveryReplayer,
    best_entry_points,
    chain_from_events,
    decision_table,
    detect_period,
    units_saved_if_entering,
)
from repro.checkpoint.analysis import format_table
from repro.common.profiling import loop_chain_record


@pytest.fixture(scope="module")
def live_chain():
    app = AirfoilApp(nx=12, ny=8)
    with loop_chain_record() as events:
        app.run(2)
    return chain_from_events(events)


def test_fig8_decision_table(benchmark, live_chain):
    benchmark.pedantic(lambda: decision_table(live_chain), rounds=10, iterations=1)

    table_text = format_table(live_chain)
    rows = [table_text, ""]

    units = [units_saved_if_entering(live_chain, i) for i in range(len(live_chain))]
    rows.append(f"units column: {units}")

    period = detect_period([c.name for c in live_chain])
    rows.append(f"detected kernel-sequence period: {period}")
    best = best_entry_points(live_chain)
    best_names = sorted({live_chain[i].name for i in best})
    rows.append(f"cheapest entry points: {best_names}")
    emit(
        "fig8_checkpoint_table",
        rows,
        data={
            "units_saved": units,
            "detected_period": period,
            "cheapest_entry_points": best_names,
        },
    )

    # the paper's pattern: save_soln entries cost 8; adt_calc 12; res/bres 13.
    # The live update kernel also reads adt (unlike the figure's tabulation),
    # so its entry costs 9; the figure-exact chain is asserted in the tests.
    assert units == [8, 12, 13, 13, 9, 12, 13, 13, 9] * 2
    assert period == 9
    # speculative placement waits for the cheapest loops (paper: save_soln/update)
    assert best_names == ["save_soln"]

    # checkpoint cost vs naive save-everything --------------------------------
    all_units = 2 + 4 + 4 + 1 + 4 + 1  # x, q, q_old, adt, res, bounds dims
    assert min(units) < 0.6 * all_units


def test_fig8_checkpoint_and_recovery_roundtrip(benchmark):
    def checkpointed_run():
        app = AirfoilApp(nx=12, ny=8)
        rng = np.random.default_rng(3)
        app.mesh.q.data[:, 0] *= 1.0 + 0.05 * rng.random(app.mesh.cells.size)
        store = MemoryStore()
        with CheckpointManager(store) as mgr:
            app.run(1)
            mgr.trigger()
            app.run(2)
        return app, store

    app, store = checkpointed_run()
    benchmark.pedantic(checkpointed_run, rounds=3, iterations=1)

    # minimal save set at a save_soln entry: q and res (the figure's 8
    # units); q_old/adt dropped, x/bound never saved (unmodified inputs)
    assert set(store.datasets) == {"q", "res"}
    assert {"q_old", "adt", "x", "bound"} <= set(store.dropped)
    assert store.saved_units == 8

    # crash + recovery reproduces the original run exactly ----------------------
    ref_q = app.mesh.q.data.copy()
    app2 = AirfoilApp(nx=12, ny=8)
    rng = np.random.default_rng(3)
    app2.mesh.q.data[:, 0] *= 1.0 + 0.05 * rng.random(app2.mesh.cells.size)
    m = app2.mesh
    with RecoveryReplayer(
        store,
        {"q": m.q, "q_old": m.qold, "adt": m.adt, "res": m.res, "x": m.x, "bound": m.bound},
        {"rms": app2.rms},
    ):
        app2.run(3)
    np.testing.assert_allclose(app2.mesh.q.data, ref_q)
