"""Ablation: partitioner quality (the Fig 3 '30%' ingredient).

Compares the four partitioners on the Airfoil mesh: edge cut (the halo
byte-volume proxy), balance, and the modelled communication time per halo
exchange on the Gemini interconnect.  The graph/geometric methods must
beat the trivial block split — the paper's justification for integrating
PT-Scotch/ParMetis.
"""

import numpy as np
import pytest

from _support import emit
from repro.apps.airfoil import generate_mesh
from repro.machine import NetworkModel
from repro.machine.catalog import GEMINI
from repro.op2.partition import edge_cut, partition_set

NPARTS = 8


@pytest.fixture(scope="module")
def mesh():
    return generate_mesh(48, 40, jitter=0.15)


def _assignments(mesh):
    coords = mesh.x.data[mesh.cell2node.values].mean(axis=1)
    return {
        "block": partition_set(mesh.cells.size, NPARTS, "block").assignment,
        "greedy": partition_set(mesh.cells.size, NPARTS, "greedy", map_=mesh.cell2node).assignment,
        "rcb": partition_set(mesh.cells.size, NPARTS, "rcb", coords=coords).assignment,
        "spectral": partition_set(
            mesh.cells.size, NPARTS, "spectral", map_=mesh.cell2node
        ).assignment,
    }


def test_ablation_partitioner_quality(benchmark, mesh):
    coords = mesh.x.data[mesh.cell2node.values].mean(axis=1)
    benchmark.pedantic(
        lambda: partition_set(mesh.cells.size, NPARTS, "rcb", coords=coords),
        rounds=5,
        iterations=1,
    )

    assignments = _assignments(mesh)
    net = NetworkModel(GEMINI)
    rows = [f"{'method':<10}{'edge cut':>10}{'imbalance':>11}{'comm µs/exch':>14}"]
    cuts = {}
    for method, assign in assignments.items():
        cut = edge_cut(mesh.cell2node, assign)
        sizes = np.bincount(assign, minlength=NPARTS)
        imbalance = sizes.max() / sizes.mean()
        # crossing entries -> halo bytes (q: 4 doubles per crossing entry)
        comm = net.exchange_seconds(4, cut / NPARTS * 32) * 1e6
        cuts[method] = cut
        rows.append(f"{method:<10}{cut:>10}{imbalance:>11.3f}{comm:>14.2f}")
    emit(
        "ablation_partitioners",
        rows,
        data={"config": {"nparts": NPARTS}, "edge_cuts": {m: int(c) for m, c in cuts.items()}},
    )

    # the quality partitioners must beat the trivial block split
    assert cuts["rcb"] < cuts["block"]
    assert cuts["spectral"] < cuts["block"]
    # and both geometric/spectral methods beat naive BFS growth on this mesh
    assert min(cuts["rcb"], cuts["spectral"]) <= cuts["greedy"]
